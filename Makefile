# Convenience entry points; every target is plain python + pytest.

PY := PYTHONPATH=src python

.PHONY: test fast slow bench benchmarks perf trace

# Tier-1 verification: the whole unit/property suite.
test:
	$(PY) -m pytest -x -q

# Skip the hypothesis-heavy differential suites (seconds, not minutes).
fast:
	$(PY) -m pytest -x -q -m "not slow"

# Only the hypothesis-heavy differential suites.
slow:
	$(PY) -m pytest -x -q -m slow

# Regenerate the machine-readable perf trajectory (BENCH_*.json).
bench:
	$(PY) -m repro.eval.runner --bench-out benchmarks/results/BENCH_pr1.json

# Regenerate every paper table/figure artifact (slow).
benchmarks:
	$(PY) -m pytest -x -q benchmarks

# Simulator throughput: fast path vs reference interpreter
# (writes benchmarks/results/BENCH_sim_speed.json).  Guard against
# regressions with: scripts/bench_compare.py OLD.json NEW.json
perf:
	$(PY) -m repro.eval.runner --perf

# Capture a Chrome trace of the quickstart kernel (chrome://tracing).
trace:
	$(PY) examples/quickstart.py --trace trace_quickstart.json
