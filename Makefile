# Convenience entry points; every target is plain python + pytest.

PY := PYTHONPATH=src python

# Worker processes for the sharded evaluation targets: `make eval
# JOBS=8`, `make perf JOBS=8`.  Unset = the engine's default
# (os.cpu_count()); 1 = in-process serial.  Merged output is
# byte-identical for every value (see tests/golden/).
JOBS ?=
JOBSFLAG := $(if $(JOBS),--jobs $(JOBS),)

.PHONY: test fast slow bench benchmarks eval perf perf-quick trace \
	verify validate lint golden conformance lockstep lockstep-smoke \
	inject inject-golden serve-smoke serve-bench serve-golden \
	chaos-smoke ci

# Tier-1 verification: the whole unit/property suite.
test:
	$(PY) -m pytest -x -q

# Skip the hypothesis-heavy differential suites (seconds, not minutes).
fast:
	$(PY) -m pytest -x -q -m "not slow"

# Only the hypothesis-heavy differential suites.
slow:
	$(PY) -m pytest -x -q -m slow

# Regenerate the machine-readable perf trajectory (BENCH_*.json).
bench:
	$(PY) -m repro.eval.runner --bench-out benchmarks/results/BENCH_pr1.json $(JOBSFLAG)

# Regenerate every paper table/figure artifact (slow).
benchmarks:
	$(PY) -m pytest -x -q benchmarks

# The full standard evaluation job graph (kernels x configs,
# ablations, figure panels, throughput) through the sharded engine.
eval:
	$(PY) -m repro.eval.parallel $(JOBSFLAG)

# Simulator throughput: fast path vs reference interpreter
# (writes benchmarks/results/BENCH_sim_speed.json).  Guard against
# regressions with: scripts/bench_compare.py OLD.json NEW.json
perf:
	$(PY) -m repro.eval.runner --perf $(JOBSFLAG)

# Quick throughput check over just the gated kernels — seconds, not
# minutes.  Override the set with `make perf-quick PERF_QUICK=memcpy`.
PERF_QUICK ?= memcpy,mpeg2_b,cabac_plain
perf-quick:
	$(PY) -m repro.eval.runner --perf --kernels $(PERF_QUICK) $(JOBSFLAG)

# Capture a Chrome trace of the quickstart kernel (chrome://tracing).
trace:
	$(PY) examples/quickstart.py --trace trace_quickstart.json

# Static verification of every registered kernel on both targets:
# exposed-pipeline hazards, slot/pairing legality, memory ports, jump
# delay-slot shape, encodability, def-use.
verify:
	$(PY) -m repro.analysis

# Trace-region translation validation: every compiled region of every
# lockstep-catalog program re-checked against its ExecutionPlan (both
# hazard modes), plus the doctored-codegen mutant sweep proving the
# validator rejects broken codegen with the expected rule.
validate:
	$(PY) -m repro.analysis --trace-regions --quiet
	$(PY) -m repro.analysis --trace-mutants

# Style/type lint.  Uses ruff + mypy when installed; otherwise falls
# back to the dependency-free AST linter in scripts/lint_fallback.py.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro scripts tests; \
	else \
		echo "ruff not installed; running scripts/lint_fallback.py"; \
		$(PY) scripts/lint_fallback.py src/repro scripts; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

# Regenerate the golden-trace conformance digests after a deliberate
# change to simulated behaviour or to the corpus itself.
golden:
	$(PY) -m repro.eval.parallel --write-golden tests/golden/conformance.json

# Run the golden corpus sharded and check it against the digests.
conformance:
	$(PY) -m repro.eval.parallel --conformance --jobs 2

# Three-way lockstep conformance (interp vs plan vs trace) over the
# full 30-program catalog; `lockstep-smoke` runs the 5-case subset.
lockstep:
	$(PY) -m repro.eval.lockstep

lockstep-smoke:
	$(PY) -m repro.eval.lockstep --smoke

# Seeded soft-error smoke campaign through the sharded engine,
# digest-pinned like the golden corpus: the merged records/events must
# match tests/golden/fault_campaign.json at any JOBS level.  Also
# refreshes benchmarks/results/BENCH_fault_tolerance.json.
inject:
	$(PY) -m repro.resilience --check --jobs 2

# Regenerate the pinned fault-campaign digests after a deliberate
# change to the resilience layer, the campaign shape, or timing.
inject-golden:
	$(PY) -m repro.resilience --write-golden

# Serving-layer smoke: the conformance + chaos suite (served results
# byte-identical to the serial runner at workers 1/2/4, under forced
# preemption, and across crash/hang/malformed-frame churn), then a
# short verified loadgen run through a real server.
serve-smoke:
	$(PY) -m pytest -x -q tests/serve -m "not slow"
	$(PY) -m repro.serve.loadgen --smoke --workers 2

# Seeded chaos campaign against a real server: worker kills and
# hangs, corrupted client frames, delayed ACKs, and in-session bit
# flips, all drawn from one seed.  Passes only if every admitted
# session completes with a served workload digest byte-identical to
# the fault-free serial reference and zero lost sessions.  Override
# the campaign with CHAOS_SEED / CHAOS_CAMPAIGNS.
CHAOS_SEED ?= 2026
CHAOS_CAMPAIGNS ?= 1
chaos-smoke:
	$(PY) -m repro.serve.chaos --smoke --seed $(CHAOS_SEED) \
		--campaigns $(CHAOS_CAMPAIGNS)

# The serving benchmark: a seeded load run (deterministic session
# schedule) through a real server; writes BENCH_serve.json and gates
# p99 session latency and sessions/sec against the committed baseline
# (generous threshold: latency on shared CI machines is noisy; the
# digests inside the record are exact).
serve-bench:
	$(PY) -m repro.serve.loadgen --sessions 120 --workers 4 \
		--out benchmarks/results/BENCH_serve.json
	$(PY) scripts/bench_compare.py \
		benchmarks/baselines/BENCH_serve.json \
		benchmarks/results/BENCH_serve.json --threshold 1.0

# Regenerate the pinned mixed-workload serve digests after a
# deliberate change to simulated behaviour or to the workload itself.
serve-golden:
	$(PY) -m repro.serve.loadgen --write-golden tests/golden/serve_sessions.json

# The full local CI gauntlet: lint, static kernel verification, the
# tier-1 suite under a pinned hash seed, a translation-validation
# smoke pass over the trace tier, the three-engine lockstep
# smoke subset, sharded golden conformance + fault-campaign runs
# proving parallelism changes nothing, the serve + chaos smokes
# (crash-recovery digests against the serial reference), then a quick
# throughput gate
# against the committed baseline (generous threshold: CI machines are
# noisy; benchmarks/test_sim_speed.py holds the tight ratios).  (The
# full 30-program lockstep catalog is the `make lockstep` / `-m slow`
# sweep.)
ci: lint verify
	PYTHONHASHSEED=0 $(PY) -m pytest -x -q
	$(PY) -m repro.analysis --trace-regions --smoke --quiet
	$(PY) -m repro.eval.lockstep --smoke
	$(PY) -m repro.eval.parallel --conformance --jobs 2
	$(PY) -m repro.resilience --check --jobs 2
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(PY) -m repro.eval.runner --perf --kernels $(PERF_QUICK) \
		--bench-out benchmarks/results/BENCH_ci_perf.json
	$(PY) scripts/bench_compare.py \
		benchmarks/baselines/BENCH_sim_speed.json \
		benchmarks/results/BENCH_ci_perf.json \
		--only $(PERF_QUICK) --threshold 0.5
