# Convenience entry points; every target is plain python + pytest.

PY := PYTHONPATH=src python

.PHONY: test fast slow bench benchmarks perf trace verify lint

# Tier-1 verification: the whole unit/property suite.
test:
	$(PY) -m pytest -x -q

# Skip the hypothesis-heavy differential suites (seconds, not minutes).
fast:
	$(PY) -m pytest -x -q -m "not slow"

# Only the hypothesis-heavy differential suites.
slow:
	$(PY) -m pytest -x -q -m slow

# Regenerate the machine-readable perf trajectory (BENCH_*.json).
bench:
	$(PY) -m repro.eval.runner --bench-out benchmarks/results/BENCH_pr1.json

# Regenerate every paper table/figure artifact (slow).
benchmarks:
	$(PY) -m pytest -x -q benchmarks

# Simulator throughput: fast path vs reference interpreter
# (writes benchmarks/results/BENCH_sim_speed.json).  Guard against
# regressions with: scripts/bench_compare.py OLD.json NEW.json
perf:
	$(PY) -m repro.eval.runner --perf

# Capture a Chrome trace of the quickstart kernel (chrome://tracing).
trace:
	$(PY) examples/quickstart.py --trace trace_quickstart.json

# Static verification of every registered kernel on both targets:
# exposed-pipeline hazards, slot/pairing legality, memory ports, jump
# delay-slot shape, encodability, def-use.
verify:
	$(PY) -m repro.analysis

# Style/type lint.  Uses ruff + mypy when installed; otherwise falls
# back to the dependency-free AST linter in scripts/lint_fallback.py.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro scripts tests; \
	else \
		echo "ruff not installed; running scripts/lint_fallback.py"; \
		$(PY) scripts/lint_fallback.py src/repro scripts; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi
