"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
formatted output is printed (visible with ``pytest -s``) and also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.runner import BENCH_SINK

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True, scope="session")
def bench_trajectory():
    """Guarantee a valid ``BENCH_*.json`` after any benchmark session.

    ``run_case`` already records every kernel run on
    :data:`~repro.eval.runner.BENCH_SINK`; this fixture flushes once
    more at session end so even a purely static figure run (e.g. the
    Figure 1 encoding-size study) leaves a schema-conforming file.
    """
    yield
    BENCH_SINK.flush()


def report(name: str, text: str) -> None:
    """Print and persist one experiment's rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
