"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
formatted output is printed (visible with ``pytest -s``) and also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the artifacts.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print and persist one experiment's rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
