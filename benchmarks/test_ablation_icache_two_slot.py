"""Ablations: instruction-cache access mode and two-slot operations."""

from conftest import report, run_once

from repro.eval.ablations import icache_mode_ablation, two_slot_ablation
from repro.eval.reporting import format_table


def test_ablation_icache_mode(benchmark):
    """Sequential vs parallel I$ (Section 5.2's power argument)."""
    comparison = run_once(benchmark, icache_mode_ablation)
    parallel, sequential = comparison.stats_a, comparison.stats_b
    rows = [
        ["cycles", parallel.cycles, sequential.cycles],
        ["chunk fetches", parallel.icache.chunk_fetches,
         sequential.icache.chunk_fetches],
        ["SRAM data-way reads", parallel.icache.data_way_reads,
         sequential.icache.data_way_reads],
    ]
    text = format_table(
        "Ablation: instruction-cache access organization (filter)",
        ["metric", "parallel (TM3260-style)", "sequential (TM3270)"],
        rows)
    report("ablation_icache_mode", text)
    # Identical timing...
    assert sequential.cycles == parallel.cycles
    # ...but the sequential design reads one way instead of all 8:
    # the Section 5.2 energy claim.
    assert sequential.icache.data_way_reads * 7 < \
        parallel.icache.data_way_reads


def test_ablation_two_slot(benchmark):
    """SUPER_LD32R memcpy vs plain-load memcpy (Section 2.2.1)."""
    comparison = run_once(benchmark, two_slot_ablation)
    plain, super_ = comparison.stats_a, comparison.stats_b
    rows = [
        ["VLIW instructions", plain.instructions, super_.instructions],
        ["cycles", plain.cycles, super_.cycles],
        ["load accesses", plain.dcache.load_accesses,
         super_.dcache.load_accesses],
    ]
    text = format_table(
        "Ablation: two-slot SUPER_LD32R on memcpy (TM3270)",
        ["metric", "plain loads", "super_ld32r"], rows)
    text += f"\nsuper_ld32r speedup: {comparison.speedup:.2f}x"
    report("ablation_two_slot", text)
    # Half as many load issues (two words per operation).
    assert super_.dcache.load_accesses <= plain.dcache.load_accesses / 2
    # Fewer instructions overall.
    assert super_.instructions < plain.instructions
