"""Ablation: 64 vs 128-byte lines at 16 KB capacity (Section 6).

The paper explains configuration A beating B/C on MPEG2 by the line
size: "The TM3270 doubles the line size to 128 bytes ... resulting in
more capacity misses for MPEG2 decoding."
"""

from conftest import report, run_once

from repro.eval.ablations import line_size_ablation
from repro.eval.reporting import format_table


def run_both():
    return (line_size_ablation("mpeg2_a"), line_size_ablation("mpeg2_c"))


def test_ablation_line_size(benchmark):
    disruptive, smooth = run_once(benchmark, run_both)
    rows = []
    for label, comparison in (("mpeg2_a (disruptive)", disruptive),
                              ("mpeg2_c (smooth)", smooth)):
        lines128, lines64 = comparison.stats_a, comparison.stats_b
        rows.append([
            label,
            lines64.cycles, lines128.cycles,
            lines64.dcache_stall_cycles, lines128.dcache_stall_cycles,
            round(comparison.speedup, 2),
        ])
    text = format_table(
        "Ablation: data-cache line size at 16 KB capacity (240 MHz)",
        ["stream", "cycles 64B", "cycles 128B", "stalls 64B",
         "stalls 128B", "64B speedup"], rows)
    report("ablation_line_size", text)

    # Disruptive motion: 64-byte lines waste less fetch bandwidth per
    # random 8-byte reference fetch -> fewer stall cycles.
    assert disruptive.stats_b.dcache_stall_cycles < \
        disruptive.stats_a.dcache_stall_cycles
    # The effect is much weaker for the smooth stream (sequential
    # reuse amortizes the long lines).
    def stall_ratio(comparison):
        return (comparison.stats_a.dcache_stall_cycles
                / max(comparison.stats_b.dcache_stall_cycles, 1))
    assert stall_ratio(disruptive) > stall_ratio(smooth)
