"""Ablations: prefetch stride sweep and collapsed-load motion estimation."""

from conftest import report, run_once

from repro.eval.ablations import collapsed_load_ablation, prefetch_stride_sweep
from repro.eval.reporting import format_table


def test_ablation_prefetch_stride(benchmark):
    """Stride sweep around Figure 3's width x block-height value."""
    points = run_once(benchmark, prefetch_stride_sweep)
    width = 256
    rows = [[point.stride, point.cycles, point.dcache_stalls]
            for point in points]
    text = format_table(
        "Ablation: PF0_STRIDE sweep, 4x4 block scan over a "
        f"{width}-wide image",
        ["stride", "cycles", "dcache stalls"], rows)
    report("ablation_prefetch_stride", text)

    by_stride = {point.stride: point for point in points}
    baseline = by_stride[0]
    figure3 = by_stride[width * 4]
    # The paper's stride (width x 4) removes most stalls.
    assert figure3.dcache_stalls < baseline.dcache_stalls / 3
    # It beats the naive next-sequential-line stride of 128 bytes:
    # that one prefetches within the current row only.
    assert figure3.dcache_stalls <= by_stride[128].dcache_stalls
    # And it is the best (or tied-best) stride in the sweep.
    best = min(points, key=lambda point: point.dcache_stalls)
    assert figure3.dcache_stalls <= best.dcache_stalls * 1.2


def test_ablation_collapsed_load_me(benchmark):
    """LD_FRAC8 vs explicit interpolation ([12]: gain > 2x)."""
    comparison = run_once(benchmark, collapsed_load_ablation)
    plain, ld8 = comparison.stats_a, comparison.stats_b
    rows = [
        ["VLIW instructions", plain.instructions, ld8.instructions],
        ["cycles", plain.cycles, ld8.cycles],
        ["ops executed", plain.ops_executed, ld8.ops_executed],
    ]
    text = format_table(
        "Ablation: fractional-position motion estimation (TM3270)",
        ["metric", "explicit interpolation", "ld_frac8"], rows)
    text += f"\nld_frac8 speedup: {comparison.speedup:.2f}x (paper: >2x)"
    report("ablation_me_frac", text)
    assert comparison.speedup > 2.0
    # The collapsed load removes the interpolation arithmetic.
    assert ld8.ops_executed < plain.ops_executed / 2
