"""Ablations: the Section 6 companion studies [13] and [14] —
MPEG2 texture pipeline (SUPER_DUALIMIX) and temporal up-conversion
(LD_FRAC8 + region prefetch)."""

import random

from conftest import report, run_once

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.eval.reporting import format_table
from repro.kernels import texture, upconv
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.video import synthetic_frame

NBLOCKS = 16


def _run_texture(build):
    rng = random.Random(41)
    src = [rng.randrange(-256, 256) for _ in range(NBLOCKS * 64)]
    coeff_w = [rng.randrange(-64, 64) for _ in range(8)]
    coeff_v = [rng.randrange(-64, 64) for _ in range(8)]
    addresses = (DATA_BASE, DATA_BASE + 0x4000, DATA_BASE + 0x8000,
                 DATA_BASE + 0x8100)
    memory = FlatMemory(1 << 17)
    for index, value in enumerate(src):
        memory.store(addresses[0] + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_w):
        memory.store(addresses[3] + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_v):
        memory.store(addresses[3] + 16 + 2 * index, value & 0xFFFF, 2)
    linked = compile_program(build(), TM3270_CONFIG.target)
    result = run_kernel(linked, TM3270_CONFIG,
                        args=args_for(*addresses, NBLOCKS),
                        memory=memory)
    expected = texture.reference_texture(
        src, [], coeff_w, coeff_v, NBLOCKS)
    for index, value in enumerate(expected):
        got = memory.load(addresses[1] + 2 * index, 2)
        got -= (1 << 16) if got & 0x8000 else 0
        assert got == value, index
    return result.stats


def test_ablation_texture_pipeline(benchmark):
    """[13]: SUPER_DUALIMIX on the 8x8 texture pipeline."""
    def run_both():
        return (_run_texture(texture.build_texture_plain),
                _run_texture(texture.build_texture_super))

    plain, fast = run_once(benchmark, run_both)
    rows = [
        ["VLIW instructions", plain.instructions, fast.instructions],
        ["operations executed", plain.ops_executed, fast.ops_executed],
        ["cycles", plain.cycles, fast.cycles],
    ]
    text = format_table(
        "Ablation [13]: MPEG2 8x8 texture pipeline (TM3270)",
        ["metric", "pack+ifir16", "super_dualimix"], rows)
    text += (f"\nspeedup {plain.cycles / fast.cycles:.2f}x, operations "
             f"{plain.ops_executed / fast.ops_executed:.2f}x fewer "
             "(paper [13]: 50% application gain; see EXPERIMENTS.md)")
    report("ablation_texture", text)
    assert plain.cycles / fast.cycles > 1.05
    assert fast.ops_executed < plain.ops_executed * 0.8


WIDTH, HEIGHT, MARGIN = 256, 48, 64
PREV = DATA_BASE + MARGIN
NEXT = PREV + WIDTH * HEIGHT + 2 * MARGIN
OUT = NEXT + WIDTH * HEIGHT + 2 * MARGIN


def _run_upconv(use_frac, prefetch):
    prev_pad = synthetic_frame(WIDTH * HEIGHT + 2 * MARGIN, 1, seed=91)
    next_pad = synthetic_frame(WIDTH * HEIGHT + 2 * MARGIN, 1, seed=92)
    memory = FlatMemory(1 << 18)
    memory.write_block(PREV - MARGIN, prev_pad)
    memory.write_block(NEXT - MARGIN, next_pad)
    motion = upconv.trajectory(2, 8)
    program = upconv.build_upconv(
        use_frac_loads=use_frac, setup_prefetch=prefetch,
        image_base=PREV - MARGIN,
        image_bytes=WIDTH * HEIGHT + 2 * MARGIN, width_hint=WIDTH)
    linked = compile_program(program, TM3270_CONFIG.target)
    result = run_kernel(
        linked, TM3270_CONFIG,
        args=args_for(PREV, NEXT, OUT, WIDTH, HEIGHT, motion),
        memory=memory)
    expected = upconv.reference_upconv(
        prev_pad, next_pad, MARGIN, WIDTH, HEIGHT, motion,
        half_pel_blend=not use_frac)
    assert memory.read_block(OUT, WIDTH * HEIGHT) == expected
    return result.stats


def test_ablation_upconversion(benchmark):
    """[14]: LD_FRAC8 + prefetching on temporal up-conversion."""
    def run_all():
        return (_run_upconv(False, False), _run_upconv(True, False),
                _run_upconv(True, True))

    plain, frac, frac_pf = run_once(benchmark, run_all)
    rows = [
        ["cycles", plain.cycles, frac.cycles, frac_pf.cycles],
        ["load accesses", plain.dcache.load_accesses,
         frac.dcache.load_accesses, frac_pf.dcache.load_accesses],
        ["dcache stalls", plain.dcache_stall_cycles,
         frac.dcache_stall_cycles, frac_pf.dcache_stall_cycles],
    ]
    text = format_table(
        "Ablation [14]: temporal up-conversion (TM3270, half-pel pan)",
        ["metric", "baseline", "+ld_frac8", "+prefetch"], rows)
    text += (f"\nnew ops {plain.cycles / frac.cycles:.2f}x, prefetch "
             f"{frac.cycles / frac_pf.cycles:.2f}x on top "
             "(paper [14]: 40% and >20%; see EXPERIMENTS.md)")
    report("ablation_upconv", text)
    assert plain.cycles / frac.cycles > 1.1
    assert frac.dcache.load_accesses < plain.dcache.load_accesses
    assert frac_pf.dcache_stall_cycles < frac.dcache_stall_cycles
    assert frac_pf.cycles < frac.cycles
