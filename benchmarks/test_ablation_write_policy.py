"""Ablation: allocate- vs fetch-on-write-miss (Section 4.1)."""

from conftest import report, run_once

from repro.eval.ablations import write_policy_ablation
from repro.eval.reporting import format_table


def test_ablation_write_policy(benchmark):
    comparison = run_once(benchmark, lambda: write_policy_ablation("memcpy"))
    fetch, allocate = comparison.stats_a, comparison.stats_b
    rows = [
        ["cycles", fetch.cycles, allocate.cycles],
        ["dcache stall cycles", fetch.dcache_stall_cycles,
         allocate.dcache_stall_cycles],
        ["bus refill bytes", fetch.biu.refill_bytes,
         allocate.biu.refill_bytes],
        ["bus total bytes", fetch.biu.total_bytes,
         allocate.biu.total_bytes],
    ]
    text = format_table(
        "Ablation: write-miss policy on memcpy (TM3270, 350 MHz)",
        ["metric", "fetch-on-write-miss", "allocate-on-write-miss"],
        rows)
    text += f"\nallocate speedup: {comparison.speedup:.2f}x"
    report("ablation_write_policy", text)

    # The allocate policy eliminates write-miss fetches entirely:
    # refill traffic halves (only the load side fetches).
    assert allocate.biu.refill_bytes < fetch.biu.refill_bytes * 0.6
    # And memcpy gets meaningfully faster.
    assert comparison.speedup > 1.2
