"""Figure 1 / Section 2.1: compressed VLIW encoding effectiveness."""

from conftest import report, run_once

from repro.eval.fig1 import UNCOMPRESSED_INSTRUCTION_BYTES, format_fig1, run_fig1


def test_fig1_encoding(benchmark):
    rows = run_once(benchmark, run_fig1)
    report("fig1_encoding", format_fig1(rows))
    assert rows, "no kernels encoded"
    for row in rows:
        # Decoder round-trips every kernel image.
        assert row.roundtrip_ok, row.kernel
        # Compression always beats the uncompressed 28-byte format.
        assert row.compressed_bytes < row.uncompressed_bytes
        # Average instruction well under the maximum encoding.
        assert row.bytes_per_instruction < UNCOMPRESSED_INSTRUCTION_BYTES / 2
    total = sum(row.compressed_bytes for row in rows)
    uncompressed = sum(row.uncompressed_bytes for row in rows)
    # Template compression reaches roughly a 3-4x code-size reduction
    # on this suite.
    assert total / uncompressed < 0.5
