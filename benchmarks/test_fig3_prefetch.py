"""Figure 3: region-based prefetching on 4x4 block processing."""

from conftest import report, run_once

from repro.eval.fig3 import format_fig3, run_fig3


def test_fig3_prefetch(benchmark):
    pairs = run_once(benchmark, run_fig3)
    report("fig3_prefetch", format_fig3(pairs))

    for without, with_pf in pairs:
        assert without.result_ok and with_pf.result_ok
        # Prefetching never slows the scan down.
        assert with_pf.cycles <= without.cycles
        # It always removes stall cycles.
        assert with_pf.dcache_stalls < without.dcache_stalls
        assert with_pf.prefetches_issued > 0

    # The paper's condition: with enough processing per row of blocks
    # the prefetch covers (nearly) all misses.  At the heaviest work
    # point, at least 75% of stall cycles disappear.
    heaviest = pairs[-1]
    removed = 1 - heaviest[1].dcache_stalls / heaviest[0].dcache_stalls
    assert removed > 0.75

    # With little compute the bus cannot keep up: coverage at work=0
    # is worse than at the heaviest point.
    lightest = pairs[0]
    removed_light = 1 - lightest[1].dcache_stalls / lightest[0].dcache_stalls
    assert removed_light <= removed
