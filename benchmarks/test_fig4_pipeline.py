"""Figure 4: pipeline partitioning — structure and derived numbers."""

from conftest import report, run_once

from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.core import pipeline
from repro.eval.reporting import format_table
from repro.isa.operations import spec


def build_fig4():
    classes = ["iadd", "imul", "fadd", "ld32", "ld_frac8",
               "super_dualimix", "st32d"]
    rows = []
    for name in classes:
        path = pipeline.stage_path(spec(name), TM3270_TARGET)
        rows.append([name, " ".join(path.stages), path.depth])
    text = format_table(
        "Figure 4: TM3270 pipeline stage occupancy by operation class",
        ["operation", "stages", "depth"], rows)
    text += "\n\n" + pipeline.describe(TM3270_TARGET)
    return rows, text


def test_fig4_pipeline(benchmark):
    rows, text = run_once(benchmark, build_fig4)
    report("fig4_pipeline", text)
    depths = {row[0]: row[2] for row in rows}
    assert depths["iadd"] == 7           # Table 1 minimum
    assert depths["ld_frac8"] == 12      # Table 1 maximum
    assert depths["ld32"] == 10          # X4 result + W
    assert pipeline.depth_range(TM3270_TARGET) == (7, 12)
    # Structural delay-slot derivation matches the scheduler targets.
    assert pipeline.jump_delay_slots(TM3270_TARGET) == 5
    assert pipeline.jump_delay_slots(TM3260_TARGET) == 3


def test_fig4_no_branch_prediction_needed(benchmark):
    """Section 3: taken jumps cost zero stall cycles (delay slots)."""
    from repro.asm.builder import ProgramBuilder
    from repro.asm.link import compile_program
    from repro.core.config import TM3270_CONFIG
    from repro.core.processor import run_kernel
    from repro.kernels.common import args_for

    def measure():
        builder = ProgramBuilder("branchy")
        (count,) = builder.params("count")
        end = builder.counted_loop(count, "body")
        builder.emit("iadd", srcs=(builder.zero, builder.one))
        end()
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        return run_kernel(linked, TM3270_CONFIG, args=args_for(200),
                          memory_size=1 << 14).stats

    stats = run_once(benchmark, measure)
    assert stats.jumps_taken >= 199
    # All cycles are issue cycles: control flow adds no stalls.
    assert stats.cycles == stats.instructions
