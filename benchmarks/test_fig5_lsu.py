"""Figure 5: load/store unit behaviour — dual stores, non-aligned
accesses, byte validity, and the cache write buffer."""

from conftest import report, run_once

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.asm.scheduler import schedule_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.eval.reporting import format_table
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory


def _dual_store_rows():
    """Two provably-disjoint stores co-issue in slots 4 and 5."""
    builder = ProgramBuilder("dualstore")
    (a, b) = builder.params("a", "b")
    value = builder.const32(0x11)
    builder.emit("st32d", srcs=(a, value), imm=0)
    builder.emit("st32d", srcs=(a, value), imm=4)
    program = builder.finish()
    scheduled = schedule_program(program, TM3270_CONFIG.target)
    best = 0
    for block in scheduled.blocks:
        for row in block.rows:
            stores = [slot for slot, op in row.items()
                      if op.spec.is_store]
            best = max(best, len(stores))
            for slot in stores:
                assert slot in (4, 5)
    return best


def _nonaligned_run(address_offset):
    builder = ProgramBuilder("nonaligned")
    (addr, out) = builder.params("addr", "out")
    value = builder.emit("ld32d", srcs=(addr,), imm=0)
    builder.emit("st32d", srcs=(out, value), imm=0)
    linked = compile_program(builder.finish(), TM3270_CONFIG.target)
    memory = FlatMemory(1 << 14)
    memory.write_block(0x1000, bytes(range(1, 200)))
    result = run_kernel(linked, TM3270_CONFIG,
                        args=args_for(0x1000 + address_offset, 0x2000),
                        memory=memory)
    expected = int.from_bytes(
        bytes(range(1, 200))[address_offset:address_offset + 4], "big")
    assert memory.load(0x2000, 4) == expected
    return result.stats


def build_fig5():
    rows = []
    dual = _dual_store_rows()
    rows.append(["dual stores co-issued (slots 4+5)", dual])
    aligned = _nonaligned_run(0)
    offset1 = _nonaligned_run(1)
    crossing = _nonaligned_run(126)  # spans a 128-byte line boundary
    rows.append(["aligned load split accesses",
                 aligned.dcache.split_accesses])
    rows.append(["non-aligned (within line) splits",
                 offset1.dcache.split_accesses])
    rows.append(["non-aligned line-crossing splits",
                 crossing.dcache.split_accesses])
    rows.append(["line-crossing load misses",
                 crossing.dcache.load_misses])
    text = format_table(
        "Figure 5: load/store unit behaviours",
        ["behaviour", "measured"], rows)
    return dual, aligned, offset1, crossing, text


def test_fig5_lsu(benchmark):
    dual, aligned, offset1, crossing, text = run_once(benchmark, build_fig5)
    report("fig5_lsu", text)
    # Two simultaneous stores are supported (dual tag copies).
    assert dual == 2
    # Penalty-free non-aligned access within a line: no split.
    assert aligned.dcache.split_accesses == 0
    assert offset1.dcache.split_accesses == 0
    # A line-crossing access splits and may miss twice (Section 4.2).
    assert crossing.dcache.split_accesses == 1
    assert crossing.dcache.load_misses == 2
    # Store hits are absorbed by the cache write buffer: no stalls
    # beyond the (allocate-policy-free) misses.
    assert aligned.dcache.cwb_writes >= 1
