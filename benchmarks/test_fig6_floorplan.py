"""Figure 6: floorplan rendering from the parametric area model."""

from conftest import report, run_once

from repro.core.area import area_breakdown
from repro.core.config import TM3270_CONFIG
from repro.eval.fig6 import render_floorplan


def test_fig6_floorplan(benchmark):
    text = run_once(benchmark, render_floorplan)
    report("fig6_floorplan", text)
    breakdown = area_breakdown(TM3270_CONFIG)
    # Every module appears with its Table 4 area.
    for label, area in (("LS", breakdown.load_store),
                        ("IFU", breakdown.ifu),
                        ("Execute", breakdown.execute),
                        ("Regfile", breakdown.regfile)):
        assert f"{area:.2f} mm2" in text, label
    assert f"{breakdown.total:.2f} mm2" in text
    # The LS module (D$ SRAMs included) is the largest tile: its
    # area line comes first in the stack, as in the paper's figure.
    assert text.index("LS (") < text.index("IFU (")
