"""Figure 7: relative performance of configurations A-D.

The headline experiment: all eleven Table 5 kernels, compiled from the
same (TM3260-optimized, baseline-operation) sources for each target,
executed on configurations A through D, verified, and reported
relative to A.  The paper's average TM3270/TM3260 gain is 2.29.
"""

from conftest import report, run_once

from repro.eval.fig7 import average_gain, format_fig7, run_fig7


def test_fig7_performance(benchmark):
    rows = run_once(benchmark, run_fig7)
    text = format_fig7(rows)
    arithmetic = sum(row.relative("D") for row in rows) / len(rows)
    text += (f"\narithmetic mean D/A: {arithmetic:.2f} "
             "(paper reports 2.29)")
    report("fig7_performance", text)

    by_kernel = {row.kernel: row for row in rows}
    assert len(rows) == 11

    # Shape assertions from Section 6:
    # 1. The TM3270 (D) wins on every kernel.
    for row in rows:
        assert row.relative("D") > 1.0, row.kernel
    # 2. D is never slower than C (bigger cache, same core+frequency).
    for row in rows:
        assert row.relative("D") >= row.relative("C") * 0.98, row.kernel
    # 3. memcpy shows a large A->B gain (write-miss policy).
    assert by_kernel["memcpy"].relative("B") > 1.4
    # 4. The MPEG2 anomaly: A outperforms B on the disruptive stream
    #    (128-byte lines at 16 KB increase capacity misses).
    assert by_kernel["mpeg2_a"].relative("B") < 1.0
    # 5. mpeg2 gains the most from the big cache: D/C ratio highest
    #    among all kernels for one of the mpeg2 streams.
    dc_ratios = {row.kernel: row.relative("D") / row.relative("C")
                 for row in rows}
    best = max(dc_ratios, key=dc_ratios.get)
    assert best.startswith("mpeg2"), dc_ratios
    # 6. Average gain is well above 1.5x (paper: 2.29).
    assert arithmetic > 1.5
    assert average_gain(rows, "D") > 1.4
