"""Simulator throughput: interp vs plan vs trace execution tiers.

Unlike every other benchmark in this directory, the measured quantity
is *simulator* performance — simulated VLIW instructions per wall
second — not simulated-processor cycles.  Every case is timed on all
three engines (the reference interpreter, the pre-decoded plan path,
and the trace-compiled tier); records land in
``benchmarks/results/BENCH_sim_speed.json`` (schema ``tm3270.bench/1``
with a ``sim_speed`` section carrying per-engine medians);
``scripts/bench_compare.py`` gates each engine's throughput
independently between two such files.
"""

import pathlib

from conftest import report, run_once

from repro.eval.perf import format_measurement, measure_case, perf_cases
from repro.eval.perf import perf_record
from repro.obs.export import write_bench

RESULTS = pathlib.Path(__file__).parent / "results"


def _measure_all():
    return [measure_case(case, repeats=2) for case in perf_cases()]


def test_sim_speed(benchmark):
    measurements = run_once(benchmark, _measure_all)

    lines = [format_measurement(m) for m in measurements]
    report("sim_speed", "\n".join(lines))
    write_bench(RESULTS / "BENCH_sim_speed.json",
                [perf_record(m) for m in measurements])

    by_name = {m.case_name: m for m in measurements}

    # Every case runs both paths to *identical* stats (measure_case
    # asserts this); the fast path must never be slower.
    for measurement in measurements:
        assert measurement.speedup > 1.0, measurement.case_name

    # The PR's headline claim: >= 2x interpreter throughput on the
    # motion-estimation and CABAC kernels (allow a little slack under
    # noisy CI for the marginal cases).
    assert by_name["me_frac_plain"].speedup >= 2.0
    assert by_name["cabac_plain"].speedup >= 2.0
    assert by_name["cabac_super"].speedup >= 1.8
    assert by_name["me_frac_ld8"].speedup >= 1.8

    # The trace tier's claim: with statically scheduled commits and
    # batched SIMD lane templates, compiled hot regions beat the plan
    # interpreter well past the old 1.5x floor on the Table 5 loop
    # kernels (measured ~2.6x/~1.8x/~4.6x; the slack absorbs CI noise
    # and first-repeat compilation).  Short programs (me_frac_ld8)
    # amortize less and are deliberately not gated.
    assert by_name["memcpy"].trace_speedup_vs_plan >= 2.2
    assert by_name["mpeg2_b"].trace_speedup_vs_plan >= 1.7
    assert by_name["cabac_plain"].trace_speedup_vs_plan >= 1.9

    # Absolute sanity: the fast path simulates at a usable rate.
    for name in ("me_frac_plain", "cabac_plain"):
        assert by_name[name].instructions_per_sec > 50_000
