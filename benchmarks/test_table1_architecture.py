"""Table 1: TM3270 architecture summary, regenerated from the model."""

from conftest import report, run_once

from repro.core.config import TM3270_CONFIG
from repro.eval.reporting import format_table


def build_table1():
    summary = TM3270_CONFIG.architecture_summary()
    rows = [[feature, value] for feature, value in summary.items()]
    return summary, format_table(
        "Table 1: TM3270 architecture",
        ["Architectural feature", "Quantity"], rows)


def test_table1_architecture(benchmark):
    summary, text = run_once(benchmark, build_table1)
    report("table1_architecture", text)
    assert "5 issue slot VLIW" in summary["Architecture"]
    assert summary["Register-file"] == "Unified, 128 32-bit registers"
    assert summary["Functional units"] == "31"
    assert summary["Pipeline depth"] == "7-12 stages"
    assert "64 Kbyte" in summary["Instruction cache"]
    assert "8 way set-associative" in summary["Instruction cache"]
    assert "128 Kbyte" in summary["Data cache"]
    assert "4 way set-associative" in summary["Data cache"]
    assert "allocate-on-write-miss" in summary["Data cache"]
