"""Table 2: the new operations, exercised through compiled kernels.

Regenerates a summary of each new operation's definition and validates
the worked examples of Table 2 through the operation semantics (the
kernels' end-to-end checks live in tests/; this bench documents the
operation inventory and measures raw semantic throughput).
"""

from conftest import report, run_once

from repro.eval.reporting import format_table
from repro.isa import REGISTRY, simd


class _Mem:
    data = bytes(range(1, 64))
    guard_value = 1

    def load(self, address, nbytes):
        return int.from_bytes(self.data[address:address + nbytes], "big")

    def store(self, address, value, nbytes):
        raise AssertionError("Table 2 ops do not store")


def build_table2():
    rows = []
    for spec in REGISTRY.new_operations():
        slots = " and ".join(
            str(slot) for slot in
            ((spec.slots[0], spec.slots[0] + 1) if spec.two_slot
             else spec.slots))
        rows.append([spec.name.upper(), slots, spec.latency,
                     spec.nsrc, spec.ndst, spec.description[:48]])
    return rows, format_table(
        "Table 2: TM3270 new operations",
        ["operation", "issue slot(s)", "latency", "srcs", "dsts",
         "description"], rows)


def test_table2_operations(benchmark):
    rows, text = run_once(benchmark, build_table2)
    report("table2_operations", text)
    names = {row[0] for row in rows}
    assert {"SUPER_DUALIMIX", "SUPER_LD32R", "LD_FRAC8",
            "SUPER_CABAC_CTX", "SUPER_CABAC_STR"} <= names

    mem = _Mem()
    # SUPER_LD32R: two consecutive big-endian words at rsrc3+rsrc4.
    d1, d2 = REGISTRY.semantic("super_ld32r")(mem, (4, 4), None)
    assert d1 == 0x090A0B0C and d2 == 0x0D0E0F10
    # LD_FRAC8 at frac=0 is a plain 4-byte load.
    (word,) = REGISTRY.semantic("ld_frac8")(mem, (0, 0), None)
    assert word == 0x01020304
    # SUPER_DUALIMIX per Table 2.
    d1, d2 = REGISTRY.semantic("super_dualimix")(
        mem, (simd.pack16(2, 3), simd.pack16(5, 7),
              simd.pack16(11, 13), simd.pack16(17, 19)), None)
    assert simd.s32(d1) == 2 * 5 + 11 * 17
    assert simd.s32(d2) == 3 * 7 + 13 * 19


def test_table2_semantic_throughput(benchmark):
    """Micro-benchmark: raw LD_FRAC8 semantic evaluations."""
    mem = _Mem()
    semantic = REGISTRY.semantic("ld_frac8")

    def run_many():
        for frac in range(16):
            for base in range(32):
                semantic(mem, (base, frac), None)
        return True

    assert benchmark(run_many)
