"""Table 3: CABAC decoding with/without the new operations."""

from conftest import report, run_once

from repro.eval.table3 import PAPER_TABLE3, format_table3, run_table3


def test_table3_cabac(benchmark):
    rows = run_once(benchmark, run_table3)
    report("table3_cabac", format_table3(rows))

    by_type = {row.field_type: row for row in rows}
    assert set(by_type) == {"I", "P", "B"}

    # Field-size ratios follow the paper: I > B > P bits/field.
    assert by_type["I"].bits_per_field > by_type["B"].bits_per_field
    assert by_type["B"].bits_per_field > by_type["P"].bits_per_field

    # Instructions/bit climb from I through P to B, both decoders
    # (Table 3's ordering).
    assert by_type["I"].plain_instr_per_bit < \
        by_type["P"].plain_instr_per_bit < by_type["B"].plain_instr_per_bit
    assert by_type["I"].super_instr_per_bit < \
        by_type["P"].super_instr_per_bit < by_type["B"].super_instr_per_bit

    # The new operations speed decoding up by 1.5-1.7x in the paper;
    # accept a slightly wider modeling band.
    for row in rows:
        assert 1.3 <= row.speedup <= 2.0, row

    # The optimized decoder always beats the plain one.
    for row in rows:
        assert row.super_instructions < row.plain_instructions
