"""Table 4 / Figure 6: area and power breakdown."""

import pytest
from conftest import report, run_once

from repro.eval.table4 import PAPER_TABLE4, format_table4, run_table4


def test_table4_area_power(benchmark):
    result = run_once(benchmark, run_table4)
    report("table4_area_power", format_table4(result))

    area_rows = dict(result.area.as_rows())
    power_rows = dict(result.power_12v.as_rows())
    for module, (paper_area, paper_power) in PAPER_TABLE4.items():
        if module == "Total":
            continue
        assert area_rows[module] == pytest.approx(paper_area, abs=0.03), \
            module
        assert power_rows[module] == pytest.approx(
            paper_power, rel=0.05), module

    # Total area: 8.08 mm^2 (Section 5.1).
    assert result.area.total == pytest.approx(8.08, abs=0.05)
    # SRAMs roughly half the area.
    sram = (64 + 128) * (4.04 / 192.0)
    assert sram / result.area.total == pytest.approx(0.5, abs=0.03)
    # Voltage scaling: quadratic to ~0.44 mW/MHz at 0.8 V (the paper
    # derives 0.415 from its 0.935 total; its own rows sum to 0.999).
    assert result.power_08v.total == pytest.approx(
        result.power_12v.total * (0.8 / 1.2) ** 2)
    # MP3 decode at 8 MHz, 0.8 V lands in the paper's ~3.3 mW regime.
    assert 2.5 < result.mp3_milliwatts_08v < 4.5
    # Calibration workload quality: CPI close to 1.0 (Section 5.2).
    assert result.cpi < 1.1
