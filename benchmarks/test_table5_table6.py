"""Tables 5 and 6: the kernel suite and the TM3260/TM3270 contrast."""

from conftest import report, run_once

from repro.asm.link import compile_program
from repro.core.config import TM3260_CONFIG, TM3270_CONFIG, \
    table6_characteristics
from repro.eval.reporting import format_table
from repro.kernels.registry import TABLE5_KERNELS


def build_table5():
    rows = []
    for case in TABLE5_KERNELS:
        linked_70 = compile_program(case.build(), TM3270_CONFIG.target)
        linked_60 = compile_program(case.build(), TM3260_CONFIG.target)
        rows.append([case.name, linked_70.operation_count,
                     linked_70.instruction_count,
                     linked_60.instruction_count,
                     case.description[:52]])
    return rows, format_table(
        "Table 5: evaluation kernels (static code, both targets)",
        ["kernel", "ops", "TM3270 instrs", "TM3260 instrs",
         "description"], rows)


def test_table5_kernels(benchmark):
    rows, text = run_once(benchmark, build_table5)
    report("table5_kernels", text)
    assert len(rows) == 11
    for _name, ops, instr70, instr60, _desc in rows:
        assert ops > 0
        # Deeper pipeline => the TM3270 schedule is never shorter.
        assert instr70 >= instr60


def test_table6_characteristics(benchmark):
    rows = run_once(benchmark, table6_characteristics)
    text = format_table("Table 6: TM3260 and TM3270 characteristics",
                        ["Feature", "TM3260", "TM3270"], rows)
    report("table6_configs", text)
    as_dict = {feature: (a, d) for feature, a, d in rows}
    assert as_dict["Operating frequency"] == ("240 MHz", "350 MHz")
    assert "64-byte lines" in as_dict["Instruction cache"][0]
    assert "128-byte lines" in as_dict["Instruction cache"][1]
    assert "3 jump delay slots" in as_dict["Instruction cache"][0]
    assert "5 jump delay slots" in as_dict["Instruction cache"][1]
    assert "16 Kbyte" in as_dict["Data cache"][0]
    assert "128 Kbyte" in as_dict["Data cache"][1]
    assert "fetch-on-write-miss" in as_dict["Data cache"][0]
    assert "allocate-on-write-miss" in as_dict["Data cache"][1]
    assert "2 loads / VLIW instr." in as_dict["Data cache"][0]
    assert "1 loads / VLIW instr." in as_dict["Data cache"][1]
