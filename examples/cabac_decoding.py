#!/usr/bin/env python3
"""CABAC decoding with and without the TM3270's new operations.

Recreates the Table 3 experiment interactively: encode a synthetic
H.264-style bitstream with the library's CABAC encoder, then decode it
on the simulated TM3270 twice — once with Figure 2 implemented in
baseline operations, once with SUPER_CABAC_CTX / SUPER_CABAC_STR —
and compare VLIW instructions per coded bit.

Run:  python examples/cabac_decoding.py
"""

from repro.asm import compile_program
from repro.core import TM3270_CONFIG, run_kernel
from repro.kernels import cabac_kernel
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.cabac_streams import generate_field

STREAM, OUT = DATA_BASE, DATA_BASE + 0x8000
CTX, TABLES = DATA_BASE + 0xA000, DATA_BASE + 0xB000


def decode_on_tm3270(build_kernel, field):
    """Decode ``field`` with one of the two kernels; verify and time."""
    program = compile_program(
        build_kernel(num_contexts=field.num_contexts),
        TM3270_CONFIG.target)
    memory = FlatMemory(1 << 18)
    memory.write_block(STREAM, field.data)
    memory.write_block(TABLES, cabac_kernel.prepare_tables())
    result = run_kernel(
        program, TM3270_CONFIG,
        args=args_for(STREAM, OUT, CTX, TABLES, field.num_symbols),
        memory=memory)
    decoded = memory.read_block(OUT, field.num_symbols)
    assert decoded == bytes(field.symbols), "decode mismatch!"
    return result.stats


def main():
    print("CABAC decoding on the TM3270 (Table 3 experiment)\n")
    header = (f"{'field':>5} {'bits':>7} {'symbols':>8} "
              f"{'plain i/bit':>12} {'super i/bit':>12} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for field_type in ("I", "P", "B"):
        field = generate_field(field_type, scale=0.01)
        plain = decode_on_tm3270(cabac_kernel.build_cabac_plain, field)
        fast = decode_on_tm3270(cabac_kernel.build_cabac_super, field)
        print(f"{field_type:>5} {field.num_bits:>7} "
              f"{field.num_symbols:>8} "
              f"{plain.instructions / field.num_bits:>12.1f} "
              f"{fast.instructions / field.num_bits:>12.1f} "
              f"{plain.instructions / fast.instructions:>8.2f}")
    print("\nPaper (Table 3): speedups of 1.7 (I), 1.6 (P), 1.5 (B);")
    print("both decoders produce bit-exact output, verified against")
    print("the encoder's symbol stream.")


if __name__ == "__main__":
    main()
