#!/usr/bin/env python3
"""Design-space exploration: what did each TM3270 choice buy?

Uses the configuration system to morph the TM3260 into the TM3270 one
design decision at a time — frequency, write-miss policy, line size,
cache capacity — and measures the MPEG2 decoder kernel at each step,
plus area and power of the endpoints.  This is the Figure 7 / Table 4
machinery exposed as an interactive what-if tool.

Each step is an independent simulation, so the sweep is emitted as
self-describing jobs and sharded by the parallel evaluation engine
(:mod:`repro.eval.parallel`); the printed table is reassembled from
the merged records in step order, so the output is identical for any
``--jobs`` value.

Run:  python examples/design_space.py [--jobs N]
"""

import argparse

from repro.core import TM3260_CONFIG, TM3270_CONFIG
from repro.core.area import area_breakdown
from repro.core.power import PowerModel
from repro.eval.jobs import Job, JobOutput
from repro.eval.mp3 import run_mp3_proxy
from repro.eval.parallel import run_jobs
from repro.eval.runner import run_case
from repro.kernels.registry import kernel_by_name
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import WriteMissPolicy

KERNEL = "mpeg2_a"


def design_steps():
    """The morph sequence: (label, config), each layering one decision."""
    steps = [("TM3260 baseline (config A)", TM3260_CONFIG)]
    step = TM3260_CONFIG
    step = step.with_overrides(
        name="+ TM3270 core", target=TM3270_CONFIG.target,
        dcache=CacheGeometry(16 * 1024, 64, 8))
    steps.append(("+ TM3270 core (deeper pipeline, 1 load/instr)", step))
    step = step.with_overrides(
        name="+ allocate-on-write",
        write_miss_policy=WriteMissPolicy.ALLOCATE)
    steps.append(("+ allocate-on-write-miss", step))
    step = step.with_overrides(
        name="+ 128B lines", dcache=CacheGeometry(16 * 1024, 128, 4))
    steps.append(("+ 128-byte lines, 4-way", step))
    step = step.with_overrides(name="+ 350 MHz", freq_mhz=350.0)
    steps.append(("+ 350 MHz", step))
    step = step.with_overrides(
        name="TM3270 (config D)",
        dcache=CacheGeometry(128 * 1024, 128, 4))
    steps.append(("+ 128 KB data cache  (= TM3270)", step))
    return steps


def run_step_job(index: int) -> JobOutput:
    """Job runner: measure one morph step (configs rebuilt by index so
    the job stays a picklable, JSON-parameterized description)."""
    from repro.obs.export import bench_record

    label, config = design_steps()[index]
    stats = run_case(kernel_by_name(KERNEL), config, verify=False,
                     bench=False)
    record = bench_record(stats)
    record["step_index"] = index
    return JobOutput(records=[record], summaries=[label])


def step_jobs() -> list[Job]:
    return [
        Job(job_id=f"design_space/{index}", kind="design_space",
            runner="design_space:run_step_job",
            params={"index": index}, description=label)
        for index, (label, _) in enumerate(design_steps())
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: os.cpu_count(); "
             "1 = in-process)")
    options = parser.parse_args()

    print("Morphing the TM3260 into the TM3270, one decision at a "
          f"time\nworkload: {KERNEL} (highly disruptive motion field)\n")
    merged = run_jobs(step_jobs(), workers=options.jobs)
    if not merged.ok:
        for failure in merged.failures:
            print(f"[{failure.status}] {failure.job.job_id}")
        raise SystemExit(1)

    baseline_seconds = None
    print(f"{'configuration':<42} {'cycles':>9} {'CPI':>6} "
          f"{'us':>8} {'vs A':>6}")
    print("-" * 76)
    for result in merged.results:
        record = result.output.records[0]
        label = result.output.summaries[0]
        if baseline_seconds is None:
            baseline_seconds = record["seconds"]
        print(f"{label:<42} {record['cycles']:>9} "
              f"{record['cpi']:>6.2f} "
              f"{1e6 * record['seconds']:>8.1f} "
              f"{baseline_seconds / record['seconds']:>6.2f}")

    print("\nEndpoint silicon cost (area model, 90 nm):")
    for config in (TM3260_CONFIG, TM3270_CONFIG):
        area = area_breakdown(config)
        print(f"  {config.name:<8} {area.total:>6.2f} mm2 "
              f"(LS {area.load_store:.2f}, IFU {area.ifu:.2f}, "
              f"Execute {area.execute:.2f})")

    print("\nPower at the endpoints (MP3 proxy, activity model):")
    stats = run_mp3_proxy(TM3270_CONFIG)
    model = PowerModel()
    for voltage in (1.2, 0.8):
        breakdown = model.breakdown(stats, voltage=voltage)
        print(f"  TM3270 @ {voltage:.1f} V: "
              f"{breakdown.total:.3f} mW/MHz "
              f"-> {breakdown.milliwatts(8.0):.2f} mW for MP3 at 8 MHz")


if __name__ == "__main__":
    main()
