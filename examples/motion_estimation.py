#!/usr/bin/env python3
"""Fractional-position motion estimation with collapsed loads.

The paper's LD_FRAC8 operation fuses a 5-byte load with a two-taps
interpolation filter (Section 2.2.2), the inner operation of motion
estimation at fractional pixel positions.  This example searches the
best fractional offset for an 8x8 block both ways and reports the
speedup ([12] reports more than 2x for the fully optimized kernel).

Run:  python examples/motion_estimation.py
"""

from repro.asm import compile_program
from repro.core import TM3270_CONFIG, run_kernel
from repro.kernels import motion
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.video import synthetic_frame

WIDTH = 64
CUR, REF, RESULT = DATA_BASE, DATA_BASE + 0x800, DATA_BASE + 0x1000


def search(build_kernel, frame):
    linked = compile_program(build_kernel(), TM3270_CONFIG.target)
    memory = FlatMemory(1 << 15)
    memory.write_block(CUR, frame[:8 * WIDTH])
    memory.write_block(REF, frame[8 * WIDTH:16 * WIDTH])
    result = run_kernel(linked, TM3270_CONFIG,
                        args=args_for(CUR, REF, WIDTH, RESULT),
                        memory=memory)
    return memory.load(RESULT, 4), result.stats


def main():
    frame = synthetic_frame(WIDTH, 16, seed=2026)
    expected = motion.reference_best_sad(
        frame[:8 * WIDTH], frame[8 * WIDTH:], WIDTH)

    print("Fractional motion estimation on the TM3270\n")
    print(f"searching {len(motion.FRACTIONS)} fractional positions "
          f"(x/16 pel) of an 8x8 block\n")

    sad_plain, plain = search(motion.build_me_frac_plain, frame)
    sad_fast, fast = search(motion.build_me_frac_ld8, frame)
    assert sad_plain == sad_fast == expected, "SAD mismatch!"

    print(f"best SAD (both kernels, verified): {sad_plain}\n")
    rows = [
        ("VLIW instructions", plain.instructions, fast.instructions),
        ("operations executed", plain.ops_executed, fast.ops_executed),
        ("cycles", plain.cycles, fast.cycles),
        ("time (us @ 350 MHz)", f"{1e6 * plain.seconds:.1f}",
         f"{1e6 * fast.seconds:.1f}"),
    ]
    print(f"{'metric':<22} {'explicit interp':>16} {'ld_frac8':>10}")
    print("-" * 50)
    for metric, a, b in rows:
        print(f"{metric:<22} {a:>16} {b:>10}")
    print(f"\nspeedup: {plain.cycles / fast.cycles:.2f}x "
          "(paper [12]: > 2x)")
    print("\nWhy: one LD_FRAC8 replaces two loads, ten byte extracts,")
    print("twenty multiply/add/shift operations and three packs —")
    print("and frees the registers they would have occupied.")


if __name__ == "__main__":
    main()
