#!/usr/bin/env python3
"""Power management: measure a workload, scale voltage and frequency.

Walks the Section 5.2 power story end to end:

1. run the MP3-proxy decoder on the TM3270 model and measure its
   cycles and per-module power activity;
2. reproduce the Table 4 power breakdown at 1.2 V and the quadratic
   scaling to 0.8 V;
3. let the DVS governor pick the minimal operating point for a
   real-time audio deadline and report the energy saving — the
   paper's "dynamic voltage scaling based on computational
   requirements".

Run:  python examples/power_management.py
"""

from repro.core import TM3270_CONFIG
from repro.core.dvs import DvsGovernor, energy_saving
from repro.core.power import PowerModel
from repro.core.profiling import utilization
from repro.eval.mp3 import DEFAULT_FRAMES, run_mp3_proxy


def main():
    print("Measuring the MP3-proxy workload on the TM3270...\n")
    stats = run_mp3_proxy(TM3270_CONFIG, nframes=DEFAULT_FRAMES)
    report = utilization(stats)
    print(f"  {stats.instructions} VLIW instructions, "
          f"{stats.cycles} cycles")
    print(f"  OPI {report.opi:.2f}, CPI {report.cpi:.2f}, "
          f"issue rate {report.issue_rate:.2f} ops/cycle\n")

    model = PowerModel()
    print("Per-module power (mW/MHz), Table 4 reproduction:")
    for voltage in (1.2, 0.8):
        breakdown = model.breakdown(stats, voltage=voltage)
        rows = "  ".join(f"{module}={value:.3f}"
                         for module, value in breakdown.as_rows())
        print(f"  @{voltage:.1f} V: {rows}")
    print()

    # The paper: MP3 decoding "is performed in approximately 8 MHz";
    # our proxy measures cycles per frame directly.
    governor = DvsGovernor(margin=0.05)
    cycles_per_frame = stats.cycles // DEFAULT_FRAMES
    for fps, label in ((38.28, "44.1 kHz granule rate"),
                       (500.0, "12x faster-than-real-time rip")):
        try:
            point = governor.select(cycles_per_frame, fps)
        except ValueError as error:
            print(f"  {label}: {error}")
            continue
        busy_mhz = cycles_per_frame * fps / 1e6
        milliwatts = (model.breakdown(stats, voltage=point.voltage)
                      .milliwatts(busy_mhz))
        print(f"  {label} ({fps:g} frames/s):")
        print(f"    effective load     : {busy_mhz:.1f} MHz")
        print(f"    operating point    : {point.freq_mhz:.0f} MHz "
              f"@ {point.voltage:.2f} V "
              f"(busy {100 * point.utilization:.1f}% of each period)")
        print(f"    dynamic power      : {milliwatts:.2f} mW")
        print(f"    energy saving      : "
              f"{100 * energy_saving(point):.0f}% per frame vs 1.2 V\n")

    print("The fully static design + asynchronous BIU let frequency")
    print("change on the fly (Section 5.2); energy per frame falls")
    print("with the square of the voltage.")


if __name__ == "__main__":
    main()
