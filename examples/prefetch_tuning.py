#!/usr/bin/env python3
"""Tuning region-based prefetching (Figure 3).

Walks the paper's example — an image processed at 4x4-block
granularity — through a sweep of ``PF0_STRIDE`` values and per-block
compute loads, showing when the prefetcher hides all memory latency:
"if the time to process a row of blocks exceeds the time to prefetch
the lower row of blocks, the processor will not incur any stall
cycles due to data cache misses."

Run:  python examples/prefetch_tuning.py
"""

from repro.asm import compile_program
from repro.core import TM3270_CONFIG
from repro.core.processor import Processor
from repro.kernels import blockscan
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.mem.prefetch import OFFSET_END, OFFSET_START, OFFSET_STRIDE
from repro.workloads.video import synthetic_frame

IMAGE = 0x0004_0000
WIDTH, HEIGHT = 256, 64


def run_scan(work, stride):
    """One block scan; returns (cycles, dcache stalls)."""
    program = compile_program(
        blockscan.build_blockscan(IMAGE, WIDTH, HEIGHT, work=work,
                                  setup_prefetch=False),
        TM3270_CONFIG.target)
    memory = FlatMemory(1 << 19)
    memory.write_block(IMAGE, synthetic_frame(WIDTH, HEIGHT, seed=1))
    processor = Processor(TM3270_CONFIG, memory=memory)
    if stride:
        processor.prefetcher.mmio_store(OFFSET_START, IMAGE)
        processor.prefetcher.mmio_store(
            OFFSET_END, IMAGE + WIDTH * HEIGHT)
        processor.prefetcher.mmio_store(OFFSET_STRIDE, stride)
    stats = processor.run(program, args=args_for(DATA_BASE)).stats
    return stats.cycles, stats.dcache_stall_cycles


def main():
    print(f"4x4 block scan over a {WIDTH}x{HEIGHT} image "
          "(TM3270, region prefetch)\n")

    print("1) Stride sweep at moderate per-block compute (work=12):")
    print(f"{'stride':>10} {'cycles':>9} {'stalls':>8}   note")
    figure3_stride = WIDTH * 4
    for stride, note in [
        (0, "prefetch off"),
        (128, "next sequential line"),
        (WIDTH, "one image row"),
        (figure3_stride, "width x block height  <- Figure 3"),
        (WIDTH * 8, "two block rows ahead"),
    ]:
        cycles, stalls = run_scan(12, stride)
        print(f"{stride:>10} {cycles:>9} {stalls:>8}   {note}")

    print("\n2) Compute sweep at the Figure 3 stride "
          "(more work per block -> more time to prefetch):")
    print(f"{'work/blk':>9} {'stalls off':>11} {'stalls on':>10} "
          f"{'removed':>8}")
    for work in (0, 4, 8, 16, 24):
        _, stalls_off = run_scan(work, 0)
        _, stalls_on = run_scan(work, figure3_stride)
        removed = 1 - stalls_on / max(stalls_off, 1)
        print(f"{work:>9} {stalls_off:>11} {stalls_on:>10} "
              f"{100 * removed:>7.0f}%")

    print("\nThe stride equal to image-width x block-height walks the")
    print("row of blocks *below* the one being processed into the")
    print("cache — once compute per row exceeds the prefetch time,")
    print("stall cycles vanish, exactly as Section 2.3 describes.")


if __name__ == "__main__":
    main()
