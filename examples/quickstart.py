#!/usr/bin/env python3
"""Quickstart: write a kernel, compile it for two TriMedia targets,
run it on the cycle-level TM3270 model, and read the results.

The flow below is the library's core loop:

1. build a kernel at the virtual-register level (ProgramBuilder);
2. compile it for a target — the scheduler packs operations into VLIW
   instructions under that target's slot/latency/delay-slot rules;
3. run it on a processor configuration (caches, SDRAM, prefetcher);
4. inspect cycles, CPI/OPI, stall breakdown, and memory contents.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace trace_quickstart.json
                                    # then load in chrome://tracing
      python examples/quickstart.py --profile

With ``--trace`` the TM3270 run captures the observability event
stream (pipeline stages, cache hits/misses, prefetch activity) and
writes it as Chrome ``trace_event`` JSON.  ``--profile`` wraps the
runs in cProfile and prints the hottest simulator functions — handy
when hacking on the fast path (see DESIGN.md section 8).
"""

import argparse
import cProfile
import pstats

from repro.asm import ProgramBuilder, compile_program
from repro.core import TM3260_CONFIG, TM3270_CONFIG, run_kernel
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory
from repro.obs import EventBus, write_chrome_trace


def build_saxpy():
    """y[i] = clip8(a * x[i] + y[i]) over byte arrays, 4 px per word.

    Params: (x_ptr, y_ptr, nwords, a).
    """
    builder = ProgramBuilder("saxpy8")
    x_ptr, y_ptr, nwords, scale = builder.params("x", "y", "nwords", "a")
    end_loop = builder.counted_loop(nwords, "loop")
    x_word = builder.emit("ld32d", srcs=(x_ptr,), imm=0)
    y_word = builder.emit("ld32d", srcs=(y_ptr,), imm=0)
    # Per-byte multiply (keep MSBs) then saturating quad add.
    scaled = builder.emit("quadumulmsb", srcs=(x_word, scale))
    mixed = builder.emit("dspuquadaddui", srcs=(y_word, scaled))
    builder.emit("st32d", srcs=(y_ptr, mixed), imm=0)
    builder.emit_into(x_ptr, "iaddi", srcs=(x_ptr,), imm=4)
    builder.emit_into(y_ptr, "iaddi", srcs=(y_ptr,), imm=4)
    end_loop()
    return builder.finish()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the TM3270 run "
             "(open in chrome://tracing or ui.perfetto.dev)")
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest simulator "
             "functions (cumulative time, top 30)")
    options = parser.parse_args()

    if options.profile:
        profile = cProfile.Profile()
        profile.enable()
        try:
            run_demo(options)
        finally:
            profile.disable()
            stats = pstats.Stats(profile)
            stats.sort_stats("cumulative").print_stats(30)
    else:
        run_demo(options)


def run_demo(options):
    program = build_saxpy()
    x_base, y_base, nwords = 0x1000, 0x2000, 256

    print("SAXPY-style byte kernel on two TriMedia generations\n")
    for config in (TM3260_CONFIG, TM3270_CONFIG):
        # Re-compilation per target: the TriMedia family is source-,
        # not binary-, compatible (Section 2 of the paper).
        linked = compile_program(program, config.target)

        memory = FlatMemory(1 << 16)
        memory.write_block(x_base, bytes(range(256)) * 4)
        memory.write_block(y_base, bytes([10] * 1024))

        bus = None
        if options.trace and config is TM3270_CONFIG:
            bus = EventBus(stage_detail=True)

        result = run_kernel(
            linked, config,
            args=args_for(x_base, y_base, nwords, 0x80808080),
            memory=memory, obs=bus)

        stats = result.stats
        print(f"{config.name}:")
        print(f"  code size        : {linked.nbytes} bytes "
              f"({linked.instruction_count} VLIW instructions)")
        print(f"  cycles           : {stats.cycles} "
              f"(CPI {stats.cpi:.2f}, OPI {stats.opi:.2f})")
        print(f"  dcache stalls    : {stats.dcache_stall_cycles}")
        print(f"  time @ {config.freq_mhz:.0f} MHz  : "
              f"{1e6 * stats.seconds:.1f} us")
        sample = memory.read_block(y_base, 8)
        print(f"  y[0..8]          : {list(sample)}")
        if bus is not None:
            write_chrome_trace(options.trace, bus,
                               freq_mhz=config.freq_mhz)
            print(f"  trace            : {len(bus)} events "
                  f"-> {options.trace}")
        print()


if __name__ == "__main__":
    main()
