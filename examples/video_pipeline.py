#!/usr/bin/env python3
"""A three-stage video pipeline on one simulated TM3270.

Chains three of the paper's workloads on a single processor instance —
the caches stay warm between stages, as in a real frame pipeline:

1. **decode** — MPEG2-style motion compensation + residual add
   reconstructs the current field from a reference field;
2. **de-interlace** — majority-select (median) over the reconstructed
   field and its neighbors;
3. **enhance** — 3-tap high-pass filter for edge restoration.

Each stage is verified against its pure-Python reference, and the
profiler reports slot utilization and stall decomposition per stage.

Run:  python examples/video_pipeline.py
"""

from repro.asm import compile_program
from repro.core import TM3270_CONFIG, Processor
from repro.core.profiling import format_profile
from repro.kernels import eembc, mpeg2, tv
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads import video

WIDTH, HEIGHT = 192, 64
BLOCKS_X, BLOCKS_Y = WIDTH // 8, HEIGHT // 8

REF = 0x0000_2000
CUR = REF + 0x8000
MV = CUR + 0x8000
RESID = MV + 0x2000
DEINTERLACED = RESID + 0x8000
ENHANCED = DEINTERLACED + 0x8000


def main():
    memory = FlatMemory(1 << 19)
    frame = video.synthetic_frame(WIDTH, HEIGHT, seed=7)
    memory.write_block(REF, frame)
    field = video.motion_field(BLOCKS_X, BLOCKS_Y, WIDTH, HEIGHT,
                               disruptiveness=0.3, seed=9)
    for index, word in enumerate(field.packed_words()):
        memory.store(MV + 4 * index, word, 4)
    residuals = video.synthetic_residuals(BLOCKS_X * BLOCKS_Y, seed=11)
    memory.write_block(RESID, residuals)

    processor = Processor(TM3270_CONFIG, memory=memory)
    total_cycles = 0

    stages = [
        ("decode (motion compensation)", mpeg2.build_mpeg2(),
         args_for(CUR, REF, MV, RESID, WIDTH, BLOCKS_X, BLOCKS_Y, 1)),
        ("de-interlace (majority select)", tv.build_majority_sel(),
         args_for(CUR, CUR + WIDTH, REF, DEINTERLACED,
                  WIDTH * (HEIGHT - 1) // 4)),
        ("enhance (high-pass filter)", eembc.build_filter(),
         args_for(DEINTERLACED, ENHANCED, WIDTH, HEIGHT - 1)),
    ]
    for label, program, args in stages:
        linked = compile_program(program, TM3270_CONFIG.target)
        result = processor.run(linked, args=args)
        stats = result.stats
        total_cycles += stats.cycles
        print(f"{label}:")
        print(f"  {stats.instructions} instructions, {stats.cycles} "
              f"cycles (CPI {stats.cpi:.2f}, OPI {stats.opi:.2f})")
        print(f"  {format_profile(linked, stats).splitlines()[-1].strip()}")
        print()

    # Verify the full chain against pure-Python references.
    mvs = list(field.vectors)
    decoded = mpeg2.reference_mpeg2(frame, mvs, residuals, WIDTH,
                                    BLOCKS_X, BLOCKS_Y)
    assert memory.read_block(CUR, len(decoded)) == bytes(decoded)
    n = WIDTH * (HEIGHT - 1)
    expected_median = tv.reference_majority_sel(
        bytes(decoded[:n]), bytes(decoded[WIDTH:WIDTH + n]),
        frame[:n])
    assert memory.read_block(DEINTERLACED, n) == expected_median
    print("all three stages verified against references")

    frame_seconds = total_cycles / (TM3270_CONFIG.freq_mhz * 1e6)
    print(f"\npipeline total: {total_cycles} cycles = "
          f"{1e6 * frame_seconds:.0f} us/field "
          f"({1 / frame_seconds:.0f} fields/s at 350 MHz, "
          f"{WIDTH}x{HEIGHT} field)")
    print("dcache stays warm across stages: stage 2 reads stage 1's")
    print("output straight from the 128 KB data cache.")


if __name__ == "__main__":
    main()
