#!/usr/bin/env python3
"""Compare two ``BENCH_*.json`` files and gate on regressions.

Usage::

    python scripts/bench_compare.py OLD.json NEW.json [--threshold 0.20]

Records are matched by ``(kernel, config)`` — plus the ``job_id`` tag
for merged files written by the parallel engine, so a merged sweep
that legitimately carries several records per kernel/config point
(e.g. a kernel job *and* an ablation citing the same kernel) compares
per job rather than silently collapsing.  A tagged NEW record still
matches an untagged OLD baseline.  Two kinds of drift are checked:

* **simulator throughput** — for records carrying a ``sim_speed``
  section (written by ``make perf``), the **median**
  instructions-per-second in NEW must not fall more than
  ``--threshold`` (default 20%) below OLD (the median, not the mean
  or best-of, so one descheduled repeat under a loaded pool cannot
  fail the gate; pre-median files fall back to the best-of field).
  When both records carry the per-engine ``engines`` section, every
  engine present in both (interp / plan / trace) is gated
  *independently* — a trace-tier regression fails even if the plan
  path got faster, and vice versa; records lacking the section fall
  back to the single legacy gate;
* **simulated cycles** — for every matched pair, a change in
  ``cycles`` is reported (informational unless ``--strict-cycles``,
  which treats any cycle-count growth beyond the threshold as a
  failure too);
* **fault tolerance** — for records carrying a ``fault_tolerance``
  section (written by ``make inject`` /
  ``BENCH_fault_tolerance.json``), any growth in the silent-data-
  corruption count for the same campaign cell is a failure, as is a
  drop in the detection rate — a protection model that stops
  detecting the faults it used to detect has regressed, whatever the
  throughput numbers say.  Recovery-overhead drift is reported
  informationally.

Before comparing, the script refuses records whose cited programs
fail the static verifier (``--no-static-verify`` overrides) and
trace-engine records whose compiled regions fail the translation
validator (``--no-trace-validate`` overrides) — perf numbers for code
that computes the wrong thing gate nothing.

Exit status is 0 when nothing regressed, 1 otherwise — wire it into CI
after ``make perf`` to keep the fast path fast.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.export import read_bench  # noqa: E402


def verify_sources(documents: list[dict]) -> list[str]:
    """Statically verify every (kernel, target) the bench files cite.

    Perf numbers from a program that fails the exposed-pipeline
    verifier are numbers for a program that computes garbage, so the
    comparison refuses to run on them (``--no-static-verify`` is the
    escape hatch for records whose kernels have since changed).
    Kernels the catalog does not know (e.g. simulator-throughput
    pseudo-records) are skipped.
    """
    from repro.analysis.catalog import catalog
    from repro.analysis.verifier import verify_program
    from repro.core.config import EVALUATION_CONFIGS

    target_of = {config.name: config.target.name
                 for config in EVALUATION_CONFIGS}
    pairs = sorted({
        (record["kernel"], target_of[record["config"]])
        for document in documents
        for record in document["records"]
        if record["config"] in target_of
    })
    entries = catalog()
    failures: list[str] = []
    checked: set[tuple] = set()
    for kernel, target_name in pairs:
        # Bench records carry the program name, which for variant
        # suites is the catalog name's stem (mpeg2 -> mpeg2_a/_b/_c).
        matches = [
            entry for entry in entries
            if entry.target.name == target_name
            and (entry.name == kernel
                 or entry.name.startswith(kernel + "_"))
        ]
        for entry in matches:
            key = (entry.build, entry.target.name)
            if key in checked:
                continue  # variants sharing one builder verify once
            checked.add(key)
            report = verify_program(entry.compile())
            if not report.ok:
                failures.append(
                    f"{entry.label}: fails static verification "
                    f"({len(report.errors)} error(s); run "
                    f"'make verify' for the full report)")
    return failures


def validate_trace_regions(documents: list[dict]) -> list[str]:
    """Translation-validate the trace tier behind trace perf records.

    A record whose ``sim_speed.engines`` section carries a ``trace``
    entry was produced by compiled region code; if that codegen no
    longer passes the translation validator, its throughput numbers
    are numbers for code that diverges from the ExecutionPlan, so the
    comparison refuses to run (``--no-trace-validate`` is the escape
    hatch, mirroring ``--no-static-verify``).  Both hazard modes are
    checked; kernels unknown to the catalog are skipped.
    """
    from repro.analysis.catalog import catalog
    from repro.analysis.transval import validate_plan
    from repro.core.config import EVALUATION_CONFIGS
    from repro.core.plan import plan_for

    target_of = {config.name: config.target.name
                 for config in EVALUATION_CONFIGS}
    pairs = sorted({
        (record["kernel"], target_of[record["config"]])
        for document in documents
        for record in document["records"]
        if record["config"] in target_of
        and "trace" in (record.get("sim_speed", {})
                        .get("engines") or {})
    })
    entries = catalog()
    failures: list[str] = []
    checked: set[tuple] = set()
    for kernel, target_name in pairs:
        matches = [
            entry for entry in entries
            if entry.target.name == target_name
            and (entry.name == kernel
                 or entry.name.startswith(kernel + "_"))
        ]
        for entry in matches:
            key = (entry.build, entry.target.name)
            if key in checked:
                continue
            checked.add(key)
            plan = plan_for(entry.compile())
            for strict in (False, True):
                bad = [validation
                       for validation in
                       validate_plan(plan, strict=strict).values()
                       if not validation.ok]
                for validation in bad:
                    failures.append(
                        f"{entry.label}: trace region fails "
                        f"translation validation — "
                        f"{validation.format().splitlines()[0]} (run "
                        f"'make validate' for the full report)")
    return failures


def _index(document: dict) -> dict[tuple[str, str, str], dict]:
    """Index records by (kernel, config, job_id-or-"")."""
    out: dict[tuple[str, str, str], dict] = {}
    for record in document["records"]:
        key = (record["kernel"], record["config"],
               record.get("job_id", ""))
        if key in out:
            print(f"  warning: duplicate record for {key}, "
                  "keeping the first", file=sys.stderr)
            continue
        out[key] = record
    return out


def _lookup(index: dict, key: tuple[str, str, str]) -> dict | None:
    """Exact key, else the untagged (kernel, config) baseline."""
    record = index.get(key)
    if record is None and key[2]:
        record = index.get((key[0], key[1], ""))
    return record


class SchemaDriftError(ValueError):
    """A bench record predates (or postdates) the gate's schema.

    Raised instead of letting a bare ``KeyError`` escape when a
    ``sim_speed`` / ``serve`` section lacks the fields the gate reads
    — old ``BENCH_runs.json`` files written before the ``engines`` /
    ``samples_ns`` split are the common case.  The message names the
    record, the missing field, and the fix; ``main`` turns it into a
    clean one-line failure (exit 1), and
    ``tests/serve/test_bench_compare.py`` pins the wording.
    """


def _drift(name: str, section: str, field: str, present: dict) -> SchemaDriftError:
    return SchemaDriftError(
        f"{name}: perf record schema drift: {section!r} section has "
        f"no {field!r} field (found: {sorted(present) or 'nothing'}); "
        f"regenerate the file with 'make perf', or pick a baseline "
        f"from the same schema generation")


def _gate_rate(name: str, record: dict) -> float:
    """The throughput the gate runs on: median when recorded."""
    speed = record["sim_speed"]
    rate = speed.get("median_instructions_per_sec",
                     speed.get("instructions_per_sec"))
    if rate is None:
        raise _drift(
            name, "sim_speed",
            "median_instructions_per_sec' or 'instructions_per_sec",
            speed)
    return rate


def _engine_rate(name: str, engine: str, engines: dict) -> float:
    """One engine's gated median, with a schema-drift diagnostic."""
    entry = engines[engine]
    rate = entry.get("median_instructions_per_sec")
    if rate is None:
        raise _drift(f"{name} [{engine}]", "sim_speed.engines",
                     "median_instructions_per_sec", entry)
    return rate


def _fmt_rate(value: float) -> str:
    return f"{value / 1e3:8.1f}k instr/s"


def _compare_faults(name: str, old_faults: dict,
                    new_faults: dict) -> list[str]:
    """Gate one campaign cell's fault-tolerance section.

    SDC growth and detection-rate drops fail unconditionally (no
    threshold: a single new silent corruption is a real regression in
    a deterministic seeded campaign); recovery-overhead drift is
    informational, since the checkpoint cadence is a tuning knob.
    """
    failures: list[str] = []
    old_sdc, new_sdc = old_faults["sdc"], new_faults["sdc"]
    old_det = old_faults["detection_rate"]
    new_det = new_faults["detection_rate"]
    if new_sdc > old_sdc:
        failures.append(
            f"{name}: silent data corruptions grew "
            f"{old_sdc} -> {new_sdc}")
    if new_det < old_det:
        failures.append(
            f"{name}: fault detection rate fell "
            f"{old_det:.1%} -> {new_det:.1%}")
    old_ovh = old_faults["recovery_overhead"]
    new_ovh = new_faults["recovery_overhead"]
    if (new_sdc, new_det, new_ovh) != (old_sdc, old_det, old_ovh):
        print(f"  {name}: sdc {old_sdc} -> {new_sdc}, "
              f"detection {old_det:.1%} -> {new_det:.1%}, "
              f"recovery overhead {old_ovh:.1%} -> {new_ovh:.1%}")
    return failures


def _serve_value(name: str, serve: dict, field: str) -> float:
    value = serve.get(field)
    if not isinstance(value, (int, float)):
        raise _drift(name, "serve", field, serve)
    return value


def _compare_serve(name: str, old_serve: dict, new_serve: dict,
                   threshold: float) -> list[str]:
    """Gate one serving-benchmark record's SLO section.

    Two thresholds, both against the committed baseline: sessions/sec
    must not fall more than ``threshold`` and p99 session latency must
    not grow more than ``threshold``.  A run with failed sessions
    gates unconditionally — throughput of a server that drops work is
    not throughput — and so does any *lost* session (one the recovery
    layer failed after a worker death despite journaling and the
    resume budget): the PR 10 crash-recovery contract is
    ``lost_sessions == 0`` under every fault schedule, so a nonzero
    count is a correctness failure regardless of thresholds.
    ``server_lost_sessions`` is read with ``.get`` so pre-recovery
    baselines (which never emitted the field) still compare.
    """
    failures: list[str] = []
    if new_serve.get("failed", 0):
        failures.append(
            f"{name}: {new_serve['failed']} session(s) failed in the "
            "candidate run")
    lost = new_serve.get("server_lost_sessions", 0)
    if lost:
        failures.append(
            f"{name}: {lost} session(s) LOST in the candidate run "
            "(worker death exhausted the resume budget); the recovery "
            "contract is lost_sessions == 0")
    resumed = new_serve.get("server_resumed_sessions")
    if resumed is not None:
        print(f"  {name}: recovery ledger: "
              f"{resumed} resumed, "
              f"{new_serve.get('server_resume_replays', 0)} replays "
              f"suppressed, "
              f"{new_serve.get('server_checkpoint_bytes', 0)} "
              f"checkpoint bytes, {lost} lost")
    old_rate = _serve_value(name, old_serve, "server_sessions_per_sec")
    new_rate = _serve_value(name, new_serve, "server_sessions_per_sec")
    rate_change = new_rate / old_rate - 1.0 if old_rate else 0.0
    old_p99 = _serve_value(name, old_serve, "server_latency_p99_ms")
    new_p99 = _serve_value(name, new_serve, "server_latency_p99_ms")
    p99_change = new_p99 / old_p99 - 1.0 if old_p99 else 0.0
    print(f"  {name}: {old_rate:.1f} -> {new_rate:.1f} sessions/s "
          f"({rate_change:+.1%}), p99 {old_p99:.0f} -> "
          f"{new_p99:.0f} ms ({p99_change:+.1%})")
    if rate_change < -threshold:
        failures.append(
            f"{name}: sessions/sec fell {-rate_change:.1%} "
            f"({old_rate:.1f} -> {new_rate:.1f}), threshold is "
            f"{threshold:.0%}")
    if p99_change > threshold:
        failures.append(
            f"{name}: p99 session latency grew {p99_change:.1%} "
            f"({old_p99:.0f} -> {new_p99:.0f} ms), threshold is "
            f"{threshold:.0%}")
    return failures


def compare(old: dict, new: dict, threshold: float,
            strict_cycles: bool = False) -> list[str]:
    """Return a list of failure messages (empty = no regressions)."""
    failures: list[str] = []
    old_index, new_index = _index(old), _index(new)

    matched_old = {
        key for key in old_index
        if any(_lookup(old_index, new_key) is old_index[key]
               for new_key in new_index)
    }
    for key in sorted(old_index.keys() - matched_old):
        failures.append(f"{key[0]}/{key[1]}: missing from NEW file")

    for key in sorted(new_index):
        kernel, config, job_id = key
        name = f"{kernel}/{config}" + (f" [{job_id}]" if job_id else "")
        new_record = new_index[key]
        old_record = _lookup(old_index, key)
        if old_record is None:
            print(f"  {name}: new record (no baseline)")
            continue

        old_speed = old_record.get("sim_speed")
        new_speed = new_record.get("sim_speed")
        if old_speed and new_speed:
            old_engines = old_speed.get("engines") or {}
            new_engines = new_speed.get("engines") or {}
            shared = sorted(old_engines.keys() & new_engines.keys())
            if shared:
                # Per-engine gate: each engine's median must hold on
                # its own.
                for engine in shared:
                    old_rate = _engine_rate(name, engine, old_engines)
                    new_rate = _engine_rate(name, engine, new_engines)
                    change = new_rate / old_rate - 1.0
                    line = (f"  {name} [{engine}]: "
                            f"{_fmt_rate(old_rate)} -> "
                            f"{_fmt_rate(new_rate)}  ({change:+.1%})")
                    if change < -threshold:
                        failures.append(
                            f"{name} [{engine}]: throughput fell "
                            f"{-change:.1%} ({old_rate:.0f} -> "
                            f"{new_rate:.0f} instr/s), threshold is "
                            f"{threshold:.0%}")
                        line += "  REGRESSION"
                    print(line)
            else:
                old_rate = _gate_rate(name, old_record)
                new_rate = _gate_rate(name, new_record)
                change = new_rate / old_rate - 1.0
                line = (f"  {name}: {_fmt_rate(old_rate)} -> "
                        f"{_fmt_rate(new_rate)}  ({change:+.1%})")
                if change < -threshold:
                    failures.append(
                        f"{name}: throughput fell {-change:.1%} "
                        f"({old_rate:.0f} -> {new_rate:.0f} instr/s), "
                        f"threshold is {threshold:.0%}")
                    line += "  REGRESSION"
                print(line)

        old_faults = old_record.get("fault_tolerance")
        new_faults = new_record.get("fault_tolerance")
        if old_faults and new_faults:
            failures.extend(
                _compare_faults(name, old_faults, new_faults))

        old_serve = old_record.get("serve")
        new_serve = new_record.get("serve")
        if old_serve and new_serve:
            failures.extend(
                _compare_serve(name, old_serve, new_serve, threshold))

        old_cycles = old_record["cycles"]
        new_cycles = new_record["cycles"]
        if new_cycles != old_cycles:
            drift = new_cycles / old_cycles - 1.0
            print(f"  {name}: cycles {old_cycles} -> {new_cycles} "
                  f"({drift:+.2%})")
            if strict_cycles and drift > threshold:
                failures.append(
                    f"{name}: simulated cycles grew {drift:.1%}, "
                    f"threshold is {threshold:.0%}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; exit 1 on regression.")
    parser.add_argument("old", type=pathlib.Path,
                        help="baseline bench file")
    parser.add_argument("new", type=pathlib.Path,
                        help="candidate bench file")
    parser.add_argument(
        "--threshold", type=float, default=0.20, metavar="FRACTION",
        help="allowed fractional throughput drop (default 0.20)")
    parser.add_argument(
        "--strict-cycles", action="store_true",
        help="also fail when simulated cycle counts grow past the "
             "threshold (off by default: cycle changes are usually "
             "deliberate model changes, not regressions)")
    parser.add_argument(
        "--no-static-verify", action="store_true",
        help="compare even when a cited kernel fails the static "
             "program verifier (default: refuse)")
    parser.add_argument(
        "--no-trace-validate", action="store_true",
        help="compare trace-engine records even when their compiled "
             "regions fail translation validation (default: refuse)")
    parser.add_argument(
        "--only", default=None, metavar="NAME[,NAME...]",
        help="restrict the comparison to these kernel names; lets a "
             "quick subset run (make perf-quick) gate against a full "
             "committed baseline without tripping the missing-record "
             "check")
    options = parser.parse_args(argv)

    old = read_bench(options.old)
    new = read_bench(options.new)
    if options.only:
        keep = {name.strip() for name in options.only.split(",")}
        for document in (old, new):
            document["records"] = [
                record for record in document["records"]
                if record["kernel"] in keep]
    if not options.no_static_verify:
        broken = verify_sources([old, new])
        if broken:
            print("refusing comparison: bench records cite programs "
                  "that fail static verification", file=sys.stderr)
            for failure in broken:
                print(f"  - {failure}", file=sys.stderr)
            print("(use --no-static-verify to override)",
                  file=sys.stderr)
            return 1
    if not options.no_trace_validate:
        broken = validate_trace_regions([old, new])
        if broken:
            print("refusing comparison: trace-engine records cite "
                  "regions that fail translation validation",
                  file=sys.stderr)
            for failure in broken:
                print(f"  - {failure}", file=sys.stderr)
            print("(use --no-trace-validate to override)",
                  file=sys.stderr)
            return 1
    print(f"comparing {options.old} -> {options.new} "
          f"(threshold {options.threshold:.0%})")
    try:
        failures = compare(old, new, options.threshold,
                           strict_cycles=options.strict_cycles)
    except SchemaDriftError as drift:
        print(f"\n{drift}", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
