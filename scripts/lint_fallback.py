#!/usr/bin/env python
"""Dependency-free lint pass used when ruff is not installed.

``make lint`` prefers ruff + mypy; this AST-based fallback keeps the
highest-value defect classes checkable in a bare container:

* syntax errors (files that do not parse at all);
* unused imports (module scope);
* comparisons to ``None``/``True``/``False`` with ``==``/``!=``;
* bare ``except:`` clauses;
* mutable default arguments (list/dict/set literals);
* f-strings without any placeholder.

Files under the strict paths (the static-analysis package and the
trace codegen — the modules pyproject.toml holds to the strict mypy
profile) additionally require ``from __future__ import annotations``,
a module docstring, and a return annotation on every public top-level
function, mirroring the intent of the stricter configured toolchain
when ruff/mypy are unavailable.

Exit status is the number of files with findings (0 = clean), so it
slots into ``make lint`` like a real linter.  It deliberately checks
less than ruff — a fallback should have zero false positives, not
maximal coverage.
"""

from __future__ import annotations

import ast
import pathlib
import sys


#: Paths held to the strict profile (kept in sync with the
#: ``[[tool.mypy.overrides]]`` block in pyproject.toml).
STRICT_PATHS = ("src/repro/analysis", "src/repro/core/trace.py")


def _is_strict(path: pathlib.Path) -> bool:
    text = path.as_posix()
    return any(text.endswith(strict) or f"{strict}/" in text
               or text == strict for strict in STRICT_PATHS)


def _strict_findings(path: pathlib.Path, tree: ast.Module) -> list[str]:
    findings: list[str] = []
    if ast.get_docstring(tree) is None:
        findings.append(f"{path}:1: strict module lacks a docstring")
    has_future = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "__future__"
        and any(alias.name == "annotations" for alias in node.names)
        for node in tree.body)
    if not has_future:
        findings.append(
            f"{path}:1: strict module lacks "
            f"'from __future__ import annotations'")
    for node in tree.body:
        if (isinstance(node, ast.FunctionDef)
                and not node.name.startswith("_")
                and node.returns is None):
            findings.append(
                f"{path}:{node.lineno}: public function "
                f"'{node.name}' lacks a return annotation")
    return findings


def _iter_sources(roots: list[str]):
    for root in roots:
        path = pathlib.Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


class _Visitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.problems: list[tuple[int, str]] = []
        #: name -> (lineno, display) of module-level imports.
        self.imports: dict[str, tuple[int, str]] = {}
        self.used: set[str] = set()

    # -- imports ------------------------------------------------------------

    def _record_import(self, node, bound: str, display: str) -> None:
        self.imports[bound] = (node.lineno, display)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self._record_import(node, bound, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self._record_import(node, bound, alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    # -- defect classes -----------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        for operator, comparator in zip(node.ops, node.comparators):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            if (isinstance(comparator, ast.Constant)
                    and comparator.value in (None, True, False)
                    and isinstance(comparator.value, (bool, type(None)))):
                self.problems.append((
                    node.lineno,
                    f"comparison to {comparator.value!r} with =="
                    f"/!= (use is/is not)"))
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.problems.append((node.lineno, "bare 'except:' clause"))
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.problems.append((
                    default.lineno,
                    f"mutable default argument in {node.name}()"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if not any(isinstance(part, ast.FormattedValue)
                   for part in node.values):
            self.problems.append(
                (node.lineno, "f-string without placeholders"))
        self.generic_visit(node)

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        # Do not descend into node.format_spec: a spec like ``:.2f``
        # parses as a placeholder-free JoinedStr of its own.
        self.visit(node.value)


def _string_uses(tree: ast.Module) -> set[str]:
    """Names referenced via ``__all__`` string entries."""
    names: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        for element in ast.walk(node):
            if isinstance(element, ast.Constant) and isinstance(
                    element.value, str):
                names.add(element.value)
    return names


def lint_file(path: pathlib.Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]
    visitor = _Visitor()
    visitor.visit(tree)
    unused_ok = path.name == "__init__.py"  # re-export surface
    exported = _string_uses(tree)
    findings = [f"{path}:{line}: {message}"
                for line, message in visitor.problems]
    if _is_strict(path):
        findings.extend(_strict_findings(path, tree))
    if not unused_ok:
        for bound, (line, display) in visitor.imports.items():
            if bound not in visitor.used and bound not in exported:
                findings.append(
                    f"{path}:{line}: unused import '{display}'")
    findings.sort(key=lambda item: int(item.split(":")[1]))
    return findings


def main(argv: list[str]) -> int:
    roots = argv or ["src/repro", "scripts"]
    bad_files = 0
    checked = 0
    for path in _iter_sources(roots):
        checked += 1
        findings = lint_file(path)
        if findings:
            bad_files += 1
            print("\n".join(findings))
    status = "clean" if not bad_files else f"{bad_files} file(s) flagged"
    print(f"lint_fallback: {checked} files checked, {status}")
    return 1 if bad_files else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
