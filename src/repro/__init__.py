"""Reproduction of "The TM3270 Media-Processor" (MICRO 2005).

A from-scratch executable model of the TM3270 VLIW media-processor and
its evaluation: the ISA (including the paper's new operations), a
target-parameterized VLIW scheduler, a cycle-approximate processor
model with the paper's load/store unit, caches, region prefetching and
SDRAM timing, power/area models, a CABAC codec, the paper's kernel
suite, and drivers that regenerate every table and figure.
"""

__version__ = "1.0.0"
