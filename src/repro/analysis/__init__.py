"""Static verification of linked TM3270/TM3260 programs.

The exposed pipeline makes machine code *correct by schedule*: latency
distances, write-back timing, issue-slot assignment, delay-slot shape
and encodability are all compiler obligations with no hardware
backstop.  This package re-derives those obligations from the final
:class:`~repro.asm.link.LinkedProgram` — independently of the
scheduler and the executor — and reports violations as structured
:class:`~repro.analysis.diagnostics.Diagnostic` records.

Entry points:

* :func:`~repro.analysis.verifier.verify_program` — verify one linked
  program, returning a :class:`~repro.analysis.verifier.VerificationReport`;
* ``python -m repro.analysis`` — CLI over the registered kernels;
* ``link(..., verify=True)`` / ``compile_program(..., verify=True)``
  — raise on a bad schedule straight out of the linker.

:mod:`repro.analysis.catalog` (program enumeration) and
:mod:`repro.analysis.mutate` (fault injection) import the assembler
and kernel layers, so they are *not* imported here — the core rule
modules must stay importable from :mod:`repro.asm` without cycles.
The scheduler imports :mod:`repro.analysis.diagnostics` (and thereby
this ``__init__``) while :mod:`repro.asm` is still initialising, so
only the dependency-free diagnostics vocabulary is imported eagerly;
the verifier — whose rule modules reach :mod:`repro.core` and back
into :mod:`repro.asm` — is resolved lazily on first attribute access
(PEP 562).
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    REGION_RULE_IDS,
    RULE_DEFUSE,
    RULE_ENCODING,
    RULE_IDS,
    RULE_JUMP,
    RULE_LATENCY,
    RULE_MEMPORT,
    RULE_PAIRING,
    RULE_REGION_COMMIT,
    RULE_REGION_EFFECT,
    RULE_REGION_EXIT,
    RULE_REGION_STRUCT,
    RULE_SLOT,
    RULE_WRITEBACK,
    SEV_ERROR,
    SEV_WARNING,
    Diagnostic,
    format_location,
)

#: Lazily resolved exports (PEP 562): the verifier plus the trace-region
#: translation validator, whose probing machinery reaches repro.core.
_LAZY = {
    "VerificationError": "repro.analysis.verifier",
    "VerificationReport": "repro.analysis.verifier",
    "verify_program": "repro.analysis.verifier",
    "RegionValidation": "repro.analysis.transval",
    "TranslationValidationError": "repro.analysis.transval",
    "validate_region": "repro.analysis.transval",
    "validate_plan": "repro.analysis.transval",
    "validate_catalog": "repro.analysis.transval",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is not None:
        import importlib

        return getattr(importlib.import_module(module), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Diagnostic",
    "REGION_RULE_IDS",
    "RULE_DEFUSE",
    "RULE_ENCODING",
    "RULE_IDS",
    "RULE_JUMP",
    "RULE_LATENCY",
    "RULE_MEMPORT",
    "RULE_PAIRING",
    "RULE_REGION_COMMIT",
    "RULE_REGION_EFFECT",
    "RULE_REGION_EXIT",
    "RULE_REGION_STRUCT",
    "RULE_SLOT",
    "RULE_WRITEBACK",
    "RegionValidation",
    "SEV_ERROR",
    "SEV_WARNING",
    "TranslationValidationError",
    "VerificationError",
    "VerificationReport",
    "format_location",
    "validate_catalog",
    "validate_plan",
    "validate_region",
    "verify_program",
]
