"""``python -m repro.analysis`` — verify registered kernels from the shell.

Compiles every catalog entry (or a ``--kernel``/``--target`` subset),
runs the static verifier, prints one line per program plus each
finding, and exits non-zero when any program has errors.

``--trace-regions`` switches to the trace-tier translation validator:
every compiled region of every lockstep-catalog program is checked
against its ExecutionPlan in both hazard modes.  ``--trace-mutants``
additionally proves the validator's teeth by sweeping doctored-codegen
mutants that must all be rejected with their expected rule.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.catalog import entries_matching, verify_all


def _run_trace_regions(smoke: bool, quiet: bool) -> int:
    from repro.analysis.transval import validate_catalog

    results = validate_catalog(smoke=smoke)
    failed = 0
    for validation in results:
        if validation.ok and quiet:
            continue
        print(validation.format())
        failed += not validation.ok
    total = len(results)
    print(f"{total - failed}/{total} region validations clean")
    return 1 if failed else 0


def _run_trace_mutants() -> int:
    from repro.analysis.codegen_mutate import run_harness

    report = run_harness(min_mutants=100)
    print(report.format())
    return 0 if report.caught == report.total else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify linked kernels: exposed-pipeline "
                    "latency hazards, write-back collisions, issue-slot "
                    "and pairing legality, memory-port limits, jump "
                    "delay-slot shape, encodability, and def-use.")
    parser.add_argument(
        "--kernel", action="append", default=None, metavar="NAME",
        help="verify only this kernel (repeatable; default: all)")
    parser.add_argument(
        "--target", choices=("tm3260", "tm3270"), default=None,
        help="restrict to one family member (default: both)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only programs with findings and the summary")
    parser.add_argument(
        "--trace-regions", action="store_true",
        help="run the trace-region translation validator over the "
             "lockstep catalog instead of the kernel verifier")
    parser.add_argument(
        "--smoke", action="store_true",
        help="with --trace-regions: validate the smoke catalog only")
    parser.add_argument(
        "--trace-mutants", action="store_true",
        help="sweep doctored-codegen mutants through the translation "
             "validator; every mutant must be caught")
    args = parser.parse_args(argv)

    if args.trace_regions or args.trace_mutants:
        status = 0
        if args.trace_regions:
            status |= _run_trace_regions(args.smoke, args.quiet)
        if args.trace_mutants:
            status |= _run_trace_mutants()
        return status

    try:
        entries = entries_matching(args.kernel, args.target)
    except KeyError as error:
        parser.error(str(error.args[0]))
    if not entries:
        parser.error("no catalog entries match the given filters")

    failed = 0
    for entry, report in verify_all(entries):
        if report.ok and args.quiet:
            continue
        status = "ok" if report.ok else "FAIL"
        print(f"[{status}] {entry.label}: "
              f"{report.instruction_count} instructions, "
              f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        for diag in report.diagnostics:
            print(f"    {diag.format()}")
        failed += not report.ok
    total = len(entries)
    print(f"{total - failed}/{total} programs verified clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
