"""``python -m repro.analysis`` — verify registered kernels from the shell.

Compiles every catalog entry (or a ``--kernel``/``--target`` subset),
runs the static verifier, prints one line per program plus each
finding, and exits non-zero when any program has errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.catalog import entries_matching, verify_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify linked kernels: exposed-pipeline "
                    "latency hazards, write-back collisions, issue-slot "
                    "and pairing legality, memory-port limits, jump "
                    "delay-slot shape, encodability, and def-use.")
    parser.add_argument(
        "--kernel", action="append", default=None, metavar="NAME",
        help="verify only this kernel (repeatable; default: all)")
    parser.add_argument(
        "--target", choices=("tm3260", "tm3270"), default=None,
        help="restrict to one family member (default: both)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only programs with findings and the summary")
    args = parser.parse_args(argv)

    try:
        entries = entries_matching(args.kernel, args.target)
    except KeyError as error:
        parser.error(str(error.args[0]))
    if not entries:
        parser.error("no catalog entries match the given filters")

    failed = 0
    for entry, report in verify_all(entries):
        if report.ok and args.quiet:
            continue
        status = "ok" if report.ok else "FAIL"
        print(f"[{status}] {entry.label}: "
              f"{report.instruction_count} instructions, "
              f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        for diag in report.diagnostics:
            print(f"    {diag.format()}")
        failed += not report.ok
    total = len(entries)
    print(f"{total - failed}/{total} programs verified clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
