"""Abstract-interpretation substrate for the trace translation validator.

The translation validator (:mod:`repro.analysis.transval`) must judge
generated trace-region source *without* trusting the code generator
that produced it.  This module supplies the three independent pieces
it builds on:

* :class:`Interp` — a closed-world evaluator for the restricted Python
  subset the region codegen is allowed to emit (straight-line
  statements, ``if``/``for``/``while``, masked integer expressions).
  Running fragments of the parsed AST under controlled *probe*
  environments is how the validator observes what the generated code
  actually does, rather than what its text looks like.
* probe environments — deterministic register files, memory stubs, and
  a recording :class:`ProbeCtx` that mirrors the executor's operation
  context, so a generated operation body and the plan's bound registry
  semantic can be run on identical abstract inputs and compared
  effect-for-effect (:func:`reference_effects`).
* :func:`derive_schedule` / :func:`derive_geometry` /
  :func:`derive_fetch_plan` — a from-scratch re-derivation, straight
  from the :class:`~repro.core.plan.ExecutionPlan`, of the obligations
  the codegen must have satisfied: the static/escaped/dynamic write
  partition with issue and landing steps (DESIGN.md section 13), the
  jump geometry that spill slots must be a pure function of, and the
  constant-folded front-end fetch lists.

Nothing here imports or calls ``repro.core.trace._generate``; the
whole point is that this derivation and the codegen can only agree by
both being right.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.core.plan import (
    OP_DSTS,
    OP_GUARD,
    OP_IMM,
    OP_IS_JUMP,
    OP_JUMP_INDEX,
    OP_LATENCY,
    OP_NAME,
    OP_SEMANTIC,
    OP_SRCS,
)

M32 = 0xFFFFFFFF
NUM_REGS = 128

#: MMIO window bounds; must match the executor's routing exactly.
MMIO_LO = 0x1000_0000
MMIO_HI = 0x1000_1000


class EvalError(Exception):
    """The source used a construct outside the validated subset."""


class _ReturnSignal(Exception):
    """Internal control flow: a ``return`` statement executed."""

    def __init__(self, value: object) -> None:
        self.value = value


class _RaiseSignal(Exception):
    """Internal control flow: a ``raise`` statement executed."""


_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
}

_CMP_OPS = {
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_UNARY_OPS = {
    ast.USub: lambda a: -a,
    ast.UAdd: lambda a: +a,
    ast.Invert: lambda a: ~a,
    ast.Not: lambda a: not a,
}

#: Backstop against runaway loops in doctored sources.
_LOOP_LIMIT = 65536


class Interp:
    """Evaluate the restricted AST subset over a dict environment.

    The environment is the single namespace (the generated function
    body has no nested scopes).  Unknown names, unsupported node
    types, and unbounded loops raise :class:`EvalError` — a validator
    diagnostic, never a crash.
    """

    __slots__ = ("env",)

    def __init__(self, env: dict) -> None:
        self.env = env

    # -- statements --------------------------------------------------

    def run(self, stmts) -> object:
        """Run statements; returns the ``return`` value if one fired,
        the string ``"raise"`` if a ``raise`` fired, else ``None``."""
        try:
            for stmt in stmts:
                self.stmt(stmt)
        except _ReturnSignal as sig:
            return sig.value
        except _RaiseSignal:
            return "raise"
        return None

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.expr(node.value)
            for target in node.targets:
                self.assign(target, value)
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, ast.If):
            body = node.body if self.expr(node.test) else node.orelse
            for stmt in body:
                self.stmt(stmt)
        elif isinstance(node, ast.While):
            count = 0
            while self.expr(node.test):
                count += 1
                if count > _LOOP_LIMIT:
                    raise EvalError("while loop exceeded iteration bound")
                for stmt in node.body:
                    self.stmt(stmt)
        elif isinstance(node, ast.For):
            iterable = self.expr(node.iter)
            count = 0
            for item in iterable:
                count += 1
                if count > _LOOP_LIMIT:
                    raise EvalError("for loop exceeded iteration bound")
                self.assign(node.target, item)
                for stmt in node.body:
                    self.stmt(stmt)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, ast.Return):
            raise _ReturnSignal(
                self.expr(node.value) if node.value is not None else None)
        elif isinstance(node, ast.Raise):
            raise _RaiseSignal()
        elif isinstance(node, ast.Pass):
            pass
        elif isinstance(node, ast.Continue):
            raise EvalError("continue outside supported loop form")
        else:
            raise EvalError(
                f"unsupported statement {type(node).__name__}")

    def _aug_assign(self, node: ast.AugAssign) -> None:
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise EvalError(
                f"unsupported augmented op {type(node.op).__name__}")
        target = node.target
        if isinstance(target, ast.Name):
            self.env[target.id] = op(self.lookup(target.id),
                                     self.expr(node.value))
        elif isinstance(target, ast.Subscript):
            obj = self.expr(target.value)
            index = self.expr(target.slice)
            obj[index] = op(obj[index], self.expr(node.value))
        else:
            raise EvalError("unsupported augmented-assignment target")

    def assign(self, target: ast.expr, value: object) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            obj = self.expr(target.value)
            obj[self.expr(target.slice)] = value
        elif isinstance(target, ast.Attribute):
            setattr(self.expr(target.value), target.attr, value)
        elif isinstance(target, ast.Tuple):
            items = tuple(value)  # type: ignore[arg-type]
            if len(items) != len(target.elts):
                raise EvalError("tuple unpack arity mismatch")
            for elt, item in zip(target.elts, items):
                self.assign(elt, item)
        else:
            raise EvalError(
                f"unsupported assignment target {type(target).__name__}")

    def lookup(self, name: str) -> object:
        try:
            return self.env[name]
        except KeyError:
            raise EvalError(f"unknown name {name!r}") from None

    # -- expressions -------------------------------------------------

    def expr(self, node: ast.expr) -> object:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise EvalError(
                    f"unsupported operator {type(node.op).__name__}")
            return op(self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: object = True
                for value in node.values:
                    result = self.expr(value)
                    if not result:
                        return result
                return result
            result = False
            for value in node.values:
                result = self.expr(value)
                if result:
                    return result
            return result
        if isinstance(node, ast.UnaryOp):
            op = _UNARY_OPS.get(type(node.op))
            if op is None:
                raise EvalError(
                    f"unsupported unary {type(node.op).__name__}")
            return op(self.expr(node.operand))
        if isinstance(node, ast.Compare):
            left = self.expr(node.left)
            for cmp_op, comparator in zip(node.ops, node.comparators):
                fn = _CMP_OPS.get(type(cmp_op))
                if fn is None:
                    raise EvalError(
                        f"unsupported comparison {type(cmp_op).__name__}")
                right = self.expr(comparator)
                if not fn(left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.IfExp):
            branch = node.body if self.expr(node.test) else node.orelse
            return self.expr(branch)
        if isinstance(node, ast.Subscript):
            obj = self.expr(node.value)
            return obj[self.expr(node.slice)]  # type: ignore[index]
        if isinstance(node, ast.Tuple):
            return tuple(self.expr(elt) for elt in node.elts)
        if isinstance(node, ast.List):
            return [self.expr(elt) for elt in node.elts]
        if isinstance(node, ast.Call):
            fn = self.expr(node.func)
            if not callable(fn):
                raise EvalError("call target is not callable")
            args = [self.expr(arg) for arg in node.args]
            kwargs = {kw.arg: self.expr(kw.value)
                      for kw in node.keywords if kw.arg is not None}
            return fn(*args, **kwargs)
        if isinstance(node, ast.Attribute):
            return getattr(self.expr(node.value), node.attr)
        raise EvalError(f"unsupported expression {type(node).__name__}")


# ---------------------------------------------------------------------------
# Probe environments
# ---------------------------------------------------------------------------

def probe_value(reg: int, salt: int) -> int:
    """Deterministic 32-bit probe word for register ``reg``; the
    register-file invariants r0 == 0 and r1 == 1 always hold."""
    if reg == 0:
        return 0
    if reg == 1:
        return 1
    return (reg * 2654435761 + salt * 40503 + (salt << 17)) & M32

#: Edge patterns cycled through the probe register files; sign bits,
#: all-ones, lane boundaries, and odd/even guard parities all occur.
_EDGE_WORDS = (0, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 0x00010001,
               0xAAAA5555, 0x000000FF, 0x80008000)


def probe_regfiles(count: int = 6) -> list[list[int]]:
    """Deterministic probe register files (salted mixes + edge words)."""
    files: list[list[int]] = []
    for salt in range(count):
        values = [probe_value(reg, salt) for reg in range(NUM_REGS)]
        for offset, word in enumerate(_EDGE_WORDS):
            reg = 2 + ((salt * 11 + offset * 7) % (NUM_REGS - 2))
            values[reg] = word
        values[0] = 0
        values[1] = 1
        files.append(values)
    return files


def probe_mem_load(address: int, nbytes: int) -> int:
    """Deterministic flat-memory stub shared by both evaluation sides."""
    word = (address * 0x9E3779B1 + nbytes * 0x85EBCA77 + 0x165667B1) & M32
    return word & ((1 << (8 * nbytes)) - 1)


def probe_mmio_load(address: int, nbytes: int) -> int:
    """Deterministic MMIO stub, distinct from flat memory."""
    word = (address * 0xC2B2AE35 + nbytes * 0x27D4EB2F + 0x9E3779B9) & M32
    return word & ((1 << (8 * nbytes)) - 1)


class MemRecorder:
    """Shared access log + stub callables for a probe evaluation.

    One recorder backs either side of a differential run: the
    generated code's ``mem_load``/``mmio_load``/``mem_store``/
    ``mmio_store`` parameters, or a :class:`ProbeCtx`.  The resulting
    ``events`` lists are directly comparable.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def mem_load(self, address: int, nbytes: int) -> int:
        self.events.append(("load", address, nbytes))
        return probe_mem_load(address, nbytes)

    def mmio_load(self, address: int, nbytes: int) -> int:
        self.events.append(("mmio-load", address, nbytes))
        return probe_mmio_load(address, nbytes)

    def mem_store(self, address: int, value: int, nbytes: int) -> None:
        self.events.append(("store", address, value, nbytes))

    def mmio_store(self, address: int, value: int, nbytes: int) -> None:
        self.events.append(("mmio-store", address, value, nbytes))


class _ProbeMemory:
    """Duck-typed FlatMemory stand-in routing through a recorder."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: MemRecorder) -> None:
        self._recorder = recorder

    def load(self, address: int, nbytes: int) -> int:
        return self._recorder.mem_load(address, nbytes)

    def store(self, address: int, value: int, nbytes: int) -> None:
        self._recorder.mem_store(address, value, nbytes)


class ProbeCtx:
    """Mirror of the executor's ``_OpContext`` over probe stubs.

    Routing (MMIO window check before flat memory) replicates
    ``repro.core.executor._OpContext`` so a registry semantic run
    against this context produces the same access stream and values a
    generated inline block must produce against the raw stubs.
    """

    __slots__ = ("_recorder", "accesses", "guard_value", "_slot",
                 "_op_name")

    def __init__(self, recorder: MemRecorder) -> None:
        self._recorder = recorder
        self.accesses: list = []
        self.guard_value = 1
        self._slot = 0
        self._op_name = ""

    def load(self, address: int, nbytes: int) -> int:
        if MMIO_LO <= address < MMIO_HI:
            return self._recorder.mmio_load(address, nbytes)
        return self._recorder.mem_load(address, nbytes)

    def store(self, address: int, value: int, nbytes: int) -> None:
        if MMIO_LO <= address < MMIO_HI:
            self._recorder.mmio_store(address, value, nbytes)
            return
        self._recorder.mem_store(address, value, nbytes)


def reference_effects(op: tuple, values: list[int],
                      ) -> tuple[bool, tuple, list]:
    """Ground-truth effects of one plan op on a probe register file.

    Runs the *plan-bound* registry semantic (``op[OP_SEMANTIC]``) under
    a recording probe context — mirroring the interpreter's guard
    handling — and returns ``(executed, results, events)`` where
    ``results`` are the 32-bit-masked destination values in
    ``op[OP_DSTS]`` order and ``events`` is the memory access stream.
    """
    guard = op[OP_GUARD]
    if guard != 1 and not (values[guard] & 1):
        return False, (), []
    recorder = MemRecorder()
    ctx = ProbeCtx(recorder)
    srcs = tuple(values[reg] for reg in op[OP_SRCS])
    results = op[OP_SEMANTIC](ctx, srcs, op[OP_IMM])
    masked = tuple(value & M32 for value in results)
    return True, masked, recorder.events


# ---------------------------------------------------------------------------
# Independent obligation derivation (write schedule, jump geometry,
# fetch plan).  Everything below reads only the ExecutionPlan.
# ---------------------------------------------------------------------------

@dataclass
class WriteObligation:
    """One architectural register write a region must perform.

    ``t_w``/``t_c`` are region-relative issue and landing steps;
    ``dynamic`` means the write must go through the interpreter's
    pending/heap push protocol, otherwise it must be held in a local
    and committed at step ``t_c`` (or materialized at region exits
    when ``t_c`` falls outside the region).
    """

    index: int          # issue-order position among all region writes
    step: int           # region-relative issue step (== t_w)
    slot: int           # position of the op within its instruction
    reg: int
    t_w: int
    t_c: int
    latency: int
    guarded: bool
    dynamic: bool


@dataclass
class Schedule:
    """Derived write obligations of one region."""

    obligations: list[WriteObligation]
    by_site: dict[tuple[int, int], list[WriteObligation]]
    commits_at: dict[int, list[WriteObligation]]
    escaped: list[WriteObligation]

    @property
    def static_obligations(self) -> list[WriteObligation]:
        return [ob for ob in self.obligations if not ob.dynamic]


def derive_schedule(plan, head: int, length: int,
                    strict: bool) -> Schedule:
    """Re-derive the static/escaped/dynamic write partition from the
    plan alone (DESIGN.md section 13, independent implementation).

    A write may commit statically (direct ``values[reg] =`` at its
    landing step) unless any demotion applies:

    * the op produces multiple destinations (zip-driven push order);
    * under strict timing, some read of the register falls strictly
      between issue and landing — the interpreter's hazard scan must
      find the write in ``pending`` to raise;
    * two writes share ``(reg, landing step)`` and either tie on the
      issue step or mix with a demoted write — the interpreter's
      queue order could not be reproduced by direct assignment.
    """
    obligations: list[WriteObligation] = []
    by_site: dict[tuple[int, int], list[WriteObligation]] = {}
    for t in range(length):
        for j, op in enumerate(plan.ops[head + t]):
            if op[OP_IS_JUMP] or op[OP_NAME] == "nop" or not op[OP_DSTS]:
                continue
            multi = len(op[OP_DSTS]) > 1
            site: list[WriteObligation] = []
            for reg in op[OP_DSTS]:
                ob = WriteObligation(
                    index=len(obligations), step=t, slot=j, reg=reg,
                    t_w=t, t_c=t + op[OP_LATENCY],
                    latency=op[OP_LATENCY],
                    guarded=op[OP_GUARD] != 1, dynamic=multi)
                site.append(ob)
                obligations.append(ob)
            by_site[(t, j)] = site

    if strict:
        read_steps: dict[int, set[int]] = {}
        for t in range(length):
            for op in plan.ops[head + t]:
                guard = op[OP_GUARD]
                if guard != 1:
                    read_steps.setdefault(guard, set()).add(t)
                for reg in op[OP_SRCS]:
                    if reg not in (0, 1):
                        read_steps.setdefault(reg, set()).add(t)
        for ob in obligations:
            if ob.dynamic:
                continue
            if any(ob.t_w < t_r < ob.t_c
                   for t_r in read_steps.get(ob.reg, ())):
                ob.dynamic = True

    groups: dict[tuple[int, int], list[WriteObligation]] = {}
    for ob in obligations:
        groups.setdefault((ob.reg, ob.t_c), []).append(ob)
    for group in groups.values():
        if len(group) < 2:
            continue
        issue_steps = {ob.t_w for ob in group}
        if len(issue_steps) != len(group) or any(ob.dynamic
                                                 for ob in group):
            for ob in group:
                ob.dynamic = True

    commits_at: dict[int, list[WriteObligation]] = {}
    escaped: list[WriteObligation] = []
    for ob in obligations:
        if ob.dynamic:
            continue
        if ob.t_c < length:
            commits_at.setdefault(ob.t_c, []).append(ob)
        else:
            escaped.append(ob)
    for group in commits_at.values():
        group.sort(key=lambda ob: ob.t_w)
    return Schedule(obligations=obligations, by_site=by_site,
                    commits_at=commits_at, escaped=escaped)


@dataclass(frozen=True)
class Geometry:
    """Static jump geometry of a region, derived from the plan."""

    head: int
    length: int
    jump_pos: int | None       # absolute instruction index, or None
    jump_name: str | None
    target: int | None         # resolved taken target (jump index)
    delay: int
    #: "static-taken" | "dynamic" | "fallthrough" | "none"
    kind: str

    def expected_pc(self, retired: int, taken: bool) -> int:
        """Interpreter ``pc`` after ``retired`` steps when the raise
        interrupted the region (spill slot 11)."""
        if taken and retired == self.length and self.target is not None:
            return self.target
        return self.head + retired

    def expected_pending_jump(self, retired: int, taken: bool):
        """Interpreter ``_pending_jump`` after ``retired`` steps
        (spill slot 12): armed at ``(delay, target)`` on the jump's
        step and counted down once per later retired step."""
        if not taken or self.target is None or retired >= self.length:
            return None
        rel = self.jump_pos - self.head  # type: ignore[operator]
        return (self.delay - (retired - rel), self.target)

    def expected_next_pc(self, taken: bool) -> int:
        """Region exit pc for a completed run (return element 0)."""
        if taken and self.target is not None:
            return self.target
        return self.head + self.length


def derive_geometry(plan, head: int, length: int) -> Geometry:
    """Jump geometry from the plan: at most one supported jump, whose
    delay window the region must fully enclose."""
    jump_pos = jump_name = target = None
    kind = "none"
    for t in range(length):
        index = head + t
        for op in plan.ops[index]:
            if not op[OP_IS_JUMP]:
                continue
            if jump_pos is not None:
                raise ValueError(
                    f"region {head}+{length} contains a second jump "
                    f"at instruction {index}")
            jump_pos = index
            jump_name = op[OP_NAME]
            target = op[OP_JUMP_INDEX]
            if op[OP_NAME] == "jmpf":
                kind = "fallthrough"
                target = None
            elif op[OP_GUARD] == 1:
                kind = "static-taken"
            else:
                kind = "dynamic"
    return Geometry(head=head, length=length, jump_pos=jump_pos,
                    jump_name=jump_name, target=target,
                    delay=plan.jump_delay_slots, kind=kind)


@dataclass(frozen=True)
class FetchPlan:
    """Constant-folded front-end obligations of one region."""

    #: Step 0's chunk range (the dynamic walk's bounds).
    head_first: int
    head_last: int
    #: Per later step: the statically known fetch address list.
    fetches: tuple[tuple[int, ...], ...]
    #: Chunk provably last-fetched when the region exits normally.
    final_chunk: int


def derive_fetch_plan(plan, head: int, length: int) -> FetchPlan:
    """Re-derive the static fetch lists: after instruction ``i`` of a
    sequential run the last-fetched chunk is ``chunk_last[i]``, so
    each later step fetches exactly the chunks of its own span that
    differ from it."""
    from repro.core.processor import CODE_BASE
    from repro.mem.icache import FETCH_CHUNK_BYTES

    abs_first, abs_last = plan.code_chunks(CODE_BASE)
    chunk = FETCH_CHUNK_BYTES
    later: list[tuple[int, ...]] = []
    for t in range(1, length):
        i = head + t
        prev_last = abs_last[i - 1]
        later.append(tuple(
            c for c in range(abs_first[i], abs_last[i] + chunk, chunk)
            if c != prev_last))
    return FetchPlan(head_first=abs_first[head], head_last=abs_last[head],
                     fetches=tuple(later),
                     final_chunk=abs_last[head + length - 1])
