"""Enumeration of every verifiable program the repo can build.

The verifier's primary consumers — ``python -m repro.analysis``, the
``--verify`` flag of :mod:`repro.eval.runner`, and the zero-false-
positive regression tests — all need the same answer to "which linked
programs exist?".  This module is that answer: the Table 5 kernel
suite compiled for both family members, plus the TM3270-only
optimized builders (super-operation, collapsed-load, and CABAC
variants) that exercise the new-instruction encodings.

This module imports the assembler and kernel layers, so it must never
be imported from the analysis core (:mod:`repro.analysis.verifier`
and friends) — only from entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:
    from repro.analysis.verifier import VerificationReport

from repro.asm.ir import AsmProgram
from repro.asm.link import LinkedProgram, link
from repro.asm.target import TM3260_TARGET, TM3270_TARGET, Target
from repro.kernels import (
    cabac_kernel,
    memops,
    motion,
    mp3proxy,
    texture,
)
from repro.kernels.registry import TABLE5_KERNELS


@dataclass(frozen=True)
class CatalogEntry:
    """One (program builder, target) pair the verifier covers."""

    name: str
    target: Target
    build: Callable[[], AsmProgram]

    @property
    def label(self) -> str:
        return f"{self.name}@{self.target.name}"

    def compile(self) -> LinkedProgram:
        """Build, schedule, and link (without the verify post-pass)."""
        return link(self.build(), self.target)


#: TM3270-only builders: super-operations, collapsed loads, CABAC.
_TM3270_EXTRAS: tuple[tuple[str, Callable[[], AsmProgram]], ...] = (
    ("memcpy_super", memops.build_memcpy_super),
    ("cabac_plain", cabac_kernel.build_cabac_plain),
    ("cabac_super", cabac_kernel.build_cabac_super),
    ("texture_plain", texture.build_texture_plain),
    ("texture_super", texture.build_texture_super),
    ("me_frac_plain", motion.build_me_frac_plain),
    ("me_frac_ld8", motion.build_me_frac_ld8),
    ("mp3proxy", mp3proxy.build_mp3proxy),
)


def catalog() -> list[CatalogEntry]:
    """Every program/target pair, Table 5 suite first."""
    entries = [
        CatalogEntry(case.name, target, case.build)
        for case in TABLE5_KERNELS
        for target in (TM3260_TARGET, TM3270_TARGET)
    ]
    entries.extend(
        CatalogEntry(name, TM3270_TARGET, build)
        for name, build in _TM3270_EXTRAS
    )
    return entries


def entries_matching(names: list[str] | None = None,
                     target_name: str | None = None) -> list[CatalogEntry]:
    """Filter the catalog by kernel name and/or target name."""
    entries = catalog()
    if names:
        wanted = set(names)
        known = {entry.name for entry in entries}
        missing = wanted - known
        if missing:
            raise KeyError(
                f"unknown kernel(s) {sorted(missing)}; "
                f"known: {sorted(known)}")
        entries = [entry for entry in entries if entry.name in wanted]
    if target_name:
        entries = [entry for entry in entries
                   if entry.target.name == target_name]
    return entries


def verify_all(entries: list[CatalogEntry] | None = None, obs=None,
               ) -> Iterator[tuple[CatalogEntry, VerificationReport]]:
    """Verify every entry; yields ``(entry, report)`` pairs.

    Compilation failures are not swallowed: a builder or scheduler
    exception means the catalog itself regressed, which the caller
    should see as a crash, not a diagnostic.
    """
    from repro.analysis.verifier import verify_program

    for entry in (catalog() if entries is None else entries):
        yield entry, verify_program(entry.compile(), obs=obs)
