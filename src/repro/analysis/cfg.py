"""Control-flow reconstruction over linked VLIW programs.

The verifier reasons about *issue order*: which instruction can issue
immediately after which.  On the TriMedia that relation is linear
except at jumps, and jumps are delayed — a jump issuing at ``pc``
transfers control only after the target's ``jump_delay_slots``
further instructions have issued (Section 3), so the control-flow edge
leaves the *last shadow instruction* ``pc + delay_slots``, not the
jump itself.  Instructions inside the shadow always execute.

:func:`build_graph` reconstructs that successor relation from a
:class:`~repro.asm.link.LinkedProgram`, resolving jump immediates back
to instruction indices through the address map.  Structural problems
found on the way — a jump whose shadow runs off the program end,
a jump inside another jump's shadow, a target that is not an
instruction boundary — are reported as :class:`Diagnostic` records
rather than exceptions, so one pass surfaces every violation.

Taken-ness is decided statically where the guard allows: ``jmpi`` and
``jmpt`` guarded by the constant-true register always transfer,
any jump guarded by r0 never executes; everything else contributes
both the taken and fall-through edges (a sound over-approximation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import (
    RULE_JUMP,
    SEV_ERROR,
    Diagnostic,
    format_location,
)
from repro.isa.encoding import TRUE_GUARD, EncodedOp


@dataclass(frozen=True)
class JumpSite:
    """One jump operation, resolved against the address map.

    ``target_index`` is the instruction index control transfers to, or
    ``None`` when the jump halts (target at or past the image end) or
    could not be resolved.  ``transfer_pc`` is the shadow's last
    instruction — the node the taken edge leaves from — or ``None``
    when the shadow runs past the program end.
    """

    pc: int
    op: EncodedOp
    target_index: int | None
    transfer_pc: int | None
    always_taken: bool
    never_taken: bool


@dataclass
class ProgramGraph:
    """Issue-order successor relation of a linked program."""

    count: int
    succs: list[tuple[int, ...]]
    jumps: list[JumpSite]
    reachable: list[bool]

    def jump_at(self, pc: int) -> JumpSite | None:
        for site in self.jumps:
            if site.pc == pc:
                return site
        return None


def _classify_taken(op: EncodedOp) -> tuple[bool, bool]:
    """Return ``(always_taken, never_taken)`` for a jump operation."""
    if op.guard == 0:
        # Guarded by constant r0: the operation never executes.
        return False, True
    if op.guard == TRUE_GUARD:
        if op.name in ("jmpi", "jmpt"):
            return True, False
        if op.name == "jmpf":
            return False, True
    return False, False


def build_graph(program) -> tuple[ProgramGraph, list[Diagnostic]]:
    """Reconstruct the successor graph; returns it with diagnostics."""
    count = len(program.instructions)
    delay = program.target.jump_delay_slots
    diagnostics: list[Diagnostic] = []
    jumps: list[JumpSite] = []

    # Linear successors first; jump transfer edges rewrite them below.
    succs: list[set[int]] = [
        {pc + 1} if pc + 1 < count else set() for pc in range(count)
    ]

    for pc, instr in enumerate(program.instructions):
        for op in instr.ops:
            try:
                if not op.spec.is_jump:
                    continue
            except KeyError:
                continue  # unknown mnemonic: the encoding rule reports it
            always_taken, never_taken = _classify_taken(op)

            target_index: int | None = None
            resolved = True
            if op.imm is None:
                diagnostics.append(Diagnostic(
                    RULE_JUMP, SEV_ERROR,
                    "jump with unresolved target immediate",
                    pc=pc, slot=op.slot, op=op.name))
                resolved = False
            elif op.imm >= program.nbytes:
                target_index = None  # halts: legal program exit
            else:
                try:
                    target_index = program.index_of_address(op.imm)
                except KeyError:
                    diagnostics.append(Diagnostic(
                        RULE_JUMP, SEV_ERROR,
                        f"jump target {op.imm:#x} is not an instruction "
                        f"boundary",
                        pc=pc, slot=op.slot, op=op.name))
                    resolved = False

            transfer_pc: int | None = pc + delay
            if transfer_pc >= count:
                diagnostics.append(Diagnostic(
                    RULE_JUMP, SEV_ERROR,
                    f"only {count - 1 - pc} of {delay} delay-slot "
                    f"instructions before the program end; the jump "
                    f"never completes",
                    pc=pc, slot=op.slot, op=op.name))
                transfer_pc = None

            if not never_taken and resolved and transfer_pc is not None:
                if always_taken:
                    succs[transfer_pc] = set()
                if target_index is not None:
                    succs[transfer_pc].add(target_index)

            jumps.append(JumpSite(pc, op, target_index, transfer_pc,
                                  always_taken, never_taken))

    # A jump issuing inside another jump's delay shadow silently
    # cancels the first transfer — always a schedule bug.
    jump_pcs = sorted({site.pc for site in jumps
                       if not site.never_taken})
    for earlier, later in zip(jump_pcs, jump_pcs[1:]):
        if later <= earlier + delay:
            diagnostics.append(Diagnostic(
                RULE_JUMP, SEV_ERROR,
                f"jump inside the {delay}-instruction delay shadow of "
                f"the jump at {format_location(pc=earlier)}",
                pc=later))

    reachable = [False] * count
    if count:
        stack = [0]
        reachable[0] = True
        while stack:
            node = stack.pop()
            for succ in succs[node]:
                if not reachable[succ]:
                    reachable[succ] = True
                    stack.append(succ)

    graph = ProgramGraph(
        count=count,
        succs=[tuple(sorted(nodes)) for nodes in succs],
        jumps=jumps,
        reachable=reachable,
    )
    return graph, diagnostics
