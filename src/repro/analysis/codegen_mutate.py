"""Doctored-codegen mutation harness for the translation validator.

The PR 3 pattern, aimed at generated *region code* instead of linked
programs: take the real source ``_generate`` emits for a region,
apply a rule-targeted AST mutation (drop a commit, shift its cycle,
skip an exit materialization, swap spill slots, corrupt a mask, ...),
re-render with :func:`ast.unparse`, and demand that
:func:`repro.analysis.transval.validate_region` rejects the mutant
with the expected rule identifier.  A mutator that survives validation
is a hole in the validator, not a feature of the codegen.

Mutators share the validator's AST matchers deliberately: harness and
validator agreeing on *where* a commit sits is fine — the independence
that matters is between the validator and ``_generate``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.diagnostics import (
    RULE_REGION_COMMIT,
    RULE_REGION_EFFECT,
    RULE_REGION_EXIT,
    RULE_REGION_STRUCT,
)
from repro.analysis.transval import (
    RegionValidation,
    _is_name,
    _is_watchdog,
    _match_commit,
    _match_scan,
    _match_tk_true,
    generate_source,
    validate_region,
)

@dataclass(frozen=True)
class SourceMutant:
    """One doctored region source and the rule that must catch it."""

    name: str
    rule: str
    description: str
    source: str


@dataclass
class MutantOutcome:
    """Validation verdict for one mutant."""

    program: str
    head: int
    strict: bool
    mutant: SourceMutant
    validation: RegionValidation

    @property
    def caught(self) -> bool:
        return (not self.validation.ok
                and any(d.rule == self.mutant.rule
                        for d in self.validation.diagnostics))


@dataclass
class HarnessReport:
    """Aggregate result of a mutation sweep."""

    outcomes: list[MutantOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def caught(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.caught)

    @property
    def missed(self) -> list[MutantOutcome]:
        return [outcome for outcome in self.outcomes
                if not outcome.caught]

    def format(self) -> str:
        lines = [f"{self.caught}/{self.total} mutants caught with the "
                 "expected rule"]
        for outcome in self.missed:
            mutant = outcome.mutant
            verdict = ("validated clean" if outcome.validation.ok else
                       "caught with rules " + ", ".join(sorted(
                           {d.rule
                            for d in outcome.validation.diagnostics})))
            lines.append(
                f"  MISSED {mutant.name} expecting {mutant.rule} on "
                f"{outcome.program!r} head {outcome.head} "
                f"strict={outcome.strict}: {verdict} "
                f"({mutant.description})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tree navigation
# ---------------------------------------------------------------------------

def _function(tree: ast.Module) -> ast.FunctionDef:
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return fn


def _spine(tree: ast.Module) -> ast.Try:
    for stmt in _function(tree).body:
        if isinstance(stmt, ast.Try):
            return stmt
    raise AssertionError("generated source lost its try spine")


def _step_stmts(tree: ast.Module) -> list[ast.stmt]:
    """Try-body statements up to and including the last watchdog.

    A slice copy — mutators iterating it must edit *inner* nodes of
    the shared statements, never replace list elements.
    """
    body = _spine(tree).body
    last = max((i for i, stmt in enumerate(body) if _is_watchdog(stmt)),
               default=-1)
    return body[:last + 1]


def _exit_range(tree: ast.Module) -> tuple[list[ast.stmt], int, int]:
    """(try body, first exit index, return index)."""
    body = _spine(tree).body
    last = max((i for i, stmt in enumerate(body) if _is_watchdog(stmt)),
               default=-1)
    return body, last + 1, len(body) - 1


def _perturb_first_const(node: ast.AST,
                         predicate=None) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and type(child.value) is int:
            if predicate is None or predicate(child.value):
                child.value += 1
                return True
    return False


# ---------------------------------------------------------------------------
# Mutators.  Each takes a freshly parsed tree and a 0-based occurrence
# index; returns True when it found and mutated that occurrence.
# ---------------------------------------------------------------------------

def _commit_sites(tree) -> list[tuple[list, int]]:
    body = _spine(tree).body
    return [(body, i) for i, stmt in enumerate(body)
            if _match_commit(stmt) is not None]


def _mut_drop_commit(tree, n: int) -> bool:
    sites = _commit_sites(tree)
    if n >= len(sites):
        return False
    body, i = sites[n]
    body[i] = ast.Pass()
    return True


def _mut_shift_commit(tree, n: int) -> bool:
    """Move a static commit one step later (off-by-one commit cycle)."""
    sites = _commit_sites(tree)
    if n >= len(sites):
        return False
    body, i = sites[n]
    nxt = next((k for k in range(i + 1, len(body))
                if _is_watchdog(body[k])), None)
    if nxt is None or nxt + 1 >= len(body) \
            or not any(_is_watchdog(body[k])
                       for k in range(nxt + 1, len(body))):
        return False            # would land in the exit tail
    stmt = body.pop(i)
    body.insert(nxt, stmt)      # nxt shifted down by the pop: lands
    return True                 # just after the next step's start

def _mut_commit_wrong_reg(tree, n: int) -> bool:
    sites = _commit_sites(tree)
    if n >= len(sites):
        return False
    body, i = sites[n]
    stmt = body[i]
    while isinstance(stmt, ast.If):
        stmt = stmt.body[0]
    assert isinstance(stmt, ast.Assign)
    target = stmt.targets[0]
    assert isinstance(target, ast.Subscript)
    assert isinstance(target.slice, ast.Constant)
    target.slice.value += 1
    return True


def _hold_assigns(tree) -> list[ast.Assign]:
    import re
    hold = re.compile(r"_w\d+\Z")
    out = []
    for stmt in ast.walk(_spine(tree)):
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and hold.match(stmt.targets[0].id)
                and not (isinstance(stmt.value, ast.Constant)
                         and stmt.value.value is None)):
            out.append(stmt)
    return out


def _mut_drop_hold(tree, n: int) -> bool:
    holds = _hold_assigns(tree)
    if n >= len(holds):
        return False
    stmt = holds[n]
    stmt.targets = [ast.Name(id="_mutated_sink", ctx=ast.Store())]
    return True


def _mut_wrong_mask(tree, n: int) -> bool:
    """Shrink a width mask as a wrong-width template would.

    Always below the narrowest load width (8 bits) so the mutant can
    never be equivalent — e.g. ``& M32`` over a byte load.
    """
    narrower = dict.fromkeys((4294967295, 65535, 255), 15)
    seen = 0
    for stmt in _step_stmts(tree):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.BitAnd)
                    and isinstance(node.right, ast.Constant)
                    and node.right.value in narrower):
                if seen == n:
                    node.right.value = narrower[node.right.value]
                    return True
                seen += 1
    return False


def _mut_skip_exit_materialize(tree, n: int) -> bool:
    if n:
        return False
    body, start, ret = _exit_range(tree)
    if start >= ret:
        return False            # nothing escapes this region
    del body[start:ret]
    return True


def _mut_drop_spill_materialize(tree, n: int) -> bool:
    handler = _spine(tree).handlers[0].body
    seen = 0
    for i, stmt in enumerate(handler):
        if (isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.BoolOp)
                and isinstance(stmt.test.op, ast.And)):
            if seen == n:
                handler[i] = ast.Pass()
                return True
            seen += 1
    return False


def _spill_assigns(tree) -> dict[int, ast.Assign]:
    out: dict[int, ast.Assign] = {}
    for stmt in ast.walk(_spine(tree).handlers[0]):
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Subscript)
                and _is_name(stmt.targets[0].value, "spill")
                and isinstance(stmt.targets[0].slice, ast.Constant)):
            out[stmt.targets[0].slice.value] = stmt
    return out


def _mut_swap_spill_slots(tree, n: int) -> bool:
    if n:
        return False
    spills = _spill_assigns(tree)
    if 11 not in spills or 12 not in spills:
        return False
    spills[11].targets[0].slice.value = 12
    spills[12].targets[0].slice.value = 11
    return True


def _mut_spill_pc_off_by_one(tree, n: int) -> bool:
    if n:
        return False
    spills = _spill_assigns(tree)
    if 11 not in spills:
        return False
    return _perturb_first_const(spills[11].value)


def _mut_materialize_due(tree, n: int) -> bool:
    """Corrupt a materialization's due cycle (``now0 + t_c``)."""
    seen = 0
    for stmt in ast.walk(_spine(tree)):
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and _is_name(stmt.targets[0], "_e")
                and isinstance(stmt.value, ast.Tuple)
                and len(stmt.value.elts) == 3):
            due = stmt.value.elts[0]
            if (isinstance(due, ast.BinOp)
                    and _is_name(due.left, "now0")
                    and isinstance(due.right, ast.Constant)):
                if seen == n:
                    due.right.value += 1
                    return True
                seen += 1
    return False


def _mut_push_latency(tree, n: int) -> bool:
    seen = 0
    for stmt in _step_stmts(tree):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and _is_name(node.func, "heappush")
                    and len(node.args) == 2
                    and isinstance(node.args[1], ast.Tuple)):
                due = node.args[1].elts[0]
                if (isinstance(due, ast.BinOp)
                        and _is_name(due.left, "now")
                        and isinstance(due.right, ast.Constant)):
                    if seen == n:
                        due.right.value += 1
                        return True
                    seen += 1
    return False


def _mut_push_wrong_reg(tree, n: int) -> bool:
    seen = 0
    for stmt in _step_stmts(tree):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and _is_name(node.func, "heappush")
                    and len(node.args) == 2
                    and isinstance(node.args[1], ast.Tuple)
                    and isinstance(node.args[1].elts[1], ast.Constant)):
                if seen == n:
                    node.args[1].elts[1].value += 1
                    return True
                seen += 1
    return False


def _mut_drop_scan(tree, n: int) -> bool:
    seen = 0

    def visit(stmts) -> bool:
        nonlocal seen
        for i, stmt in enumerate(stmts):
            if _match_scan(stmt) is not None:
                if seen == n:
                    stmts[i] = ast.Pass()
                    return True
                seen += 1
                continue
            for attr in ("body", "orelse"):
                children = getattr(stmt, attr, None)
                if children and visit(children):
                    return True
        return False

    return visit(_spine(tree).body)


def _mut_drop_commit_check(tree, n: int) -> bool:
    body = _spine(tree).body
    seen = 0
    for i, stmt in enumerate(body):
        if (isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.BoolOp)
                and isinstance(stmt.test.op, ast.And)
                and _is_name(stmt.test.values[0], "heap")):
            if seen == n:
                body[i] = ast.Pass()
                return True
            seen += 1
    return False


def _mut_wrong_return_pc(tree, n: int) -> bool:
    if n:
        return False
    body = _spine(tree).body
    ret = body[-1]
    if not isinstance(ret, ast.Return) \
            or not isinstance(ret.value, ast.Tuple):
        return False
    return _perturb_first_const(ret.value.elts[0])


def _mut_wrong_fetch(tree, n: int) -> bool:
    seen = 0
    for stmt in _step_stmts(tree):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and _is_name(node.func, "icache_fetch")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)):
                if seen == n:
                    node.args[0].value += 64
                    return True
                seen += 1
    return False


def _mut_drop_tk(tree, n: int) -> bool:
    seen = 0

    def visit(stmts) -> bool:
        nonlocal seen
        for i, stmt in enumerate(stmts):
            if _match_tk_true(stmt):
                if seen == n:
                    stmts[i] = ast.Pass()
                    return True
                seen += 1
            for attr in ("body", "orelse"):
                children = getattr(stmt, attr, None)
                if children and visit(children):
                    return True
        return False

    return visit(_spine(tree).body)


def _mut_swallow_raise(tree, n: int) -> bool:
    if n:
        return False
    handler = _spine(tree).handlers[0].body
    if handler and isinstance(handler[-1], ast.Raise) \
            and handler[-1].exc is None:
        handler[-1] = ast.Pass()
        return True
    return False


#: (name, expected rule, description, mutator, max occurrences/region).
MUTATORS: tuple[tuple[str, str, str, Callable, int], ...] = (
    ("drop-commit", RULE_REGION_COMMIT,
     "static commit removed from its landing step", _mut_drop_commit, 2),
    ("commit-off-by-one", RULE_REGION_COMMIT,
     "static commit shifted one step late", _mut_shift_commit, 2),
    ("commit-wrong-reg", RULE_REGION_COMMIT,
     "static commit retargeted to the wrong register",
     _mut_commit_wrong_reg, 2),
    ("drop-hold", RULE_REGION_COMMIT,
     "write-site hold assignment dropped", _mut_drop_hold, 2),
    ("wrong-mask", RULE_REGION_EFFECT,
     "result/store/address mask corrupted", _mut_wrong_mask, 3),
    ("push-wrong-reg", RULE_REGION_EFFECT,
     "pending push heap entry retargeted", _mut_push_wrong_reg, 2),
    ("push-latency-off-by-one", RULE_REGION_COMMIT,
     "pending push due cycle off by one", _mut_push_latency, 2),
    ("drop-scan", RULE_REGION_COMMIT,
     "strict-mode hazard scan removed", _mut_drop_scan, 2),
    ("drop-commit-check", RULE_REGION_COMMIT,
     "per-step dynamic commit check removed", _mut_drop_commit_check, 2),
    ("skip-exit-materialize", RULE_REGION_EXIT,
     "escaped writes never re-enter pending on the normal exit",
     _mut_skip_exit_materialize, 1),
    ("drop-spill-materialize", RULE_REGION_EXIT,
     "in-flight write dropped from the BaseException spill",
     _mut_drop_spill_materialize, 2),
    ("swap-spill-slots", RULE_REGION_EXIT,
     "spill pc and pending-jump slots swapped", _mut_swap_spill_slots,
     1),
    ("spill-pc-off-by-one", RULE_REGION_EXIT,
     "spilled pc off by one", _mut_spill_pc_off_by_one, 1),
    ("materialize-due-off-by-one", RULE_REGION_EXIT,
     "materialized pending entry lands a cycle late",
     _mut_materialize_due, 2),
    ("swallow-raise", RULE_REGION_EXIT,
     "spill handler swallows the exception", _mut_swallow_raise, 1),
    ("wrong-return-pc", RULE_REGION_STRUCT,
     "region exit pc corrupted", _mut_wrong_return_pc, 1),
    ("wrong-fetch-addr", RULE_REGION_STRUCT,
     "constant-folded fetch address corrupted", _mut_wrong_fetch, 2),
    ("drop-tk", RULE_REGION_STRUCT,
     "taken-jump flag flip removed", _mut_drop_tk, 1),
)


def mutants_for(plan, spec, strict: bool,
                source: str | None = None) -> list[SourceMutant]:
    """All applicable mutants of one region's generated source."""
    if source is None:
        source = generate_source(plan, spec, strict)
    mutants: list[SourceMutant] = []
    for name, rule, description, mutator, limit in MUTATORS:
        for occurrence in range(limit):
            tree = ast.parse(source)
            if not mutator(tree, occurrence):
                break
            mutants.append(SourceMutant(
                name=f"{name}#{occurrence}", rule=rule,
                description=description,
                source=ast.unparse(ast.fix_missing_locations(tree))))
    return mutants


def run_harness(case_names: tuple[str, ...] | None = None,
                strict_modes: tuple[bool, ...] = (False, True),
                min_mutants: int = 0) -> HarnessReport:
    """Sweep mutants over catalog regions and validate each.

    ``case_names`` selects catalog programs (None = a representative
    default mix covering plain, guarded, memory, multi-destination,
    and jump-free shapes).
    """
    from repro.asm.link import compile_program
    from repro.core.plan import plan_for
    from repro.core.trace import TraceConfig, regions_for
    from repro.eval.lockstep import lockstep_catalog

    if case_names is None:
        case_names = ("memset", "memcpy", "filter", "memcpy_super",
                      "cabac_plain")
    catalog = {case.name: case for case in lockstep_catalog()}
    report = HarnessReport()
    for name in case_names:
        case = catalog[name]
        linked = compile_program(case.build(), case.config.target)
        plan = plan_for(linked)
        regions = regions_for(plan, TraceConfig())
        for head, spec in sorted(regions.items()):
            for strict in strict_modes:
                source = generate_source(plan, spec, strict)
                for mutant in mutants_for(plan, spec, strict,
                                          source=source):
                    validation = validate_region(
                        plan, spec, strict, source=mutant.source)
                    report.outcomes.append(MutantOutcome(
                        program=name, head=head, strict=strict,
                        mutant=mutant, validation=validation))
    if min_mutants and report.total < min_mutants:
        raise AssertionError(
            f"harness produced {report.total} mutants, "
            f"needs >= {min_mutants}")
    return report
