"""Diagnostic records and location formatting for static verification.

Every finding of the static verifier (:mod:`repro.analysis.verifier`)
is a structured :class:`Diagnostic`: a rule identifier from the fixed
catalog below, a severity, the program location (instruction index,
issue slot, mnemonic), and a human-readable message.  Keeping the
record structured — instead of raising on the first problem — lets one
verification pass report every violation in a program, lets tests
assert on rule families, and lets the observability layer export
findings as events.

:func:`format_location` is the one place program locations are turned
into text; both the scheduler's :class:`SchedulingError` messages and
the verifier's diagnostics go through it so compile-time and
verify-time reports read the same.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severities.  ``error`` findings make a program illegal for the
#: exposed pipeline (it would compute wrong values or fail to decode);
#: ``warning`` findings are suspicious but not provably wrong.
SEV_ERROR = "error"
SEV_WARNING = "warning"

#: Rule identifiers — the catalog (DESIGN.md section 9).
RULE_LATENCY = "latency-hazard"
RULE_WRITEBACK = "writeback-collision"
RULE_SLOT = "slot-legality"
RULE_PAIRING = "superop-pairing"
RULE_MEMPORT = "mem-port"
RULE_JUMP = "jump-shape"
RULE_ENCODING = "encoding"
RULE_DEFUSE = "def-use"

#: All rule identifiers, in catalog order.
RULE_IDS = (
    RULE_LATENCY,
    RULE_WRITEBACK,
    RULE_SLOT,
    RULE_PAIRING,
    RULE_MEMPORT,
    RULE_JUMP,
    RULE_ENCODING,
    RULE_DEFUSE,
)

#: Rule identifiers of the trace-region translation validator
#: (:mod:`repro.analysis.transval`, DESIGN.md section 14).  They form
#: a separate family: these judge *generated region code* against the
#: ExecutionPlan, not linked programs against the ISA contract.
RULE_REGION_EFFECT = "region-effect"
RULE_REGION_COMMIT = "region-commit"
RULE_REGION_EXIT = "region-exit"
RULE_REGION_STRUCT = "region-structure"

#: Translation-validator rule identifiers, in catalog order.
REGION_RULE_IDS = (
    RULE_REGION_EFFECT,
    RULE_REGION_COMMIT,
    RULE_REGION_EXIT,
    RULE_REGION_STRUCT,
)


def format_location(*, block: str | None = None, row: int | None = None,
                    pc: int | None = None, slot: int | None = None,
                    op: str | None = None) -> str:
    """Render a program location consistently.

    ``block``/``row`` address scheduler-level locations (label plus
    instruction row within the block); ``pc``/``slot`` address linked
    locations (instruction index plus issue slot).  Any subset may be
    given; parts render in that order.
    """
    parts = []
    if block is not None:
        parts.append(f"block {block!r}")
    if row is not None:
        parts.append(f"row {row}")
    if pc is not None:
        parts.append(f"pc {pc}")
    if slot is not None:
        parts.append(f"slot {slot}")
    if op is not None:
        parts.append(f"op {op!r}")
    return ", ".join(parts) if parts else "<unknown location>"


@dataclass(frozen=True)
class Diagnostic:
    """One static-verification finding.

    ``pc`` is the linked instruction index the finding anchors to (the
    consumer for hazards), ``slot`` the issue slot when one applies,
    and ``op`` the mnemonic involved.
    """

    rule: str
    severity: str
    message: str
    pc: int | None = None
    slot: int | None = None
    op: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity == SEV_ERROR

    def format(self) -> str:
        """One-line rendering: ``error[rule] pc 3, slot 5: message``."""
        location = format_location(pc=self.pc, slot=self.slot, op=self.op)
        prefix = f"{self.severity}[{self.rule}]"
        if location:
            return f"{prefix} {location}: {self.message}"
        return f"{prefix}: {self.message}"

    def __str__(self) -> str:
        return self.format()
