"""Exposed-pipeline timing verification: latency and write-back rules.

The TM3270 has no hardware interlocks: a result written with latency
``L`` lands ``L`` issued instructions after its producer, and a read
in between silently observes the *old* value (the register file model
in :mod:`repro.core.regfile` raises in strict mode, the hardware just
computes garbage).  The compiler carries the proof obligation; this
module re-checks it over the final machine code.

The check is a forward may-analysis over the issue-order graph from
:mod:`repro.analysis.cfg`.  The abstract state at an instruction is
the set of *in-flight writes*: ``(register, remaining)`` mapped to the
producers that scheduled them, where ``remaining`` counts instructions
until write-back.  Crossing an edge ages every entry by one and drops
those that land (a write with ``remaining`` 0 committed before the
next instruction reads).  Joins union the states, so fall-through
block boundaries and loop back-edges are covered by construction —
exactly the places a per-block scheduler can get wrong.

Two rules are evaluated against the fixpoint:

* **latency hazard** — an operation reads (or is guarded by) a
  register with an in-flight write (``remaining >= 1``).  Reading in
  the producer's own issue slot is legal (it returns the old value;
  the scheduler's anti-dependence edges rely on it) and naturally
  falls outside the state, which only holds writes issued strictly
  earlier.
* **write-back collision** — two writes to one register retire in the
  same cycle: either two operations of one instruction with equal
  latency, or a new write whose due time matches an in-flight one.
  Which value survives would depend on structural tie-breaking the
  architecture does not define.
"""

from __future__ import annotations

from repro.analysis.cfg import ProgramGraph
from repro.analysis.diagnostics import (
    RULE_LATENCY,
    RULE_WRITEBACK,
    SEV_ERROR,
    Diagnostic,
    format_location,
)
from repro.core.regfile import NUM_REGS
from repro.isa.encoding import TRUE_GUARD

#: In-flight state: {(reg, remaining): frozenset((producer_pc, name, lat))}
_State = dict


def _op_rows(program):
    """Per-instruction ``(name, reads, writes)`` tuples.

    ``reads`` skips the constant registers r0/r1 (never in flight) and
    ``writes`` carries ``(reg, latency)`` for valid destination
    registers only — invalid ones are the register-validity rules'
    business, not timing's.
    """
    target = program.target
    rows = []
    for instr in program.instructions:
        ops = []
        for op in instr.ops:
            try:
                spec = op.spec
            except KeyError:
                continue
            reads = {reg for reg in op.srcs if 2 <= reg < NUM_REGS}
            if op.guard != TRUE_GUARD and 2 <= op.guard < NUM_REGS:
                reads.add(op.guard)
            writes = ()
            if not spec.is_jump:
                writes = tuple(
                    (reg, target.latency_of(spec))
                    for reg in op.dsts if 2 <= reg < NUM_REGS)
            ops.append((op.name, tuple(sorted(reads)), writes))
        rows.append(tuple(ops))
    return rows


def _flow_out(state: _State, row) -> _State:
    """Successor-edge state: merge this instruction's writes, age all."""
    out: _State = {}
    for (reg, remaining), producers in state.items():
        if remaining > 1:
            out[(reg, remaining - 1)] = producers
    for pc_writes in row:
        for reg, latency in pc_writes[2]:
            if latency > 1:
                key = (reg, latency - 1)
                out[key] = out.get(key, frozenset()) | pc_writes[3]
    return out


def check_hazards(program, graph: ProgramGraph) -> list[Diagnostic]:
    """Latency-hazard and write-back-collision analysis to fixpoint."""
    count = graph.count
    rows = _op_rows(program)
    # Tag each op with its own producer record once, so state entries
    # carry (pc, op name, latency) for the diagnostics.
    tagged = []
    for pc, row in enumerate(rows):
        tagged.append(tuple(
            (name, reads, writes,
             frozenset((pc, name, latency) for _reg, latency in writes))
            for name, reads, writes in row))

    states: list[_State | None] = [None] * count
    if count:
        states[0] = {}
    worklist = [0] if count else []
    while worklist:
        pc = worklist.pop()
        out = _flow_out(states[pc], tagged[pc])
        for succ in graph.succs[pc]:
            current = states[succ]
            if current is None:
                states[succ] = dict(out)
                worklist.append(succ)
                continue
            changed = False
            for key, producers in out.items():
                have = current.get(key)
                if have is None:
                    current[key] = producers
                    changed = True
                elif not producers <= have:
                    current[key] = have | producers
                    changed = True
            if changed:
                worklist.append(succ)

    diagnostics: list[Diagnostic] = []
    seen: set[tuple] = set()
    for pc in range(count):
        state = states[pc]
        if state is None:
            continue  # unreachable
        in_flight: dict[int, list] = {}
        for (reg, remaining), producers in state.items():
            in_flight.setdefault(reg, []).append((remaining, producers))
        for name, reads, writes, _tags in tagged[pc]:
            for reg in reads:
                for remaining, producers in in_flight.get(reg, ()):
                    for p_pc, p_name, p_lat in sorted(producers):
                        key = (RULE_LATENCY, pc, reg, p_pc)
                        if key in seen:
                            continue
                        seen.add(key)
                        distance = p_lat - remaining
                        diagnostics.append(Diagnostic(
                            RULE_LATENCY, SEV_ERROR,
                            f"reads r{reg} {distance} instruction(s) "
                            f"after its producer "
                            f"({format_location(pc=p_pc, op=p_name)}), "
                            f"which needs {p_lat}",
                            pc=pc, op=name))
            for reg, latency in writes:
                for remaining, producers in in_flight.get(reg, ()):
                    if remaining != latency:
                        continue
                    for p_pc, p_name, p_lat in sorted(producers):
                        key = (RULE_WRITEBACK, pc, reg, p_pc)
                        if key in seen:
                            continue
                        seen.add(key)
                        diagnostics.append(Diagnostic(
                            RULE_WRITEBACK, SEV_ERROR,
                            f"write to r{reg} (latency {latency}) "
                            f"retires in the same cycle as the write "
                            f"from {format_location(pc=p_pc, op=p_name)} "
                            f"(latency {p_lat})",
                            pc=pc, op=name))
        # Same-instruction collisions: two ops landing one register in
        # one cycle.
        landing: dict[tuple[int, int], list[str]] = {}
        for name, _reads, writes, _tags in tagged[pc]:
            for reg, latency in writes:
                landing.setdefault((reg, latency), []).append(name)
        for (reg, latency), names in landing.items():
            if len(names) > 1:
                key = (RULE_WRITEBACK, pc, reg, "same-instruction")
                if key not in seen:
                    seen.add(key)
                    diagnostics.append(Diagnostic(
                        RULE_WRITEBACK, SEV_ERROR,
                        f"operations {names} both write r{reg} with "
                        f"latency {latency} and retire together",
                        pc=pc))
    return diagnostics
