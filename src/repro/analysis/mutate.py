"""Fault injection: corrupt known-good schedules, expect diagnostics.

The verifier's tests need *known-bad* programs with a ground truth —
"this mutant violates exactly the latency rule" — and hand-writing
them would only test the hand-writer.  Instead, this module takes a
verified-clean :class:`~repro.asm.link.LinkedProgram` and applies
targeted corruptions modeled on real scheduler bugs: shrinking a
latency gap below the producer's latency, retiring two writes into one
register in the same cycle, moving an operation to a slot its
functional unit does not exist in, breaking a two-slot pairing,
truncating a jump's delay shadow, jumping inside a shadow, producing
an unencodable immediate, compressing a jump target, and reading a
never-written register.

Each corruption yields a :class:`Mutant` carrying the rebuilt program
(:func:`relink` recomputes addresses, retranslates jump immediates
through the index map, and re-encodes the image) and the rule family
the verifier is expected to flag.

This module imports the assembler layer, so — like
:mod:`repro.analysis.catalog` — it must not be imported from the
analysis core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.diagnostics import (
    RULE_DEFUSE,
    RULE_ENCODING,
    RULE_JUMP,
    RULE_LATENCY,
    RULE_MEMPORT,
    RULE_PAIRING,
    RULE_SLOT,
    RULE_WRITEBACK,
)
from repro.asm.link import LinkedProgram
from repro.core.regfile import NUM_REGS
from repro.isa.encoding import (
    TRUE_GUARD,
    EncodedInstruction,
    EncodedOp,
    encode_program,
    instruction_nbytes,
)

#: Fallback size for instructions the encoder refuses (28 bytes is the
#: uncompressed maximum, so addresses stay plausible).
MAX_INSTR_BYTES = 28

#: Issue slots of the machine.
ALL_SLOTS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Mutant:
    """One corrupted program with its expected diagnosis."""

    name: str
    rule: str  # rule family the verifier must flag
    description: str
    program: LinkedProgram


# ---------------------------------------------------------------------------
# Relinking a mutated instruction stream
# ---------------------------------------------------------------------------

def _safe_nbytes(instr: EncodedInstruction) -> int:
    try:
        return instruction_nbytes(instr)
    except ValueError:
        return MAX_INSTR_BYTES


def relink(program: LinkedProgram,
           instructions: list[EncodedInstruction],
           index_map: dict[int, int] | None = None,
           suffix: str = "mutant") -> LinkedProgram:
    """Rebuild a linked program around a mutated instruction stream.

    ``index_map`` maps original instruction indices to their new
    positions (omit an index to mark the instruction deleted; identity
    when ``None``).  Jump immediates are retranslated old address →
    old index → new index → new address, so mutations that move
    instructions keep targeting the same code.  An image that no
    longer encodes is recorded as empty — the verifier's business to
    diagnose, not ours to reject.
    """
    if index_map is None:
        index_map = {i: i for i in range(len(program.instructions))}

    addresses: list[int] = []
    offset = 0
    for instr in instructions:
        addresses.append(offset)
        offset += _safe_nbytes(instr)
    total = offset

    def translate(imm: int) -> int:
        if imm >= program.nbytes:
            return total  # a halt stays a halt
        try:
            old_index = program.index_of_address(imm)
        except KeyError:
            return imm  # already corrupt: preserve the corruption
        new_index = index_map.get(old_index)
        if new_index is None or new_index >= len(addresses):
            return total
        return addresses[new_index]

    rebuilt: list[EncodedInstruction] = []
    for instr in instructions:
        ops = []
        for op in instr.ops:
            try:
                is_jump = op.spec.is_jump
            except KeyError:
                is_jump = False
            if is_jump and op.imm is not None:
                new_imm = translate(op.imm)
                if new_imm != op.imm:
                    op = EncodedOp(op.name, op.slot, op.dsts, op.srcs,
                                   op.guard, new_imm)
            ops.append(op)
        rebuilt.append(EncodedInstruction(tuple(ops), instr.is_jump_target))

    try:
        image, _ = encode_program(rebuilt)
    except ValueError:
        image = b""

    labels = {}
    for label, old_index in program.labels.items():
        new_index = index_map.get(old_index)
        if new_index is not None:
            labels[label] = new_index
    return LinkedProgram(
        name=f"{program.name}~{suffix}",
        target=program.target,
        instructions=rebuilt,
        addresses=addresses,
        labels=labels,
        image=image,
        register_map=dict(program.register_map),
        entry_regs=program.entry_regs,
    )


# ---------------------------------------------------------------------------
# Shared program facts
# ---------------------------------------------------------------------------

class _Info:
    """Per-program facts every mutator keeps re-deriving."""

    def __init__(self, program: LinkedProgram) -> None:
        self.program = program
        self.target = program.target
        self.count = len(program.instructions)
        self.delay = program.target.jump_delay_slots
        self.jump_pcs: set[int] = set()
        self.defined: set[int] = {0, 1}
        self.defined.update(program.entry_regs)
        #: Per-pc: list of (op, spec) with resolvable specs.
        self.specced: list[list] = []
        for pc, instr in enumerate(program.instructions):
            row = []
            for op in instr.ops:
                try:
                    spec = op.spec
                except KeyError:
                    continue
                row.append((op, spec))
                if spec.is_jump:
                    self.jump_pcs.add(pc)
                else:
                    self.defined.update(
                        reg for reg in op.dsts if 2 <= reg < NUM_REGS)
            self.specced.append(row)

    def clean_window(self, lo: int, hi: int) -> bool:
        """No jumps in ``[lo - delay, hi]`` — purely linear issue flow."""
        return not any(pc in self.jump_pcs
                       for pc in range(max(0, lo - self.delay), hi + 1))

    def is_target(self, pc: int) -> bool:
        return self.program.instructions[pc].is_jump_target

    def occupied_slots(self, pc: int) -> set[int]:
        slots: set[int] = set()
        for op, spec in self.specced[pc]:
            slots.add(op.slot)
            if spec.two_slot:
                slots.add(op.slot + 1)
        return slots

    def writes(self, pc: int):
        """``(op, reg, latency)`` for each register write at ``pc``."""
        for op, spec in self.specced[pc]:
            if spec.is_jump:
                continue
            for reg in op.dsts:
                if 2 <= reg < NUM_REGS:
                    yield op, reg, self.target.latency_of(spec)

    def reads(self, pc: int):
        """``(op, reg)`` for each register read at ``pc``."""
        for op, _spec in self.specced[pc]:
            for reg in op.srcs:
                if 2 <= reg < NUM_REGS:
                    yield op, reg
            if op.guard != TRUE_GUARD and 2 <= op.guard < NUM_REGS:
                yield op, op.guard

    def tight_pairs(self):
        """``(p, c, reg, latency)`` with gap exactly ``latency`` in a
        jump-free linear window and no intervening redefinition."""
        for p in range(self.count):
            for _op, reg, latency in self.writes(p):
                c = p + latency
                if latency < 2 or c >= self.count:
                    continue
                if not self.clean_window(p, c):
                    continue
                if any(r == reg for between in range(p + 1, c)
                       for _o, r, _l in self.writes(between)):
                    continue
                if any(r == reg for _o, r in self.reads(c)):
                    yield p, c, reg, latency

    def unwritten_reg(self) -> int | None:
        for reg in range(NUM_REGS - 1, 1, -1):
            if reg not in self.defined:
                return reg
        return None

    def some_defined_reg(self) -> int:
        for reg in sorted(self.defined):
            if reg >= 2:
                return reg
        return 2


def _replace_op(program: LinkedProgram, pc: int, old: EncodedOp,
                new: EncodedOp, suffix: str) -> LinkedProgram:
    instructions = list(program.instructions)
    ops = tuple(new if op is old else op
                for op in instructions[pc].ops)
    instructions[pc] = EncodedInstruction(
        ops, instructions[pc].is_jump_target)
    return relink(program, instructions, suffix=suffix)


def _add_op(program: LinkedProgram, pc: int, extra: EncodedOp,
            suffix: str) -> LinkedProgram:
    instructions = list(program.instructions)
    instructions[pc] = EncodedInstruction(
        instructions[pc].ops + (extra,),
        instructions[pc].is_jump_target)
    return relink(program, instructions, suffix=suffix)


# ---------------------------------------------------------------------------
# Mutators — one family each; every function yields Mutant records
# ---------------------------------------------------------------------------

def mutate_shrink_latency_gap(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Delete a filler between a tight producer/consumer pair."""
    info = _Info(program)
    emitted = 0
    for p, c, reg, latency in info.tight_pairs():
        if emitted >= limit:
            return
        d = p + 1  # strictly between: latency >= 2 guarantees d < c
        if info.is_target(d):
            continue
        instructions = [instr for pc, instr in
                        enumerate(program.instructions) if pc != d]
        index_map = {pc: pc if pc < d else pc - 1
                     for pc in range(info.count) if pc != d}
        yield Mutant(
            f"shrink-gap@{p}->{c}", RULE_LATENCY,
            f"deleted pc {d}: r{reg} now read {latency - 1} "
            f"instruction(s) after its {latency}-latency producer",
            relink(program, instructions, index_map, "shrink-gap"))
        emitted += 1


def mutate_swap_consumer(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Swap a consumer one instruction toward its producer."""
    info = _Info(program)
    emitted = 0
    for p, c, reg, latency in info.tight_pairs():
        if emitted >= limit:
            return
        if c - 1 == p or info.is_target(c) or info.is_target(c - 1):
            continue
        instructions = list(program.instructions)
        instructions[c - 1], instructions[c] = \
            instructions[c], instructions[c - 1]
        index_map = {pc: pc for pc in range(info.count)}
        index_map[c - 1], index_map[c] = c, c - 1
        yield Mutant(
            f"swap-consumer@{c}", RULE_LATENCY,
            f"swapped pc {c - 1} and {c}: r{reg} read one instruction "
            f"too early",
            relink(program, instructions, index_map, "swap-consumer"))
        emitted += 1


def mutate_writeback_collision(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Insert a 1-latency write retiring with an in-flight write."""
    info = _Info(program)
    emitted = 0
    for p in range(info.count):
        if emitted >= limit:
            return
        for _op, reg, latency in info.writes(p):
            if latency < 2:
                continue
            q = p + latency - 1  # issues at q, retires at q+1 == p+latency
            if q > info.count or not info.clean_window(p, min(
                    q, info.count - 1)):
                continue
            extra = EncodedInstruction((EncodedOp(
                "iadd", 1, dsts=(reg,), srcs=(0, 0)),))
            instructions = list(program.instructions)
            instructions.insert(q, extra)
            index_map = {pc: pc if pc < q else pc + 1
                         for pc in range(info.count)}
            yield Mutant(
                f"writeback@{p}+{latency - 1}", RULE_WRITEBACK,
                f"inserted iadd r{reg} at pc {q}, retiring in the same "
                f"cycle as the latency-{latency} write from pc {p}",
                relink(program, instructions, index_map, "writeback"))
            emitted += 1
            break


def mutate_illegal_slot(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Move an operation to a slot its functional unit is absent from."""
    info = _Info(program)
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        occupied = info.occupied_slots(pc)
        for op, spec in info.specced[pc]:
            if spec.two_slot:
                continue
            allowed = set(info.target.allowed_slots(spec))
            bad = [slot for slot in ALL_SLOTS
                   if slot not in allowed and slot not in occupied]
            if not bad:
                continue
            yield Mutant(
                f"bad-slot@{pc}.{op.slot}", RULE_SLOT,
                f"moved {op.name} from slot {op.slot} to disallowed "
                f"slot {bad[0]}",
                _replace_op(program, pc, op, EncodedOp(
                    op.name, bad[0], op.dsts, op.srcs, op.guard, op.imm),
                    "bad-slot"))
            emitted += 1
            break


def mutate_double_occupancy(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Issue two single-slot operations into one slot."""
    info = _Info(program)
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        singles = [(op, spec) for op, spec in info.specced[pc]
                   if not spec.two_slot]
        if len(singles) < 2:
            continue
        first, second = singles[0][0], singles[1][0]
        yield Mutant(
            f"double-slot@{pc}", RULE_SLOT,
            f"moved {second.name} onto slot {first.slot}, already "
            f"holding {first.name}",
            _replace_op(program, pc, second, EncodedOp(
                second.name, first.slot, second.dsts, second.srcs,
                second.guard, second.imm), "double-slot"))
        emitted += 1


def mutate_break_pairing(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Occupy a super-op's continuation slot / push it off the edge."""
    info = _Info(program)
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        for op, spec in info.specced[pc]:
            if not spec.two_slot:
                continue
            reg = info.some_defined_reg()
            yield Mutant(
                f"pair-occupied@{pc}.{op.slot}", RULE_PAIRING,
                f"placed an iadd into slot {op.slot + 1}, the "
                f"continuation slot of {op.name}",
                _add_op(program, pc, EncodedOp(
                    "iadd", op.slot + 1, dsts=(reg,), srcs=(0, 0)),
                    "pair-occupied"))
            emitted += 1
            if emitted >= limit:
                return
            yield Mutant(
                f"pair-offedge@{pc}.{op.slot}", RULE_PAIRING,
                f"re-anchored {op.name} at slot 5; its continuation "
                f"falls outside the machine",
                _replace_op(program, pc, op, EncodedOp(
                    op.name, 5, op.dsts, op.srcs, op.guard, op.imm),
                    "pair-offedge"))
            emitted += 1
            break


def mutate_extra_mem_op(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Duplicate a memory op past the target's per-instruction limit."""
    info = _Info(program)
    target = info.target
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        mems = [(op, spec) for op, spec in info.specced[pc] if spec.is_mem]
        loads = sum(spec.is_load for _op, spec in mems)
        stores = sum(spec.is_store for _op, spec in mems)
        template = None
        for op, spec in mems:
            if spec.is_load and loads + 1 > target.max_loads_per_instr:
                template = op
                break
            if spec.is_store and stores + 1 > target.max_stores_per_instr:
                template = op
                break
            if len(mems) + 1 > target.max_mem_per_instr:
                template = op
                break
        if template is None:
            continue
        occupied = info.occupied_slots(pc)
        free = [slot for slot in ALL_SLOTS if slot not in occupied]
        if not free:
            continue
        dst = tuple(info.some_defined_reg() for _ in template.dsts)
        yield Mutant(
            f"extra-mem@{pc}", RULE_MEMPORT,
            f"duplicated {template.name} into slot {free[0]}, "
            f"exceeding the target's memory-port limit",
            _add_op(program, pc, EncodedOp(
                template.name, free[0], dst, template.srcs,
                template.guard, template.imm), "extra-mem"))
        emitted += 1


def mutate_truncate_shadow(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Delete trailing instructions until a jump shadow runs off."""
    info = _Info(program)
    live_jumps = [pc for pc in sorted(info.jump_pcs)
                  if any(spec.is_jump and op.guard != 0
                         for op, spec in info.specced[pc])]
    if not live_jumps:
        return
    tail = max(pc + info.delay for pc in live_jumps)
    if tail >= info.count:
        return  # already broken; clean programs never are
    drop = info.count - tail  # new count == tail: shadow now runs off
    dropped = range(info.count - drop, info.count)
    if any(pc in info.jump_pcs or info.is_target(pc) for pc in dropped):
        return
    if limit < 1:
        return
    instructions = list(program.instructions[:info.count - drop])
    index_map = {pc: pc for pc in range(info.count - drop)}
    yield Mutant(
        f"truncate-shadow@{info.count - drop}", RULE_JUMP,
        f"deleted the last {drop} instruction(s); the jump at pc "
        f"{max(live_jumps)} loses a delay slot",
        relink(program, instructions, index_map, "truncate-shadow"))


def mutate_jump_in_shadow(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Issue a second jump inside an existing jump's delay shadow."""
    info = _Info(program)
    emitted = 0
    entry_address = program.addresses[0] if info.count else 0
    for j in sorted(info.jump_pcs):
        if emitted >= limit:
            return
        for s in range(j + 1, min(j + info.delay + 1, info.count)):
            if s in info.jump_pcs:
                continue
            occupied = info.occupied_slots(s)
            free = [slot for slot in (2, 3, 4) if slot not in occupied]
            if not free:
                continue
            yield Mutant(
                f"shadow-jump@{s}", RULE_JUMP,
                f"added a jmpi at pc {s}, inside the delay shadow of "
                f"the jump at pc {j}",
                _add_op(program, s, EncodedOp(
                    "jmpi", free[0], imm=entry_address), "shadow-jump"))
            emitted += 1
            break


def mutate_bad_immediate(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Widen a non-jump immediate past its encodable field."""
    info = _Info(program)
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        for op, spec in info.specced[pc]:
            # Jump immediates are retranslated by relink; use others.
            if spec.is_jump or not spec.has_imm:
                continue
            yield Mutant(
                f"bad-imm@{pc}.{op.slot}", RULE_ENCODING,
                f"set the {spec.imm_bits}-bit immediate of {op.name} "
                f"to {1 << spec.imm_bits}",
                _replace_op(program, pc, op, EncodedOp(
                    op.name, op.slot, op.dsts, op.srcs, op.guard,
                    1 << spec.imm_bits), "bad-imm"))
            emitted += 1
            break


def mutate_compress_jump_target(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Strip the uncompressed-encoding mark off a jump target."""
    info = _Info(program)
    emitted = 0
    for pc in range(1, info.count):  # entry stays uncompressed
        if emitted >= limit:
            return
        if not info.is_target(pc):
            continue
        instructions = list(program.instructions)
        instructions[pc] = EncodedInstruction(instructions[pc].ops, False)
        yield Mutant(
            f"compress-target@{pc}", RULE_ENCODING,
            f"compressed the jump target at pc {pc}; a taken jump "
            f"cannot decode it",
            relink(program, instructions, suffix="compress-target"))
        emitted += 1


def mutate_undefined_read(program: LinkedProgram, limit: int) -> Iterator[Mutant]:
    """Redirect a source operand to a never-written register."""
    info = _Info(program)
    ghost = info.unwritten_reg()
    if ghost is None:
        return
    emitted = 0
    for pc in range(info.count):
        if emitted >= limit:
            return
        for op, spec in info.specced[pc]:
            victims = [reg for reg in op.srcs if reg >= 2]
            if not victims:
                continue
            srcs = list(op.srcs)
            srcs[srcs.index(victims[0])] = ghost
            yield Mutant(
                f"undef-read@{pc}.{op.slot}", RULE_DEFUSE,
                f"redirected a source of {op.name} to the never-"
                f"written r{ghost}",
                _replace_op(program, pc, op, EncodedOp(
                    op.name, op.slot, op.dsts, tuple(srcs), op.guard,
                    op.imm), "undef-read"))
            emitted += 1
            break


#: Every mutator, in rule-family order.
MUTATORS: tuple[Callable, ...] = (
    mutate_shrink_latency_gap,
    mutate_swap_consumer,
    mutate_writeback_collision,
    mutate_illegal_slot,
    mutate_double_occupancy,
    mutate_break_pairing,
    mutate_extra_mem_op,
    mutate_truncate_shadow,
    mutate_jump_in_shadow,
    mutate_bad_immediate,
    mutate_compress_jump_target,
    mutate_undefined_read,
)


def all_mutants(program: LinkedProgram,
                per_mutator: int = 3) -> list[Mutant]:
    """Every applicable corruption of ``program``.

    Not every mutator applies to every program (a jump-free program
    has no shadow to corrupt); inapplicable ones simply contribute
    nothing.
    """
    mutants: list[Mutant] = []
    for mutator in MUTATORS:
        mutants.extend(mutator(program, per_mutator))
    return mutants
