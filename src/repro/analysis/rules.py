"""Structural lint rules over linked VLIW programs.

Each checker walks a :class:`~repro.asm.link.LinkedProgram` and
returns :class:`Diagnostic` records — it never raises on a bad
program, so one pass reports every violation:

* :func:`check_structure` — issue-slot/functional-unit legality,
  two-slot super-operation neighbor pairing, per-instruction memory
  port and jump limits (Table 6 parameterizes the limits per target);
* :func:`check_encoding` — per-operation template-field encodability,
  jump-target compression (targets must be uncompressed so a jump can
  land on them cold), address-map consistency, and the whole-program
  encode → decode → re-encode fixpoint;
* :func:`check_defuse` — writes to the constant registers and reads
  of registers no operation (and no entry argument) ever defines.

Latency and write-back timing rules live in
:mod:`repro.analysis.hazards`; control-flow shape rules in
:mod:`repro.analysis.cfg`.
"""

from __future__ import annotations

from repro.analysis.cfg import ProgramGraph
from repro.analysis.diagnostics import (
    RULE_DEFUSE,
    RULE_ENCODING,
    RULE_JUMP,
    RULE_MEMPORT,
    RULE_PAIRING,
    RULE_SLOT,
    SEV_ERROR,
    Diagnostic,
    format_location,
)
from repro.core.regfile import NUM_REGS
from repro.isa.encoding import (
    TRUE_GUARD,
    EncodedInstruction,
    encode_program,
    decode_program,
    encoding_errors,
    instruction_nbytes,
)

#: Highest (1-based) issue slot of the machine.
LAST_SLOT = 5


def _spec_of(op):
    """The operation's spec, or None for unknown mnemonics."""
    try:
        return op.spec
    except KeyError:
        return None


def check_structure(program) -> list[Diagnostic]:
    """Slot, functional-unit, pairing, and port legality per instruction."""
    target = program.target
    diagnostics: list[Diagnostic] = []
    for pc, instr in enumerate(program.instructions):
        occupancy: dict[int, object] = {}
        loads = stores = jumps = 0
        for op in instr.ops:
            spec = _spec_of(op)
            if spec is None:
                continue  # reported by check_encoding
            if not target.supports(spec):
                diagnostics.append(Diagnostic(
                    RULE_SLOT, SEV_ERROR,
                    f"operation not implemented on target "
                    f"{target.name!r}",
                    pc=pc, slot=op.slot, op=op.name))
                continue
            allowed = target.allowed_slots(spec)
            if op.slot not in allowed:
                kind = "anchor slot" if spec.two_slot else "slot"
                diagnostics.append(Diagnostic(
                    RULE_SLOT, SEV_ERROR,
                    f"{kind} {op.slot} not among allowed slots "
                    f"{list(allowed)} for functional unit "
                    f"{spec.fu.value}",
                    pc=pc, slot=op.slot, op=op.name))
            footprint = (op.slot, op.slot + 1) if spec.two_slot \
                else (op.slot,)
            for slot in footprint:
                if not 1 <= slot <= LAST_SLOT:
                    rule = RULE_PAIRING if spec.two_slot else RULE_SLOT
                    diagnostics.append(Diagnostic(
                        rule, SEV_ERROR,
                        f"occupies slot {slot}, outside issue slots "
                        f"1..{LAST_SLOT}",
                        pc=pc, slot=op.slot, op=op.name))
                    continue
                other = occupancy.get(slot)
                if other is None:
                    occupancy[slot] = op
                    continue
                other_spec = _spec_of(other)
                two_slot_involved = spec.two_slot or (
                    other_spec is not None and other_spec.two_slot)
                rule = RULE_PAIRING if two_slot_involved else RULE_SLOT
                diagnostics.append(Diagnostic(
                    rule, SEV_ERROR,
                    f"slot {slot} doubly occupied with "
                    f"{format_location(slot=other.slot, op=other.name)}",
                    pc=pc, slot=op.slot, op=op.name))
            loads += spec.is_load
            stores += spec.is_store
            jumps += spec.is_jump
        if loads > target.max_loads_per_instr:
            diagnostics.append(Diagnostic(
                RULE_MEMPORT, SEV_ERROR,
                f"{loads} loads issued, target {target.name!r} allows "
                f"{target.max_loads_per_instr} per instruction",
                pc=pc))
        if stores > target.max_stores_per_instr:
            diagnostics.append(Diagnostic(
                RULE_MEMPORT, SEV_ERROR,
                f"{stores} stores issued, target {target.name!r} allows "
                f"{target.max_stores_per_instr} per instruction",
                pc=pc))
        if loads + stores > target.max_mem_per_instr:
            diagnostics.append(Diagnostic(
                RULE_MEMPORT, SEV_ERROR,
                f"{loads + stores} memory operations issued, target "
                f"{target.name!r} allows {target.max_mem_per_instr} "
                f"per instruction",
                pc=pc))
        if jumps > 1:
            diagnostics.append(Diagnostic(
                RULE_JUMP, SEV_ERROR,
                f"{jumps} jump operations in one instruction",
                pc=pc))
    return diagnostics


def _ops_key(instr: EncodedInstruction):
    """Slot-ordered comparable form of an instruction's operations."""
    return tuple(sorted(
        (op.slot, op.name, op.dsts, op.srcs, op.guard, op.imm)
        for op in instr.ops if op.name != "nop"))


def check_encoding(program, graph: ProgramGraph) -> list[Diagnostic]:
    """Encodability, jump-target compression, and roundtrip fixpoint."""
    diagnostics: list[Diagnostic] = []
    op_level_clean = True
    for pc, instr in enumerate(program.instructions):
        for op in instr.ops:
            for reason in encoding_errors(op):
                op_level_clean = False
                diagnostics.append(Diagnostic(
                    RULE_ENCODING, SEV_ERROR, reason,
                    pc=pc, slot=op.slot, op=op.name))

    count = len(program.instructions)
    if count and not program.instructions[0].is_jump_target:
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            "entry instruction is compressed (must be encoded as a "
            "jump target to decode cold)", pc=0))

    # Jumps can only land on uncompressed instructions: the template
    # describing a compressed instruction lives in its predecessor,
    # which a taken jump never fetches.
    for site in graph.jumps:
        if site.target_index is None or site.never_taken:
            continue
        if not program.instructions[site.target_index].is_jump_target:
            diagnostics.append(Diagnostic(
                RULE_ENCODING, SEV_ERROR,
                f"jump target at {format_location(pc=site.target_index)} "
                f"is compressed; targets must be encoded uncompressed",
                pc=site.pc, slot=site.op.slot, op=site.op.name))

    if not op_level_clean:
        return diagnostics  # sizes/roundtrip would raise; already reported

    # Address-map consistency: declared addresses/sizes must match
    # what the encoder produces for each instruction.  The size
    # computation itself can refuse a corrupt instruction (doubly
    # occupied or out-of-range slots); that refusal is a finding, not
    # a crash.
    sizes = program.instruction_sizes
    for pc, instr in enumerate(program.instructions):
        try:
            nbytes = instruction_nbytes(instr)
        except ValueError as error:
            diagnostics.append(Diagnostic(
                RULE_ENCODING, SEV_ERROR,
                f"instruction cannot be laid out: {error}", pc=pc))
            continue
        if nbytes != sizes[pc]:
            diagnostics.append(Diagnostic(
                RULE_ENCODING, SEV_ERROR,
                f"declared size {sizes[pc]} bytes, encoder produces "
                f"{nbytes}", pc=pc))

    if any(diag.is_error for diag in diagnostics):
        return diagnostics

    # Whole-program fixpoint: encode -> decode -> re-encode must
    # reproduce both the operation stream and the exact image bytes.
    try:
        image, addresses = encode_program(list(program.instructions))
    except ValueError as error:
        return diagnostics + [Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            f"program image cannot be encoded: {error}")]
    if image != program.image:
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            "re-encoding the instruction stream does not reproduce the "
            "linked image"))
        return diagnostics
    if addresses != list(program.addresses):
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            "address map disagrees with the encoder's layout"))
        return diagnostics
    try:
        decoded = decode_program(program.image)
    except (ValueError, KeyError, IndexError) as error:
        return diagnostics + [Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            f"image does not decode: {error}")]
    if len(decoded) != count:
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            f"image decodes to {len(decoded)} instructions, "
            f"expected {count}"))
        return diagnostics
    for pc, (original, roundtrip) in enumerate(
            zip(program.instructions, decoded)):
        if _ops_key(original) != _ops_key(roundtrip):
            diagnostics.append(Diagnostic(
                RULE_ENCODING, SEV_ERROR,
                "decoded operations differ from the linked "
                "instruction", pc=pc))
    if not diagnostics:
        restored = [
            EncodedInstruction(rt.ops, orig.is_jump_target)
            for orig, rt in zip(program.instructions, decoded)
        ]
        image2, _ = encode_program(restored)
        if image2 != program.image:
            diagnostics.append(Diagnostic(
                RULE_ENCODING, SEV_ERROR,
                "decode -> re-encode is not a fixpoint: image bytes "
                "differ"))
    return diagnostics


def check_defuse(program) -> list[Diagnostic]:
    """Constant-register writes and reads of never-written registers."""
    diagnostics: list[Diagnostic] = []
    defined = {0, 1}
    defined.update(getattr(program, "entry_regs", ()) or ())
    for instr in program.instructions:
        for op in instr.ops:
            for reg in op.dsts:
                if 2 <= reg < NUM_REGS:
                    defined.add(reg)
    for pc, instr in enumerate(program.instructions):
        for op in instr.ops:
            for reg in op.dsts:
                if reg in (0, 1):
                    diagnostics.append(Diagnostic(
                        RULE_DEFUSE, SEV_ERROR,
                        f"writes constant register r{reg}",
                        pc=pc, slot=op.slot, op=op.name))
            reads = op.srcs
            if op.guard != TRUE_GUARD:
                reads = reads + (op.guard,)
            for reg in sorted(set(reads)):
                if not 0 <= reg < NUM_REGS:
                    continue  # out-of-range: reported by check_encoding
                if reg not in defined:
                    diagnostics.append(Diagnostic(
                        RULE_DEFUSE, SEV_ERROR,
                        f"reads r{reg}, which no operation or entry "
                        f"argument ever writes",
                        pc=pc, slot=op.slot, op=op.name))
    return diagnostics
