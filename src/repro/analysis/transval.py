"""Translation validator for trace-region codegen.

``repro.core.trace._generate`` emits a specialized Python function per
hot region.  This module re-checks every such function *without
trusting the generator*: the source is parsed to an AST, obligations
are re-derived straight from the :class:`~repro.core.plan.ExecutionPlan`
(:mod:`repro.analysis.absint`), and the generated code is judged by a
mix of structural matching and abstract interpretation under probe
environments (DESIGN.md section 14).  Four obligation families map to
the four ``region-*`` rule identifiers:

* **effect completeness** (``region-effect``) — every plan op produces
  exactly its registry write-set; values, masks, immediates, memory
  access streams, and architectural counters are compared against the
  plan-bound registry semantic run on identical probe inputs.
* **commit-cycle legality** (``region-commit``) — the static/escaped/
  dynamic write partition is re-derived from scratch and diffed
  against the generated holds/pushes; every static hold commits at
  exactly its landing step, after the dynamic commit check, never
  before a strict-mode hazard scan it could race.
* **exit/spill completeness** (``region-exit``) — escaped writes are
  materialized into pending/heap on the normal exit path and the
  BaseException spill; spill slots are pure functions of retired
  count + static jump geometry (checked by executing both paths under
  sentinel environments).
* **jump-shape/delay-window structure** (``region-structure``) — one
  resolved jump, delay window enclosed, step-0 dynamic chunk walk,
  constant-folded fetches afterwards, the fixed return-tuple shape.

Failures are :class:`~repro.analysis.diagnostics.Diagnostic` records
sharing the PR 3 location vocabulary.
"""

from __future__ import annotations

import ast
import re
from bisect import insort
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable

from repro.analysis.absint import (
    M32,
    MMIO_LO,
    EvalError,
    FetchPlan,
    Geometry,
    Interp,
    MemRecorder,
    ProbeCtx,
    Schedule,
    derive_fetch_plan,
    derive_geometry,
    derive_schedule,
    probe_regfiles,
    reference_effects,
)
from repro.analysis.diagnostics import (
    RULE_REGION_COMMIT,
    RULE_REGION_EFFECT,
    RULE_REGION_EXIT,
    RULE_REGION_STRUCT,
    SEV_ERROR,
    Diagnostic,
    format_location,
)
from repro.core.plan import (
    OP_DSTS,
    OP_FU,
    OP_GUARD,
    OP_IMM,
    OP_IS_JUMP,
    OP_IS_MEM,
    OP_LATENCY,
    OP_NAME,
    OP_SEMANTIC,
    OP_SRCS,
)

#: Probe time base: far from any region-relative step offset.
_NOW0 = 1 << 20

#: Base probe register files per step (plus crafted guard/mem files).
PROBE_FILES = 4

_HOLD_RE = re.compile(r"_w\d+\Z")

#: Memory-op byte widths, re-derived from the ISA contract (not the
#: codegen's tables) so a doctored width is a real finding.
_LOAD_BYTES = {"ld32": 4, "ld32d": 4, "uld16d": 2, "ild16d": 2,
               "uld8d": 1, "ild8d": 1}
_STORE_BYTES = {"st32d": 4, "st16d": 2, "st8d": 1}

#: The generated function's fixed parameter list — the ABI shared with
#: the processor's trace block loop.
_ARG_NAMES = (
    "values", "pending", "heap", "commit_until", "ctx", "mem_load",
    "mem_store", "mmio_load", "mmio_store", "icache_fetch",
    "dcache_access", "observe_load", "prefetch_queue", "prefetch_tick",
    "obs", "fu_totals", "now0", "cycle", "last_chunk", "instr0",
    "watchdog_limit", "program_name", "config_name", "max_cycles",
    "spill",
)

#: Return-tuple tail: names of elements 3..10.
_RETURN_NAMES = ("_ex", "_jt", "_ic", "_dc", "_mm", "_rd", "_wr", "_cbf")

#: Spill protocol: slot index -> local spilled there (slots 11/12 are
#: the computed pc / pending-jump expressions, checked separately).
_SPILL_NAMES = ("_t", "cycle", "_ic", "_dc", "_cbf", "_mm", "_ex", "_jt",
                "_rd", "_wr", "_gr")

#: Architectural counters that must leave the prologue at zero.
_ZERO_COUNTERS = ("_ex", "_jt", "_ic", "_dc", "_mm", "_rd", "_wr",
                  "_gr", "_cbf", "_t")


# ---------------------------------------------------------------------------
# AST pattern matchers
# ---------------------------------------------------------------------------

def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _const_int(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def _is_watchdog(stmt: ast.stmt) -> bool:
    """``if cycle > watchdog_limit:`` — the per-step terminator."""
    if not isinstance(stmt, ast.If) or not isinstance(stmt.test, ast.Compare):
        return False
    test = stmt.test
    return (_is_name(test.left, "cycle") and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Gt)
            and _is_name(test.comparators[0], "watchdog_limit"))


def _match_commit(stmt: ast.stmt) -> tuple[int, str, bool] | None:
    """Match a static commit: ``values[reg] = _wk`` or its guarded
    ``if _wk is not None:`` form.  Returns ``(reg, hold, guarded)``."""
    if isinstance(stmt, ast.If) and len(stmt.body) == 1 and not stmt.orelse:
        test = stmt.test
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.left, ast.Name)
                and _HOLD_RE.match(test.left.id)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            inner = _match_commit(stmt.body[0])
            if inner is not None and not inner[2] and inner[1] == test.left.id:
                return (inner[0], inner[1], True)
        return None
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if (isinstance(target, ast.Subscript)
                and _is_name(target.value, "values")
                and isinstance(stmt.value, ast.Name)
                and _HOLD_RE.match(stmt.value.id)):
            reg = _const_int(target.slice)
            if reg is not None:
                return (reg, stmt.value.id, False)
    return None


def _match_scan(stmt: ast.stmt) -> int | None:
    """Match a strict-mode hazard scan header; returns the scanned reg."""
    if not isinstance(stmt, ast.If):
        return None
    test = stmt.test
    if (isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And)
            and len(test.values) == 2 and _is_name(test.values[0], "hz")
            and isinstance(test.values[1], ast.Compare)):
        cmp = test.values[1]
        if (len(cmp.ops) == 1 and isinstance(cmp.ops[0], ast.In)
                and _is_name(cmp.comparators[0], "pending")):
            return _const_int(cmp.left)
    return None


def _match_tk_true(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and _is_name(stmt.targets[0], "_tk")
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is True)


def _parse_heappush(call: ast.Call):
    """Parse ``heappush(heap, (now + lat, reg))``; reg may be a
    constant (single-dst push) or ``_dreg`` (zip-driven push)."""
    if len(call.args) != 2 or not _is_name(call.args[0], "heap"):
        return None
    entry = call.args[1]
    if not isinstance(entry, ast.Tuple) or len(entry.elts) != 2:
        return None
    due = entry.elts[0]
    if not (isinstance(due, ast.BinOp) and isinstance(due.op, ast.Add)
            and _is_name(due.left, "now")):
        return None
    lat = _const_int(due.right)
    if lat is None:
        return None
    reg = _const_int(entry.elts[1])
    if reg is not None:
        return ("push", reg, lat)
    if _is_name(entry.elts[1], "_dreg"):
        return ("dynpush", None, lat)
    return None


def _collect(stmts, match: Callable, out=None) -> list:
    """In-order recursive collection; a matched statement's own body
    is not descended into (guarded commits would double-count)."""
    if out is None:
        out = []
    for stmt in stmts:
        found = match(stmt)
        if found is not None and found is not False:
            out.append(found)
            continue
        for attr in ("body", "orelse"):
            children = getattr(stmt, attr, None)
            if children:
                _collect(children, match, out)
    return out


def _collect_terminals(stmts) -> list[tuple]:
    """In-order write terminals of a step's op segment: ``("hold",
    name)``, ``("push", reg, lat)``, or ``("zip", dsts, lat)``."""
    out: list[tuple] = []
    for stmt in stmts:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _HOLD_RE.match(stmt.targets[0].id)):
            out.append(("hold", stmt.targets[0].id))
        elif (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
                and _is_name(stmt.value.func, "heappush")):
            push = _parse_heappush(stmt.value)
            if push is not None:
                out.append(push)
        elif isinstance(stmt, ast.For):
            it = stmt.iter
            if isinstance(it, ast.Call) and _is_name(it.func, "zip"):
                dsts: tuple | None = None
                if it.args and isinstance(it.args[0], ast.Tuple):
                    elts = [_const_int(e) for e in it.args[0].elts]
                    if all(e is not None for e in elts):
                        dsts = tuple(elts)
                inner = _collect_terminals(stmt.body)
                lat = next((p[2] for p in inner if p[0] == "dynpush"),
                           None)
                out.append(("zip", dsts, lat))
            else:
                # e.g. a hazard scan's pending walk — not a write site.
                out.extend(_collect_terminals(stmt.body))
        elif isinstance(stmt, (ast.If, ast.While)):
            out.extend(_collect_terminals(stmt.body))
            out.extend(_collect_terminals(stmt.orelse))
    return out


def _calls_to(stmts, name: str) -> list[ast.Call]:
    """All calls to ``name`` under ``stmts``, in statement order."""
    out: list[ast.Call] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call) and _is_name(node.func, name)):
                out.append(node)
    return out


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class RegionValidation:
    """Validation outcome of one compiled region."""

    program: str
    head: int
    length: int
    strict: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def format(self) -> str:
        where = format_location(pc=self.head)
        mode = "strict" if self.strict else "lenient"
        header = (f"region {where} +{self.length} of {self.program!r} "
                  f"({mode})")
        if self.ok:
            return f"{header}: ok"
        lines = [f"{header}: {len(self.diagnostics)} finding(s)"]
        lines.extend(f"  {diag.format()}" for diag in self.diagnostics)
        return "\n".join(lines)


class TranslationValidationError(Exception):
    """A compiled region failed translation validation."""

    def __init__(self, validation: RegionValidation) -> None:
        self.validation = validation
        super().__init__(validation.format())


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

class _RegionChecker:
    """One region's validation pass.  Collects diagnostics; never
    raises on bad generated code (an unparseable or structurally alien
    source is itself a ``region-structure`` finding)."""

    def __init__(self, plan, head: int, length: int, strict: bool,
                 source: str, program_name: str) -> None:
        self.plan = plan
        self.head = head
        self.length = length
        self.strict = strict
        self.source = source
        self.program = program_name
        self.diags: list[Diagnostic] = []
        self.declared_holds: set[str] = set()
        self.hold_names: dict[int, str] = {}   # obligation index -> local
        self.schedule: Schedule | None = None
        self.geometry: Geometry | None = None
        self.fetch: FetchPlan | None = None

    # -- bookkeeping --------------------------------------------------

    def error(self, rule: str, message: str, *, step: int | None = None,
              slot: int | None = None, op: str | None = None) -> None:
        pc = None if step is None else self.head + step
        self.diags.append(Diagnostic(rule, SEV_ERROR, message,
                                     pc=pc, slot=slot, op=op))

    def _has_jump_flag(self) -> bool:
        return self.geometry is not None and self.geometry.kind in (
            "static-taken", "dynamic")

    # -- entry point --------------------------------------------------

    def check(self) -> list[Diagnostic]:
        try:
            self.geometry = derive_geometry(self.plan, self.head,
                                            self.length)
        except ValueError as exc:
            self.error(RULE_REGION_STRUCT, str(exc))
            return self.diags
        geo = self.geometry
        if geo.jump_pos is not None:
            enclosed = geo.jump_pos - self.head + geo.delay + 1
            if enclosed != self.length:
                self.error(
                    RULE_REGION_STRUCT,
                    f"delay window not enclosed: jump at "
                    f"{format_location(pc=geo.jump_pos)} + {geo.delay} "
                    f"delay slots needs length {enclosed}, region has "
                    f"{self.length}")
        self.schedule = derive_schedule(self.plan, self.head, self.length,
                                        self.strict)
        self.fetch = derive_fetch_plan(self.plan, self.head, self.length)

        try:
            tree = ast.parse(self.source)
        except SyntaxError as exc:
            self.error(RULE_REGION_STRUCT,
                       f"generated source does not parse: {exc}")
            return self.diags
        if (len(tree.body) != 1
                or not isinstance(tree.body[0], ast.FunctionDef)
                or tree.body[0].name != "_region"):
            self.error(RULE_REGION_STRUCT,
                       "source must define exactly one function _region")
            return self.diags
        fn = tree.body[0]
        params = tuple(arg.arg for arg in fn.args.args)
        if params != _ARG_NAMES:
            self.error(RULE_REGION_STRUCT,
                       f"parameter list {params} differs from the "
                       "processor ABI")
            return self.diags

        try_idx = next((i for i, stmt in enumerate(fn.body)
                        if isinstance(stmt, ast.Try)), None)
        if try_idx is None:
            self.error(RULE_REGION_STRUCT, "missing try/except spine")
            return self.diags
        self._check_prologue(fn.body[:try_idx])
        spine = fn.body[try_idx]
        if fn.body[try_idx + 1:]:
            self.error(RULE_REGION_STRUCT,
                       "statements after the try/except spine")
        if (len(spine.handlers) != 1 or spine.orelse or spine.finalbody
                or spine.handlers[0].type is None
                or not _is_name(spine.handlers[0].type, "BaseException")):
            self.error(RULE_REGION_EXIT,
                       "spine must have exactly one BaseException "
                       "handler and no else/finally")
            return self.diags

        steps: list[list[ast.stmt]] = []
        current: list[ast.stmt] = []
        for stmt in spine.body:
            current.append(stmt)
            if _is_watchdog(stmt):
                steps.append(current)
                current = []
        if len(steps) != self.length:
            self.error(RULE_REGION_STRUCT,
                       f"found {len(steps)} watchdog-terminated steps, "
                       f"plan region has {self.length} instructions")
            return self.diags
        for t, seg in enumerate(steps):
            self._check_step(t, seg)
        self._check_exit(current)
        self._check_handler(spine.handlers[0].body)
        return self.diags

    # -- prologue -----------------------------------------------------

    def _check_prologue(self, stmts) -> None:
        env: dict = {"now0": _NOW0}
        try:
            Interp(env).run(stmts)
        except EvalError as exc:
            self.error(RULE_REGION_STRUCT, f"prologue not evaluable: {exc}")
            return
        self.declared_holds = {name for name in env
                               if _HOLD_RE.match(name)}
        for name in sorted(self.declared_holds):
            if env[name] is not None:
                self.error(RULE_REGION_EXIT,
                           f"hold {name} must initialize to None for "
                           "except-path totality")
        for counter in _ZERO_COUNTERS:
            if env.get(counter) != 0:
                self.error(RULE_REGION_EFFECT,
                           f"counter {counter} must leave the prologue "
                           f"at 0, is {env.get(counter)!r}")
        if env.get("now") != _NOW0:
            self.error(RULE_REGION_COMMIT,
                       "prologue must initialize now = now0")
        if self._has_jump_flag():
            if env.get("_tk") is not False:
                self.error(RULE_REGION_STRUCT,
                           "region with a resolvable jump must "
                           "initialize _tk = False")
        elif "_tk" in env:
            self.error(RULE_REGION_STRUCT,
                       "_tk initialized in a region with no taken jump")

    # -- per step -----------------------------------------------------

    def _step_ops(self, t: int):
        return self.plan.ops[self.head + t]

    def _site_list(self, t: int):
        assert self.schedule is not None
        sites = [(slot, obs) for (tw, slot), obs
                 in self.schedule.by_site.items() if tw == t]
        sites.sort(key=lambda item: item[0])
        return sites

    def _check_step(self, t: int, seg: list[ast.stmt]) -> None:
        ops = self._step_ops(t)
        idx = 0
        if t:
            ok = (idx < len(seg) and isinstance(seg[idx], ast.AugAssign)
                  and isinstance(seg[idx].op, ast.Add)
                  and _is_name(seg[idx].target, "now")
                  and _const_int(seg[idx].value) == 1)
            if ok:
                idx += 1
            else:
                self.error(RULE_REGION_COMMIT,
                           "step must advance now by exactly 1", step=t)
        commit_ok = (idx < len(seg) and isinstance(seg[idx], ast.If)
                     and bool(_calls_to(seg[idx].body, "commit_until")))
        if commit_ok:
            idx += 1
        else:
            self.error(RULE_REGION_COMMIT,
                       "step missing the dynamic commit check "
                       "(heap head vs now)", step=t)

        # Static commits landing this step, immediately after the
        # dynamic commit check, ordered by issue step.
        assert self.schedule is not None
        expected_commits = self.schedule.commits_at.get(t, [])
        observed: list[tuple[int, str, bool]] = []
        while idx < len(seg):
            found = _match_commit(seg[idx])
            if found is None:
                break
            observed.append(found)
            idx += 1
        for pos in range(max(len(expected_commits), len(observed))):
            ob = expected_commits[pos] if pos < len(expected_commits) else None
            got = observed[pos] if pos < len(observed) else None
            if ob is None and got is not None:
                self.error(RULE_REGION_COMMIT,
                           f"unexpected static commit of r{got[0]} "
                           f"(no derived write lands here)", step=t)
                continue
            if ob is not None and got is None:
                self.error(RULE_REGION_COMMIT,
                           f"missing static commit of r{ob.reg} "
                           f"(write issued at step {ob.t_w} lands here)",
                           step=t, slot=ob.slot)
                continue
            assert ob is not None and got is not None
            reg, hold, guarded = got
            if reg != ob.reg:
                self.error(RULE_REGION_COMMIT,
                           f"commit targets r{reg}, derived landing "
                           f"write is r{ob.reg}", step=t, slot=ob.slot)
            want = self.hold_names.get(ob.index)
            if want is not None and hold != want:
                self.error(RULE_REGION_COMMIT,
                           f"commit of r{ob.reg} reads {hold}, its "
                           f"write site holds {want}", step=t,
                           slot=ob.slot)
            if guarded != ob.guarded:
                self.error(RULE_REGION_COMMIT,
                           f"commit of r{ob.reg} must{'' if ob.guarded else ' not'} "
                           "be None-guarded", step=t, slot=ob.slot)

        boundary = next(
            (i for i in range(idx, len(seg))
             if (isinstance(seg[i], ast.Assign)
                 and len(seg[i].targets) == 1
                 and _is_name(seg[i].targets[0], "_stall")
                 and _const_int(seg[i].value) == 0)
             or (isinstance(seg[i], ast.If)
                 and _is_name(seg[i].test, "prefetch_queue"))),
            None)
        if boundary is None:
            self.error(RULE_REGION_STRUCT,
                       "step missing its timing phase", step=t)
            boundary = len(seg) - 1

        strays = _collect(seg[idx:boundary], _match_commit)
        for reg, _hold, _guarded in strays:
            self.error(RULE_REGION_COMMIT,
                       f"commit of r{reg} outside the landing slot "
                       "(must follow the dynamic commit check)", step=t)

        self._check_sites(t, seg[idx:boundary], ops)
        self._check_scans(t, seg[idx:boundary], ops)
        self._check_tk(t, seg, ops)
        self._probe_step(t, seg[:boundary], ops)
        self._check_timing(t, seg[boundary:-1], ops)

    def _check_sites(self, t: int, stmts, ops) -> None:
        terminals = _collect_terminals(stmts)
        cursor = 0
        for slot, site in self._site_list(t):
            op = ops[slot]
            name = op[OP_NAME]
            terminal = terminals[cursor] if cursor < len(terminals) else None
            if len(site) > 1:
                if terminal is None or terminal[0] != "zip":
                    self.error(RULE_REGION_EFFECT,
                               f"multi-destination {name} lost its "
                               "zip-driven push", step=t, slot=slot,
                               op=name)
                    continue
                cursor += 1
                dsts, lat = terminal[1], terminal[2]
                if dsts != tuple(op[OP_DSTS]):
                    self.error(RULE_REGION_EFFECT,
                               f"{name} routes results to {dsts}, plan "
                               f"write-set is {tuple(op[OP_DSTS])}",
                               step=t, slot=slot, op=name)
                if lat != op[OP_LATENCY]:
                    self.error(RULE_REGION_COMMIT,
                               f"{name} pushes with latency {lat}, plan "
                               f"says {op[OP_LATENCY]}", step=t,
                               slot=slot, op=name)
                continue
            ob = site[0]
            if ob.dynamic:
                if terminal is None or terminal[0] != "push":
                    self.error(RULE_REGION_COMMIT,
                               f"write of r{ob.reg} derived dynamic "
                               "(demoted) but not generated as a "
                               "pending push", step=t, slot=slot, op=name)
                    continue
                cursor += 1
                if terminal[1] != ob.reg:
                    self.error(RULE_REGION_EFFECT,
                               f"{name} pushes to r{terminal[1]}, plan "
                               f"destination is r{ob.reg}", step=t,
                               slot=slot, op=name)
                if terminal[2] != ob.latency:
                    self.error(RULE_REGION_COMMIT,
                               f"{name} pushes r{ob.reg} with latency "
                               f"{terminal[2]}, plan says {ob.latency}",
                               step=t, slot=slot, op=name)
                continue
            if terminal is None or terminal[0] != "hold":
                self.error(RULE_REGION_COMMIT,
                           f"write of r{ob.reg} derived static but not "
                           "held in a commit local", step=t, slot=slot,
                           op=name)
                continue
            cursor += 1
            hold = terminal[1]
            if hold not in self.declared_holds:
                self.error(RULE_REGION_EXIT,
                           f"hold {hold} not None-initialized in the "
                           "prologue (except path is not total)",
                           step=t, slot=slot, op=name)
            if hold in self.hold_names.values():
                self.error(RULE_REGION_COMMIT,
                           f"hold {hold} reused by a second write site",
                           step=t, slot=slot, op=name)
            self.hold_names[ob.index] = hold
        for extra in terminals[cursor:]:
            self.error(RULE_REGION_EFFECT,
                       f"write terminal {extra[:2]} has no deriving "
                       "plan op", step=t)

    def _check_scans(self, t: int, stmts, ops) -> None:
        observed = _collect(stmts, _match_scan)
        expected: list[int] = []
        if self.strict:
            for op in ops:
                if op[OP_GUARD] != 1:
                    expected.append(op[OP_GUARD])
                expected.extend(reg for reg in op[OP_SRCS]
                                if reg not in (0, 1))
        if observed != expected:
            self.error(RULE_REGION_COMMIT,
                       f"hazard scans cover {observed}, derived "
                       f"obligation is {expected}", step=t)

    def _check_tk(self, t: int, seg, ops) -> None:
        flips = _collect(seg, lambda s: True if _match_tk_true(s) else None)
        geo = self.geometry
        assert geo is not None
        expect = (1 if self._has_jump_flag()
                  and geo.jump_pos == self.head + t else 0)
        if len(flips) != expect:
            self.error(RULE_REGION_STRUCT,
                       f"{len(flips)} _tk flips at this step, jump "
                       f"geometry requires {expect}", step=t)

    # -- differential probing -----------------------------------------

    def _probe_step(self, t: int, stmts, ops) -> None:
        guards = sorted({op[OP_GUARD] for op in ops
                         if op[OP_GUARD] not in (0, 1)})
        base = probe_regfiles(PROBE_FILES)
        variants = [list(values) for values in base]
        for guard in guards:
            odd = list(base[0])
            odd[guard] |= 1
            even = list(base[1 % len(base)])
            even[guard] &= ~1 & M32
            variants.extend((odd, even))
        for op in ops:
            if not op[OP_IS_MEM] or op[OP_NAME] not in (
                    *_LOAD_BYTES, *_STORE_BYTES):
                continue
            srcs = op[OP_SRCS]
            if not srcs or srcs[0] in (0, 1):
                continue
            imm = op[OP_IMM] or 0
            for addr in (MMIO_LO + 0x40, 0xFFFFFFF0):
                crafted = list(base[2 % len(base)])
                if op[OP_NAME] == "ld32" and len(srcs) == 2:
                    offset = crafted[srcs[1]] if srcs[1] != srcs[0] else 0
                    crafted[srcs[0]] = (addr - offset) & M32
                else:
                    crafted[srcs[0]] = (addr - imm) & M32
                for guard in guards:
                    crafted[guard] |= 1
                variants.append(crafted)
        for values in variants:
            before = len(self.diags)
            self._probe_once(t, stmts, ops, values)
            if len(self.diags) > before:
                break   # one probe's findings are enough per step

    def _probe_once(self, t: int, stmts, ops, values) -> None:
        assert self.schedule is not None
        recorder = MemRecorder()
        ctx = ProbeCtx(recorder)
        env: dict = {
            "values": list(values),
            "pending": {}, "heap": [],
            "now": _NOW0 + (t - 1 if t else 0), "now0": _NOW0,
            "cycle": 31337,
            "commit_until": lambda limit: None,
            "ctx": ctx,
            "mem_load": recorder.mem_load,
            "mem_store": recorder.mem_store,
            "mmio_load": recorder.mmio_load,
            "mmio_store": recorder.mmio_store,
            "insort": insort, "heappush": heappush, "zip": zip,
            "bool": bool,
            "fu_totals": [0] * 64,
        }
        for counter in _ZERO_COUNTERS:
            env[counter] = 0
        for name in self.declared_holds:
            env[name] = None
        sentinels: dict[int, int] = {}
        commits = self.schedule.commits_at.get(t, [])
        for ob in commits:
            hold = self.hold_names.get(ob.index)
            if hold is None:
                continue
            sentinels[ob.index] = (0x5EED0000 + ob.index) & M32
            env[hold] = sentinels[ob.index]
        if self._has_jump_flag():
            env["_tk"] = False
        for name, sem in self._step_sems(ops).items():
            env[name] = sem

        # Reference state: commits land before any op issues.
        ref_values = list(values)
        for ob in commits:
            if ob.index in sentinels:
                ref_values[ob.reg] = sentinels[ob.index]
        refs: list = []
        expected_events: list[tuple] = []
        for op in ops:
            if op[OP_IS_JUMP] or op[OP_NAME] == "nop":
                refs.append(None)
                continue
            try:
                executed, results, events = reference_effects(op,
                                                              ref_values)
            except Exception:
                # Partial-domain semantic (e.g. CABAC table lookups):
                # this probe file is outside the op's domain, and the
                # generated code would raise identically.  Skip the
                # variant; structural checks still bind this step.
                return
            refs.append((executed, results))
            expected_events.extend(events)

        try:
            outcome = Interp(env).run(stmts)
        except EvalError as exc:
            self.error(RULE_REGION_EFFECT,
                       f"step not evaluable under probe: {exc}", step=t)
            return
        except Exception as exc:
            # The reference semantics ran clean on this probe file, so
            # a raise here is the generated code diverging (e.g. a
            # dropped hold feeding None into arithmetic).
            self.error(RULE_REGION_EFFECT,
                       f"step raised {type(exc).__name__} under a probe "
                       f"the registry semantics accept: {exc}", step=t)
            return
        if outcome is not None:
            self.error(RULE_REGION_EFFECT,
                       f"step left its straight line (outcome "
                       f"{outcome!r}) under probe", step=t)
            return

        if recorder.events != expected_events:
            self.error(RULE_REGION_EFFECT,
                       f"memory access stream {recorder.events} differs "
                       f"from registry semantics {expected_events}",
                       step=t)
        now = _NOW0 + t
        for slot, site in self._site_list(t):
            op = ops[slot]
            ref = refs[slot]
            if ref is None:
                continue
            executed, results = ref
            for pos, ob in enumerate(site):
                value = results[pos] if executed and pos < len(results) \
                    else None
                if ob.dynamic:
                    entries = [e for e in env["pending"].get(ob.reg, [])
                               if e[1] == now]
                    want = [(now + ob.latency, now, value)] if executed \
                        else []
                    if executed and (now + ob.latency, ob.reg) \
                            not in env["heap"]:
                        self.error(RULE_REGION_COMMIT,
                                   f"pending push of r{ob.reg} missing "
                                   "its heap entry", step=t, slot=slot,
                                   op=op[OP_NAME])
                    if sorted(entries) != sorted(want):
                        self.error(RULE_REGION_EFFECT,
                                   f"{op[OP_NAME]} pending entries for "
                                   f"r{ob.reg} are {entries}, registry "
                                   f"semantics require {want}", step=t,
                                   slot=slot, op=op[OP_NAME])
                    continue
                hold = self.hold_names.get(ob.index)
                if hold is None:
                    continue
                if env.get(hold) != value:
                    self.error(RULE_REGION_EFFECT,
                               f"{op[OP_NAME]} holds {env.get(hold)!r} "
                               f"for r{ob.reg}, registry semantics give "
                               f"{value!r} (value/mask/immediate "
                               "mismatch)", step=t, slot=slot,
                               op=op[OP_NAME])
        for ob in commits:
            if ob.index in sentinels \
                    and env["values"][ob.reg] != sentinels[ob.index]:
                self.error(RULE_REGION_COMMIT,
                           f"static commit did not store the r{ob.reg} "
                           "hold into the register file", step=t,
                           slot=ob.slot)
        for reg in range(len(values)):
            if env["values"][reg] != ref_values[reg]:
                self.error(RULE_REGION_EFFECT,
                           f"stray register-file write to r{reg} "
                           "(in-step writes must go through holds or "
                           "pending)", step=t)
                break
        self._check_counters(t, env, ops, ref_values)

    def _step_sems(self, ops) -> dict:
        sems: dict = {}
        for op in ops:
            sems[f"_sem_{op[OP_NAME]}"] = op[OP_SEMANTIC]
        return sems

    def _check_counters(self, t: int, env, ops, ref_values) -> None:
        def runs(op) -> bool:
            guard = op[OP_GUARD]
            return guard == 1 or bool(ref_values[guard] & 1)

        executed = [op for op in ops if runs(op)]
        expect = {
            "_ex": len(executed),
            "_gr": len(ops),
            "_rd": sum(len(op[OP_SRCS]) for op in executed),
            "_wr": sum(0 if op[OP_IS_JUMP] or op[OP_NAME] == "nop"
                       or not op[OP_DSTS]
                       else (1 if len(op[OP_DSTS]) == 1
                             else len(op[OP_DSTS]))
                       for op in executed),
        }
        geo = self.geometry
        assert geo is not None
        jump_taken = any(op[OP_IS_JUMP] and op[OP_NAME] != "jmpf"
                         for op in executed)
        expect["_jt"] = 1 if jump_taken else 0
        for counter, want in expect.items():
            if env.get(counter) != want:
                self.error(RULE_REGION_EFFECT,
                           f"counter {counter} is {env.get(counter)!r} "
                           f"after the step, interpreter counts {want}",
                           step=t)
        fu_want = [0] * 64
        for op in executed:
            fu_want[op[OP_FU]] += 1
        if env.get("fu_totals") != fu_want:
            self.error(RULE_REGION_EFFECT,
                       "fu_totals distribution differs from the plan's "
                       "executed ops", step=t)
        if self._has_jump_flag():
            if env.get("_tk") != jump_taken:
                self.error(RULE_REGION_STRUCT,
                           f"_tk is {env.get('_tk')!r} after the step, "
                           f"jump geometry says {jump_taken}", step=t)

    # -- timing phase -------------------------------------------------

    def _check_timing(self, t: int, stmts, ops) -> None:
        assert self.fetch is not None
        fetch_calls = _calls_to(stmts, "icache_fetch")
        if t == 0:
            self._check_head_fetch(stmts, fetch_calls)
        else:
            expected = list(self.fetch.fetches[t - 1])
            observed = [_const_int(call.args[0]) if call.args else None
                        for call in fetch_calls]
            if observed != expected:
                self.error(RULE_REGION_STRUCT,
                           f"constant-folded fetches {observed} differ "
                           f"from derived chunk list {expected}", step=t)
            if any(isinstance(stmt, ast.While) for stmt in stmts):
                self.error(RULE_REGION_STRUCT,
                           "dynamic chunk walk after the region head",
                           step=t)

        mem_ops = [op for op in ops if op[OP_IS_MEM]]
        generic = any(isinstance(stmt, ast.For) and _is_name(
            getattr(stmt, "iter", None), "_acc") for stmt in stmts)
        dcache_calls = _calls_to(stmts, "dcache_access")
        if not mem_ops:
            if generic or dcache_calls:
                self.error(RULE_REGION_STRUCT,
                           "load/store unit emitted for a step with no "
                           "memory ops", step=t)
        elif not generic:
            expected_mem = []
            for op in mem_ops:
                name = op[OP_NAME]
                if name in _LOAD_BYTES:
                    expected_mem.append((True, _LOAD_BYTES[name]))
                elif name in _STORE_BYTES:
                    expected_mem.append((False, _STORE_BYTES[name]))
            observed_mem = []
            for call in dcache_calls:
                if len(call.args) < 3:
                    observed_mem.append(None)
                    continue
                is_load = (call.args[0].value
                           if isinstance(call.args[0], ast.Constant)
                           else None)
                observed_mem.append((is_load, _const_int(call.args[2])))
            if observed_mem != expected_mem:
                self.error(RULE_REGION_STRUCT,
                           f"dcache accesses {observed_mem} differ from "
                           f"the plan's memory ops {expected_mem}",
                           step=t)
            loads = sum(1 for is_load, _n in expected_mem if is_load)
            if len(_calls_to(stmts, "observe_load")) != loads:
                self.error(RULE_REGION_STRUCT,
                           "prefetch observe_load count differs from "
                           "the step's loads", step=t)
            guarded = sum(1 for op in mem_ops if op[OP_GUARD] != 1)
            wrappers = sum(
                1 for stmt in stmts for node in ast.walk(stmt)
                if isinstance(node, ast.If)
                and isinstance(node.test, ast.Compare)
                and len(node.test.ops) == 1
                and isinstance(node.test.ops[0], ast.IsNot)
                and isinstance(node.test.left, ast.Name)
                and node.test.left.id.startswith("_ad"))
            if wrappers != guarded:
                self.error(RULE_REGION_STRUCT,
                           f"{wrappers} guarded-address wrappers for "
                           f"{guarded} guarded memory ops", step=t)

        if not any(isinstance(stmt, ast.If)
                   and _is_name(stmt.test, "prefetch_queue")
                   for stmt in stmts):
            self.error(RULE_REGION_STRUCT,
                       "step missing the prefetch tick", step=t)
        retired = next(
            (_const_int(stmt.value) for stmt in stmts
             if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
             and _is_name(stmt.targets[0], "_t")), None)
        if retired != t + 1:
            self.error(RULE_REGION_EXIT,
                       f"retired count updates to {retired!r}, must be "
                       f"{t + 1} for the spill protocol", step=t)
        if not any(isinstance(stmt, ast.AugAssign)
                   and _is_name(stmt.target, "cycle")
                   for stmt in stmts):
            self.error(RULE_REGION_STRUCT,
                       "step never advances cycle", step=t)

    def _check_head_fetch(self, stmts, fetch_calls) -> None:
        assert self.fetch is not None
        first, last = self.fetch.head_first, self.fetch.head_last
        if len(fetch_calls) != 1:
            self.error(RULE_REGION_STRUCT,
                       f"step 0 must fetch through exactly one icache "
                       f"call, found {len(fetch_calls)}", step=0)
            return
        call = fetch_calls[0]
        if first == last:
            if _const_int(call.args[0]) != first:
                self.error(RULE_REGION_STRUCT,
                           f"step 0 fetches chunk "
                           f"{_const_int(call.args[0])!r}, region head "
                           f"spans chunk {first}", step=0)
        else:
            if not _is_name(call.args[0], "_ch"):
                self.error(RULE_REGION_STRUCT,
                           "multi-chunk head must walk _ch dynamically",
                           step=0)
            starts = [
                _const_int(node.value)
                for stmt in stmts for node in ast.walk(stmt)
                if isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and _is_name(node.targets[0], "_ch")]
            bounds = [
                _const_int(node.comparators[0])
                for stmt in stmts for node in ast.walk(stmt)
                if isinstance(node, ast.Compare)
                and _is_name(node.left, "_ch")
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.LtE)]
            if first not in starts or last not in bounds:
                self.error(RULE_REGION_STRUCT,
                           f"head chunk walk bounds {starts}..{bounds} "
                           f"differ from derived span {first}..{last}",
                           step=0)

    # -- exit path ----------------------------------------------------

    def _hold_sentinels(self) -> dict[str, int]:
        assert self.schedule is not None
        sentinels = {}
        for ob in self.schedule.static_obligations:
            hold = self.hold_names.get(ob.index)
            if hold is not None:
                sentinels[hold] = (0x6E5D0000 + ob.index) & M32
        return sentinels

    def _materialize_env(self, holds: dict[str, int | None],
                         now: int | None = None) -> dict:
        env: dict = {"pending": {}, "heap": [], "now0": _NOW0,
                     "insort": insort, "heappush": heappush}
        if now is not None:
            env["now"] = now
        for name in self.declared_holds:
            env[name] = None
        env.update(holds)
        return env

    def _expect_pending(self, env, obligations, sentinels,
                        label: str, *, step: int | None = None) -> None:
        """Compare pending/heap against the derived materialization
        set: one ``(now0+t_c, now0+t_w, hold)`` entry per obligation."""
        want_pending: dict[int, list[tuple]] = {}
        want_heap: list[tuple[int, int]] = []
        for ob in obligations:
            hold = self.hold_names.get(ob.index)
            value = sentinels.get(hold) if hold is not None else None
            want_pending.setdefault(ob.reg, []).append(
                (_NOW0 + ob.t_c, _NOW0 + ob.t_w, value))
            want_heap.append((_NOW0 + ob.t_c, ob.reg))
        got = {reg: sorted(entries)
               for reg, entries in env["pending"].items() if entries}
        want = {reg: sorted(entries)
                for reg, entries in want_pending.items()}
        if got != want:
            self.error(RULE_REGION_EXIT,
                       f"{label}: pending materialization {got} differs "
                       f"from derived in-flight writes {want}",
                       step=step)
        if sorted(env["heap"]) != sorted(want_heap):
            self.error(RULE_REGION_EXIT,
                       f"{label}: heap entries {sorted(env['heap'])} "
                       f"differ from derived {sorted(want_heap)}",
                       step=step)

    def _check_exit(self, tail: list[ast.stmt]) -> None:
        assert self.schedule is not None and self.geometry is not None
        assert self.fetch is not None
        if not tail or not isinstance(tail[-1], ast.Return) \
                or tail[-1].value is None:
            self.error(RULE_REGION_EXIT,
                       "region must end in a single return")
            return
        materialize, ret = tail[:-1], tail[-1]

        escaped = self.schedule.escaped
        sentinels = self._hold_sentinels()
        env = self._materialize_env(dict(sentinels))
        try:
            Interp(env).run(materialize)
        except EvalError as exc:
            self.error(RULE_REGION_EXIT,
                       f"exit materialization not evaluable: {exc}")
            return
        self._expect_pending(env, escaped, sentinels,
                             "normal exit (all writes issued)")
        env = self._materialize_env({})
        Interp(env).run(materialize)
        unguarded = [ob for ob in escaped if not ob.guarded]
        self._expect_pending(env, unguarded, {},
                             "normal exit (no writes issued)")

        value = ret.value
        if not isinstance(value, ast.Tuple) or len(value.elts) != 11:
            self.error(RULE_REGION_EXIT,
                       "return value must be the 11-element telemetry "
                       "tuple")
            return
        geo = self.geometry
        takens = [True] if geo.kind == "static-taken" else (
            [False, True] if geo.kind == "dynamic" else [False])
        for taken in takens:
            try:
                got = Interp({"_tk": taken}).expr(value.elts[0])
            except EvalError as exc:
                self.error(RULE_REGION_STRUCT,
                           f"exit pc not evaluable: {exc}")
                break
            want = geo.expected_next_pc(taken)
            if got != want:
                self.error(RULE_REGION_STRUCT,
                           f"exit pc is {got!r} with _tk={taken}, jump "
                           f"geometry requires {want}")
        if not _is_name(value.elts[1], "cycle"):
            self.error(RULE_REGION_EXIT,
                       "return element 1 must be the cycle counter")
        if _const_int(value.elts[2]) != self.fetch.final_chunk:
            self.error(RULE_REGION_STRUCT,
                       f"return element 2 is "
                       f"{_const_int(value.elts[2])!r}, derived final "
                       f"chunk is {self.fetch.final_chunk}")
        for pos, name in enumerate(_RETURN_NAMES):
            if not _is_name(value.elts[3 + pos], name):
                self.error(RULE_REGION_EXIT,
                           f"return element {3 + pos} must be {name}")

    # -- BaseException spill ------------------------------------------

    def _check_handler(self, body: list[ast.stmt]) -> None:
        assert self.schedule is not None and self.geometry is not None
        if not body or not isinstance(body[-1], ast.Raise) \
                or body[-1].exc is not None:
            self.error(RULE_REGION_EXIT,
                       "spill handler must end in a bare re-raise")
            return
        geo = self.geometry
        static_obs = self.schedule.static_obligations
        sentinels = self._hold_sentinels()
        jump_rel = (geo.jump_pos - self.head
                    if geo.jump_pos is not None else None)
        counters = {"cycle": 1000003, "_ic": 1009, "_dc": 1013,
                    "_cbf": 1019, "_mm": 1021, "_ex": 1031, "_jt": 1033,
                    "_rd": 1039, "_wr": 1049, "_gr": 1051}
        sweeps: list[tuple[int, bool]] = []
        for retired in range(self.length + 1):
            sweeps.append((retired, False))
            if (self._has_jump_flag() and jump_rel is not None
                    and retired >= jump_rel):
                sweeps.append((retired, True))
        for retired, taken in sweeps:
            s_now = min(retired, self.length - 1)
            env = self._materialize_env(dict(sentinels),
                                        now=_NOW0 + s_now)
            env.update(counters)
            env["_t"] = retired
            env["spill"] = [None] * 13
            if self._has_jump_flag():
                env["_tk"] = taken
            try:
                outcome = Interp(env).run(body)
            except EvalError as exc:
                self.error(RULE_REGION_EXIT,
                           f"spill handler not evaluable: {exc}")
                return
            if outcome != "raise":
                self.error(RULE_REGION_EXIT,
                           "spill handler swallowed the exception")
                return
            in_flight = [ob for ob in static_obs if ob.t_c > s_now]
            label = f"spill at retired={retired}, taken={taken}"
            before = len(self.diags)
            self._expect_pending(env, in_flight, sentinels, label)
            spill = env["spill"]
            for slot, name in enumerate(_SPILL_NAMES):
                want = retired if name == "_t" else counters[name]
                if spill[slot] != want:
                    self.error(RULE_REGION_EXIT,
                               f"{label}: spill[{slot}] is "
                               f"{spill[slot]!r}, interpreter state "
                               f"{name} is {want}")
            want_pc = geo.expected_pc(retired, taken)
            if spill[11] != want_pc:
                self.error(RULE_REGION_EXIT,
                           f"{label}: spill[11] (pc) is {spill[11]!r}, "
                           f"jump geometry requires {want_pc}")
            want_pj = geo.expected_pending_jump(retired, taken)
            if spill[12] != want_pj:
                self.error(RULE_REGION_EXIT,
                           f"{label}: spill[12] (_pending_jump) is "
                           f"{spill[12]!r}, jump geometry requires "
                           f"{want_pj!r}")
            if len(self.diags) > before:
                return      # one spill sweep's findings are enough
        env = self._materialize_env({}, now=_NOW0)
        env.update(counters)
        env["_t"] = 0
        env["spill"] = [None] * 13
        if self._has_jump_flag():
            env["_tk"] = False
        Interp(env).run(body)
        self._expect_pending(env, [], {},
                             "spill with no writes issued")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def generate_source(plan, spec, strict: bool) -> str:
    """The region source the codegen would compile (cache-aware)."""
    cached = plan._trace_code.get((spec.head, spec.length, strict))
    if cached is not None:
        return cached[1]
    from repro.core.trace import _generate
    return _generate(plan, spec, strict)[0]


def validate_region(plan, spec, strict: bool = True, *,
                    source: str | None = None,
                    program_name: str | None = None) -> RegionValidation:
    """Validate one region's generated source against the plan."""
    if source is None:
        source = generate_source(plan, spec, strict)
    if program_name is None:
        program_name = plan.program.name
    checker = _RegionChecker(plan, spec.head, spec.length, strict,
                             source, program_name)
    try:
        diagnostics = checker.check()
    except Exception as exc:  # malformed source must still be a verdict
        diagnostics = [Diagnostic(
            rule=RULE_REGION_STRUCT, severity=SEV_ERROR,
            message=(f"validator could not analyze the region "
                     f"({type(exc).__name__}: {exc}); source does not "
                     f"follow the codegen grammar"))]
    return RegionValidation(program=program_name, head=spec.head,
                            length=spec.length, strict=strict,
                            diagnostics=diagnostics)


def validate_plan(plan, config=None, strict: bool = True,
                  ) -> dict[int, RegionValidation]:
    """Validate every detected region of a plan; head -> result."""
    from repro.core.trace import TraceConfig, regions_for
    config = config if config is not None else TraceConfig()
    return {head: validate_region(plan, spec, strict)
            for head, spec in sorted(regions_for(plan, config).items())}


def validate_catalog(smoke: bool = False,
                     strict_modes: tuple[bool, ...] = (False, True),
                     ) -> list[RegionValidation]:
    """Validate every region of every catalog program (both strict
    modes by default) — the CLI / CI surface."""
    from repro.asm.link import compile_program
    from repro.core.plan import plan_for
    from repro.eval.lockstep import lockstep_catalog, smoke_catalog

    cases = smoke_catalog() if smoke else lockstep_catalog()
    results: list[RegionValidation] = []
    for case in cases:
        linked = compile_program(case.build(), case.config.target)
        plan = plan_for(linked)
        for strict in strict_modes:
            results.extend(validate_plan(plan, strict=strict).values())
    return results



