"""The static program verifier: orchestration and reporting.

:func:`verify_program` runs every rule family over a linked program
and returns a :class:`VerificationReport` — the machine-checked
correctness gate for the exposed pipeline (the scheduler and register
allocator *intend* to satisfy these rules; the verifier re-derives
them from the final machine code, trusting neither).

The report can be rendered, asserted on (:meth:`raise_for_errors`
raises :class:`VerificationError`), or exported through the
observability event bus: pass an :class:`~repro.obs.events.EventBus`
and each diagnostic is emitted as a ``verify`` category event stamped
with its instruction index, alongside one summary event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import build_graph
from repro.analysis.diagnostics import (
    RULE_DEFUSE,
    RULE_ENCODING,
    SEV_ERROR,
    Diagnostic,
)
from repro.analysis.hazards import check_hazards
from repro.analysis.rules import check_defuse, check_encoding, check_structure


class VerificationError(Exception):
    """A program failed static verification; carries the report."""

    def __init__(self, report: "VerificationReport") -> None:
        self.report = report
        super().__init__(report.format())


@dataclass
class VerificationReport:
    """All findings of one verification pass over one program."""

    program_name: str
    target_name: str
    instruction_count: int
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [diag for diag in self.diagnostics if not diag.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors

    def rules_flagged(self) -> set[str]:
        """Rule identifiers with at least one error finding."""
        return {diag.rule for diag in self.errors}

    def format(self) -> str:
        """Multi-line human-readable report."""
        head = (f"{self.program_name} on {self.target_name}: "
                f"{self.instruction_count} instructions, ")
        if not self.diagnostics:
            return head + "verification clean"
        head += (f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)")
        lines = [head]
        lines.extend(f"  {diag.format()}" for diag in self.diagnostics)
        return "\n".join(lines)

    def raise_for_errors(self) -> None:
        """Raise :class:`VerificationError` when any error was found."""
        if not self.ok:
            raise VerificationError(self)


def _plan_crosscheck(program, have_errors: bool) -> list[Diagnostic]:
    """Validate the cached execution plan against the linked program.

    The plan is what the fast interpreter actually executes, so its
    address/size tables must agree with the link-time ones.  When the
    plan itself refuses to build and no other rule explained why,
    surface its complaint rather than silently passing.
    """
    try:
        plan = program.plan()
    except (ValueError, KeyError) as error:
        if have_errors:
            return []  # the cause was already diagnosed by a rule
        return [Diagnostic(
            RULE_DEFUSE, SEV_ERROR,
            f"execution plan rejected the program: {error}")]
    diagnostics = []
    if list(plan.addresses) != list(program.addresses):
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            "execution plan address table disagrees with the link-time "
            "address map"))
    if list(plan.sizes) != list(program.instruction_sizes):
        diagnostics.append(Diagnostic(
            RULE_ENCODING, SEV_ERROR,
            "execution plan size table disagrees with the link-time "
            "instruction sizes"))
    return diagnostics


def verify_program(program, obs=None) -> VerificationReport:
    """Statically verify one linked program; returns the full report.

    ``obs`` is an optional :class:`~repro.obs.events.EventBus`; every
    diagnostic is emitted on it (category ``verify``), followed by a
    summary event.
    """
    graph, diagnostics = build_graph(program)
    diagnostics += check_structure(program)
    diagnostics += check_encoding(program, graph)
    diagnostics += check_defuse(program)
    diagnostics += check_hazards(program, graph)
    diagnostics += _plan_crosscheck(
        program, any(diag.is_error for diag in diagnostics))
    diagnostics.sort(
        key=lambda diag: (diag.pc if diag.pc is not None else -1,
                          diag.rule, diag.message))
    report = VerificationReport(
        program_name=program.name,
        target_name=program.target.name,
        instruction_count=len(program.instructions),
        diagnostics=diagnostics,
    )
    if obs:
        for diag in diagnostics:
            obs.diagnostic(
                diag.pc if diag.pc is not None else 0,
                rule=diag.rule, severity=diag.severity,
                slot=diag.slot, op=diag.op, message=diag.message,
                program=program.name)
        obs.emit(0, "verify", "summary", track="verify",
                 program=program.name, target=program.target.name,
                 errors=len(report.errors),
                 warnings=len(report.warnings))
    return report
