"""VLIW mini-compiler: IR, builder, scheduler, register allocation, linking."""

from repro.asm.assembler import AssemblyError, assemble
from repro.asm.builder import ProgramBuilder
from repro.asm.disasm import disassemble, disassemble_image
from repro.asm.ir import AsmProgram, Block, VOp
from repro.asm.link import LinkedProgram, compile_program, link
from repro.asm.regalloc import RegisterPressureError, allocate_registers
from repro.asm.scheduler import (
    ScheduledBlock,
    ScheduledProgram,
    SchedulingError,
    schedule_block,
    schedule_program,
)
from repro.asm.target import TM3260_TARGET, TM3270_TARGET, Target

__all__ = [
    "AsmProgram", "AssemblyError", "assemble", "disassemble",
    "disassemble_image", "Block", "VOp", "ProgramBuilder", "LinkedProgram",
    "compile_program", "link", "allocate_registers",
    "RegisterPressureError", "ScheduledBlock", "ScheduledProgram",
    "SchedulingError", "schedule_block", "schedule_program",
    "Target", "TM3260_TARGET", "TM3270_TARGET",
]
