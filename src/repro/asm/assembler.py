"""Textual assembler for TriMedia kernels.

A small, regular assembly syntax over the virtual-register IR — handy
for tests, REPL experiments, and porting kernels without writing
builder code.  Example::

    .kernel memset32
    .param dst count value

    loop:
        st32d dst, value, #0
        dst = iaddi dst, #4
        count = iaddi count, #-1
        going = igtr count, zero
        @going jmpt ->loop

Grammar (one operation per line):

* ``.kernel NAME`` — program name (optional, once).
* ``.param A B C`` — declare parameters (pinned to r10, r11, ...).
* ``LABEL:`` — start a new basic block.
* ``[@GUARD] [DSTS =] OPCODE OPERANDS`` — one operation; ``DSTS`` is a
  comma-separated register list, operands are registers, ``#IMM``
  immediates (decimal or 0x hex), or ``->LABEL`` jump targets.
* ``zero`` and ``one`` name the architectural constants r0/r1.
* ``;`` starts a comment.

Register names are created on first use as a destination; reading a
never-written, non-parameter name is an error (use ``zero``).
"""

from __future__ import annotations

import re

from repro.asm.builder import PARAM_BASE_PREG
from repro.asm.ir import (
    FIRST_FREE_VREG,
    VREG_ONE,
    VREG_ZERO,
    AsmProgram,
    Block,
    VOp,
)
from repro.isa.operations import REGISTRY

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_NAME_RE = re.compile(r"^[A-Za-z_][\w.]*$")


class AssemblyError(Exception):
    """Syntax or semantic error in assembly text."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


class Assembler:
    """Stateful single-pass assembler."""

    def __init__(self) -> None:
        self.name = "kernel"
        self._blocks: list[Block] = [Block("entry")]
        self._registers: dict[str, int] = {"zero": VREG_ZERO,
                                           "one": VREG_ONE}
        self._defined: set[str] = {"zero", "one"}
        self._pinned: dict[int, int] = {}
        self._next_vreg = FIRST_FREE_VREG
        self._param_count = 0
        self._line_number = 0

    # -- helpers -------------------------------------------------------------

    def _error(self, message: str):
        raise AssemblyError(self._line_number, message)

    def _new_vreg(self) -> int:
        reg = self._next_vreg
        self._next_vreg += 1
        return reg

    def _lookup_read(self, name: str) -> int:
        if name not in self._registers:
            self._error(f"register {name!r} read before being written")
        if name not in self._defined:
            self._error(f"register {name!r} read before being written")
        return self._registers[name]

    def _lookup_write(self, name: str) -> int:
        if not _NAME_RE.match(name):
            self._error(f"bad register name {name!r}")
        if name in ("zero", "one"):
            self._error(f"cannot write constant register {name!r}")
        if name not in self._registers:
            self._registers[name] = self._new_vreg()
        self._defined.add(name)
        return self._registers[name]

    # -- directives ---------------------------------------------------------

    def _directive(self, line: str) -> None:
        parts = line.split()
        if parts[0] == ".kernel":
            if len(parts) != 2:
                self._error(".kernel takes exactly one name")
            self.name = parts[1]
        elif parts[0] == ".param":
            if len(parts) < 2:
                self._error(".param needs at least one name")
            for name in parts[1:]:
                if name in self._registers:
                    self._error(f"parameter {name!r} already declared")
                reg = self._new_vreg()
                self._registers[name] = reg
                self._defined.add(name)
                self._pinned[reg] = PARAM_BASE_PREG + self._param_count
                self._param_count += 1
        else:
            self._error(f"unknown directive {parts[0]!r}")

    # -- operations ---------------------------------------------------------

    def _parse_imm(self, token: str) -> int:
        body = token[1:]
        try:
            return int(body, 0)
        except ValueError:
            self._error(f"bad immediate {token!r}")

    def _operation(self, line: str) -> None:
        guard = None
        if line.startswith("@"):
            guard_name, _, line = line[1:].partition(" ")
            guard = self._lookup_read(guard_name.strip())
            line = line.strip()
            if not line:
                self._error("guard with no operation")

        dst_names: list[str] = []
        if "=" in line:
            dst_part, _, line = line.partition("=")
            dst_names = [name.strip()
                         for name in dst_part.split(",") if name.strip()]
            line = line.strip()

        parts = line.split(None, 1)
        opname = parts[0]
        if opname not in REGISTRY:
            self._error(f"unknown operation {opname!r}")
        spec = REGISTRY.spec(opname)

        srcs: list[int] = []
        imm = None
        target = None
        if len(parts) > 1:
            for token in (t.strip() for t in parts[1].split(",")):
                if not token:
                    self._error("empty operand")
                elif token.startswith("#"):
                    if imm is not None:
                        self._error("multiple immediates")
                    imm = self._parse_imm(token)
                elif token.startswith("->"):
                    if target is not None:
                        self._error("multiple jump targets")
                    target = token[2:].strip()
                else:
                    srcs.append(self._lookup_read(token))

        # Destinations are looked up last so an op may read a name it
        # also redefines (accumulators).
        dsts = tuple(self._lookup_write(name) for name in dst_names)
        op = VOp(opname, dsts=dsts, srcs=tuple(srcs), imm=imm,
                 guard=guard, target=target)
        try:
            op.validate()
        except ValueError as error:
            self._error(str(error))

        if spec.is_jump:
            if self._blocks[-1].jump is not None:
                self._error("block already ended by a jump")
            self._blocks[-1].jump = op
            self._blocks.append(
                Block(f"{self.name}.b{len(self._blocks)}"))
        else:
            self._blocks[-1].ops.append(op)

    # -- main entry -----------------------------------------------------------

    def assemble(self, text: str) -> AsmProgram:
        """Assemble ``text`` into a validated program."""
        for self._line_number, raw in enumerate(text.splitlines(), 1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            label = _LABEL_RE.match(line)
            if label:
                name = label.group(1)
                if any(block.label == name for block in self._blocks):
                    self._error(f"duplicate label {name!r}")
                self._blocks.append(Block(name))
            elif line.startswith("."):
                self._directive(line)
            else:
                self._operation(line)

        referenced = {"entry"}
        for block in self._blocks:
            for op in block.all_ops():
                if op.target is not None:
                    referenced.add(op.target)
        blocks = [block for block in self._blocks
                  if block.ops or block.jump is not None
                  or block.label in referenced]
        program = AsmProgram(
            name=self.name,
            blocks=blocks,
            num_vregs=self._next_vreg,
            pinned=dict(self._pinned),
        )
        try:
            program.validate()
        except ValueError as error:
            raise AssemblyError(0, str(error)) from error
        return program


def assemble(text: str) -> AsmProgram:
    """Assemble kernel source text into an :class:`AsmProgram`."""
    return Assembler().assemble(text)
