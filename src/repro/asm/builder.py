"""Kernel construction API.

:class:`ProgramBuilder` is how kernels are written in this repository:
straight-line virtual-register code organized into labeled blocks with
explicit jumps, which the target-parameterized scheduler then packs
into VLIW instructions.  Example::

    b = ProgramBuilder("memset32")
    dst, n, value = b.params("dst", "n", "value")
    b.label("loop")
    b.emit("st32d", srcs=(dst, value), imm=0)
    dst = b.emit_into(dst, "iaddi", srcs=(dst,), imm=4)
    n = b.emit_into(n, "iaddi", srcs=(n,), imm=-1)
    cond = b.emit("igtr", srcs=(n, b.zero))
    b.jump_if_true(cond, "loop")
    program = b.finish()

Helper methods cover common idioms: 32-bit constant formation
(``const32``), guarded/predicated emission, and loop heads.
"""

from __future__ import annotations

from repro.asm.ir import (
    FIRST_FREE_VREG,
    VREG_ONE,
    VREG_ZERO,
    AsmProgram,
    Block,
    VOp,
)
from repro.isa.operations import REGISTRY

#: Parameters are pinned to consecutive physical registers from r10,
#: a simple calling convention shared with the processor's run() API.
PARAM_BASE_PREG = 10


class ProgramBuilder:
    """Incrementally builds an :class:`~repro.asm.ir.AsmProgram`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: list[Block] = [Block("entry")]
        self._next_vreg = FIRST_FREE_VREG
        self._param_count = 0
        self._pinned: dict[int, int] = {}
        self._finished = False
        self.zero = VREG_ZERO
        self.one = VREG_ONE

    # -- registers ---------------------------------------------------------

    def vreg(self) -> int:
        """Allocate a fresh virtual register."""
        reg = self._next_vreg
        self._next_vreg += 1
        return reg

    def vregs(self, count: int) -> list[int]:
        """Allocate ``count`` fresh virtual registers."""
        return [self.vreg() for _ in range(count)]

    def params(self, *names: str) -> list[int]:
        """Declare kernel parameters pinned to r10, r11, ...

        The names are for documentation; the returned virtual registers
        are what matters.  May be called multiple times; pinning
        continues from the previous call.
        """
        regs = []
        for _name in names:
            reg = self.vreg()
            self._pinned[reg] = PARAM_BASE_PREG + self._param_count
            self._param_count += 1
            regs.append(reg)
        return regs

    # -- blocks and control flow --------------------------------------------

    @property
    def _current(self) -> Block:
        return self._blocks[-1]

    def label(self, name: str) -> None:
        """Start a new block named ``name`` (fall-through from current)."""
        if self._current.label == name:
            return
        self._blocks.append(Block(name))

    def _end_block_with_jump(self, jump: VOp) -> None:
        if self._current.jump is not None:
            raise ValueError(
                f"block {self._current.label!r} already has a jump")
        self._current.jump = jump
        self._blocks.append(Block(f"{self.name}.b{len(self._blocks)}"))

    def jump(self, target: str) -> None:
        """Unconditional jump to ``target``; ends the current block."""
        self._end_block_with_jump(VOp("jmpi", target=target))

    def jump_if_true(self, guard: int, target: str) -> None:
        """Jump to ``target`` when ``guard`` is true; ends the block."""
        self._end_block_with_jump(VOp("jmpt", guard=guard, target=target))

    def jump_if_false(self, guard: int, target: str) -> None:
        """Jump to ``target`` when ``guard`` is false; ends the block."""
        self._end_block_with_jump(VOp("jmpf", guard=guard, target=target))

    # -- operations ----------------------------------------------------------

    def emit(self, name: str, srcs: tuple[int, ...] = (),
             imm: int | None = None, guard: int | None = None,
             alias: str | None = None):
        """Emit operation ``name``; returns its destination vreg(s).

        Returns a single vreg for 1-destination ops, a tuple for
        2-destination (two-slot) ops, and ``None`` for stores.
        ``alias`` tags memory operations with a ``restrict``-style
        alias class (see :class:`~repro.asm.ir.VOp`).
        """
        spec = REGISTRY.spec(name)
        dsts = tuple(self.vreg() for _ in range(spec.ndst))
        op = VOp(name, dsts=dsts, srcs=tuple(srcs), imm=imm,
                 guard=guard, alias_class=alias)
        op.validate()
        self._current.ops.append(op)
        if spec.ndst == 0:
            return None
        if spec.ndst == 1:
            return dsts[0]
        return dsts

    def emit_into(self, dst: int, name: str, srcs: tuple[int, ...] = (),
                  imm: int | None = None, guard: int | None = None,
                  alias: str | None = None) -> int:
        """Emit an op writing into an *existing* vreg (loop updates)."""
        spec = REGISTRY.spec(name)
        if spec.ndst != 1:
            raise ValueError(f"emit_into needs a 1-destination op: {name}")
        op = VOp(name, dsts=(dst,), srcs=tuple(srcs), imm=imm,
                 guard=guard, alias_class=alias)
        op.validate()
        self._current.ops.append(op)
        return dst

    def const32(self, value: int) -> int:
        """Materialize a 32-bit constant (uimm, plus himm when needed)."""
        value &= 0xFFFFFFFF
        low = value & 0xFFFF
        high = value >> 16
        reg = self.emit("uimm", imm=low)
        if high:
            reg = self.emit("himm", srcs=(reg,), imm=high)
        return reg

    def counted_loop(self, count_reg: int, body_label: str = "loop"):
        """Begin a counted loop; returns a closure that ends it.

        Usage::

            end_loop = b.counted_loop(n, "body")
            ...  # body, may update registers in place via emit_into
            end_loop()

        The loop decrements a private counter each iteration and
        branches back while it remains positive.  ``count_reg`` must be
        >= 1 at entry.
        """
        counter = self.emit("mov", srcs=(count_reg,))
        self.label(body_label)

        def end_loop() -> None:
            self.emit_into(counter, "iaddi", srcs=(counter,), imm=-1)
            cond = self.emit("igtr", srcs=(counter, self.zero))
            self.jump_if_true(cond, body_label)

        return end_loop

    # -- finalization ---------------------------------------------------------

    def finish(self) -> AsmProgram:
        """Validate and return the finished program."""
        if self._finished:
            raise ValueError(f"{self.name}: finish() called twice")
        self._finished = True
        blocks = [blk for blk in self._blocks
                  if blk.ops or blk.jump is not None
                  or blk.label in self._referenced_labels()]
        program = AsmProgram(
            name=self.name,
            blocks=blocks,
            num_vregs=self._next_vreg,
            pinned=dict(self._pinned),
        )
        program.validate()
        return program

    def _referenced_labels(self) -> set[str]:
        referenced = {"entry"}
        for blk in self._blocks:
            for op in blk.all_ops():
                if op.target is not None:
                    referenced.add(op.target)
        return referenced
