"""Disassembler: linked programs / binary images back to listings.

Produces an objdump-style listing of a :class:`LinkedProgram` or of a
raw encoded image, with per-instruction addresses, sizes, template
codes, and slot-annotated operations — the inspection tool for
everything the encoder and linker produce.
"""

from __future__ import annotations

from repro.asm.link import LinkedProgram
from repro.isa.encoding import (
    TRUE_GUARD,
    EncodedInstruction,
    EncodedOp,
    decode_program,
    instruction_nbytes,
)

_TEMPLATE_NAMES = {0: "26", 1: "34", 2: "42", 3: "--"}


def format_operand_list(op: EncodedOp) -> str:
    """Render one operation's operands."""
    parts = []
    if op.dsts:
        parts.append(" ".join(f"r{reg}" for reg in op.dsts) + " =")
    parts.append(op.name)
    operands = [f"r{reg}" for reg in op.srcs]
    if op.spec.has_imm and op.imm is not None:
        if op.spec.is_jump:
            operands.append(f"-> {op.imm:#06x}")
        else:
            operands.append(f"#{op.imm}")
    if operands:
        parts.append(", ".join(operands))
    text = " ".join(parts)
    if op.guard != TRUE_GUARD:
        text = f"@r{op.guard} {text}"
    return text


def format_instruction(instr: EncodedInstruction, address: int,
                       label: str | None = None) -> str:
    """Render one VLIW instruction as listing lines."""
    lines = []
    if label:
        lines.append(f"{label}:")
    template = ":".join(_TEMPLATE_NAMES[code]
                        for code in instr.template_codes())
    marker = " <target>" if instr.is_jump_target else ""
    lines.append(f"  {address:#06x}  [{template}] "
                 f"({instruction_nbytes(instr):2d}B){marker}")
    if not instr.ops:
        lines.append("          (empty)")
    for op in sorted(instr.ops, key=lambda candidate: candidate.slot):
        slots = (f"{op.slot}+{op.slot + 1}" if op.spec.two_slot
                 else f"{op.slot}")
        lines.append(f"          slot {slots:<4} "
                     f"{format_operand_list(op)}")
    return "\n".join(lines)


def disassemble(program: LinkedProgram) -> str:
    """Full listing of a linked program, with labels."""
    index_to_label = {index: label
                      for label, index in program.labels.items()}
    lines = [f"; {program.name} for {program.target.name}: "
             f"{program.instruction_count} instructions, "
             f"{program.nbytes} bytes"]
    for index, instr in enumerate(program.instructions):
        lines.append(format_instruction(
            instr, program.addresses[index],
            index_to_label.get(index)))
    return "\n".join(lines)


def disassemble_image(image: bytes) -> str:
    """Listing of a raw encoded image (no label information)."""
    instructions = decode_program(image)
    lines = [f"; image: {len(instructions)} instructions, "
             f"{len(image)} bytes"]
    address = 0
    for instr in instructions:
        lines.append(format_instruction(instr, address))
        address += instruction_nbytes(instr)
    return "\n".join(lines)
