"""Assembler-level intermediate representation.

Kernels are written (by hand or by the kernel generators in
:mod:`repro.kernels`) as a list of *basic blocks* of virtual-register
operations.  The target-parameterized list scheduler
(:mod:`repro.asm.scheduler`) packs each block into VLIW instructions
for a concrete target — the "re-compilation" the paper performs when
moving applications from the TM3260 to the TM3270 (Section 6).

Virtual registers are plain ints.  Two are special and pre-pinned, as
in the TriMedia architecture: vreg 0 reads as constant 0 (physical r0)
and vreg 1 as constant 1 (physical r1); r1 doubles as the TRUE guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operations import REGISTRY, OpSpec

#: Virtual registers 0 and 1 are pinned to the constant registers.
VREG_ZERO = 0
VREG_ONE = 1
FIRST_FREE_VREG = 2

#: Physical registers: r0 = 0 and r1 = 1 are architectural constants.
NUM_PHYSICAL_REGS = 128
FIRST_ALLOCATABLE_PREG = 2


@dataclass
class VOp:
    """One operation over virtual registers.

    ``guard`` is a virtual register or ``None`` (always execute).
    Jump operations carry a ``target`` block label instead of an
    immediate; the linker resolves it to a byte address.

    ``alias_class`` is the ``restrict`` mechanism: memory operations
    carrying *different* non-None alias classes are promised (by the
    kernel author, as a C programmer promises with ``restrict``
    pointers) never to touch the same bytes, so the scheduler need
    not order them.  ``None`` means "may alias anything".
    """

    name: str
    dsts: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    imm: int | None = None
    guard: int | None = None
    target: str | None = None
    alias_class: str | None = None

    @property
    def spec(self) -> OpSpec:
        return REGISTRY.spec(self.name)

    def validate(self) -> None:
        """Check operand counts against the operation spec."""
        spec = self.spec
        if len(self.dsts) != spec.ndst:
            raise ValueError(
                f"{self.name}: expected {spec.ndst} dsts, got "
                f"{len(self.dsts)}")
        if len(self.srcs) != spec.nsrc:
            raise ValueError(
                f"{self.name}: expected {spec.nsrc} srcs, got "
                f"{len(self.srcs)}")
        if spec.is_jump and self.target is None:
            raise ValueError(f"{self.name}: jump without target label")
        if not spec.is_jump and self.target is not None:
            raise ValueError(f"{self.name}: target on non-jump")
        if spec.has_imm and not spec.is_jump and self.imm is None:
            raise ValueError(f"{self.name}: missing immediate")

    def reads(self) -> tuple[int, ...]:
        """Virtual registers read: sources plus the guard, if any."""
        if self.guard is None:
            return self.srcs
        return self.srcs + (self.guard,)


@dataclass
class Block:
    """A basic block: straight-line ops plus an optional ending jump."""

    label: str
    ops: list[VOp] = field(default_factory=list)
    jump: VOp | None = None

    def all_ops(self) -> list[VOp]:
        """Ops including the jump, in program order."""
        if self.jump is None:
            return list(self.ops)
        return list(self.ops) + [self.jump]


@dataclass
class AsmProgram:
    """A whole kernel at the virtual-register level."""

    name: str
    blocks: list[Block] = field(default_factory=list)
    num_vregs: int = FIRST_FREE_VREG
    #: vreg -> required physical register (parameters, returns).
    pinned: dict[int, int] = field(default_factory=dict)

    def block(self, label: str) -> Block:
        """Look up a block by label."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block labeled {label!r} in {self.name}")

    def validate(self) -> None:
        """Validate operand counts and jump-target resolution."""
        labels = {blk.label for blk in self.blocks}
        if len(labels) != len(self.blocks):
            raise ValueError(f"{self.name}: duplicate block labels")
        for blk in self.blocks:
            for op in blk.all_ops():
                op.validate()
                if op.target is not None and op.target not in labels:
                    raise ValueError(
                        f"{self.name}: jump to unknown label {op.target!r}")

    def jump_target_labels(self) -> set[str]:
        """Labels that are reached by an explicit jump."""
        targets = set()
        for blk in self.blocks:
            for op in blk.all_ops():
                if op.target is not None:
                    targets.add(op.target)
        return targets

    def op_count(self) -> int:
        """Total number of operations (jumps included)."""
        return sum(len(blk.all_ops()) for blk in self.blocks)
