"""Linking: scheduled blocks -> executable VLIW program image.

Lays blocks out in order, converts scheduled rows into
:class:`~repro.isa.encoding.EncodedInstruction` objects over physical
registers, marks jump-target instructions (which are encoded
uncompressed — Section 2.1), resolves jump labels to byte addresses,
and produces both the binary image and the in-memory instruction list
the processor model executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.ir import AsmProgram
from repro.asm.regalloc import allocate_registers_scheduled
from repro.asm.scheduler import (
    ScheduledProgram,
    compute_global_defs,
    schedule_program,
)
from repro.asm.target import Target
from repro.isa.encoding import (
    TRUE_GUARD,
    EncodedInstruction,
    EncodedOp,
    encode_program,
    instruction_nbytes,
)


@dataclass
class LinkedProgram:
    """An executable kernel for one target."""

    name: str
    target: Target
    instructions: list[EncodedInstruction]
    addresses: list[int]
    labels: dict[str, int]
    image: bytes = b""
    register_map: dict[int, int] = field(default_factory=dict)
    #: Physical registers defined at entry (pinned parameters); the
    #: static verifier's def-use analysis treats them as written.
    entry_regs: tuple[int, ...] = ()

    @property
    def nbytes(self) -> int:
        return len(self.image)

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    @property
    def instruction_sizes(self) -> list[int]:
        """Per-instruction encoded byte sizes (cached).

        Derived once from the address map so the executor never
        recomputes ``addresses[i + 1] - addresses[i]`` per step.
        """
        try:
            return self._instruction_sizes
        except AttributeError:
            sizes = [
                self.addresses[index + 1] - address
                for index, address in enumerate(self.addresses[:-1])
            ]
            if self.addresses:
                sizes.append(self.nbytes - self.addresses[-1])
            self._instruction_sizes = sizes
            return sizes

    def plan(self):
        """The cached pre-decoded :class:`~repro.core.plan.ExecutionPlan`."""
        from repro.core.plan import plan_for

        return plan_for(self)

    @property
    def operation_count(self) -> int:
        return sum(len(instr.ops) for instr in self.instructions)

    def index_of_address(self, address: int) -> int:
        """Instruction index at byte ``address`` (jump resolution)."""
        try:
            return self._address_index[address]
        except AttributeError:
            self._address_index = {
                addr: index for index, addr in enumerate(self.addresses)}
            return self._address_index[address]


def _row_to_instruction(row, jump_targets, regmap, label: str,
                        row_index: int) -> EncodedInstruction:
    ops = []
    for slot, vop in sorted(row.items()):
        if vop.guard is None:
            guard = TRUE_GUARD
        else:
            guard = regmap.resolve(label, vop.guard)
        ops.append(EncodedOp(
            name=vop.name,
            slot=slot,
            dsts=tuple(regmap.resolve(label, reg) for reg in vop.dsts),
            srcs=tuple(regmap.resolve(label, reg) for reg in vop.srcs),
            guard=guard,
            imm=vop.imm,
        ))
    is_target = row_index == 0 and label in jump_targets
    return EncodedInstruction(tuple(ops), is_target)


def link(program: AsmProgram, target: Target,
         scheduled: ScheduledProgram | None = None,
         verify: bool = False) -> LinkedProgram:
    """Schedule (if needed), allocate registers, and link ``program``.

    With ``verify=True`` the linked result is post-passed through the
    static verifier (:mod:`repro.analysis`) and a
    :class:`~repro.analysis.verifier.VerificationError` is raised when
    any rule finds an error — the belt-and-braces gate for freshly
    scheduled code.
    """
    if scheduled is None:
        scheduled = schedule_program(program, target)
    regmap = allocate_registers_scheduled(
        program, scheduled, target, compute_global_defs(program))
    jump_targets = program.jump_target_labels()

    instructions: list[EncodedInstruction] = []
    labels: dict[str, int] = {}
    pending_jumps: list[tuple[int, str]] = []  # (instruction idx, label)
    for sblock in scheduled.blocks:
        labels[sblock.label] = len(instructions)
        for row_index, row in enumerate(sblock.rows):
            instr = _row_to_instruction(
                row, jump_targets, regmap, sblock.label, row_index)
            for op in instr.ops:
                if op.spec.is_jump:
                    source = next(
                        vop for vop in row.values() if vop.name == op.name)
                    pending_jumps.append((len(instructions), source.target))
            instructions.append(instr)
    if instructions:
        instructions[0].is_jump_target = True

    # Address assignment: sizes are independent of immediate values, so
    # a single pass suffices before patching jump targets.
    addresses: list[int] = []
    offset = 0
    for instr in instructions:
        addresses.append(offset)
        offset += instruction_nbytes(instr)

    for instr_index, label in pending_jumps:
        if label not in labels:
            raise ValueError(f"{program.name}: undefined label {label!r}")
        target_index = labels[label]
        target_address = (addresses[target_index]
                          if target_index < len(addresses) else offset)
        instr = instructions[instr_index]
        patched_ops = tuple(
            EncodedOp(op.name, op.slot, op.dsts, op.srcs, op.guard,
                      target_address)
            if op.spec.is_jump and op.imm is None else op
            for op in instr.ops
        )
        instructions[instr_index] = EncodedInstruction(
            patched_ops, instr.is_jump_target)

    image, encoded_addresses = encode_program(instructions)
    if encoded_addresses != addresses:
        raise AssertionError(
            f"{program.name}: address assignment mismatch during linking")
    linked = LinkedProgram(
        name=program.name,
        target=target,
        instructions=instructions,
        addresses=addresses,
        labels=labels,
        image=image,
        register_map=regmap.as_flat_dict(),
        entry_regs=tuple(sorted(set(program.pinned.values()))),
    )
    if verify:
        from repro.analysis.verifier import verify_program

        verify_program(linked).raise_for_errors()
    return linked


def compile_program(program: AsmProgram, target: Target,
                    verify: bool = False) -> LinkedProgram:
    """One-step compile: schedule + allocate + link for ``target``."""
    return link(program, target, verify=verify)
