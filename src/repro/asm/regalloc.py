"""Register allocation.

The TM3270's unified register file has 128 32-bit registers (Table 1)
— deliberately large so that media kernels keep their whole working
set in registers and never spill (Section 1).  We never spill either:
running out is a hard error (:class:`RegisterPressureError`).

Two allocators are provided:

* :func:`allocate_registers` — the trivial 1:1 mapping (no reuse),
  kept for small programs and for tests that want stable numbering;
* :func:`allocate_registers_scheduled` — a linear-scan allocator over
  the *scheduled* code, used by the linker.  Globals (values live
  across blocks, loop-carried values, pinned parameters) get dedicated
  registers; block-local temporaries share a recycled pool.

Recycling must respect the exposed pipeline: a physical register may
be redefined only once (a) every read of the previous value has
issued, and (b) the previous write has landed — otherwise a later,
shorter-latency write could be clobbered by an earlier in-flight
longer-latency one.  Hence a local's register frees at
``max(last_use_row, def_row + latency)`` and is reusable by
definitions issuing at or after that row.
"""

from __future__ import annotations

from repro.asm.ir import (
    FIRST_ALLOCATABLE_PREG,
    NUM_PHYSICAL_REGS,
    AsmProgram,
    VREG_ONE,
    VREG_ZERO,
)


class RegisterPressureError(Exception):
    """Raised when a program needs more than 128 physical registers."""


def allocate_registers(program: AsmProgram) -> dict[int, int]:
    """Trivial vreg -> preg mapping with no reuse.

    Pinned virtual registers (parameters/returns) keep their requested
    physical registers; everything else is assigned sequentially.
    """
    mapping: dict[int, int] = {VREG_ZERO: 0, VREG_ONE: 1}
    taken = {0, 1}
    for vreg, preg in sorted(program.pinned.items()):
        _check_pin(program, vreg, preg, taken, mapping)
        mapping[vreg] = preg
        taken.add(preg)

    used_vregs: set[int] = set()
    for blk in program.blocks:
        for op in blk.all_ops():
            used_vregs.update(op.dsts)
            used_vregs.update(op.reads())

    next_free = FIRST_ALLOCATABLE_PREG
    for vreg in sorted(used_vregs):
        if vreg in mapping:
            continue
        while next_free in taken:
            next_free += 1
        if next_free >= NUM_PHYSICAL_REGS:
            raise RegisterPressureError(
                f"{program.name}: register pressure exceeds "
                f"{NUM_PHYSICAL_REGS} registers "
                f"({len(used_vregs)} virtual registers)")
        mapping[vreg] = next_free
        taken.add(next_free)
    return mapping


def _check_pin(program, vreg, preg, taken, mapping) -> None:
    if not 0 <= preg < NUM_PHYSICAL_REGS:
        raise RegisterPressureError(
            f"{program.name}: pin of v{vreg} to r{preg} out of range")
    if preg in taken and mapping.get(vreg) != preg:
        raise RegisterPressureError(
            f"{program.name}: physical r{preg} pinned twice")


class BlockAwareMapping:
    """vreg -> preg lookup that resolves locals per block."""

    def __init__(self, global_map: dict[int, int],
                 local_maps: dict[str, dict[int, int]]) -> None:
        self.global_map = global_map
        self.local_maps = local_maps

    def resolve(self, label: str, vreg: int) -> int:
        locals_here = self.local_maps.get(label)
        if locals_here is not None and vreg in locals_here:
            return locals_here[vreg]
        return self.global_map[vreg]

    def as_flat_dict(self) -> dict[int, int]:
        """Best-effort flat view (globals only), for introspection."""
        return dict(self.global_map)


def allocate_registers_scheduled(program: AsmProgram, scheduled,
                                 target,
                                 global_regs: set[int]) -> BlockAwareMapping:
    """Linear-scan allocation over scheduled blocks.

    ``scheduled`` is a :class:`~repro.asm.scheduler.ScheduledProgram`;
    ``global_regs`` the cross-block-live vreg set (from
    :func:`repro.asm.scheduler.compute_global_defs`).
    """
    global_map: dict[int, int] = {VREG_ZERO: 0, VREG_ONE: 1}
    taken = {0, 1}
    for vreg, preg in sorted(program.pinned.items()):
        _check_pin(program, vreg, preg, taken, global_map)
        global_map[vreg] = preg
        taken.add(preg)
    next_free = FIRST_ALLOCATABLE_PREG
    for vreg in sorted(global_regs):
        if vreg in global_map:
            continue
        while next_free in taken:
            next_free += 1
        if next_free >= NUM_PHYSICAL_REGS:
            raise RegisterPressureError(
                f"{program.name}: {len(global_regs)} cross-block values "
                f"exceed the register file")
        global_map[vreg] = next_free
        taken.add(next_free)

    pool = [preg for preg in range(NUM_PHYSICAL_REGS)
            if preg not in taken]
    local_maps: dict[str, dict[int, int]] = {}
    for sblock in scheduled.blocks:
        local_maps[sblock.label] = _allocate_block_locals(
            program.name, sblock, target, global_map, pool)
    return BlockAwareMapping(global_map, local_maps)


def _allocate_block_locals(program_name: str, sblock, target,
                           global_map: dict[int, int],
                           pool: list[int]) -> dict[int, int]:
    """Interval allocation of one block's local temporaries."""
    first_def: dict[int, int] = {}
    expiry: dict[int, int] = {}
    for row_index, row in enumerate(sblock.rows):
        for vop in row.values():
            latency = target.latency_of(vop.spec)
            for vreg in vop.reads():
                if vreg in global_map:
                    continue
                expiry[vreg] = max(expiry.get(vreg, 0), row_index)
            for vreg in vop.dsts:
                if vreg in global_map:
                    continue
                first_def.setdefault(vreg, row_index)
                expiry[vreg] = max(expiry.get(vreg, 0),
                                   row_index + latency)

    # Sanity: a local read before any definition would be a scheduler
    # or globals-analysis bug.
    for vreg in expiry:
        if vreg not in first_def:
            raise RegisterPressureError(
                f"{program_name}/{sblock.label}: local v{vreg} read "
                f"but never defined (globals analysis bug?)")

    events = sorted(first_def.items(), key=lambda item: (item[1], item[0]))
    free = sorted(pool)
    active: list[tuple[int, int]] = []  # (expiry_row, preg)
    mapping: dict[int, int] = {}
    for vreg, def_row in events:
        still_active = []
        for exp_row, preg in active:
            if exp_row <= def_row:
                free.append(preg)
            else:
                still_active.append((exp_row, preg))
        active = still_active
        free.sort()
        if not free:
            raise RegisterPressureError(
                f"{program_name}/{sblock.label}: out of registers at "
                f"row {def_row} ({len(active)} locals live)")
        preg = free.pop(0)
        mapping[vreg] = preg
        active.append((expiry[vreg], preg))
    return mapping
