"""Target-parameterized VLIW list scheduler.

Packs each basic block's operations into VLIW instructions for a
concrete :class:`~repro.asm.target.Target`, honoring:

* issue-slot and functional-unit constraints (one operation per slot;
  two-slot operations occupy two neighboring slots);
* per-instruction memory-port limits (e.g. 2 loads/instruction on the
  TM3260 but 1 on the TM3270 — Table 6);
* exposed-pipeline latencies: a consumer may not issue fewer than
  ``latency`` instructions after its producer (TriMedia semantics: the
  compiler, not hardware interlocks, guarantees correctness);
* jump delay slots: a taken jump transfers control only after the
  target's architectural delay-slot count (Section 3), so the jump is
  placed exactly ``delay_slots + 1`` instructions before the block end
  and the trailing instructions — which always execute — are filled
  with the block's own tail operations where possible;
* cross-block liveness: values consumed in other blocks (or carried
  around a loop) must complete before the block ends, since the
  scheduler cannot see across the control transfer.

The dependence graph uses conservative memory edges (stores are ordered
against all other memory operations; loads may reorder freely between
themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import format_location
from repro.asm.ir import AsmProgram, Block, VOp
from repro.asm.target import Target

#: Slot preference per functional-unit role: keep slots 4/5 free for
#: memory operations and 2/3/4 for branches when alternatives exist.
_GENERIC_SLOT_PREFERENCE = {1: 0, 3: 1, 2: 2, 5: 3, 4: 4}
_BRANCH_SLOT_PREFERENCE = {3: 0, 2: 1, 4: 2}


class SchedulingError(Exception):
    """Raised when a block cannot be scheduled for the target.

    Messages locate the failure with the same
    :func:`~repro.analysis.diagnostics.format_location` vocabulary the
    static verifier's diagnostics use (block label, row index, op
    name), so scheduler errors and verifier findings read alike.
    """


@dataclass
class ScheduledBlock:
    """One block packed into instruction rows.

    ``rows[c]`` maps anchor slot -> operation issued in cycle ``c``.
    ``jump_row`` is the row index of the block's jump, or ``None``.
    """

    label: str
    rows: list[dict[int, VOp]]
    jump_row: int | None = None

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ScheduledProgram:
    """All blocks of a program, scheduled for one target."""

    name: str
    target: Target
    blocks: list[ScheduledBlock] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        return sum(len(blk) for blk in self.blocks)


def _mem_descriptor(op: VOp, versions: dict[int, int]):
    """Static address descriptor for disambiguation, or None.

    Base+displacement memory operations are described as
    ``(base_vreg, base_version, lo, hi)``: two accesses through the
    same *version* of the same base register with disjoint
    displacement ranges provably do not alias.  Indexed and collapsed
    loads (unknown addresses) return None and stay fully ordered.
    """
    spec = op.spec
    if not spec.has_imm or not op.srcs:
        return None
    base = op.srcs[0]
    return (base, versions.get(base, 0), op.imm, op.imm + spec.mem_bytes)


def _may_alias(first_op: VOp, first, second_op: VOp, second) -> bool:
    """Conservative alias test between two memory operations.

    Distinct author-declared alias classes (``restrict`` semantics)
    never alias; otherwise fall back to base+displacement reasoning.
    """
    if (first_op.alias_class is not None
            and second_op.alias_class is not None
            and first_op.alias_class != second_op.alias_class):
        return False
    if first is None or second is None:
        return True
    if first[0] != second[0] or first[1] != second[1]:
        return True  # different or re-versioned bases: unknown
    return not (first[3] <= second[2] or second[3] <= first[2])


def _dependence_edges(ops: list[VOp], target: Target):
    """Predecessor lists with latency weights for one block.

    Edge kinds: flow (weight = producer latency), anti (0), output
    (producer latency - consumer latency + 1, floored at 1 when
    equal), and memory-ordering edges of weight 1 between accesses
    that may alias (statically disambiguated base+displacement pairs
    are left unordered, which is what lets two stores share an
    instruction — Section 4.2).
    """
    preds: list[list[tuple[int, int]]] = [[] for _ in ops]
    last_def: dict[int, int] = {}
    last_uses: dict[int, list[int]] = {}
    versions: dict[int, int] = {}
    #: (index, is_store, descriptor) of every prior memory op.
    mem_history: list[tuple[int, bool, object]] = []
    for index, op in enumerate(ops):
        spec = op.spec
        for reg in op.reads():
            if reg in last_def:
                producer = last_def[reg]
                weight = target.latency_of(ops[producer].spec)
                preds[index].append((producer, weight))
        for reg in op.dsts:
            if reg in last_def:
                producer = last_def[reg]
                lat_p = target.latency_of(ops[producer].spec)
                lat_c = target.latency_of(spec)
                preds[index].append((producer, max(1, lat_p - lat_c + 1)))
            for user in last_uses.get(reg, ()):
                if user != index:
                    preds[index].append((user, 0))
        if spec.is_jump:
            # Jumps are ordered after every memory op so that memory
            # state is settled when control leaves the block.
            for mem_index, _is_store, _desc in mem_history:
                preds[index].append((mem_index, 1))
        elif spec.is_mem:
            descriptor = _mem_descriptor(op, versions)
            for mem_index, prior_is_store, prior_desc in mem_history:
                if not (spec.is_store or prior_is_store):
                    continue  # loads reorder freely among themselves
                if _may_alias(op, descriptor, ops[mem_index], prior_desc):
                    preds[index].append((mem_index, 1))
            mem_history.append((index, spec.is_store, descriptor))
        for reg in op.reads():
            last_uses.setdefault(reg, []).append(index)
        for reg in op.dsts:
            last_def[reg] = index
            last_uses[reg] = []
            versions[reg] = versions.get(reg, 0) + 1
    return preds


def _critical_heights(ops: list[VOp], preds, target: Target) -> list[int]:
    """Longest-path height of each op (for priority ordering)."""
    succs: list[list[tuple[int, int]]] = [[] for _ in ops]
    for index, plist in enumerate(preds):
        for producer, weight in plist:
            succs[producer].append((index, weight))
    heights = [0] * len(ops)
    for index in range(len(ops) - 1, -1, -1):
        lat = target.latency_of(ops[index].spec)
        best = lat
        for successor, weight in succs[index]:
            best = max(best, weight + heights[successor])
        heights[index] = best
    return heights


class _RowResources:
    """Slot and memory-port occupancy of one instruction row."""

    def __init__(self, target: Target) -> None:
        self._target = target
        self.slots: dict[int, VOp] = {}
        self.loads = 0
        self.stores = 0
        self.jumps = 0

    def try_place(self, op: VOp) -> bool:
        """Attempt to place ``op``; returns True and records on success."""
        spec = op.spec
        target = self._target
        if spec.is_load and self.loads >= target.max_loads_per_instr:
            return False
        if spec.is_store and self.stores >= target.max_stores_per_instr:
            return False
        if spec.is_mem and (
                self.loads + self.stores >= target.max_mem_per_instr):
            return False
        if spec.is_jump and self.jumps >= 1:
            return False
        allowed = target.allowed_slots(spec)
        if spec.is_jump:
            ordered = sorted(allowed, key=_BRANCH_SLOT_PREFERENCE.__getitem__)
        elif spec.is_mem:
            ordered = allowed
        else:
            ordered = sorted(allowed, key=_GENERIC_SLOT_PREFERENCE.__getitem__)
        for slot in ordered:
            occupied = slot in self.slots
            if spec.two_slot:
                occupied = occupied or (slot + 1) in self.slots
            if occupied:
                continue
            self.slots[slot] = op
            if spec.two_slot:
                self.slots[slot + 1] = op
            if spec.is_load:
                self.loads += 1
            if spec.is_store:
                self.stores += 1
            if spec.is_jump:
                self.jumps += 1
            return True
        return False

    def anchors(self) -> dict[int, VOp]:
        """Slot -> op map keeping only each op's anchor slot."""
        result: dict[int, VOp] = {}
        seen: set[int] = set()
        for slot in sorted(self.slots):
            op = self.slots[slot]
            if id(op) not in seen:
                result[slot] = op
                seen.add(id(op))
        return result


def schedule_block(block: Block, target: Target,
                   global_defs: set[int]) -> ScheduledBlock:
    """List-schedule one block for ``target``.

    ``global_defs`` is the set of virtual registers whose values must
    be architecturally complete when the block ends (consumed in other
    blocks or loop-carried).
    """
    ops = list(block.ops)
    for op in ops + ([block.jump] if block.jump else []):
        where = format_location(block=block.label, op=op.name)
        if not target.supports(op.spec):
            raise SchedulingError(
                f"{where}: operation not supported on target "
                f"{target.name!r}")
        if not target.allowed_slots(op.spec):
            raise SchedulingError(
                f"{where}: no issue slot on target {target.name!r}")
    all_ops = ops + ([block.jump] if block.jump else [])
    preds = _dependence_edges(all_ops, target)
    heights = _critical_heights(all_ops, preds, target)
    jump_index = len(all_ops) - 1 if block.jump else None

    n = len(all_ops)
    cycle_of = [-1] * n
    earliest = [0] * n
    unscheduled = set(range(n))
    if jump_index is not None:
        unscheduled.discard(jump_index)
    rows: list[_RowResources] = []
    cycle = 0
    while unscheduled:
        while len(rows) <= cycle:
            rows.append(_RowResources(target))
        ready = [
            index for index in unscheduled
            if all(cycle_of[p] >= 0 for p, _ in preds[index])
            and earliest[index] <= cycle
        ]
        ready.sort(key=lambda index: (-heights[index], index))
        placed_any = False
        for index in ready:
            if rows[cycle].try_place(all_ops[index]):
                cycle_of[index] = cycle
                unscheduled.discard(index)
                placed_any = True
                for successor in range(n):
                    for producer, weight in preds[successor]:
                        if producer == index:
                            earliest[successor] = max(
                                earliest[successor], cycle + weight)
        if not placed_any and not ready:
            # Nothing ready yet: fast-forward to the next earliest time.
            pending = [
                earliest[i] for i in unscheduled
                if all(cycle_of[p] >= 0 for p, _ in preds[i])
            ]
            if pending:
                cycle = max(cycle + 1, min(pending))
                continue
        cycle += 1
        if cycle > 10 * n + 64:
            stuck = min(unscheduled)
            raise SchedulingError(
                f"{format_location(block=block.label, row=cycle, op=all_ops[stuck].name)}: "
                f"scheduler failed to converge with "
                f"{len(unscheduled)} operation(s) unplaced")

    makespan = 1 + max((c for c in cycle_of if c >= 0), default=-1)
    # Values visible outside the block must have written back by the end.
    needed_len = makespan
    for index, op in enumerate(all_ops):
        if index == jump_index:
            continue
        if any(dst in global_defs for dst in op.dsts):
            needed_len = max(
                needed_len,
                cycle_of[index] + target.latency_of(op.spec))

    jump_row: int | None = None
    if jump_index is not None:
        jump_op = all_ops[jump_index]
        jump_ready = 0
        for producer, weight in preds[jump_index]:
            jump_ready = max(jump_ready, cycle_of[producer] + weight)
        jump_row = max(jump_ready,
                       needed_len - 1 - target.jump_delay_slots, 0)
        while True:
            while len(rows) <= jump_row:
                rows.append(_RowResources(target))
            if rows[jump_row].try_place(jump_op):
                break
            jump_row += 1
        block_len = jump_row + 1 + target.jump_delay_slots
    else:
        block_len = max(needed_len, 1 if not all_ops else needed_len)

    result_rows: list[dict[int, VOp]] = []
    for index in range(block_len):
        if index < len(rows):
            result_rows.append(rows[index].anchors())
        else:
            result_rows.append({})
    return ScheduledBlock(block.label, result_rows, jump_row)


def compute_global_defs(program: AsmProgram) -> set[int]:
    """Virtual registers that must survive past their defining block.

    A vreg is *global* when it is read in a different block than the
    one defining it, read before (re)definition within its own block
    (loop-carried), or pinned (parameters: live at entry).
    """
    global_regs: set[int] = set(program.pinned)
    def_block: dict[int, str] = {}
    for blk in program.blocks:
        defined_here: set[int] = set()
        for op in blk.all_ops():
            for reg in op.reads():
                if reg not in defined_here:
                    # Value flows in from outside this block.
                    global_regs.add(reg)
            for reg in op.dsts:
                defined_here.add(reg)
                if reg in def_block and def_block[reg] != blk.label:
                    global_regs.add(reg)
                def_block[reg] = blk.label
    return global_regs


def schedule_program(program: AsmProgram, target: Target) -> ScheduledProgram:
    """Schedule every block of ``program`` for ``target``."""
    program.validate()
    global_defs = compute_global_defs(program)
    scheduled = ScheduledProgram(program.name, target)
    for blk in program.blocks:
        scheduled.blocks.append(schedule_block(blk, target, global_defs))
    return scheduled
