"""Scheduler-visible target descriptions (Table 6).

A :class:`Target` captures everything the scheduler must know to
"compile" a kernel for a family member: issue-slot constraints, memory
operation limits, load latency, jump delay slots, and which operations
exist.  The differences between the two presets mirror Table 6:

===================  =============  =============
feature              TM3260         TM3270
===================  =============  =============
jump delay slots     3              5
load latency         3 cycles       4 cycles
loads / instr        2 (slots 4,5)  1 (slot 5)
two-slot operations  no             yes
new TM3270 ops       no             yes
===================  =============  =============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.operations import FU, REGISTRY, OpSpec


@dataclass(frozen=True)
class Target:
    """Scheduling model of one TriMedia family member."""

    name: str
    issue_slots: int = 5
    jump_delay_slots: int = 5
    load_latency: int = 4
    load_slots: tuple[int, ...] = (5,)
    store_slots: tuple[int, ...] = (4, 5)
    max_loads_per_instr: int = 1
    max_stores_per_instr: int = 2
    max_mem_per_instr: int = 2
    supports_two_slot: bool = True
    supports_new_ops: bool = True

    def supports(self, spec: OpSpec) -> bool:
        """True when this target implements the operation."""
        if spec.new_in_tm3270 and not self.supports_new_ops:
            return False
        if spec.two_slot and not self.supports_two_slot:
            return False
        return True

    def latency_of(self, spec: OpSpec) -> int:
        """Operation result latency on this target.

        Plain loads take the target's load latency (Table 6).
        Collapsed loads with interpolation add the two filter stages
        X5/X6 on top of the load pipeline (Section 4.2, Figure 5).
        """
        if spec.is_load:
            if spec.fu is FU.FRACLOAD:
                return self.load_latency + 2
            return self.load_latency
        return spec.latency

    def allowed_slots(self, spec: OpSpec) -> tuple[int, ...]:
        """Anchor slots in which the operation may issue on this target."""
        if not self.supports(spec):
            return ()
        if spec.is_load and spec.fu is FU.LOADSTORE:
            return self.load_slots
        if spec.is_store:
            return self.store_slots
        return spec.slots


#: The TM3270 (configuration D of Section 6).
TM3270_TARGET = Target(name="tm3270")

#: The TM3260 predecessor (configuration A of Section 6).
TM3260_TARGET = Target(
    name="tm3260",
    jump_delay_slots=3,
    load_latency=3,
    load_slots=(4, 5),
    max_loads_per_instr=2,
    supports_two_slot=False,
    supports_new_ops=False,
)


def unsupported_ops(target: Target) -> list[str]:
    """Mnemonics registered globally but absent on ``target``."""
    return [spec.name for spec in REGISTRY if not target.supports(spec)]
