"""H.264-style CABAC codec: tables, bitstreams, encoder, reference decoder."""

from repro.cabac.encoder import CabacEncoder
from repro.cabac.reference import CabacDecoder, ContextModel, decode_step

__all__ = ["CabacEncoder", "CabacDecoder", "ContextModel", "decode_step"]
