"""Bitstream containers for the CABAC codec.

The decoder side deliberately mirrors the paper's representation
(Figure 2): the consumer holds a 32-bit big-endian ``stream_data`` word
and a ``stream_bit_position`` within it, refilling the word from a
byte-aligned pointer — exactly the state the ``SUPER_CABAC_*``
operations manipulate.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit accumulator used by the encoder."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def put_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._bits.append(bit & 1)

    def put_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, most-significant first."""
        for shift in range(count - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """Pack accumulated bits into bytes, zero-padding the tail.

        At least 8 trailing zero bytes are appended so a decoder's
        32-bit look-ahead window never reads past the buffer.
        """
        padded = self._bits + [0] * ((-len(self._bits)) % 8)
        out = bytearray()
        for index in range(0, len(padded), 8):
            byte = 0
            for bit in padded[index:index + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        out.extend(b"\x00" * 8)
        return bytes(out)


class BitReader:
    """MSB-first bit reader over a byte buffer.

    Maintains the (word, bit-position) decoder state of Figure 2:
    ``peek_word()`` is the 32-bit ``stream_data`` value, ``position``
    the ``stream_bit_position`` within it.  ``realign()`` advances the
    byte pointer and folds the position back below 8 — the refill step
    a software decode loop performs between symbols.
    """

    def __init__(self, data: bytes) -> None:
        if len(data) < 4:
            data = data + b"\x00" * (4 - len(data))
        self._data = data
        self._byte_pos = 0
        self.position = 0  # bit position within the current 32-bit window

    def peek_word(self) -> int:
        """The 32-bit big-endian window at the current byte pointer."""
        chunk = self._data[self._byte_pos:self._byte_pos + 4]
        chunk = chunk + b"\x00" * (4 - len(chunk))
        return int.from_bytes(chunk, "big")

    def read_bit(self) -> int:
        """Consume and return the next bit."""
        bit = (self.peek_word() >> (31 - self.position)) & 1
        self.position += 1
        self.realign()
        return bit

    def read_bits(self, count: int) -> int:
        """Consume ``count`` bits, MSB first."""
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def realign(self) -> None:
        """Fold whole consumed bytes into the byte pointer."""
        advance, self.position = divmod(self.position, 8)
        self._byte_pos += advance

    @property
    def bits_consumed(self) -> int:
        """Total number of bits consumed since construction."""
        return 8 * self._byte_pos + self.position
