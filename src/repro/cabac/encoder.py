"""CABAC arithmetic *encoder* (H.264/AVC encoding engine).

The paper only needs the decoder (Figure 2), but reproducing Table 3
requires CABAC-coded bitstreams to decode.  The authors used a real
4.5 Mbit/s H.264 bitstream; we build the exact mirror-image encoder so
we can synthesize I/P/B-field bitstreams with controlled statistics
(see :mod:`repro.workloads.cabac_streams`) and verify the decoder —
and therefore the ``SUPER_CABAC_*`` operations — by round-trip.
"""

from __future__ import annotations

from repro.cabac import tables
from repro.cabac.bitstream import BitWriter
from repro.cabac.reference import ContextModel


class CabacEncoder:
    """H.264-style binary arithmetic encoding engine.

    Implements the specification's ``EncodeDecision`` /
    ``EncodeBypass`` / ``EncodeFlush`` procedures over
    :class:`~repro.cabac.bitstream.BitWriter`.
    """

    def __init__(self, num_contexts: int = 1) -> None:
        self.contexts = [ContextModel() for _ in range(num_contexts)]
        self._writer = BitWriter()
        self._low = 0
        self._range = tables.INITIAL_RANGE
        self._bits_outstanding = 0
        self._first_bit = True
        self.symbols_encoded = 0
        #: Optional :class:`~repro.obs.events.EventBus`.  The encoder
        #: has no cycle clock; events are stamped with the symbol
        #: index (``symbols_encoded``) instead.
        self.obs = None

    # -- bit plumbing -----------------------------------------------------

    def _put_bit(self, bit: int) -> None:
        # The very first renormalization output bit carries no
        # information (low < 1024) and is dropped, mirroring the
        # decoder's 9-bit initialization read.
        if self._first_bit:
            self._first_bit = False
        else:
            self._writer.put_bit(bit)
        while self._bits_outstanding > 0:
            self._writer.put_bit(bit ^ 1)
            self._bits_outstanding -= 1

    def _renormalize(self) -> None:
        iterations = 0
        while self._range < tables.RENORM_THRESHOLD:
            if self._low >= 512:
                self._put_bit(1)
                self._low -= 512
            elif self._low < 256:
                self._put_bit(0)
            else:
                self._bits_outstanding += 1
                self._low -= 256
            self._low <<= 1
            self._range <<= 1
            iterations += 1
        if iterations and self.obs:
            # Renormalization count is the data-dependent part of the
            # SUPER_CABAC loop the paper accelerates (Figure 2).
            self.obs.cabac(self.symbols_encoded, "renorm",
                           shifts=iterations)

    # -- encoding ---------------------------------------------------------

    def encode(self, bit: int, context_index: int = 0) -> None:
        """Encode one context-coded binary symbol."""
        ctx = self.contexts[context_index]
        range_lps = tables.LPS_RANGE_TABLE[ctx.state][(self._range >> 6) & 3]
        self._range -= range_lps
        if bit == ctx.mps:
            ctx.state = tables.MPS_NEXT_STATE[ctx.state]
        else:
            self._low += self._range
            self._range = range_lps
            if ctx.state == 0:
                ctx.mps ^= 1
            ctx.state = tables.LPS_NEXT_STATE[ctx.state]
        self._renormalize()
        self.symbols_encoded += 1

    def encode_bypass(self, bit: int) -> None:
        """Encode one bypass (equiprobable) symbol."""
        self._low <<= 1
        if bit:
            self._low += self._range
        if self._low >= 1024:
            self._put_bit(1)
            self._low -= 1024
        elif self._low < 512:
            self._put_bit(0)
        else:
            self._bits_outstanding += 1
            self._low -= 512
        self.symbols_encoded += 1

    def flush(self) -> bytes:
        """Terminate the stream and return the coded bytes.

        Follows the specification's ``EncodeFlush``: the remaining
        interval is narrowed to 2 and the low bits are emitted so any
        conforming decoder resolves the final symbols unambiguously.
        """
        self._range = 2
        self._renormalize()
        self._put_bit((self._low >> 9) & 1)
        self._writer.put_bits(((self._low >> 7) & 3) | 1, 2)
        if self.obs:
            self.obs.cabac(self.symbols_encoded, "flush",
                           symbols=self.symbols_encoded,
                           bits=len(self._writer))
        return self._writer.to_bytes()

    @property
    def bits_written(self) -> int:
        """Bits emitted so far (excluding flush/padding)."""
        return len(self._writer)
