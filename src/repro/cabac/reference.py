"""Reference CABAC decoding engine — Figure 2's ``biari_decode_symbol``.

The central function, :func:`decode_step`, is a pure function over the
exact state tuple that the paper's Figure 2 manipulates::

    (value, range, state, mps, stream_data, stream_bit_position)

It returns the updated state and the decoded bit.  The TM3270's
``SUPER_CABAC_CTX`` and ``SUPER_CABAC_STR`` operation semantics
(:mod:`repro.isa.custom_ops`) call this same function, each projecting
out its half of the outputs — so by construction the hardware operations
and the reference software path agree bit for bit.

Note on Figure 2's ``mps = mps ^ (state != 0)`` line: the H.264/AVC
specification flips the MPS when the LPS path is taken *in state 0*
(``pStateIdx == 0``), i.e. the flip condition is ``state == 0``.  We
implement the specification behaviour (and our encoder mirrors it); the
figure's polarity is a typo in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cabac import tables
from repro.cabac.bitstream import BitReader


def decode_step(
    value: int,
    range_: int,
    state: int,
    mps: int,
    stream_data: int,
    stream_bit_position: int,
) -> tuple[int, int, int, int, int, int]:
    """One ``biari_decode_symbol`` step (Figure 2).

    Parameters mirror the figure: ``value`` is the 10-bit coding value,
    ``range_`` the 9-bit coding range, ``(state, mps)`` the context's
    probability model, ``stream_data`` a 32-bit big-endian bitstream
    window and ``stream_bit_position`` the consumer position within it.

    Returns ``(value, range, state, mps, stream_bit_position, bit)``.
    """
    stream_data_aligned = (stream_data << stream_bit_position) & 0xFFFFFFFF
    range_lps = tables.LPS_RANGE_TABLE[state][(range_ >> 6) & 3]
    temp_range = range_ - range_lps
    if value < temp_range:
        # Most probable symbol.
        range_ = temp_range
        bit = mps
        state = tables.MPS_NEXT_STATE[state]
    else:
        # Least probable symbol.
        value = value - temp_range
        bit = mps ^ 1
        mps = mps ^ (1 if state == 0 else 0)
        range_ = range_lps
        state = tables.LPS_NEXT_STATE[state]
    # Renormalization: at most 8 bits can be consumed (range is 9 bits).
    while range_ < tables.RENORM_THRESHOLD:
        value = ((value << 1) | ((stream_data_aligned >> 31) & 1)) & 0x3FF
        range_ = range_ << 1
        stream_data_aligned = (stream_data_aligned << 1) & 0xFFFFFFFF
        stream_bit_position += 1
    return value, range_, state, mps, stream_bit_position, bit


@dataclass
class ContextModel:
    """One CABAC context: 6-bit probability state plus the MPS bit."""

    state: int = 0
    mps: int = 0


class CabacDecoder:
    """Software CABAC decoding engine over a byte buffer.

    Maintains Figure 2's engine state and a set of context models;
    ``decode(ctx)`` decodes one binary symbol with context ``ctx`` and
    ``decode_bypass()`` decodes an equiprobable symbol (used for sign
    bits and suffixes, as in H.264).
    """

    def __init__(self, data: bytes, num_contexts: int = 1) -> None:
        self._reader = BitReader(data)
        self.contexts = [ContextModel() for _ in range(num_contexts)]
        self.range = tables.INITIAL_RANGE
        self.value = self._reader.read_bits(9)
        self.symbols_decoded = 0

    def decode(self, context_index: int = 0) -> int:
        """Decode one context-coded binary symbol."""
        ctx = self.contexts[context_index]
        value, range_, state, mps, position, bit = decode_step(
            self.value,
            self.range,
            ctx.state,
            ctx.mps,
            self._reader.peek_word(),
            self._reader.position,
        )
        self.value = value
        self.range = range_
        ctx.state = state
        ctx.mps = mps
        self._reader.position = position
        self._reader.realign()
        self.symbols_decoded += 1
        return bit

    def decode_bypass(self) -> int:
        """Decode one bypass (equiprobable) symbol."""
        self.value = ((self.value << 1) | self._reader.read_bit()) & 0x3FF
        self.symbols_decoded += 1
        if self.value >= self.range:
            self.value -= self.range
            return 1
        return 0

    @property
    def bits_consumed(self) -> int:
        """Bits read from the buffer so far (including the 9 init bits)."""
        return self._reader.bits_consumed
