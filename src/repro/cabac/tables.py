"""H.264/AVC CABAC probability tables.

These are the standard tables from the H.264/AVC specification (and
reference software) that Figure 2 of the paper refers to:

* ``LPS_RANGE_TABLE[64][4]`` — ``LpsRangeTable`` in Figure 2: the range
  of the least-probable symbol, indexed by context state and by the two
  quantizer bits ``(range >> 6) & 3``.
* ``MPS_NEXT_STATE[64]`` / ``LPS_NEXT_STATE[64]`` — the probability
  state transition tables for most-/least-probable-symbol outcomes.

The encoder and decoder in this package (and the TM3270's
``SUPER_CABAC_*`` operation semantics) all share these tables, so
round-trip correctness exercises them end to end.
"""

from __future__ import annotations

#: Figure 2's ``LpsRangeTable[64][4]``.
LPS_RANGE_TABLE: tuple[tuple[int, int, int, int], ...] = (
    (128, 176, 208, 240), (128, 167, 197, 227), (128, 158, 187, 216),
    (123, 150, 178, 205), (116, 142, 169, 195), (111, 135, 160, 185),
    (105, 128, 152, 175), (100, 122, 144, 166), (95, 116, 137, 158),
    (90, 110, 130, 150), (85, 104, 123, 142), (81, 99, 117, 135),
    (77, 94, 111, 128), (73, 89, 105, 122), (69, 85, 100, 116),
    (66, 80, 95, 110), (62, 76, 90, 104), (59, 72, 86, 99),
    (56, 69, 81, 94), (53, 65, 77, 89), (51, 62, 73, 85),
    (48, 59, 69, 80), (46, 56, 66, 76), (43, 53, 63, 72),
    (41, 50, 59, 69), (39, 48, 56, 65), (37, 45, 54, 62),
    (35, 43, 51, 59), (33, 41, 48, 56), (32, 39, 46, 53),
    (30, 37, 43, 50), (28, 35, 41, 48), (27, 33, 39, 45),
    (26, 31, 37, 43), (24, 30, 35, 41), (23, 28, 33, 39),
    (22, 27, 32, 37), (21, 26, 30, 35), (20, 24, 29, 33),
    (19, 23, 27, 31), (18, 22, 26, 30), (17, 21, 25, 28),
    (16, 20, 23, 27), (15, 19, 22, 25), (14, 18, 21, 24),
    (14, 17, 20, 23), (13, 16, 19, 22), (12, 15, 18, 21),
    (12, 14, 17, 20), (11, 14, 16, 19), (11, 13, 15, 18),
    (10, 12, 15, 17), (10, 12, 14, 16), (9, 11, 13, 15),
    (9, 11, 12, 14), (8, 10, 12, 14), (8, 9, 11, 13),
    (7, 9, 11, 12), (7, 9, 10, 12), (7, 8, 10, 11),
    (6, 8, 9, 11), (6, 7, 9, 10), (6, 7, 8, 9),
    (2, 2, 2, 2),
)

#: Figure 2's ``MpsNextStateTable[64]``: state increments towards 62 on a
#: most-probable-symbol outcome; state 63 is the terminating state.
MPS_NEXT_STATE: tuple[int, ...] = tuple(
    min(state + 1, 62) if state < 63 else 63 for state in range(64)
)

#: Figure 2's ``LpsNextStateTable[64]``.
LPS_NEXT_STATE: tuple[int, ...] = (
    0, 0, 1, 2, 2, 4, 4, 5, 6, 7, 8, 9, 9, 11, 11, 12,
    13, 13, 15, 15, 16, 16, 18, 18, 19, 19, 21, 21, 23, 22, 23, 24,
    24, 25, 26, 26, 27, 27, 28, 29, 29, 30, 30, 30, 31, 32, 32, 33,
    33, 33, 34, 34, 35, 35, 35, 36, 36, 36, 37, 37, 37, 38, 38, 63,
)

N_STATES = 64

#: Number of quantized range indices: ``(range >> 6) & 3``.
N_RANGE_QUANT = 4

#: The decoding engine's range stays in ``[256, 511)`` after
#: renormalization; it starts at 510 (H.264 initialization).
INITIAL_RANGE = 510

#: Renormalization threshold from Figure 2: ``while (range < 256)``.
RENORM_THRESHOLD = 256
