"""Processor core: configs, executor, cycle-level model, power and area."""

from repro.core.config import (
    CONFIG_A,
    CONFIG_B,
    CONFIG_C,
    CONFIG_D,
    EVALUATION_CONFIGS,
    TM3260_CONFIG,
    TM3270_CONFIG,
    ProcessorConfig,
)
from repro.core.area import area_breakdown
from repro.core.dvs import DvsGovernor
from repro.core.power import PowerModel
from repro.core.processor import Processor, RunResult, run_kernel
from repro.core.stats import RunStats
from repro.core.profiling import format_profile, profile_program, utilization

__all__ = [
    "CONFIG_A", "CONFIG_B", "CONFIG_C", "CONFIG_D", "EVALUATION_CONFIGS",
    "TM3260_CONFIG", "TM3270_CONFIG", "ProcessorConfig", "Processor",
    "RunResult", "RunStats", "run_kernel", "area_breakdown",
    "DvsGovernor", "PowerModel", "format_profile", "profile_program",
    "utilization",
]
