"""Parametric area model (Section 5.1, Table 4, Figure 6).

The TM3270 measures 8.08 mm² in the low-power 90 nm process, with the
SRAMs of the 64 KB instruction cache and 128 KB data cache making up
roughly 50% of the total.  The model decomposes each module into an
SRAM part (proportional to capacity) and a logic part, with the
register file additionally modeled by its port count (the paper calls
out the routing inefficiency of 15 read + 5 write ports).

Coefficients are calibrated so the TM3270 configuration reproduces
Table 4; because they are *parametric*, the ablation benches can ask
"what would a 16 KB data cache or a portless register file cost?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProcessorConfig, TM3270_CONFIG
from repro.isa.operations import FU

#: 90 nm SRAM density: 192 KB of cache SRAM ~= 50% of 8.08 mm².
SRAM_MM2_PER_KB = 4.04 / 192.0

#: Register-file bit-port cell area: 128 regs x 32 bits x 20 ports
#: (15 read + 5 write) = 0.97 mm².
REGFILE_MM2_PER_BIT_PORT = 0.97 / (128 * 32 * 20)

#: Logic area of each functional-unit instance, relative units.
#: Normalized so the TM3270 inventory totals EXECUTE_MM2_TM3270.
FU_RELATIVE_AREA = {
    FU.ALU: 0.04,
    FU.SHIFTER: 0.05,
    FU.DSPALU: 0.08,
    FU.DSPMUL: 0.12,
    FU.BRANCH: 0.02,
    FU.FALU: 0.12,
    FU.FMUL: 0.14,
    FU.FCOMP: 0.03,
    FU.FTOUGH: 0.10,
    FU.LOADSTORE: 0.0,   # accounted in the LS module
    FU.SUPER_DSPMUL: 0.13,
    FU.SUPER_CABAC: 0.07,
    FU.SUPER_LS: 0.0,    # accounted in the LS module
    FU.FRACLOAD: 0.08,
}
EXECUTE_MM2_TM3270 = 1.53

#: Fixed logic areas (Table 4 minus the parametric parts).
IFU_LOGIC_MM2 = 1.46 - 64 * SRAM_MM2_PER_KB
LS_LOGIC_MM2 = 3.60 - 128 * SRAM_MM2_PER_KB
DECODE_MM2 = 0.05
BIU_MM2 = 0.24
MMIO_MM2 = 0.23

#: Register-file port counts of the 5-issue TM3270: 10 operand read
#: ports + 5 guard read ports and 5 write ports (Section 3).
READ_PORTS = 15
WRITE_PORTS = 5


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-module silicon area in mm² (the Table 4 'Area' column)."""

    ifu: float
    decode: float
    regfile: float
    execute: float
    load_store: float
    biu: float
    mmio: float

    @property
    def total(self) -> float:
        return (self.ifu + self.decode + self.regfile + self.execute
                + self.load_store + self.biu + self.mmio)

    def as_rows(self) -> list[tuple[str, float]]:
        """(module, mm²) rows in Table 4 order."""
        return [
            ("IFU", self.ifu),
            ("Decode", self.decode),
            ("Regfile", self.regfile),
            ("Execute", self.execute),
            ("LS", self.load_store),
            ("BIU", self.biu),
            ("MMIO", self.mmio),
            ("Total", self.total),
        ]


def _execute_area(target_has_new_ops: bool, issue_slots: int) -> float:
    """Execute-module logic area from the functional-unit inventory."""
    from repro.isa.operations import FU_SLOTS  # local to avoid cycles

    relative = 0.0
    tm3270_relative = 0.0
    for fu, weight in FU_RELATIVE_AREA.items():
        instances = len(FU_SLOTS[fu])
        tm3270_relative += weight * instances
        is_new = fu in (FU.SUPER_DSPMUL, FU.SUPER_CABAC, FU.SUPER_LS,
                        FU.FRACLOAD)
        if is_new and not target_has_new_ops:
            continue
        relative += weight * instances
    scale = EXECUTE_MM2_TM3270 / tm3270_relative
    return relative * scale * (issue_slots / 5.0)


def regfile_area(num_regs: int = 128, bits: int = 32,
                 read_ports: int = READ_PORTS,
                 write_ports: int = WRITE_PORTS) -> float:
    """Register-file area from its geometry and port count."""
    ports = read_ports + write_ports
    return num_regs * bits * ports * REGFILE_MM2_PER_BIT_PORT


def area_breakdown(config: ProcessorConfig = TM3270_CONFIG) -> AreaBreakdown:
    """Compute the per-module area breakdown for ``config``."""
    icache_kb = config.icache.size_bytes / 1024
    dcache_kb = config.dcache.size_bytes / 1024
    return AreaBreakdown(
        ifu=icache_kb * SRAM_MM2_PER_KB + IFU_LOGIC_MM2,
        decode=DECODE_MM2,
        regfile=regfile_area(),
        execute=_execute_area(config.target.supports_new_ops,
                              config.target.issue_slots),
        load_store=dcache_kb * SRAM_MM2_PER_KB + LS_LOGIC_MM2,
        biu=BIU_MM2,
        mmio=MMIO_MM2,
    )
