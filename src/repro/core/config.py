"""Processor configurations: TM3270, TM3260, and study configs A–D.

Table 6 summarizes the characteristics that differ between the TM3260
and TM3270; Section 6 evaluates four configurations:

* **A** — the TM3260: 240 MHz, 16 KB data cache with 64-byte lines,
  8-way, fetch-on-write-miss, 3-cycle loads, 2 loads/instruction,
  3 jump delay slots, parallel instruction cache.
* **B** — the TM3270 core with TM3260 cache *capacities* at 240 MHz.
  Line size is the TM3270's 128 bytes ("the TM3270 doubles the line
  size ... resulting in more capacity misses for MPEG2" — Section 6),
  and the write-miss policy is the TM3270's allocate-on-write-miss
  (the source of the big memcpy gain from A to B).
* **C** — configuration B at 350 MHz.
* **D** — the full TM3270: 128 KB data cache, 350 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.asm.target import TM3260_TARGET, TM3270_TARGET, Target
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import WriteMissPolicy
from repro.mem.icache import ICacheMode
from repro.mem.sdram import SdramConfig


@dataclass(frozen=True)
class ProcessorConfig:
    """Everything the cycle-level model needs to know."""

    name: str
    target: Target
    freq_mhz: float
    icache: CacheGeometry
    icache_mode: ICacheMode
    dcache: CacheGeometry
    write_miss_policy: WriteMissPolicy
    sdram: SdramConfig = field(default_factory=SdramConfig)
    prefetch_enabled: bool = True
    description: str = ""

    def with_overrides(self, **kwargs) -> "ProcessorConfig":
        """A copy with selected fields replaced (ablation studies)."""
        return replace(self, **kwargs)

    def architecture_summary(self) -> dict[str, str]:
        """Table 1-style architecture overview."""
        dcache_kb = self.dcache.size_bytes // 1024
        icache_kb = self.icache.size_bytes // 1024
        return {
            "Architecture": (
                f"{self.target.issue_slots} issue slot VLIW, "
                "guarded RISC-like operations"),
            "Pipeline depth": "7-12 stages",
            "Address width": "32 bits",
            "Data width": "32 bits",
            "Register-file": "Unified, 128 32-bit registers",
            "Functional units": "31",
            "IEEE-754 floating point": "yes",
            "SIMD capabilities": "1 x 32-bit, 2 x 16-bit, 4 x 8-bit",
            "Instruction cache": (
                f"{icache_kb} Kbyte, {self.icache.line_bytes}-byte lines, "
                f"{self.icache.ways} way set-associative, "
                "LRU replacement policy"),
            "Data cache": (
                f"{dcache_kb} Kbyte, {self.dcache.line_bytes}-byte lines, "
                f"{self.dcache.ways} way set-associative, "
                "LRU replacement policy, "
                f"{self.write_miss_policy.value} policy"),
            "Operating frequency": f"{self.freq_mhz:.0f} MHz",
        }


#: Configuration D: the TM3270 as shipped (Tables 1 and 6).
TM3270_CONFIG = ProcessorConfig(
    name="TM3270",
    target=TM3270_TARGET,
    freq_mhz=350.0,
    icache=CacheGeometry(64 * 1024, 128, 8),
    icache_mode=ICacheMode.SEQUENTIAL,
    dcache=CacheGeometry(128 * 1024, 128, 4),
    write_miss_policy=WriteMissPolicy.ALLOCATE,
    description="TM3270: 350 MHz, 128 KB D$ (128 B lines, 4-way), "
                "allocate-on-write-miss, region prefetching",
)

#: Configuration A: the TM3260 predecessor (Table 6).
TM3260_CONFIG = ProcessorConfig(
    name="TM3260",
    target=TM3260_TARGET,
    freq_mhz=240.0,
    icache=CacheGeometry(64 * 1024, 64, 8),
    icache_mode=ICacheMode.PARALLEL,
    dcache=CacheGeometry(16 * 1024, 64, 8),
    write_miss_policy=WriteMissPolicy.FETCH,
    prefetch_enabled=False,
    description="TM3260: 240 MHz, 16 KB D$ (64 B lines, 8-way), "
                "fetch-on-write-miss",
)

CONFIG_A = TM3260_CONFIG.with_overrides(name="A")

CONFIG_B = TM3270_CONFIG.with_overrides(
    name="B",
    freq_mhz=240.0,
    dcache=CacheGeometry(16 * 1024, 128, 4),
    description="TM3270 core with TM3260 cache capacity at 240 MHz",
)

CONFIG_C = CONFIG_B.with_overrides(
    name="C",
    freq_mhz=350.0,
    description="TM3270 core with TM3260 cache capacity at 350 MHz",
)

CONFIG_D = TM3270_CONFIG.with_overrides(name="D")

EVALUATION_CONFIGS = (CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D)


def table6_characteristics() -> list[tuple[str, str, str]]:
    """The rows of Table 6: (feature, TM3260, TM3270)."""
    rows = []
    a, d = TM3260_CONFIG, TM3270_CONFIG
    rows.append(("Operating frequency",
                 f"{a.freq_mhz:.0f} MHz", f"{d.freq_mhz:.0f} MHz"))
    rows.append((
        "Instruction cache",
        f"{a.icache.size_bytes // 1024} Kbyte, "
        f"{a.icache.line_bytes}-byte lines, {a.icache_mode.value} "
        f"cache design, {a.target.jump_delay_slots} jump delay slots",
        f"{d.icache.size_bytes // 1024} Kbyte, "
        f"{d.icache.line_bytes}-byte lines, {d.icache_mode.value} "
        f"cache design, {d.target.jump_delay_slots} jump delay slots",
    ))
    rows.append((
        "Data cache",
        f"{a.dcache.size_bytes // 1024} Kbyte, "
        f"{a.dcache.line_bytes}-byte lines, {a.dcache.ways} way "
        f"set-associative, {a.write_miss_policy.value}, "
        f"{a.target.load_latency}-cycle load latency, "
        f"{a.target.max_loads_per_instr} loads / VLIW instr.",
        f"{d.dcache.size_bytes // 1024} Kbyte, "
        f"{d.dcache.line_bytes}-byte lines, {d.dcache.ways} way "
        f"set-associative, {d.write_miss_policy.value}, "
        f"{d.target.load_latency}-cycle load latency, "
        f"{d.target.max_loads_per_instr} loads / VLIW instr.",
    ))
    return rows
