"""Dynamic voltage and frequency scaling (Section 5.2).

The paper: "Typical supply voltage V for our process technology is
1.2 V, but functional operation at 0.8 V is guaranteed at a lower
frequency.  This allows for dynamic voltage scaling based on
computational requirements.  Since the processor has a fully static
design and asynchronous bus interfaces ... the operating frequency can
be changed on the fly, independent of the rest of the SoC."

This module implements that power-management story: a
voltage/frequency operating-curve model and a governor that, given a
measured workload (cycles per frame) and a real-time deadline (e.g.
60 fields/s), picks the lowest operating point that still makes the
deadline — and reports the energy saved against running flat-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import RunStats

#: Guaranteed operating points from Section 5.2: 350 MHz at 1.2 V
#: worst case, functional at 0.8 V at a reduced frequency.  Between
#: the anchors frequency is modeled as (to first order) linear in
#: voltage — the classic alpha-power approximation for V >> Vt.
VOLTAGE_MAX = 1.2
VOLTAGE_MIN = 0.8
FREQ_AT_VMAX_MHZ = 350.0
FREQ_AT_VMIN_MHZ = 175.0


def max_frequency_mhz(voltage: float) -> float:
    """Highest guaranteed frequency at ``voltage`` (linear model)."""
    if not VOLTAGE_MIN <= voltage <= VOLTAGE_MAX:
        raise ValueError(
            f"voltage {voltage} outside the guaranteed "
            f"[{VOLTAGE_MIN}, {VOLTAGE_MAX}] V window")
    span = (voltage - VOLTAGE_MIN) / (VOLTAGE_MAX - VOLTAGE_MIN)
    return FREQ_AT_VMIN_MHZ + span * (FREQ_AT_VMAX_MHZ - FREQ_AT_VMIN_MHZ)


def min_voltage_for(freq_mhz: float) -> float:
    """Lowest voltage at which ``freq_mhz`` is guaranteed."""
    if not 0 < freq_mhz <= FREQ_AT_VMAX_MHZ:
        raise ValueError(f"frequency {freq_mhz} MHz not attainable")
    if freq_mhz <= FREQ_AT_VMIN_MHZ:
        return VOLTAGE_MIN
    span = ((freq_mhz - FREQ_AT_VMIN_MHZ)
            / (FREQ_AT_VMAX_MHZ - FREQ_AT_VMIN_MHZ))
    return VOLTAGE_MIN + span * (VOLTAGE_MAX - VOLTAGE_MIN)


@dataclass(frozen=True)
class OperatingPoint:
    """One chosen (frequency, voltage) pair and its consequences."""

    freq_mhz: float
    voltage: float
    utilization: float  # busy fraction of the deadline period

    def relative_power(self) -> float:
        """Dynamic power relative to (f_max, V_max): (f/fm)(V/Vm)^2.

        Assumes clock gating during the idle fraction of the period,
        so only busy cycles burn dynamic power (Section 5.2).
        """
        return ((self.freq_mhz / FREQ_AT_VMAX_MHZ)
                * (self.voltage / VOLTAGE_MAX) ** 2
                * self.utilization)

    def relative_energy_per_frame(self) -> float:
        """Energy per frame relative to racing at (f_max, V_max).

        Cycles per frame are fixed, so energy scales as V² alone —
        the fundamental DVS win.
        """
        return (self.voltage / VOLTAGE_MAX) ** 2


class DvsGovernor:
    """Deadline-driven frequency/voltage selection."""

    def __init__(self, margin: float = 0.05) -> None:
        if not 0 <= margin < 1:
            raise ValueError("margin must be in [0, 1)")
        self.margin = margin

    def required_frequency_mhz(self, cycles_per_frame: int,
                               frames_per_second: float) -> float:
        """Minimum frequency meeting the frame deadline (with margin)."""
        return (cycles_per_frame * frames_per_second
                * (1.0 + self.margin) / 1e6)

    def select(self, cycles_per_frame: int,
               frames_per_second: float) -> OperatingPoint:
        """Choose the lowest guaranteed operating point for the load."""
        needed = self.required_frequency_mhz(
            cycles_per_frame, frames_per_second)
        if needed > FREQ_AT_VMAX_MHZ:
            raise ValueError(
                f"workload needs {needed:.0f} MHz, above the "
                f"{FREQ_AT_VMAX_MHZ:.0f} MHz maximum")
        freq = max(needed, 1.0)
        voltage = min_voltage_for(freq)
        # Run at the point's guaranteed maximum frequency and idle
        # (clock-gated) for the rest of the period: race-to-idle
        # within the chosen voltage.
        attainable = max_frequency_mhz(voltage)
        utilization = needed / attainable
        return OperatingPoint(attainable, voltage, utilization)

    def select_for_run(self, stats: RunStats, frames_per_run: int,
                       frames_per_second: float) -> OperatingPoint:
        """Convenience: derive cycles/frame from a measured run."""
        cycles_per_frame = stats.cycles // max(frames_per_run, 1)
        return self.select(cycles_per_frame, frames_per_second)


def energy_saving(point: OperatingPoint) -> float:
    """Fractional energy-per-frame saving vs full voltage."""
    return 1.0 - point.relative_energy_per_frame()
