"""Architectural executor: runs a linked VLIW program.

The executor implements the *architecture* — what the programmer sees:
guarded operations, exposed latencies measured in issue slots, jump
delay slots, and big-endian memory.  It knows nothing about caches or
stall cycles; the cycle-level model (:mod:`repro.core.processor`) wraps
each step with timing.  This split mirrors the paper's Blaauw framing
(Section 1): architecture here, implementation in the processor model.

Each :meth:`Executor.step` executes one VLIW instruction and returns a
:class:`StepInfo` describing what happened — the hooks the timing and
power models consume.

Two step implementations share that contract:

* the **reference path** (``fast=False``) interprets the encoded
  instruction dynamically — registry lookups, fresh ``StepInfo`` per
  step — and is kept as the executable specification;
* the **fast path** (``fast=True``, the default) runs over the
  program's pre-decoded :class:`~repro.core.plan.ExecutionPlan`:
  bound semantics, resolved latencies, pre-validated destination
  registers, and a single reused ``StepInfo``/access buffer.  It is
  required to be *bit-identical* to the reference path in
  architectural state and statistics (the differential suite in
  ``tests/core/test_fast_path_differential.py`` enforces this).

A third tier exists above both: the trace engine
(:mod:`repro.core.trace`, ``engine="trace"`` on the processor) runs
this fast path between compiled hot regions.  It shares the executor's
state verbatim — region functions operate directly on the register
file's pending-write machinery and this object's ``pc``/
``issue_count`` — so control can transfer between tiers at any
instruction boundary.

Because the fast path reuses one ``StepInfo`` object, callers must
consume a returned info before the next ``step()`` call (the processor
model and all in-tree consumers do); hold a copy if you need history.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from heapq import heappush

from repro.asm.link import LinkedProgram
from repro.isa.operations import REGISTRY
from repro.isa.semantics import JumpOutcome
from repro.isa.simd import MASK32
from repro.core.regfile import RegisterFile, TimingViolation
from repro.mem.flatmem import FlatMemory

#: Memory-mapped IO window (prefetch-region registers and friends).
MMIO_BASE = 0x1000_0000
MMIO_SIZE = 0x1000
_MMIO_END = MMIO_BASE + MMIO_SIZE


@dataclass(slots=True)
class MemAccess:
    """One memory reference performed by an operation."""

    is_load: bool
    address: int
    nbytes: int
    slot: int
    op_name: str


@dataclass
class StepInfo:
    """What one VLIW instruction did (input to the timing model)."""

    index: int
    address: int
    nbytes: int
    issued_ops: int
    executed_ops: int  # guard-true operations actually performed
    fu_counts: dict = field(default_factory=dict)
    mem_accesses: list[MemAccess] = field(default_factory=list)
    jump_taken: bool = False
    jump_target: int | None = None


class _OpContext:
    """Execution context handed to operation semantics."""

    def __init__(self, memory: FlatMemory, mmio_store=None, mmio_load=None):
        self._memory = memory
        self._mmio_store = mmio_store
        self._mmio_load = mmio_load
        self.guard_value = 1
        self.accesses: list[MemAccess] = []
        self._slot = 0
        self._op_name = ""

    def begin(self, slot: int, op_name: str, guard_value: int) -> None:
        self._slot = slot
        self._op_name = op_name
        self.guard_value = guard_value

    def load(self, address: int, nbytes: int) -> int:
        self.accesses.append(
            MemAccess(True, address, nbytes, self._slot, self._op_name))
        if MMIO_BASE <= address < _MMIO_END and self._mmio_load:
            return self._mmio_load(address, nbytes)
        return self._memory.load(address, nbytes)

    def store(self, address: int, value: int, nbytes: int) -> None:
        self.accesses.append(
            MemAccess(False, address, nbytes, self._slot, self._op_name))
        if MMIO_BASE <= address < _MMIO_END and self._mmio_store:
            self._mmio_store(address, value, nbytes)
            return
        self._memory.store(address, value, nbytes)


class ExecutionError(Exception):
    """Raised when a program exceeds its instruction budget."""


class Executor:
    """Executes one :class:`~repro.asm.link.LinkedProgram`."""

    def __init__(
        self,
        program: LinkedProgram,
        memory: FlatMemory,
        args: dict[int, int] | None = None,
        strict_timing: bool = True,
        mmio_store=None,
        mmio_load=None,
        fast: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory
        self.regfile = RegisterFile(strict=strict_timing)
        if args:
            for preg, value in args.items():
                self.regfile.poke(preg, value)
        self._ctx = _OpContext(memory, mmio_store, mmio_load)
        self.pc = 0
        self.issue_count = 0
        #: (instructions remaining, target index) of an in-flight jump.
        self._pending_jump: tuple[int, int] | None = None
        self._halt_address = program.nbytes
        self.fast = fast
        self._plan = program.plan() if fast else None
        #: Reused by the fast path; consumers read it before the next
        #: step.
        self._info = StepInfo(0, 0, 0, 0, 0)
        #: Fast-path per-FU executed-op totals, indexed like
        #: ``plan.fu_list`` (the fast path does not fill the per-step
        #: ``StepInfo.fu_counts`` dict — see :meth:`fu_totals`).
        self._fu_totals = ([0] * len(self._plan.fu_list)
                           if self._plan is not None else [])

    def fu_totals(self) -> dict:
        """Whole-run per-FU executed-op counts (fast path).

        The reference path reports per-step counts in
        ``StepInfo.fu_counts``; the fast path accumulates them here
        (a list increment per operation instead of an enum hash) and
        converts to the same FU-keyed dict on demand.
        """
        return {fu: count
                for fu, count in zip(self._plan.fu_list, self._fu_totals)
                if count}

    def snapshot_state(self) -> tuple:
        """Capture architectural + sequencing state (resilience layer).

        ``_pending_jump`` is an immutable tuple (or ``None``); the FU
        totals list and the register file need real copies.
        """
        return (self.pc, self.issue_count, self._pending_jump,
                self._fu_totals[:], self.regfile.snapshot_state())

    def restore_state(self, state: tuple) -> None:
        pc, issue_count, pending_jump, fu_totals, regfile = state
        self.pc = pc
        self.issue_count = issue_count
        self._pending_jump = pending_jump
        self._fu_totals = fu_totals[:]
        self.regfile.restore_state(regfile)

    @property
    def halted(self) -> bool:
        return self.pc >= len(self.program.instructions)

    def _resolve_target(self, address: int) -> int:
        if address >= self._halt_address:
            return len(self.program.instructions)
        return self.program.index_of_address(address)

    def step(self) -> StepInfo | None:
        """Execute one VLIW instruction; returns None when halted."""
        if self.fast:
            return self._step_fast()
        return self._step_reference()

    def _step_reference(self) -> StepInfo | None:
        """The dynamic interpreter — the executable specification."""
        if self.halted:
            return None
        now = self.issue_count
        regfile = self.regfile
        regfile.commit_until(now)
        instr = self.program.instructions[self.pc]
        info = StepInfo(
            index=self.pc,
            address=self.program.addresses[self.pc],
            nbytes=self.program.instruction_sizes[self.pc],
            issued_ops=len(instr.ops),
            executed_ops=0,
        )
        ctx = self._ctx
        ctx.accesses = []
        target = self.program.target

        # Operand read phase: all reads observe start-of-instruction state.
        staged = []
        for op in instr.ops:
            guard_value = regfile.read_guard(op.guard, now)
            if not guard_value:
                continue
            srcs = tuple(regfile.read(reg, now) for reg in op.srcs)
            staged.append((op, srcs))

        for op, srcs in staged:
            spec = op.spec
            info.executed_ops += 1
            info.fu_counts[spec.fu] = info.fu_counts.get(spec.fu, 0) + 1
            ctx.begin(op.slot, op.name, 1)
            results = REGISTRY.semantic(op.name)(ctx, srcs, op.imm)
            if spec.is_jump:
                outcome = results[0]
                if not isinstance(outcome, JumpOutcome):
                    raise TypeError(f"{op.name} did not return JumpOutcome")
                if outcome.taken:
                    info.jump_taken = True
                    info.jump_target = outcome.target
                    self._pending_jump = (
                        target.jump_delay_slots,
                        self._resolve_target(outcome.target),
                    )
                continue
            latency = target.latency_of(spec)
            for reg, value in zip(op.dsts, results):
                regfile.schedule_write(reg, value, now, latency)
        info.mem_accesses = list(ctx.accesses)

        self.issue_count += 1
        if self._pending_jump is not None:
            remaining, target_index = self._pending_jump
            if remaining == 0:
                self.pc = target_index
                self._pending_jump = None
            else:
                self._pending_jump = (remaining - 1, target_index)
                self.pc += 1
        else:
            self.pc += 1
        return info

    def _step_fast(self) -> StepInfo | None:
        """Tight loop over the pre-decoded plan.

        Semantically identical to :meth:`_step_reference` — the staged
        read phase collapses into per-op reads because operand values
        (``regfile._values``) only change in ``commit_until``, never
        during an instruction's own execution (all writes land at least
        one issue slot later).
        """
        plan = self._plan
        pc = self.pc
        if pc >= plan.count:
            return None
        now = self.issue_count
        regfile = self.regfile
        heap = regfile._due_heap
        if heap and heap[0][0] <= now:
            regfile.commit_until(now)
        values = regfile._values
        pending = regfile._pending
        # A timing violation needs a write *issued before* now still in
        # flight; after the commit those are exactly the entries left
        # in the heap (writes this step issues have issued == now and
        # can never violate), so when the heap is empty every hazard
        # scan this step is skipped wholesale.
        hazard = regfile.strict and bool(heap)
        ctx = self._ctx
        accesses = ctx.accesses
        accesses.clear()

        info = self._info
        info.index = pc
        info.address = plan.addresses[pc]
        info.nbytes = plan.sizes[pc]
        info.jump_taken = False
        info.jump_target = None
        fu_totals = self._fu_totals

        ops = plan.ops[pc]
        info.issued_ops = len(ops)
        executed = 0
        reads = 0
        writes = 0

        for op in ops:
            guard = op[1]
            if guard != 1:  # TRUE_GUARD: r1 is constant, never pending
                if hazard and guard in pending:
                    for due, issued, _value in pending[guard]:
                        if issued < now < due:
                            raise TimingViolation(
                                f"guard r{guard} read at t={now} while "
                                f"write issued at t={issued} lands at "
                                f"t={due}")
                if not values[guard] & 1:
                    continue
            executed += 1
            fu_totals[op[6]] += 1
            srcs = op[2]
            nsrc = len(srcs)
            reads += nsrc
            if hazard:
                for reg in srcs:
                    if reg in pending:
                        for due, issued, _value in pending[reg]:
                            if issued < now < due:
                                raise TimingViolation(
                                    f"r{reg} read at t={now} while write "
                                    f"issued at t={issued} lands at "
                                    f"t={due}")
            if nsrc == 2:
                operands = (values[srcs[0]], values[srcs[1]])
            elif nsrc == 1:
                operands = (values[srcs[0]],)
            elif nsrc == 0:
                operands = ()
            else:
                operands = tuple(values[reg] for reg in srcs)
            if op[8]:  # is_mem: MemAccess records need slot/op name
                ctx._slot = op[9]
                ctx._op_name = op[10]
            imm = op[4]
            results = op[0](ctx, operands, imm)
            if op[7]:  # is_jump
                outcome = results[0]
                if not isinstance(outcome, JumpOutcome):
                    raise TypeError(f"{op[10]} did not return JumpOutcome")
                if outcome.taken:
                    info.jump_taken = True
                    info.jump_target = outcome.target
                    target_index = (op[11] if outcome.target == imm
                                    else self._resolve_target(outcome.target))
                    self._pending_jump = (plan.jump_delay_slots, target_index)
                continue
            due = now + op[5]
            dsts = op[3]
            if len(dsts) == 1:
                reg = dsts[0]
                writes += 1
                entry = (due, now, results[0] & MASK32)
                queue = pending.get(reg)
                if queue is None:
                    pending[reg] = [entry]
                elif entry >= queue[-1]:
                    queue.append(entry)
                else:
                    insort(queue, entry)
                heappush(heap, (due, reg))
            else:
                for reg, value in zip(dsts, results):
                    writes += 1
                    entry = (due, now, value & MASK32)
                    queue = pending.get(reg)
                    if queue is None:
                        pending[reg] = [entry]
                    elif entry >= queue[-1]:
                        queue.append(entry)
                    else:
                        insort(queue, entry)
                    heappush(heap, (due, reg))

        info.executed_ops = executed
        info.mem_accesses = accesses
        regfile.guard_reads += len(ops)
        regfile.reads += reads
        regfile.writes += writes

        self.issue_count = now + 1
        pending_jump = self._pending_jump
        if pending_jump is not None:
            remaining, target_index = pending_jump
            if remaining == 0:
                self.pc = target_index
                self._pending_jump = None
            else:
                self._pending_jump = (remaining - 1, target_index)
                self.pc = pc + 1
        else:
            self.pc = pc + 1
        return info

    def run(self, max_instructions: int = 50_000_000):
        """Run to completion; yields nothing, collects nothing.

        Use :meth:`step` (or :class:`repro.core.processor.Processor`)
        when per-instruction information is needed.
        """
        step = self._step_fast if self.fast else self._step_reference
        budget = max_instructions
        while step() is not None:
            budget -= 1
            if budget <= 0:
                raise ExecutionError(
                    f"{self.program.name}: exceeded {max_instructions} "
                    f"instructions (runaway loop?)")
        self.regfile.settle()
