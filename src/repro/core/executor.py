"""Architectural executor: runs a linked VLIW program.

The executor implements the *architecture* — what the programmer sees:
guarded operations, exposed latencies measured in issue slots, jump
delay slots, and big-endian memory.  It knows nothing about caches or
stall cycles; the cycle-level model (:mod:`repro.core.processor`) wraps
each step with timing.  This split mirrors the paper's Blaauw framing
(Section 1): architecture here, implementation in the processor model.

Each :meth:`Executor.step` executes one VLIW instruction and returns a
:class:`StepInfo` describing what happened — the hooks the timing and
power models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.link import LinkedProgram
from repro.isa.encoding import EncodedOp
from repro.isa.operations import REGISTRY
from repro.isa.semantics import JumpOutcome
from repro.core.regfile import RegisterFile
from repro.mem.flatmem import FlatMemory

#: Memory-mapped IO window (prefetch-region registers and friends).
MMIO_BASE = 0x1000_0000
MMIO_SIZE = 0x1000


@dataclass
class MemAccess:
    """One memory reference performed by an operation."""

    is_load: bool
    address: int
    nbytes: int
    slot: int
    op_name: str


@dataclass
class StepInfo:
    """What one VLIW instruction did (input to the timing model)."""

    index: int
    address: int
    nbytes: int
    issued_ops: int
    executed_ops: int  # guard-true operations actually performed
    fu_counts: dict = field(default_factory=dict)
    mem_accesses: list[MemAccess] = field(default_factory=list)
    jump_taken: bool = False
    jump_target: int | None = None


class _OpContext:
    """Execution context handed to operation semantics."""

    def __init__(self, memory: FlatMemory, mmio_store=None, mmio_load=None):
        self._memory = memory
        self._mmio_store = mmio_store
        self._mmio_load = mmio_load
        self.guard_value = 1
        self.accesses: list[MemAccess] = []
        self._slot = 0
        self._op_name = ""

    def begin(self, slot: int, op_name: str, guard_value: int) -> None:
        self._slot = slot
        self._op_name = op_name
        self.guard_value = guard_value

    def load(self, address: int, nbytes: int) -> int:
        self.accesses.append(
            MemAccess(True, address, nbytes, self._slot, self._op_name))
        if MMIO_BASE <= address < MMIO_BASE + MMIO_SIZE and self._mmio_load:
            return self._mmio_load(address, nbytes)
        return self._memory.load(address, nbytes)

    def store(self, address: int, value: int, nbytes: int) -> None:
        self.accesses.append(
            MemAccess(False, address, nbytes, self._slot, self._op_name))
        if MMIO_BASE <= address < MMIO_BASE + MMIO_SIZE and self._mmio_store:
            self._mmio_store(address, value, nbytes)
            return
        self._memory.store(address, value, nbytes)


class ExecutionError(Exception):
    """Raised when a program exceeds its instruction budget."""


class Executor:
    """Executes one :class:`~repro.asm.link.LinkedProgram`."""

    def __init__(
        self,
        program: LinkedProgram,
        memory: FlatMemory,
        args: dict[int, int] | None = None,
        strict_timing: bool = True,
        mmio_store=None,
        mmio_load=None,
    ) -> None:
        self.program = program
        self.memory = memory
        self.regfile = RegisterFile(strict=strict_timing)
        if args:
            for preg, value in args.items():
                self.regfile.poke(preg, value)
        self._ctx = _OpContext(memory, mmio_store, mmio_load)
        self.pc = 0
        self.issue_count = 0
        #: (instructions remaining, target index) of an in-flight jump.
        self._pending_jump: tuple[int, int] | None = None
        self._halt_address = program.nbytes

    @property
    def halted(self) -> bool:
        return self.pc >= len(self.program.instructions)

    def _resolve_target(self, address: int) -> int:
        if address >= self._halt_address:
            return len(self.program.instructions)
        return self.program.index_of_address(address)

    def step(self) -> StepInfo | None:
        """Execute one VLIW instruction; returns None when halted."""
        if self.halted:
            return None
        now = self.issue_count
        regfile = self.regfile
        regfile.commit_until(now)
        instr = self.program.instructions[self.pc]
        info = StepInfo(
            index=self.pc,
            address=self.program.addresses[self.pc],
            nbytes=(self.program.addresses[self.pc + 1]
                    - self.program.addresses[self.pc])
            if self.pc + 1 < len(self.program.addresses)
            else self.program.nbytes - self.program.addresses[self.pc],
            issued_ops=len(instr.ops),
            executed_ops=0,
        )
        ctx = self._ctx
        ctx.accesses = []
        target = self.program.target

        # Operand read phase: all reads observe start-of-instruction state.
        staged = []
        for op in instr.ops:
            guard_value = regfile.read_guard(op.guard, now)
            if not guard_value:
                continue
            srcs = tuple(regfile.read(reg, now) for reg in op.srcs)
            staged.append((op, srcs))

        for op, srcs in staged:
            spec = op.spec
            info.executed_ops += 1
            info.fu_counts[spec.fu] = info.fu_counts.get(spec.fu, 0) + 1
            ctx.begin(op.slot, op.name, 1)
            results = REGISTRY.semantic(op.name)(ctx, srcs, op.imm)
            if spec.is_jump:
                outcome = results[0]
                if not isinstance(outcome, JumpOutcome):
                    raise TypeError(f"{op.name} did not return JumpOutcome")
                if outcome.taken:
                    info.jump_taken = True
                    info.jump_target = outcome.target
                    self._pending_jump = (
                        target.jump_delay_slots,
                        self._resolve_target(outcome.target),
                    )
                continue
            latency = target.latency_of(spec)
            for reg, value in zip(op.dsts, results):
                regfile.schedule_write(reg, value, now, latency)
        info.mem_accesses = list(ctx.accesses)

        self.issue_count += 1
        if self._pending_jump is not None:
            remaining, target_index = self._pending_jump
            if remaining == 0:
                self.pc = target_index
                self._pending_jump = None
            else:
                self._pending_jump = (remaining - 1, target_index)
                self.pc += 1
        else:
            self.pc += 1
        return info

    def run(self, max_instructions: int = 50_000_000):
        """Run to completion; yields nothing, collects nothing.

        Use :meth:`step` (or :class:`repro.core.processor.Processor`)
        when per-instruction information is needed.
        """
        budget = max_instructions
        while not self.halted:
            self.step()
            budget -= 1
            if budget <= 0:
                raise ExecutionError(
                    f"{self.program.name}: exceeded {max_instructions} "
                    f"instructions (runaway loop?)")
        self.regfile.settle()
