"""Pipeline structure model (Section 3, Figures 4 and 5).

The TM3270 pipeline:

* front end — I1, I2, I3 (sequential instruction-cache access: tags in
  I1, instruction data in I3), P (pre-decode from the 4-entry
  instruction buffer);
* D — decode, register-file and operand bypass read;
* X1..X6 — execute; the number of execute stages equals the
  operation's latency (single-cycle ops use X1 only; collapsed loads
  with interpolation run X1..X6 — Figure 5's address stage, access
  arbitration, SRAM access, way selection, and the two filter-bank
  stages);
* W — write-back: up to five simultaneous register-file updates.

This module exposes that structure declaratively: stage sequences per
operation class, the 7–12 stage depth claim of Table 1, and the
derivation of the five jump delay slots (the I1 -> X1 distance).  The
cycle-level model does not walk these stages one by one — TriMedia
timing reduces to issue slots + stalls — but the structure predicts the
architectural numbers (latencies, delay slots) that the timing model
and scheduler use, and the tests assert that consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.target import TM3270_TARGET, Target
from repro.isa.operations import OpSpec

FRONT_END_STAGES = ("I1", "I2", "I3", "P")
DECODE_STAGE = "D"
EXECUTE_STAGES = ("X1", "X2", "X3", "X4", "X5", "X6")
WRITEBACK_STAGE = "W"

#: Stage occupancy of the load/store unit pipeline (Figure 5).
LSU_STAGE_ROLES = {
    "X1": "effective address computation (addr_lo and addr_hi)",
    "X2": "access arbitration to tag/data SRAMs",
    "X3": "tag and data SRAM access, tag comparison",
    "X4": "way selection, hit/validity resolution, CWB entry",
    "X5": "collapsed-load filter bank, first stage",
    "X6": "collapsed-load filter bank, second stage",
}

#: Instruction-buffer depth between the front end and back end.
INSTRUCTION_BUFFER_ENTRIES = 4

#: Bytes fetched from the instruction cache per cycle.
FETCH_BYTES_PER_CYCLE = 32


@dataclass(frozen=True)
class StagePath:
    """The stage sequence one operation class flows through."""

    name: str
    stages: tuple[str, ...]

    @property
    def depth(self) -> int:
        return len(self.stages)


def stage_path(spec: OpSpec, target: Target = TM3270_TARGET) -> StagePath:
    """Stage sequence of ``spec`` on ``target`` (Figure 4)."""
    if spec.is_store:
        # Stores occupy the LSU through way-selection (X4) but write
        # no register: no W stage.
        stages = FRONT_END_STAGES + (DECODE_STAGE,) + EXECUTE_STAGES[:4]
        return StagePath(spec.name, stages)
    latency = min(target.latency_of(spec), len(EXECUTE_STAGES))
    stages = (FRONT_END_STAGES + (DECODE_STAGE,)
              + EXECUTE_STAGES[:latency] + (WRITEBACK_STAGE,))
    return StagePath(spec.name, stages)


def pipeline_depth(spec: OpSpec, target: Target = TM3270_TARGET) -> int:
    """Total stage count for one operation class."""
    return stage_path(spec, target).depth


def depth_range(target: Target = TM3270_TARGET) -> tuple[int, int]:
    """(min, max) pipeline depth across operation classes.

    Table 1: "Pipeline depth: 7-12 stages" — 7 for single-cycle
    operations (I1 I2 I3 P D X1 W), 12 for collapsed loads
    (I1 I2 I3 P D X1..X6 W).
    """
    from repro.isa.operations import REGISTRY

    depths = [pipeline_depth(spec, target) for spec in REGISTRY
              if not spec.is_jump and target.supports(spec)
              and spec.latency <= 6]
    return min(depths), max(depths)


def jump_delay_slots(target: Target = TM3270_TARGET) -> int:
    """Architectural delay slots from the pipeline structure.

    Jumps execute in X1 (Section 3); the refetch distance is the
    number of stages from I1 up to (but excluding) X1, i.e. the four
    front-end stages plus decode = 5 on the TM3270.  The TM3260's
    shallower front end (no separate arbitration stage, parallel
    instruction cache) gives 3.
    """
    if target.jump_delay_slots == 5:
        return len(FRONT_END_STAGES) + 1
    return target.jump_delay_slots


def stage_spans(issue_cycle: int, *, latency: int = 1, stall: int = 0,
                ) -> list[tuple[str, int, int]]:
    """Per-stage ``(stage, start_cycle, duration)`` spans of one
    instruction issued (entering D) at ``issue_cycle``.

    This is the Figure 4 overlay the observability layer renders on a
    Chrome-trace timeline: the front-end stages are back-dated from the
    issue cycle (the model charges fetch stalls at issue time, so the
    skew is structural, not measured), the decode stage stretches over
    any whole-pipeline ``stall`` charged to this instruction — TriMedia
    stalls the pipeline as a unit — and ``latency`` execute stages plus
    write-back follow.
    """
    spans = []
    skew = len(FRONT_END_STAGES)
    for index, stage in enumerate(FRONT_END_STAGES):
        spans.append((stage, issue_cycle - skew + index, 1))
    spans.append((DECODE_STAGE, issue_cycle, 1 + stall))
    execute_start = issue_cycle + 1 + stall
    depth = min(max(latency, 1), len(EXECUTE_STAGES))
    for index in range(depth):
        spans.append((EXECUTE_STAGES[index], execute_start + index, 1))
    spans.append((WRITEBACK_STAGE, execute_start + depth, 1))
    return spans


def describe(target: Target = TM3270_TARGET) -> str:
    """Human-readable pipeline summary (the Figure 4 caption)."""
    low, high = depth_range(target)
    lines = [
        f"{target.name} pipeline:",
        f"  front end : {' '.join(FRONT_END_STAGES)} "
        f"({INSTRUCTION_BUFFER_ENTRIES}-entry instruction buffer, "
        f"{FETCH_BYTES_PER_CYCLE}-byte fetch chunks)",
        f"  decode    : {DECODE_STAGE} (register file: 10 source + "
        "5 guard read ports)",
        "  execute   : X1..X6 (stage count = operation latency)",
        f"  write-back: {WRITEBACK_STAGE} (up to 5 register updates)",
        f"  depth     : {low}-{high} stages",
        f"  jump delay: {jump_delay_slots(target)} slots",
    ]
    return "\n".join(lines)
