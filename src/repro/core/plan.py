"""Pre-decoded execution plans: the interpreter's static/dynamic split.

Everything about a VLIW instruction that does not depend on machine
state is known the moment a :class:`~repro.asm.link.LinkedProgram`
exists: which semantic callable each operation binds to, its result
latency on the program's target, guard/source/destination register
indices, functional-unit class, whether it is a jump and where that
jump lands, the instruction's encoded byte size, and which 32-byte
fetch chunks the front end consumes for it.  The dynamic interpreter
re-derived all of it on every step — a ``REGISTRY.semantic(name)``
dict lookup per operation, an ``OpSpec`` property chain, a
``latency_of`` call, address arithmetic for sizes and chunks.

:class:`ExecutionPlan` hoists that work to program-load time.  Each
instruction compiles into a flat tuple of per-operation tuples (plain
tuples, not objects — index access is the cheapest attribute model
Python has) plus parallel arrays of sizes and chunk ranges, so
``Executor._step_fast`` and ``Processor.run`` execute over
pre-resolved data with zero per-step name lookups.

Plans are immutable and cached on the program
(:func:`plan_for` / :meth:`LinkedProgram.plan`); one program shared by
many executors compiles its plan once.
"""

from __future__ import annotations

from repro.core.regfile import NUM_REGS
from repro.isa.encoding import TRUE_GUARD, EncodedInstruction
from repro.isa.operations import REGISTRY
from repro.mem.icache import FETCH_CHUNK_BYTES

#: Indices into one per-operation plan tuple (kept in one place so the
#: executor's unpacking and the builder below cannot drift apart).
OP_SEMANTIC = 0    # bound semantic callable
OP_GUARD = 1       # guard register index (TRUE_GUARD = unguarded)
OP_SRCS = 2        # tuple of source register indices
OP_DSTS = 3        # tuple of destination register indices
OP_IMM = 4         # raw immediate (None when absent)
OP_LATENCY = 5     # result latency on this program's target
OP_FU = 6          # functional-unit index into ``plan.fu_list``
OP_IS_JUMP = 7     # bool
OP_IS_MEM = 8      # bool: may call ctx.load/ctx.store
OP_SLOT = 9        # anchor issue slot (MemAccess bookkeeping)
OP_NAME = 10       # mnemonic (MemAccess bookkeeping, diagnostics)
OP_JUMP_INDEX = 11 # pre-resolved target instruction index (jumps only)

_CHUNK_MASK = ~(FETCH_CHUNK_BYTES - 1)


class ExecutionPlan:
    """Flat, pre-resolved form of one linked program.

    Parallel arrays indexed by instruction index:

    ``ops``
        tuple of per-operation tuples (see the ``OP_*`` indices).
    ``addresses`` / ``sizes``
        byte address and encoded byte size of each instruction.
    ``chunk_first`` / ``chunk_last``
        program-relative addresses of the first and last 32-byte fetch
        chunks the instruction occupies (the front end's consumption
        range; ``chunk_first[i] == chunk_last[i]`` for most
        instructions, which is what makes the fetch fast path a single
        comparison).
    ``nops`` / ``static_executed`` / ``static_fu_items``
        issued-operation count, the count of *unguarded* operations
        (always executed), and their per-FU counts — the pieces of
        per-step accounting that do not depend on guard values.
    ``all_unguarded``
        True when every operation of the instruction is unguarded, so
        its entire execution profile is static.
    """

    __slots__ = (
        "program", "count", "ops", "addresses", "sizes",
        "chunk_first", "chunk_last", "nops", "static_executed",
        "static_fu_items", "all_unguarded", "jump_delay_slots",
        "fu_list", "_abs_chunks", "_abs_chunks_base",
        "_trace_regions", "_trace_code",
    )

    def __init__(self, program) -> None:
        target = program.target
        instructions: list[EncodedInstruction] = program.instructions
        halt_index = len(instructions)

        def resolve(address: int) -> int:
            # Mirrors Executor._resolve_target: jumping at or past the
            # image end halts.
            if address >= program.nbytes:
                return halt_index
            return program.index_of_address(address)

        self.program = program
        self.count = halt_index
        self.jump_delay_slots = target.jump_delay_slots
        self.addresses = list(program.addresses)
        self.sizes = list(program.instruction_sizes)
        self.ops = []
        self.chunk_first = []
        self.chunk_last = []
        self.nops = []
        self.static_executed = []
        self.static_fu_items = []
        self.all_unguarded = []
        #: FU enums used by this program; op tuples carry the *index*
        #: so the executor counts per-FU work with a list increment
        #: instead of hashing an enum member per operation.
        self.fu_list = []
        fu_index: dict = {}

        for index, instr in enumerate(instructions):
            address = self.addresses[index]
            nbytes = self.sizes[index]
            self.chunk_first.append(address & _CHUNK_MASK)
            self.chunk_last.append(
                (address + max(nbytes - 1, 0)) & _CHUNK_MASK)

            planned = []
            static_fu: dict = {}
            static_executed = 0
            for op in instr.ops:
                spec = op.spec
                for reg in op.dsts:
                    # Destination validity is static — checking here
                    # lets the fast path skip schedule_write's
                    # per-write validation.
                    if reg in (0, 1):
                        raise ValueError(
                            f"{op.name}: write to constant register "
                            f"r{reg}")
                    if not 0 <= reg < NUM_REGS:
                        raise ValueError(
                            f"{op.name}: register r{reg} out of range")
                jump_index = None
                if spec.is_jump and op.imm is not None:
                    jump_index = resolve(op.imm)
                if op.guard == TRUE_GUARD:
                    static_executed += 1
                    static_fu[spec.fu] = static_fu.get(spec.fu, 0) + 1
                fu = spec.fu
                index_of_fu = fu_index.get(fu)
                if index_of_fu is None:
                    index_of_fu = fu_index[fu] = len(self.fu_list)
                    self.fu_list.append(fu)
                planned.append((
                    REGISTRY.semantic(op.name),
                    op.guard,
                    op.srcs,
                    op.dsts,
                    op.imm,
                    target.latency_of(spec),
                    index_of_fu,
                    spec.is_jump,
                    spec.is_mem,
                    op.slot,
                    op.name,
                    jump_index,
                ))
            self.ops.append(tuple(planned))
            self.nops.append(len(instr.ops))
            self.static_executed.append(static_executed)
            self.static_fu_items.append(tuple(static_fu.items()))
            self.all_unguarded.append(static_executed == len(instr.ops))

        self._abs_chunks = None
        self._abs_chunks_base = None
        #: Trace-tier caches (see :mod:`repro.core.trace`): detected
        #: region specs and compiled region functions.  Both are pure
        #: functions of the plan, so they live here and survive
        #: runtime invalidations (re-warming is a cache hit).
        self._trace_regions = None
        self._trace_code = {}

    def code_chunks(self, code_base: int) -> tuple[list[int], list[int]]:
        """Absolute first/last fetch-chunk addresses per instruction.

        The processor lays code out at a fixed base; translating the
        program-relative chunk ranges once (and caching the result)
        makes the front end's have-I-fetched-this-chunk test a pair of
        list indexings per instruction.
        """
        if self._abs_chunks_base != code_base:
            self._abs_chunks = (
                [code_base + chunk for chunk in self.chunk_first],
                [code_base + chunk for chunk in self.chunk_last],
            )
            self._abs_chunks_base = code_base
        return self._abs_chunks


def plan_for(program) -> ExecutionPlan:
    """The (cached) :class:`ExecutionPlan` of ``program``."""
    plan = getattr(program, "_plan", None)
    if plan is None:
        plan = ExecutionPlan(program)
        program._plan = plan
    return plan
