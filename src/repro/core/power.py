"""Activity-based power model (Section 5.2, Table 4).

The paper reports gate-level power for an MP3 decoder workload at
1.2 V as mW/MHz per module (Table 4), and makes three analytical
claims this model reproduces:

1. dynamic power is ``C * V^2 * f`` — halving voltage to 0.8 V scales
   total power by ``(0.8/1.2)^2`` (0.935 -> 0.415 mW/MHz);
2. power tracks OPI and CPI rather than the specific application:
   every module's switched capacitance is proportional to its
   *activity per cycle* (operations decoded, register-file ports used,
   cache accesses, bus bytes moved);
3. clock gating means stall cycles are cheap: "as the amount of stall
   cycles increases (larger CPI), the mW/MHz number decreases", with
   relatively more power in the BIU.

Module power is ``coefficient * activity_rate``, with coefficients
calibrated once so that the MP3-proxy workload
(:mod:`repro.kernels.mp3proxy`) on the TM3270 reproduces Table 4
exactly.  The frozen reference activity below was measured on that
workload (OPI 3.37, CPI 1.02 — the paper quotes OPI ~4.5; our proxy
is VLIW-schedule-limited, see EXPERIMENTS.md); the calibration test in
``tests/core/test_power.py`` re-derives it.

The MMIO module (small peripherals) is modeled as a constant floor,
and a small always-on fraction of each module survives clock gating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import RunStats

NOMINAL_VOLTAGE = 1.2

#: Table 4 power targets at 1.2 V, mW/MHz, for the MP3 workload.
TABLE4_POWER_MW_PER_MHZ = {
    "IFU": 0.272,
    "Decode": 0.022,
    "Regfile": 0.170,
    "Execute": 0.255,
    "LS": 0.266,
    "BIU": 0.002,
    "MMIO": 0.012,
}
TABLE4_TOTAL = 0.935

#: Fraction of each module's reference power that is *not* gated off
#: when the module idles (clock-tree roots, control state).
UNGATED_FRACTION = 0.05


@dataclass(frozen=True)
class ModuleActivity:
    """Per-cycle activity rates driving each module's toggling."""

    ifu_chunks: float      # 32-byte fetch chunks per cycle
    decode_ops: float      # operations decoded per cycle
    regfile_ports: float   # read + guard + write ports used per cycle
    execute_ops: float     # operations executed per cycle
    ls_accesses: float     # data-cache accesses per cycle
    bus_bytes: float       # BIU bytes transferred per cycle


#: Activity of the MP3-proxy calibration workload on the TM3270
#: (frozen from a measured run; re-derived by the calibration test).
REFERENCE_ACTIVITY = ModuleActivity(
    ifu_chunks=0.514424,
    decode_ops=3.306205,
    regfile_ports=11.904072,
    execute_ops=3.306205,
    ls_accesses=0.581772,
    bus_bytes=0.058177,
)


def activity_from_stats(stats: RunStats) -> ModuleActivity:
    """Extract per-cycle activity rates from a finished run."""
    cycles = max(stats.cycles, 1)
    bus_bytes = stats.biu.total_bytes if stats.biu else 0
    dcache_accesses = stats.dcache.accesses if stats.dcache else 0
    return ModuleActivity(
        ifu_chunks=stats.code_bytes_fetched / 32 / cycles,
        decode_ops=stats.ops_executed / cycles,
        regfile_ports=(stats.regfile_reads + stats.regfile_writes
                       + stats.guard_reads) / cycles,
        execute_ops=stats.ops_executed / cycles,
        ls_accesses=dcache_accesses / cycles,
        bus_bytes=bus_bytes / cycles,
    )


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-module mW/MHz (the Table 4 'power' column)."""

    ifu: float
    decode: float
    regfile: float
    execute: float
    load_store: float
    biu: float
    mmio: float
    voltage: float = NOMINAL_VOLTAGE

    @property
    def total(self) -> float:
        return (self.ifu + self.decode + self.regfile + self.execute
                + self.load_store + self.biu + self.mmio)

    def as_rows(self) -> list[tuple[str, float]]:
        """(module, mW/MHz) rows in Table 4 order."""
        return [
            ("IFU", self.ifu),
            ("Decode", self.decode),
            ("Regfile", self.regfile),
            ("Execute", self.execute),
            ("LS", self.load_store),
            ("BIU", self.biu),
            ("MMIO", self.mmio),
            ("Total", self.total),
        ]

    def milliwatts(self, freq_mhz: float) -> float:
        """Absolute power at an operating frequency."""
        return self.total * freq_mhz


class PowerModel:
    """Table 4-calibrated activity-proportional power model."""

    def __init__(self, reference: ModuleActivity = REFERENCE_ACTIVITY,
                 targets: dict[str, float] | None = None) -> None:
        self.reference = reference
        self.targets = dict(targets or TABLE4_POWER_MW_PER_MHZ)

    def _module(self, name: str, rate: float, ref_rate: float) -> float:
        target = self.targets[name]
        gated = target * (1.0 - UNGATED_FRACTION)
        floor = target * UNGATED_FRACTION
        if ref_rate <= 0:
            return target
        return floor + gated * (rate / ref_rate)

    def breakdown(self, stats: RunStats,
                  voltage: float = NOMINAL_VOLTAGE) -> PowerBreakdown:
        """Per-module mW/MHz for a finished run at ``voltage``.

        Activity rates are per *total* cycle, so stall-heavy runs
        (high CPI) naturally report lower mW/MHz — the clock-gating
        effect the paper describes.
        """
        activity = activity_from_stats(stats)
        ref = self.reference
        scale = (voltage / NOMINAL_VOLTAGE) ** 2
        return PowerBreakdown(
            ifu=scale * self._module(
                "IFU", activity.ifu_chunks, ref.ifu_chunks),
            decode=scale * self._module(
                "Decode", activity.decode_ops, ref.decode_ops),
            regfile=scale * self._module(
                "Regfile", activity.regfile_ports, ref.regfile_ports),
            execute=scale * self._module(
                "Execute", activity.execute_ops, ref.execute_ops),
            load_store=scale * self._module(
                "LS", activity.ls_accesses, ref.ls_accesses),
            biu=scale * self._module(
                "BIU", activity.bus_bytes, ref.bus_bytes),
            mmio=scale * self.targets["MMIO"],
            voltage=voltage,
        )

    def mp3_decode_milliwatts(self, stats: RunStats, freq_mhz: float,
                              voltage: float = NOMINAL_VOLTAGE) -> float:
        """Section 5.2's headline: power of MP3 decoding at (f, V)."""
        return self.breakdown(stats, voltage).milliwatts(freq_mhz)


def voltage_scaled_total(total_at_nominal: float, voltage: float) -> float:
    """The paper's quadratic scaling: 0.935 -> 0.415 mW/MHz at 0.8 V."""
    return total_at_nominal * (voltage / NOMINAL_VOLTAGE) ** 2
