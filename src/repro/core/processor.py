"""The cycle-level processor model: architecture + implementation.

Wraps the architectural :class:`~repro.core.executor.Executor` with the
implementation-side timing of Sections 3 and 4:

* front end — 32-byte instruction chunks through the instruction
  cache into the instruction buffer; misses stall;
* load/store unit — every memory access goes through the data cache
  (non-aligned splits, write policies, byte validity), misses stall
  for the SDRAM round trip via the BIU;
* region prefetcher — observes demand loads, issues line fetches on
  idle bus cycles;
* MMIO — stores into the prefetch-region window configure the
  prefetcher (Section 2.3's ``PFn_*`` parameters).

Because the TriMedia pipeline stalls as a whole (no out-of-order
machinery), cycle accounting is simply ``instructions + stall cycles``
— the structure the paper itself uses when it reasons about CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import LinkedProgram
from repro.core.config import ProcessorConfig, TM3270_CONFIG
from repro.core.executor import MMIO_BASE, MMIO_SIZE, Executor
from repro.core.pipeline import stage_spans
from repro.core.stats import RunStats
from repro.mem.bus import BusInterfaceUnit
from repro.mem.dcache import DataCache
from repro.mem.flatmem import FlatMemory
from repro.mem.icache import FETCH_CHUNK_BYTES, InstructionCache
from repro.mem.prefetch import RegionPrefetcher
from repro.obs.events import EventBus

#: Programs are laid out in a dedicated code region so instruction and
#: data addresses never alias in the caches.
CODE_BASE = 0x0080_0000


@dataclass
class RunResult:
    """Execution outcome: stats plus final architectural state."""

    stats: RunStats
    regfile: object
    memory: FlatMemory

    def reg(self, preg: int) -> int:
        """Final committed value of a physical register."""
        return self.regfile.peek(preg)


class Processor:
    """One processor instance (construct per run for clean stats)."""

    def __init__(self, config: ProcessorConfig = TM3270_CONFIG,
                 memory: FlatMemory | None = None,
                 memory_size: int = 1 << 20,
                 obs: EventBus | None = None) -> None:
        self.config = config
        self.memory = memory or FlatMemory(memory_size)
        self.biu = BusInterfaceUnit(config.freq_mhz, config.sdram)
        self.icache = InstructionCache(
            config.icache, self.biu, config.icache_mode)
        self.dcache = DataCache(
            config.dcache, self.biu, config.write_miss_policy)
        self.prefetcher = RegionPrefetcher(
            self.dcache, self.biu, enabled=config.prefetch_enabled)
        # One bus observes every component; None keeps all emission
        # sites on their zero-cost path.
        self.obs = obs
        self.icache.obs = obs
        self.dcache.obs = obs
        self.prefetcher.obs = obs

    # -- MMIO ---------------------------------------------------------------

    def _mmio_store(self, address: int, value: int, nbytes: int) -> None:
        self.prefetcher.mmio_store(address - MMIO_BASE, value)

    def _mmio_load(self, address: int, nbytes: int) -> int:
        return self.prefetcher.mmio_load(address - MMIO_BASE)

    # -- execution -------------------------------------------------------------

    def run(self, program: LinkedProgram, args: dict[int, int] | None = None,
            max_instructions: int = 50_000_000,
            warm_code: bool = True, fast: bool = True) -> RunResult:
        """Execute ``program`` to completion and return the result.

        ``args`` maps physical registers to initial values (the kernel
        calling convention pins parameters to r10, r11, ...).  With
        ``warm_code`` the instruction cache is preloaded — kernel-style
        measurement, excluding cold-code effects; pass False to include
        them.

        ``fast`` selects the pre-decoded execution plan (the default);
        ``fast=False`` runs the dynamic reference interpreter.  The two
        produce bit-identical results and statistics — the flag only
        trades simulation wall-clock.
        """
        if program.target.name != self.config.target.name:
            raise ValueError(
                f"program compiled for {program.target.name!r} cannot run "
                f"on {self.config.target.name!r} "
                "(binary compatibility is not guaranteed across the "
                "TriMedia family — Section 2)")
        executor = Executor(
            program,
            self.memory,
            args=args,
            mmio_store=self._mmio_store,
            mmio_load=self._mmio_load,
            fast=fast,
        )
        stats = RunStats(
            config_name=self.config.name,
            program_name=program.name,
            freq_mhz=self.config.freq_mhz,
        )
        if warm_code:
            line_bytes = self.config.icache.line_bytes
            for offset in range(0, max(program.nbytes, 1), line_bytes):
                self.icache.tags.install(CODE_BASE + offset)
                line = self.icache.tags.lookup(CODE_BASE + offset)
                line.valid_mask = (1 << line_bytes) - 1

        cycle = 0
        last_chunk = -1
        chunk_mask = ~(FETCH_CHUNK_BYTES - 1)
        mmio_end = MMIO_BASE + MMIO_SIZE
        budget = max_instructions

        # Hot-loop bindings: the loop below runs once per simulated
        # VLIW instruction, so attribute chains are hoisted and the
        # cheap counters accumulate in locals (flushed to ``stats``
        # after the loop — the observable result is identical).
        step = executor._step_fast if fast else executor._step_reference
        if fast:
            chunk_first, chunk_last = \
                executor._plan.code_chunks(CODE_BASE)
        dcache_access = self.dcache.access
        prefetcher = self.prefetcher
        prefetch_queue = prefetcher._queue
        prefetch_tick = prefetcher.tick
        observe_load = prefetcher.observe_load
        obs = self.obs
        instructions = 0
        ops_issued = 0
        ops_executed = 0
        jumps_taken = 0
        icache_stall_cycles = 0
        dcache_stall_cycles = 0
        code_bytes_fetched = 0
        mmio_accesses = 0
        fu_counts: dict = {}

        while True:
            info = step()
            if info is None:
                break
            budget -= 1
            if budget < 0:
                raise RuntimeError(
                    f"{program.name}: exceeded {max_instructions} "
                    f"instructions on {self.config.name}")
            stall = 0

            # Front end: fetch any newly-consumed 32-byte chunks.  The
            # plan pre-computes each instruction's chunk range, so the
            # common case — still inside the chunk fetched last step —
            # is two list indexings and two comparisons.
            if fast:
                first_chunk = chunk_first[info.index]
                last_needed = chunk_last[info.index]
            else:
                first_chunk = (CODE_BASE + info.address) & chunk_mask
                last_needed = (CODE_BASE + info.address
                               + max(info.nbytes - 1, 0)) & chunk_mask
            if first_chunk != last_chunk or last_needed != last_chunk:
                chunk = first_chunk
                while chunk <= last_needed:
                    if chunk != last_chunk:
                        stall += self.icache.fetch_chunk(
                            chunk, cycle + stall)
                        code_bytes_fetched += FETCH_CHUNK_BYTES
                        last_chunk = chunk
                    chunk += FETCH_CHUNK_BYTES
                icache_stall_cycles += stall
            fetch_stall = stall

            # Load/store unit.
            if info.mem_accesses:
                for access in info.mem_accesses:
                    address = access.address
                    if MMIO_BASE <= address < mmio_end:
                        mmio_accesses += 1
                        continue
                    mem_stall = dcache_access(
                        access.is_load, address, access.nbytes,
                        cycle + stall)
                    stall += mem_stall
                    dcache_stall_cycles += mem_stall
                    if access.is_load:
                        observe_load(address, cycle + stall)
            if prefetch_queue:
                prefetch_tick(cycle + stall)

            if obs:
                obs.instruction(cycle, 1 + stall,
                                index=instructions,
                                issued_ops=info.issued_ops,
                                executed_ops=info.executed_ops)
                obs.stall(cycle, "icache", fetch_stall)
                obs.stall(cycle + fetch_stall, "dcache",
                          stall - fetch_stall)
                if obs.stage_detail:
                    for stage, start, dur in stage_spans(
                            cycle, stall=stall):
                        obs.stage(start, stage, dur,
                                  instr=instructions)

            cycle += 1 + stall
            instructions += 1
            ops_issued += info.issued_ops
            ops_executed += info.executed_ops
            if info.jump_taken:
                jumps_taken += 1
            if not fast:
                for fu, count in info.fu_counts.items():
                    fu_counts[fu] = fu_counts.get(fu, 0) + count

        if fast:
            fu_counts = executor.fu_totals()
        executor.regfile.settle()
        stats.instructions = instructions
        stats.ops_issued = ops_issued
        stats.ops_executed = ops_executed
        stats.jumps_taken = jumps_taken
        stats.icache_stall_cycles = icache_stall_cycles
        stats.dcache_stall_cycles = dcache_stall_cycles
        stats.code_bytes_fetched = code_bytes_fetched
        stats.mmio_accesses = mmio_accesses
        stats.fu_counts = fu_counts
        stats.cycles = cycle
        stats.regfile_reads = executor.regfile.reads
        stats.regfile_writes = executor.regfile.writes
        stats.guard_reads = executor.regfile.guard_reads
        stats.dcache = self.dcache.stats
        stats.icache = self.icache.stats
        stats.biu = self.biu.stats
        stats.sdram = self.biu.sdram.stats
        stats.prefetch = self.prefetcher.stats
        return RunResult(stats, executor.regfile, self.memory)


def run_kernel(program: LinkedProgram,
               config: ProcessorConfig = TM3270_CONFIG,
               args: dict[int, int] | None = None,
               memory: FlatMemory | None = None,
               memory_size: int = 1 << 20,
               max_instructions: int = 50_000_000,
               obs: EventBus | None = None,
               fast: bool = True) -> RunResult:
    """Convenience: build a fresh processor and run one kernel."""
    processor = Processor(config, memory=memory, memory_size=memory_size,
                          obs=obs)
    return processor.run(program, args=args,
                         max_instructions=max_instructions, fast=fast)
