"""The cycle-level processor model: architecture + implementation.

Wraps the architectural :class:`~repro.core.executor.Executor` with the
implementation-side timing of Sections 3 and 4:

* front end — 32-byte instruction chunks through the instruction
  cache into the instruction buffer; misses stall;
* load/store unit — every memory access goes through the data cache
  (non-aligned splits, write policies, byte validity), misses stall
  for the SDRAM round trip via the BIU;
* region prefetcher — observes demand loads, issues line fetches on
  idle bus cycles;
* MMIO — stores into the prefetch-region window configure the
  prefetcher (Section 2.3's ``PFn_*`` parameters).

Because the TriMedia pipeline stalls as a whole (no out-of-order
machinery), cycle accounting is simply ``instructions + stall cycles``
— the structure the paper itself uses when it reasons about CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import LinkedProgram
from repro.core.config import ProcessorConfig, TM3270_CONFIG
from repro.core.executor import MMIO_BASE, MMIO_SIZE, Executor
from repro.core.pipeline import stage_spans
from repro.core.stats import RunStats
from repro.mem.bus import BusInterfaceUnit
from repro.mem.dcache import DataCache
from repro.mem.flatmem import FlatMemory
from repro.mem.icache import FETCH_CHUNK_BYTES, InstructionCache
from repro.mem.prefetch import RegionPrefetcher
from repro.obs.events import EventBus

#: Programs are laid out in a dedicated code region so instruction and
#: data addresses never alias in the caches.
CODE_BASE = 0x0080_0000


@dataclass
class RunResult:
    """Execution outcome: stats plus final architectural state."""

    stats: RunStats
    regfile: object
    memory: FlatMemory

    def reg(self, preg: int) -> int:
        """Final committed value of a physical register."""
        return self.regfile.peek(preg)


class Processor:
    """One processor instance (construct per run for clean stats)."""

    def __init__(self, config: ProcessorConfig = TM3270_CONFIG,
                 memory: FlatMemory | None = None,
                 memory_size: int = 1 << 20,
                 obs: EventBus | None = None) -> None:
        self.config = config
        self.memory = memory or FlatMemory(memory_size)
        self.biu = BusInterfaceUnit(config.freq_mhz, config.sdram)
        self.icache = InstructionCache(
            config.icache, self.biu, config.icache_mode)
        self.dcache = DataCache(
            config.dcache, self.biu, config.write_miss_policy)
        self.prefetcher = RegionPrefetcher(
            self.dcache, self.biu, enabled=config.prefetch_enabled)
        # One bus observes every component; None keeps all emission
        # sites on their zero-cost path.
        self.obs = obs
        self.icache.obs = obs
        self.dcache.obs = obs
        self.prefetcher.obs = obs

    # -- MMIO ---------------------------------------------------------------

    def _mmio_store(self, address: int, value: int, nbytes: int) -> None:
        self.prefetcher.mmio_store(address - MMIO_BASE, value)

    def _mmio_load(self, address: int, nbytes: int) -> int:
        return self.prefetcher.mmio_load(address - MMIO_BASE)

    # -- execution -------------------------------------------------------------

    def run(self, program: LinkedProgram, args: dict[int, int] | None = None,
            max_instructions: int = 50_000_000,
            warm_code: bool = True) -> RunResult:
        """Execute ``program`` to completion and return the result.

        ``args`` maps physical registers to initial values (the kernel
        calling convention pins parameters to r10, r11, ...).  With
        ``warm_code`` the instruction cache is preloaded — kernel-style
        measurement, excluding cold-code effects; pass False to include
        them.
        """
        if program.target.name != self.config.target.name:
            raise ValueError(
                f"program compiled for {program.target.name!r} cannot run "
                f"on {self.config.target.name!r} "
                "(binary compatibility is not guaranteed across the "
                "TriMedia family — Section 2)")
        executor = Executor(
            program,
            self.memory,
            args=args,
            mmio_store=self._mmio_store,
            mmio_load=self._mmio_load,
        )
        stats = RunStats(
            config_name=self.config.name,
            program_name=program.name,
            freq_mhz=self.config.freq_mhz,
        )
        if warm_code:
            line_bytes = self.config.icache.line_bytes
            for offset in range(0, max(program.nbytes, 1), line_bytes):
                self.icache.tags.install(CODE_BASE + offset)
                line = self.icache.tags.lookup(CODE_BASE + offset)
                line.valid_mask = (1 << line_bytes) - 1

        cycle = 0
        last_chunk = -1
        chunk_mask = ~(FETCH_CHUNK_BYTES - 1)
        mmio_end = MMIO_BASE + MMIO_SIZE
        budget = max_instructions
        while True:
            info = executor.step()
            if info is None:
                break
            budget -= 1
            if budget < 0:
                raise RuntimeError(
                    f"{program.name}: exceeded {max_instructions} "
                    f"instructions on {self.config.name}")
            stall = 0

            # Front end: fetch any newly-consumed 32-byte chunks.
            first_chunk = (CODE_BASE + info.address) & chunk_mask
            last_needed = (CODE_BASE + info.address
                           + max(info.nbytes - 1, 0)) & chunk_mask
            chunk = first_chunk
            while chunk <= last_needed:
                if chunk != last_chunk:
                    stall += self.icache.fetch_chunk(chunk, cycle + stall)
                    stats.code_bytes_fetched += FETCH_CHUNK_BYTES
                    last_chunk = chunk
                chunk += FETCH_CHUNK_BYTES
            stats.icache_stall_cycles += stall
            fetch_stall = stall

            # Load/store unit.
            for access in info.mem_accesses:
                if MMIO_BASE <= access.address < mmio_end:
                    stats.mmio_accesses += 1
                    continue
                mem_stall = self.dcache.access(
                    access.is_load, access.address, access.nbytes,
                    cycle + stall)
                stall += mem_stall
                stats.dcache_stall_cycles += mem_stall
                if access.is_load:
                    self.prefetcher.observe_load(
                        access.address, cycle + stall)
            self.prefetcher.tick(cycle + stall)

            obs = self.obs
            if obs:
                obs.instruction(cycle, 1 + stall,
                                index=stats.instructions,
                                issued_ops=info.issued_ops,
                                executed_ops=info.executed_ops)
                obs.stall(cycle, "icache", fetch_stall)
                obs.stall(cycle + fetch_stall, "dcache",
                          stall - fetch_stall)
                if obs.stage_detail:
                    for stage, start, dur in stage_spans(
                            cycle, stall=stall):
                        obs.stage(start, stage, dur,
                                  instr=stats.instructions)

            cycle += 1 + stall
            stats.instructions += 1
            stats.ops_issued += info.issued_ops
            stats.ops_executed += info.executed_ops
            if info.jump_taken:
                stats.jumps_taken += 1
            for fu, count in info.fu_counts.items():
                stats.fu_counts[fu] = stats.fu_counts.get(fu, 0) + count

        executor.regfile.settle()
        stats.cycles = cycle
        stats.regfile_reads = executor.regfile.reads
        stats.regfile_writes = executor.regfile.writes
        stats.guard_reads = executor.regfile.guard_reads
        stats.dcache = self.dcache.stats
        stats.icache = self.icache.stats
        stats.biu = self.biu.stats
        stats.sdram = self.biu.sdram.stats
        stats.prefetch = self.prefetcher.stats
        return RunResult(stats, executor.regfile, self.memory)


def run_kernel(program: LinkedProgram,
               config: ProcessorConfig = TM3270_CONFIG,
               args: dict[int, int] | None = None,
               memory: FlatMemory | None = None,
               memory_size: int = 1 << 20,
               max_instructions: int = 50_000_000,
               obs: EventBus | None = None) -> RunResult:
    """Convenience: build a fresh processor and run one kernel."""
    processor = Processor(config, memory=memory, memory_size=memory_size,
                          obs=obs)
    return processor.run(program, args=args,
                         max_instructions=max_instructions)
