"""The cycle-level processor model: architecture + implementation.

Wraps the architectural :class:`~repro.core.executor.Executor` with the
implementation-side timing of Sections 3 and 4:

* front end — 32-byte instruction chunks through the instruction
  cache into the instruction buffer; misses stall;
* load/store unit — every memory access goes through the data cache
  (non-aligned splits, write policies, byte validity), misses stall
  for the SDRAM round trip via the BIU;
* region prefetcher — observes demand loads, issues line fetches on
  idle bus cycles;
* MMIO — stores into the prefetch-region window configure the
  prefetcher (Section 2.3's ``PFn_*`` parameters).

Because the TriMedia pipeline stalls as a whole (no out-of-order
machinery), cycle accounting is simply ``instructions + stall cycles``
— the structure the paper itself uses when it reasons about CPI.

Execution is structured as a *session*: :meth:`Processor.begin` sets a
run up, :meth:`Processor.step_block` advances it by any number of
instructions, and :meth:`Processor.result` finalizes the statistics.
:meth:`Processor.run` is the one-shot composition of the three and
remains the API virtually every caller uses.  The split exists for the
resilience layer (:mod:`repro.resilience`): between blocks the machine
is at an instruction boundary, where :meth:`Processor.snapshot` /
:meth:`Processor.restore` can capture or roll back the *complete*
machine state — registers (including in-flight writes), both caches'
tags/validity/dirtiness, prefetch regions and queue, bus and SDRAM
occupancy, flat memory, and every statistics counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import LinkedProgram
from repro.core.config import ProcessorConfig, TM3270_CONFIG
from repro.core.executor import MMIO_BASE, MMIO_SIZE, Executor
from repro.core.pipeline import stage_spans
from repro.core.stats import RunStats
from repro.mem.bus import BusInterfaceUnit
from repro.mem.dcache import DataCache
from repro.mem.flatmem import FlatMemory
from repro.mem.icache import FETCH_CHUNK_BYTES, InstructionCache
from repro.mem.prefetch import RegionPrefetcher
from repro.obs.events import EventBus

#: Programs are laid out in a dedicated code region so instruction and
#: data addresses never alias in the caches.
CODE_BASE = 0x0080_0000

#: ``max_cycles=None`` sentinel: far beyond any simulated run.
_NO_WATCHDOG = 1 << 62


class WatchdogTimeout(RuntimeError):
    """A run exceeded its ``max_cycles`` budget (hang detector).

    Structured so the resilience layer's outcome classifier (and any
    other caller) can read the run's vital signs off the exception
    instead of parsing the message.
    """

    def __init__(self, program_name: str, config_name: str,
                 cycles: int, instructions: int, max_cycles: int) -> None:
        super().__init__(
            f"{program_name}: watchdog fired at cycle {cycles} "
            f"(limit {max_cycles}, {instructions} instructions "
            f"retired) on {config_name}")
        self.program_name = program_name
        self.config_name = config_name
        self.cycles = cycles
        self.instructions = instructions
        self.max_cycles = max_cycles


#: Execution-engine tiers, slowest to fastest.  All three are required
#: to be bit-identical in architectural state, statistics, and the
#: machine event stream (``tests/core/test_trace_differential.py``).
ENGINES = ("interp", "plan", "trace")


@dataclass
class RunResult:
    """Execution outcome: stats plus final architectural state."""

    stats: RunStats
    regfile: object
    memory: FlatMemory
    #: Trace-tier meta-statistics (``engine="trace"`` only) — about
    #: the simulator, never about the simulated machine.
    trace: object | None = None

    def reg(self, preg: int) -> int:
        """Final committed value of a physical register."""
        return self.regfile.peek(preg)


@dataclass
class MachineSnapshot:
    """Opaque capture of the complete machine state at an instruction
    boundary (produced by :meth:`Processor.snapshot`).

    Component payloads are whatever each component's
    ``snapshot_state()`` returns; only the matching ``restore_state()``
    should interpret them.
    """

    session: tuple
    executor: tuple
    memory: bytes
    dcache: tuple
    icache: tuple
    prefetch: tuple
    biu: tuple


class _RunSession:
    """Mutable loop state of one in-progress run (between blocks)."""

    __slots__ = (
        "program", "executor", "stats", "fast", "step", "engine",
        "trace_runtime",
        "chunk_first", "chunk_last", "budget", "max_instructions",
        "watchdog_limit", "max_cycles", "cycle", "last_chunk",
        "instructions", "ops_issued", "ops_executed", "jumps_taken",
        "icache_stall_cycles", "dcache_stall_cycles",
        "code_bytes_fetched", "mmio_accesses", "fu_counts", "halted",
    )


class Processor:
    """One processor instance (construct per run for clean stats)."""

    def __init__(self, config: ProcessorConfig = TM3270_CONFIG,
                 memory: FlatMemory | None = None,
                 memory_size: int = 1 << 20,
                 obs: EventBus | None = None) -> None:
        self.config = config
        self.memory = memory or FlatMemory(memory_size)
        self.biu = BusInterfaceUnit(config.freq_mhz, config.sdram)
        self.icache = InstructionCache(
            config.icache, self.biu, config.icache_mode)
        self.dcache = DataCache(
            config.dcache, self.biu, config.write_miss_policy)
        self.prefetcher = RegionPrefetcher(
            self.dcache, self.biu, enabled=config.prefetch_enabled)
        # One bus observes every component; None keeps all emission
        # sites on their zero-cost path.
        self.obs = obs
        self.icache.obs = obs
        self.dcache.obs = obs
        self.prefetcher.obs = obs
        self._session: _RunSession | None = None

    # -- MMIO ---------------------------------------------------------------

    def _mmio_store(self, address: int, value: int, nbytes: int) -> None:
        self.prefetcher.mmio_store(address - MMIO_BASE, value)

    def _mmio_load(self, address: int, nbytes: int) -> int:
        return self.prefetcher.mmio_load(address - MMIO_BASE)

    # -- execution ----------------------------------------------------------

    def begin(self, program: LinkedProgram,
              args: dict[int, int] | None = None,
              max_instructions: int = 50_000_000,
              warm_code: bool = True, fast: bool = True,
              max_cycles: int | None = None,
              engine: str | None = None,
              trace_config=None) -> None:
        """Set up a run without executing anything yet.

        See :meth:`run` for the parameter contract.  After ``begin``,
        drive the run with :meth:`step_block` and finish it with
        :meth:`result`.
        """
        if self._session is not None:
            raise RuntimeError("a run is already in progress")
        if engine is None:
            engine = "plan" if fast else "interp"
        elif engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        else:
            fast = engine != "interp"
        if program.target.name != self.config.target.name:
            raise ValueError(
                f"program compiled for {program.target.name!r} cannot run "
                f"on {self.config.target.name!r} "
                "(binary compatibility is not guaranteed across the "
                "TriMedia family — Section 2)")
        executor = Executor(
            program,
            self.memory,
            args=args,
            mmio_store=self._mmio_store,
            mmio_load=self._mmio_load,
            fast=fast,
        )
        if warm_code:
            line_bytes = self.config.icache.line_bytes
            for offset in range(0, max(program.nbytes, 1), line_bytes):
                self.icache.tags.install(CODE_BASE + offset)
                line = self.icache.tags.lookup(CODE_BASE + offset)
                line.valid_mask = (1 << line_bytes) - 1

        session = _RunSession()
        session.program = program
        session.executor = executor
        session.stats = RunStats(
            config_name=self.config.name,
            program_name=program.name,
            freq_mhz=self.config.freq_mhz,
        )
        session.fast = fast
        session.engine = engine
        if engine == "trace":
            from repro.core.trace import TraceRuntime
            session.trace_runtime = TraceRuntime(
                executor._plan, config=trace_config,
                strict=executor.regfile.strict, obs=self.obs)
        else:
            session.trace_runtime = None
        session.step = (executor._step_fast if fast
                        else executor._step_reference)
        if fast:
            session.chunk_first, session.chunk_last = \
                executor._plan.code_chunks(CODE_BASE)
        else:
            session.chunk_first = session.chunk_last = None
        session.budget = max_instructions
        session.max_instructions = max_instructions
        session.max_cycles = max_cycles
        session.watchdog_limit = (_NO_WATCHDOG if max_cycles is None
                                  else max_cycles)
        session.cycle = 0
        session.last_chunk = -1
        session.instructions = 0
        session.ops_issued = 0
        session.ops_executed = 0
        session.jumps_taken = 0
        session.icache_stall_cycles = 0
        session.dcache_stall_cycles = 0
        session.code_bytes_fetched = 0
        session.mmio_accesses = 0
        session.fu_counts = {}
        session.halted = False
        self._session = session

    def step_block(self, limit: int | None = None,
                   monitor=None) -> bool:
        """Execute up to ``limit`` instructions (all remaining when
        ``None``); returns True once the program has halted.

        ``monitor(info, cycle)`` — when given — is called after each
        retired instruction with the executor's :class:`StepInfo` and
        the cycle count *including* that instruction; returning a
        truthy value pauses the block (the caller regains control at an
        instruction boundary).  The fault-injection harness uses this
        as its detection hook.

        The loop body is the simulator's hot path: locals are loaded
        once per block and flushed back to the session afterwards, so a
        single whole-program block (what :meth:`run` issues) costs the
        same per instruction as the pre-session implementation.
        """
        session = self._session
        if session is None:
            raise RuntimeError("no active run; call begin() first")
        if session.halted:
            return True
        if session.engine == "trace":
            if monitor is None:
                return self._step_block_trace(limit)
            # A monitor needs per-instruction control; compiled
            # regions retire many instructions per call, so monitored
            # blocks run on the plan interpreter (bit-identical).
            session.trace_runtime.stats.monitor_blocks += 1

        program = session.program
        fast = session.fast
        step = session.step
        chunk_first = session.chunk_first
        chunk_last = session.chunk_last
        chunk_mask = ~(FETCH_CHUNK_BYTES - 1)
        mmio_end = MMIO_BASE + MMIO_SIZE
        icache_fetch = self.icache.fetch_chunk
        dcache_access = self.dcache.access
        prefetcher = self.prefetcher
        prefetch_queue = prefetcher._queue
        prefetch_tick = prefetcher.tick
        observe_load = prefetcher.observe_load
        obs = self.obs

        cycle = session.cycle
        last_chunk = session.last_chunk
        budget = session.budget
        watchdog_limit = session.watchdog_limit
        instructions = session.instructions
        ops_issued = session.ops_issued
        ops_executed = session.ops_executed
        jumps_taken = session.jumps_taken
        icache_stall_cycles = session.icache_stall_cycles
        dcache_stall_cycles = session.dcache_stall_cycles
        code_bytes_fetched = session.code_bytes_fetched
        mmio_accesses = session.mmio_accesses
        fu_counts = session.fu_counts
        remaining = limit if limit is not None else (1 << 62)
        halted = False

        try:
            while True:
                info = step()
                if info is None:
                    halted = True
                    break
                budget -= 1
                if budget < 0:
                    raise RuntimeError(
                        f"{program.name}: exceeded "
                        f"{session.max_instructions} "
                        f"instructions on {self.config.name}")
                stall = 0

                # Front end: fetch any newly-consumed 32-byte chunks.
                # The plan pre-computes each instruction's chunk range,
                # so the common case — still inside the chunk fetched
                # last step — is two list indexings and two
                # comparisons.
                if fast:
                    first_chunk = chunk_first[info.index]
                    last_needed = chunk_last[info.index]
                else:
                    first_chunk = (CODE_BASE + info.address) & chunk_mask
                    last_needed = (CODE_BASE + info.address
                                   + max(info.nbytes - 1, 0)) & chunk_mask
                if first_chunk != last_chunk or last_needed != last_chunk:
                    chunk = first_chunk
                    while chunk <= last_needed:
                        if chunk != last_chunk:
                            stall += icache_fetch(chunk, cycle + stall)
                            code_bytes_fetched += FETCH_CHUNK_BYTES
                            last_chunk = chunk
                        chunk += FETCH_CHUNK_BYTES
                    icache_stall_cycles += stall
                fetch_stall = stall

                # Load/store unit.
                if info.mem_accesses:
                    for access in info.mem_accesses:
                        address = access.address
                        if MMIO_BASE <= address < mmio_end:
                            mmio_accesses += 1
                            continue
                        mem_stall = dcache_access(
                            access.is_load, address, access.nbytes,
                            cycle + stall)
                        stall += mem_stall
                        dcache_stall_cycles += mem_stall
                        if access.is_load:
                            observe_load(address, cycle + stall)
                if prefetch_queue:
                    prefetch_tick(cycle + stall)

                if obs:
                    obs.instruction(cycle, 1 + stall,
                                    index=instructions,
                                    issued_ops=info.issued_ops,
                                    executed_ops=info.executed_ops)
                    obs.stall(cycle, "icache", fetch_stall)
                    obs.stall(cycle + fetch_stall, "dcache",
                              stall - fetch_stall)
                    if obs.stage_detail:
                        for stage, start, dur in stage_spans(
                                cycle, stall=stall):
                            obs.stage(start, stage, dur,
                                      instr=instructions)

                cycle += 1 + stall
                instructions += 1
                ops_issued += info.issued_ops
                ops_executed += info.executed_ops
                if info.jump_taken:
                    jumps_taken += 1
                if not fast:
                    for fu, count in info.fu_counts.items():
                        fu_counts[fu] = fu_counts.get(fu, 0) + count

                if cycle > watchdog_limit:
                    raise WatchdogTimeout(
                        program.name, self.config.name, cycle,
                        instructions, session.max_cycles)
                if monitor is not None and monitor(info, cycle):
                    break
                remaining -= 1
                if not remaining:
                    break
        finally:
            # Flush locals back even when a step raises (timing
            # violation, watchdog, memory fault, ...) so the session —
            # and any snapshot/rollback decision — sees a consistent
            # boundary state.
            session.cycle = cycle
            session.last_chunk = last_chunk
            session.budget = budget
            session.instructions = instructions
            session.ops_issued = ops_issued
            session.ops_executed = ops_executed
            session.jumps_taken = jumps_taken
            session.icache_stall_cycles = icache_stall_cycles
            session.dcache_stall_cycles = dcache_stall_cycles
            session.code_bytes_fetched = code_bytes_fetched
            session.mmio_accesses = mmio_accesses
            session.halted = halted
        return halted

    def _step_block_trace(self, limit: int | None = None) -> bool:
        """Trace-tier block loop (``engine="trace"``, no monitor).

        The interpreter leg is :meth:`step_block`'s fast path verbatim;
        at every instruction boundary with no jump in flight, a single
        ``dispatch.get(pc)`` probes for a compiled region.  A hit warms
        (and at threshold compiles) the region; once compiled, the
        region function retires its whole instruction window in one
        call and returns the counter deltas this loop folds back in.

        Deoptimization is structural: a region is *entered* only when
        the remaining block and instruction budgets cover it whole, so
        partial progress exists only on the exception path — and there
        the generated function spills its locals through
        ``runtime.spill`` before re-raising, putting the session at
        exactly the state the plan interpreter would have left
        (retired-step granularity; see trace.py's module docstring).
        """
        session = self._session
        program = session.program
        executor = session.executor
        runtime = session.trace_runtime
        runtime.ensure(executor._plan, session.cycle)
        plan = executor._plan
        plan_count = plan.count
        dispatch_get = runtime.dispatch.get
        warm = runtime.warm
        tstats = runtime.stats
        spill = runtime.spill
        step = executor._step_fast
        chunk_first, chunk_last = plan.code_chunks(CODE_BASE)
        mmio_end = MMIO_BASE + MMIO_SIZE
        icache_fetch = self.icache.fetch_chunk
        dcache_access = self.dcache.access
        prefetcher = self.prefetcher
        prefetch_queue = prefetcher._queue
        prefetch_tick = prefetcher.tick
        observe_load = prefetcher.observe_load
        obs = self.obs
        regfile = executor.regfile
        values = regfile._values
        pending = regfile._pending
        heap = regfile._due_heap
        commit_until = regfile.commit_until
        ctx = executor._ctx
        mem_load = executor.memory.load
        mem_store = executor.memory.store
        mmio_load = ctx._mmio_load
        mmio_store = ctx._mmio_store
        fu_totals = executor._fu_totals
        program_name = program.name
        config_name = self.config.name
        max_cycles = session.max_cycles

        cycle = session.cycle
        last_chunk = session.last_chunk
        budget = session.budget
        watchdog_limit = session.watchdog_limit
        instructions = session.instructions
        ops_issued = session.ops_issued
        ops_executed = session.ops_executed
        jumps_taken = session.jumps_taken
        icache_stall_cycles = session.icache_stall_cycles
        dcache_stall_cycles = session.dcache_stall_cycles
        code_bytes_fetched = session.code_bytes_fetched
        mmio_accesses = session.mmio_accesses
        remaining = limit if limit is not None else (1 << 62)
        halted = False

        try:
            while True:
                if executor._pending_jump is None:
                    rec = dispatch_get(executor.pc)
                    if rec is not None:
                        fn = rec.fn
                        if fn is None:
                            fn = warm(rec, cycle)
                        rlen = rec.length
                        if (fn is not None and remaining >= rlen
                                and budget >= rlen):
                            try:
                                ret = fn(
                                    values, pending, heap, commit_until,
                                    ctx, mem_load, mem_store, mmio_load,
                                    mmio_store, icache_fetch,
                                    dcache_access, observe_load,
                                    prefetch_queue, prefetch_tick, obs,
                                    fu_totals, executor.issue_count,
                                    cycle, last_chunk, instructions,
                                    watchdog_limit, program_name,
                                    config_name, max_cycles, spill)
                            except BaseException:
                                # Fold the spilled partial progress in,
                                # then let the shared finally flush it.
                                retired = spill[0]
                                cycle = spill[1]
                                icache_stall_cycles += spill[2]
                                dcache_stall_cycles += spill[3]
                                code_bytes_fetched += spill[4]
                                mmio_accesses += spill[5]
                                ops_executed += spill[6]
                                jumps_taken += spill[7]
                                regfile.reads += spill[8]
                                regfile.writes += spill[9]
                                regfile.guard_reads += spill[10]
                                instructions += retired
                                budget -= retired
                                ops_issued += rec.issued_prefix[retired]
                                executor.issue_count += retired
                                # Sequencing state the interpreter
                                # would show at this raise point.
                                executor.pc = spill[11]
                                executor._pending_jump = spill[12]
                                spill[0] = None
                                raise
                            tstats.enters += 1
                            tstats.compiled_instructions += rlen
                            rec.enters += 1
                            cycle = ret[1]
                            last_chunk = ret[2]
                            ops_executed += ret[3]
                            jumps_taken += ret[4]
                            icache_stall_cycles += ret[5]
                            dcache_stall_cycles += ret[6]
                            mmio_accesses += ret[7]
                            regfile.reads += ret[8]
                            regfile.writes += ret[9]
                            code_bytes_fetched += ret[10]
                            regfile.guard_reads += rec.static_guard_reads
                            ops_issued += rec.static_issued
                            instructions += rlen
                            budget -= rlen
                            executor.issue_count += rlen
                            next_pc = ret[0]
                            executor.pc = next_pc
                            if next_pc >= plan_count:
                                halted = True
                                break
                            remaining -= rlen
                            if not remaining:
                                break
                            continue
                        if fn is not None:
                            tstats.entry_blocked += 1

                # Interpreter leg — step_block's fast path, verbatim.
                info = step()
                if info is None:
                    halted = True
                    break
                budget -= 1
                if budget < 0:
                    raise RuntimeError(
                        f"{program.name}: exceeded "
                        f"{session.max_instructions} "
                        f"instructions on {self.config.name}")
                stall = 0

                first_chunk = chunk_first[info.index]
                last_needed = chunk_last[info.index]
                if first_chunk != last_chunk or last_needed != last_chunk:
                    chunk = first_chunk
                    while chunk <= last_needed:
                        if chunk != last_chunk:
                            stall += icache_fetch(chunk, cycle + stall)
                            code_bytes_fetched += FETCH_CHUNK_BYTES
                            last_chunk = chunk
                        chunk += FETCH_CHUNK_BYTES
                    icache_stall_cycles += stall
                fetch_stall = stall

                if info.mem_accesses:
                    for access in info.mem_accesses:
                        address = access.address
                        if MMIO_BASE <= address < mmio_end:
                            mmio_accesses += 1
                            continue
                        mem_stall = dcache_access(
                            access.is_load, address, access.nbytes,
                            cycle + stall)
                        stall += mem_stall
                        dcache_stall_cycles += mem_stall
                        if access.is_load:
                            observe_load(address, cycle + stall)
                if prefetch_queue:
                    prefetch_tick(cycle + stall)

                if obs:
                    obs.instruction(cycle, 1 + stall,
                                    index=instructions,
                                    issued_ops=info.issued_ops,
                                    executed_ops=info.executed_ops)
                    obs.stall(cycle, "icache", fetch_stall)
                    obs.stall(cycle + fetch_stall, "dcache",
                              stall - fetch_stall)
                    if obs.stage_detail:
                        for stage, start, dur in stage_spans(
                                cycle, stall=stall):
                            obs.stage(start, stage, dur,
                                      instr=instructions)

                cycle += 1 + stall
                instructions += 1
                ops_issued += info.issued_ops
                ops_executed += info.executed_ops
                if info.jump_taken:
                    jumps_taken += 1

                if cycle > watchdog_limit:
                    raise WatchdogTimeout(
                        program.name, self.config.name, cycle,
                        instructions, session.max_cycles)
                remaining -= 1
                if not remaining:
                    break
        finally:
            session.cycle = cycle
            session.last_chunk = last_chunk
            session.budget = budget
            session.instructions = instructions
            session.ops_issued = ops_issued
            session.ops_executed = ops_executed
            session.jumps_taken = jumps_taken
            session.icache_stall_cycles = icache_stall_cycles
            session.dcache_stall_cycles = dcache_stall_cycles
            session.code_bytes_fetched = code_bytes_fetched
            session.mmio_accesses = mmio_accesses
            session.halted = halted
        return halted

    def result(self) -> RunResult:
        """Finalize the active run: settle registers, flush counters
        into :class:`RunStats`, and clear the session."""
        session = self._session
        if session is None:
            raise RuntimeError("no active run; call begin() first")
        executor = session.executor
        fu_counts = (executor.fu_totals() if session.fast
                     else session.fu_counts)
        executor.regfile.settle()
        stats = session.stats
        stats.instructions = session.instructions
        stats.ops_issued = session.ops_issued
        stats.ops_executed = session.ops_executed
        stats.jumps_taken = session.jumps_taken
        stats.icache_stall_cycles = session.icache_stall_cycles
        stats.dcache_stall_cycles = session.dcache_stall_cycles
        stats.code_bytes_fetched = session.code_bytes_fetched
        stats.mmio_accesses = session.mmio_accesses
        stats.fu_counts = fu_counts
        stats.cycles = session.cycle
        stats.regfile_reads = executor.regfile.reads
        stats.regfile_writes = executor.regfile.writes
        stats.guard_reads = executor.regfile.guard_reads
        stats.dcache = self.dcache.stats
        stats.icache = self.icache.stats
        stats.biu = self.biu.stats
        stats.sdram = self.biu.sdram.stats
        stats.prefetch = self.prefetcher.stats
        runtime = session.trace_runtime
        if runtime is not None:
            runtime.finalize()
        self._session = None
        return RunResult(stats, executor.regfile, self.memory,
                         trace=runtime.stats if runtime else None)

    def run(self, program: LinkedProgram, args: dict[int, int] | None = None,
            max_instructions: int = 50_000_000,
            warm_code: bool = True, fast: bool = True,
            max_cycles: int | None = None,
            engine: str | None = None,
            trace_config=None) -> RunResult:
        """Execute ``program`` to completion and return the result.

        ``args`` maps physical registers to initial values (the kernel
        calling convention pins parameters to r10, r11, ...).  With
        ``warm_code`` the instruction cache is preloaded — kernel-style
        measurement, excluding cold-code effects; pass False to include
        them.

        ``fast`` selects the pre-decoded execution plan (the default);
        ``fast=False`` runs the dynamic reference interpreter.
        ``engine`` names the tier explicitly — ``"interp"`` (reference
        interpreter), ``"plan"`` (pre-decoded fast path), or
        ``"trace"`` (plan path plus compiled hot regions, see
        :mod:`repro.core.trace`) — and overrides ``fast`` when given.
        All tiers produce bit-identical results and statistics — the
        choice only trades simulation wall-clock.  ``trace_config``
        optionally tunes the trace tier's region detector/threshold.

        ``max_cycles`` arms a watchdog: the run raises
        :class:`WatchdogTimeout` as soon as the cycle count exceeds it
        (the resilience layer's hang detector; ``None`` disables it).
        """
        self.begin(program, args=args, max_instructions=max_instructions,
                   warm_code=warm_code, fast=fast, max_cycles=max_cycles,
                   engine=engine, trace_config=trace_config)
        self.step_block()
        return self.result()

    # -- checkpoint/restore --------------------------------------------------

    @property
    def session(self) -> _RunSession | None:
        """The in-progress run session, if any (resilience layer)."""
        return self._session

    def snapshot(self) -> MachineSnapshot:
        """Capture the complete machine state at the current
        instruction boundary.

        Legal only between :meth:`step_block` calls of an active run
        (that is the only time the hot loop's state is flushed into the
        session).  The capture is deep: restoring it any number of
        times replays from the same point.
        """
        session = self._session
        if session is None:
            raise RuntimeError(
                "snapshot() requires an active run (begin(); snapshots "
                "are taken between step_block() calls)")
        return MachineSnapshot(
            session=(session.cycle, session.last_chunk, session.budget,
                     session.instructions, session.ops_issued,
                     session.ops_executed, session.jumps_taken,
                     session.icache_stall_cycles,
                     session.dcache_stall_cycles,
                     session.code_bytes_fetched, session.mmio_accesses,
                     dict(session.fu_counts), session.halted),
            executor=session.executor.snapshot_state(),
            memory=self.memory.snapshot_state(),
            dcache=self.dcache.snapshot_state(),
            icache=self.icache.snapshot_state(),
            prefetch=self.prefetcher.snapshot_state(),
            biu=self.biu.snapshot_state(),
        )

    def restore(self, snap: MachineSnapshot) -> None:
        """Roll the active run back to a :meth:`snapshot` capture.

        Everything observable — architectural state, cache contents,
        statistics, and the subsequent event stream — continues exactly
        as it did the first time the machine left this state.
        """
        session = self._session
        if session is None:
            raise RuntimeError("restore() requires an active run")
        (session.cycle, session.last_chunk, session.budget,
         session.instructions, session.ops_issued, session.ops_executed,
         session.jumps_taken, session.icache_stall_cycles,
         session.dcache_stall_cycles, session.code_bytes_fetched,
         session.mmio_accesses, fu_counts, session.halted) = snap.session
        session.fu_counts = dict(fu_counts)
        session.executor.restore_state(snap.executor)
        self.memory.restore_state(snap.memory)
        self.dcache.restore_state(snap.dcache)
        self.icache.restore_state(snap.icache)
        self.prefetcher.restore_state(snap.prefetch)
        self.biu.restore_state(snap.biu)
        if session.trace_runtime is not None:
            # Compiled code may have been specialized against state the
            # rollback just discarded (e.g. a plan swapped in by fault
            # injection after the snapshot); heat restarts from zero
            # and re-warming hits the plan-level code cache.
            session.trace_runtime.invalidate("restore", session.cycle)
            session.trace_runtime.ensure(session.executor._plan,
                                         session.cycle)


def run_kernel(program: LinkedProgram,
               config: ProcessorConfig = TM3270_CONFIG,
               args: dict[int, int] | None = None,
               memory: FlatMemory | None = None,
               memory_size: int = 1 << 20,
               max_instructions: int = 50_000_000,
               obs: EventBus | None = None,
               fast: bool = True,
               max_cycles: int | None = None,
               engine: str | None = None,
               trace_config=None) -> RunResult:
    """Convenience: build a fresh processor and run one kernel."""
    processor = Processor(config, memory=memory, memory_size=memory_size,
                          obs=obs)
    return processor.run(program, args=args,
                         max_instructions=max_instructions, fast=fast,
                         max_cycles=max_cycles, engine=engine,
                         trace_config=trace_config)
