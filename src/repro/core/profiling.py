"""Execution introspection: slot utilization, FU occupancy, stalls.

The paper reasons about performance in terms of OPI (how full the five
issue slots are) and CPI (how many cycles each instruction really
costs).  This module computes those views from a compiled program and
a run — the profiler a TriMedia performance engineer would reach for:

* static **slot-occupancy histogram** — how many operations each
  instruction of the binary issues, and which slots they occupy;
* static **functional-unit pressure** — operations per FU class,
  against the number of available instances;
* dynamic **utilization report** — issued vs executed operations,
  guard-nullification rate, stall decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.link import LinkedProgram
from repro.core.stats import RunStats
from repro.isa.operations import FU, FU_SLOTS


@dataclass
class SlotProfile:
    """Static issue-slot statistics of one linked program."""

    instructions: int = 0
    #: histogram[k] = number of instructions issuing k operations.
    width_histogram: dict = field(default_factory=dict)
    #: per-slot occupancy counts (slot -> instructions using it).
    slot_counts: dict = field(default_factory=dict)
    #: per-FU-class operation counts.
    fu_counts: dict = field(default_factory=dict)

    @property
    def mean_width(self) -> float:
        if not self.instructions:
            return 0.0
        total = sum(width * count
                    for width, count in self.width_histogram.items())
        return total / self.instructions

    def slot_utilization(self, slot: int) -> float:
        """Fraction of instructions with an operation in ``slot``."""
        if not self.instructions:
            return 0.0
        return self.slot_counts.get(slot, 0) / self.instructions

    def fu_pressure(self, fu: FU) -> float:
        """Mean per-instruction demand per instance of FU class."""
        if not self.instructions:
            return 0.0
        instances = len(FU_SLOTS[fu])
        return self.fu_counts.get(fu, 0) / self.instructions / instances


def profile_program(program: LinkedProgram) -> SlotProfile:
    """Static slot/FU profile of a linked program."""
    profile = SlotProfile(instructions=len(program.instructions))
    for instr in program.instructions:
        width = len(instr.ops)
        profile.width_histogram[width] = \
            profile.width_histogram.get(width, 0) + 1
        for op in instr.ops:
            spec = op.spec
            slots = (op.slot, op.slot + 1) if spec.two_slot else (op.slot,)
            for slot in slots:
                profile.slot_counts[slot] = \
                    profile.slot_counts.get(slot, 0) + 1
            profile.fu_counts[spec.fu] = \
                profile.fu_counts.get(spec.fu, 0) + 1
    return profile


@dataclass(frozen=True)
class UtilizationReport:
    """Dynamic execution summary derived from run statistics."""

    instructions: int
    cycles: int
    opi: float
    cpi: float
    issue_rate: float          # issued ops per cycle
    nullification_rate: float  # guard-false fraction of issued ops
    stall_fraction: float
    dcache_stall_share: float  # of all stall cycles
    icache_stall_share: float


def utilization(stats: RunStats) -> UtilizationReport:
    """Compute the dynamic utilization report for one run."""
    issued = max(stats.ops_issued, 1)
    stalls = max(stats.stall_cycles, 1)
    return UtilizationReport(
        instructions=stats.instructions,
        cycles=stats.cycles,
        opi=stats.opi,
        cpi=stats.cpi,
        issue_rate=stats.ops_issued / max(stats.cycles, 1),
        nullification_rate=1.0 - stats.ops_executed / issued,
        stall_fraction=stats.stall_fraction,
        dcache_stall_share=(stats.dcache_stall_cycles / stalls
                            if stats.stall_cycles else 0.0),
        icache_stall_share=(stats.icache_stall_cycles / stalls
                            if stats.stall_cycles else 0.0),
    )


def register_utilization(stats: RunStats, registry) -> None:
    """Export the dynamic utilization view as gauges on ``registry``.

    Complements :func:`repro.obs.metrics.from_run_stats` (raw
    counters) with the derived pipeline-occupancy ratios this module
    computes, under one metric family.
    """
    report = utilization(stats)
    gauge = registry.gauge(
        "pipeline_utilization",
        "derived pipeline occupancy ratios", ("metric",))
    gauge.labels("issue_rate").set(report.issue_rate)
    gauge.labels("nullification_rate").set(report.nullification_rate)
    gauge.labels("dcache_stall_share").set(report.dcache_stall_share)
    gauge.labels("icache_stall_share").set(report.icache_stall_share)


def format_profile(program: LinkedProgram,
                   stats: RunStats | None = None) -> str:
    """Human-readable profile report."""
    profile = profile_program(program)
    lines = [f"profile of {program.name} ({program.target.name}):"]
    lines.append(f"  instructions        : {profile.instructions}")
    lines.append(f"  mean issue width    : {profile.mean_width:.2f} "
                 "ops/instruction (static)")
    widths = " ".join(
        f"{width}:{profile.width_histogram.get(width, 0)}"
        for width in range(6))
    lines.append(f"  width histogram     : {widths}")
    slots = " ".join(
        f"s{slot}:{100 * profile.slot_utilization(slot):.0f}%"
        for slot in range(1, 6))
    lines.append(f"  slot utilization    : {slots}")
    busiest = sorted(profile.fu_counts, key=profile.fu_pressure,
                     reverse=True)[:3]
    pressure = " ".join(
        f"{fu.value}:{profile.fu_pressure(fu):.2f}" for fu in busiest)
    lines.append(f"  hottest FU classes  : {pressure} (demand/instance)")
    if stats is not None:
        report = utilization(stats)
        lines.append(f"  dynamic OPI / CPI   : {report.opi:.2f} / "
                     f"{report.cpi:.2f}")
        lines.append(f"  issue rate          : {report.issue_rate:.2f} "
                     "ops/cycle")
        lines.append(
            f"  guard nullification : "
            f"{100 * report.nullification_rate:.1f}% of issued ops")
        lines.append(
            f"  stall cycles        : "
            f"{100 * report.stall_fraction:.1f}% "
            f"(D$ {100 * report.dcache_stall_share:.0f}%, "
            f"I$ {100 * report.icache_stall_share:.0f}%)")
    return "\n".join(lines)
