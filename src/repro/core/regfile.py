"""The unified register file with exposed-pipeline write timing.

128 32-bit registers (Table 1); r0 and r1 read as the architectural
constants 0 and 1.  Results are written back ``latency`` issue-slots
after their operation issues — TriMedia's exposed pipeline: reads in
between return the *old* value, and it is the compiler's job to respect
latencies.  The register file enforces this discipline: in strict mode
a read that overlaps an in-flight write issued on an *earlier* cycle
raises :class:`TimingViolation` (a scheduler bug detector), while a
same-cycle redefine — which the scheduler's zero-weight anti-dependence
edges legitimately produce — is permitted and returns the old value.

Time here is measured in *issued instructions*, not wall cycles:
when the pipeline stalls, in-flight operations stall with it
(Section 3), so latencies elapse in issue slots.

Pending writes are kept in two coordinated structures:

* per-register due-ordered queues (``_pending``) — what strict-mode
  reads scan, and what decides which value lands last;
* one global min-heap of ``(due, reg)`` pairs (``_due_heap``) — so
  :meth:`commit_until`, which runs once per issued instruction, is a
  single heap-top comparison on the step where nothing lands, and on
  a landing step touches only the registers that actually land,
  instead of walking every in-flight register.

**Trace-tier contract** (``core/trace.py``, DESIGN.md §13): compiled
regions bypass :meth:`schedule_write` for writes whose landing step is
statically known, committing them as direct ``_values`` assignments.
The protocol they must uphold at every region boundary — normal exit,
deopt, or exception spill — is that ``_pending`` and ``_due_heap``
contain exactly the entries the interpreter would have: any write
still in flight (``due > now``) is *materialized* here as its
``(due, issue_time, value)`` entry plus a ``(due, reg)`` heap push.
Queue contents must match entry-for-entry (queues are insort-sorted,
so equal multisets imply equal lists); the heap's *array layout* may
differ between engines — heap order is not observable: commits drain
every entry due ``<= now`` and the per-register queue decides the
landing value — so cross-engine comparisons use :meth:`in_flight`'s
sorted view (``eval/lockstep.py``).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush

from repro.isa.simd import MASK32

NUM_REGS = 128


class TimingViolation(Exception):
    """A register was read before its pending write completed."""


class RegisterFile:
    """128-entry register file with delayed write-back."""

    def __init__(self, strict: bool = True) -> None:
        self._values = [0] * NUM_REGS
        self._values[1] = 1
        #: reg -> list of (due, issue_time, value), due-ordered.
        self._pending: dict[int, list[tuple[int, int, int]]] = {}
        #: Min-heap of (due, reg), one entry per in-flight write.
        self._due_heap: list[tuple[int, int]] = []
        self.strict = strict
        self.reads = 0
        self.writes = 0
        self.guard_reads = 0

    def read(self, reg: int, now: int) -> int:
        """Read ``reg`` at issue time ``now``."""
        self.reads += 1
        if self.strict:
            for due, issued, _value in self._pending.get(reg, ()):
                if issued < now < due:
                    raise TimingViolation(
                        f"r{reg} read at t={now} while write issued at "
                        f"t={issued} lands at t={due}")
        return self._values[reg]

    def read_guard(self, reg: int, now: int) -> int:
        """Read the LSB of ``reg`` as a guard bit."""
        self.guard_reads += 1
        if self.strict:
            for due, issued, _value in self._pending.get(reg, ()):
                if issued < now < due:
                    raise TimingViolation(
                        f"guard r{reg} read at t={now} while write issued "
                        f"at t={issued} lands at t={due}")
        return self._values[reg] & 1

    def schedule_write(self, reg: int, value: int, now: int,
                       latency: int) -> None:
        """Schedule ``reg = value`` to land ``latency`` slots after ``now``."""
        if reg in (0, 1):
            raise ValueError(f"write to constant register r{reg}")
        if not 0 <= reg < NUM_REGS:
            raise ValueError(f"register r{reg} out of range")
        self.writes += 1
        due = now + latency
        entry = (due, now, value & MASK32)
        queue = self._pending.get(reg)
        if queue is None:
            self._pending[reg] = [entry]
        else:
            insort(queue, entry)
        heappush(self._due_heap, (due, reg))

    def commit_until(self, now: int) -> None:
        """Apply every pending write due at or before ``now``.

        When several writes to one register land together, the last
        due wins (due-ordered queue).  A register may appear in the
        heap several times; pops after its queue drained are no-ops.
        """
        heap = self._due_heap
        pending = self._pending
        values = self._values
        while heap and heap[0][0] <= now:
            _due, reg = heappop(heap)
            queue = pending.get(reg)
            if queue is None:
                continue
            index = 0
            end = len(queue)
            while index < end and queue[index][0] <= now:
                index += 1
            if index:
                values[reg] = queue[index - 1][2]
                if index == end:
                    del pending[reg]
                else:
                    del queue[:index]

    def settle(self) -> None:
        """Apply all pending writes (program end)."""
        self.commit_until(1 << 62)

    def snapshot_state(self) -> tuple:
        """Capture the full register-file state (resilience layer).

        Pending-write queues and the due-heap are copied, so the
        snapshot stays valid while execution continues.
        """
        return (self._values[:],
                {reg: queue[:] for reg, queue in self._pending.items()},
                self._due_heap[:],
                self.reads, self.writes, self.guard_reads)

    def restore_state(self, state: tuple) -> None:
        """Restore a :meth:`snapshot_state` capture (copies again, so
        one snapshot can be restored repeatedly)."""
        values, pending, heap, reads, writes, guard_reads = state
        self._values[:] = values
        self._pending = {reg: queue[:] for reg, queue in pending.items()}
        self._due_heap = heap[:]
        self.reads = reads
        self.writes = writes
        self.guard_reads = guard_reads

    def in_flight(self) -> tuple[list, list]:
        """Canonical engine-comparable view of the pending-write state:
        ``(sorted (reg, queue-tuple) pairs, sorted due-heap multiset)``.
        See the module docstring for why the raw heap array is not
        directly comparable across execution engines."""
        return (sorted((reg, tuple(queue))
                       for reg, queue in self._pending.items() if queue),
                sorted(self._due_heap))

    def peek(self, reg: int) -> int:
        """Read the committed value without timing checks or stats."""
        return self._values[reg]

    def poke(self, reg: int, value: int) -> None:
        """Set a register directly (argument passing at program entry)."""
        if reg in (0, 1):
            raise ValueError(f"r{reg} is an architectural constant")
        self._values[reg] = value & MASK32
