"""Run statistics: cycles, stalls, OPI/CPI, activity counters.

The paper reports performance as VLIW instruction counts (Table 3),
relative execution times across configurations (Figure 7), and power
as a function of OPI (operations per VLIW instruction) and CPI (cycles
per VLIW instruction) (Section 5.2).  :class:`RunStats` carries all the
raw counters needed to derive those plus the per-module activities the
power model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operations import FU


@dataclass
class RunStats:
    """Counters for one program execution on one configuration."""

    config_name: str = ""
    program_name: str = ""
    freq_mhz: float = 0.0

    instructions: int = 0
    cycles: int = 0
    ops_issued: int = 0
    ops_executed: int = 0
    jumps_taken: int = 0

    dcache_stall_cycles: int = 0
    icache_stall_cycles: int = 0

    fu_counts: dict = field(default_factory=dict)
    regfile_reads: int = 0
    regfile_writes: int = 0
    guard_reads: int = 0

    code_bytes_fetched: int = 0
    mmio_accesses: int = 0

    # Component stats objects (attached after the run).
    dcache: object = None
    icache: object = None
    biu: object = None
    sdram: object = None
    prefetch: object = None

    # -- derived metrics -------------------------------------------------------

    @property
    def stall_cycles(self) -> int:
        return self.dcache_stall_cycles + self.icache_stall_cycles

    @property
    def cpi(self) -> float:
        """Cycles per VLIW instruction (>= 1.0; 1.0 = no stalls)."""
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    @property
    def opi(self) -> float:
        """Effective (guard-true) operations per VLIW instruction."""
        if not self.instructions:
            return 0.0
        return self.ops_executed / self.instructions

    @property
    def seconds(self) -> float:
        """Wall-clock execution time at the configured frequency."""
        if not self.freq_mhz:
            return 0.0
        return self.cycles / (self.freq_mhz * 1e6)

    @property
    def stall_fraction(self) -> float:
        if not self.cycles:
            return 0.0
        return self.stall_cycles / self.cycles

    def fu_count(self, fu: FU) -> int:
        return self.fu_counts.get(fu, 0)

    def metrics(self, registry=None):
        """This run's counters as a unified
        :class:`~repro.obs.metrics.MetricsRegistry` (stable names,
        labelled series — the export contract of the obs layer)."""
        from repro.obs.metrics import from_run_stats

        return from_run_stats(self, registry)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"{self.program_name} on {self.config_name}: "
            f"{self.instructions} VLIW instructions, {self.cycles} cycles "
            f"(CPI {self.cpi:.2f}, OPI {self.opi:.2f}), "
            f"{self.stall_cycles} stall cycles "
            f"({100 * self.stall_fraction:.1f}%), "
            f"{1e6 * self.seconds:.1f} us at {self.freq_mhz:.0f} MHz")
