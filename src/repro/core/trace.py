"""Trace compilation: hot plan regions specialized into Python functions.

The :class:`~repro.core.plan.ExecutionPlan` fast path still pays one
Python loop iteration — operand tuple building, semantic dispatch,
``StepInfo`` bookkeeping, processor-side timing — per VLIW instruction.
This module adds the third execution tier (``engine="trace"``): a
counter-triggered region detector finds hot straight-line runs and
loop bodies in the plan, a codegen pass emits one specialized Python
function per region via source generation + :func:`compile`, and the
processor's trace dispatcher enters those functions from the fast
path, deoptimizing back to the plan interpreter at region exits.

The codegen contract (enforced by the three-way lockstep suite in
``tests/core/test_trace_differential.py``) is *bit identity* with the
reference interpreter: every architectural effect, every statistics
counter, every obs event, and every exception — text included — must
be indistinguishable.  The generated code therefore does not model a
simplified machine; it is the plan interpreter and the processor's
hot loop *unrolled and constant-folded* for one region:

* per-operation plan tuples become straight-line statements with
  register indices, immediates, latencies, and FU indices baked in as
  literals; the registry semantic of every foldable operation is
  inlined as a masked integer expression (anything else calls the
  bound semantic exactly as the plan path would);
* the dynamic pending-write machinery (``regfile._pending`` /
  ``_due_heap``) is preserved verbatim — any entry machine state is
  correct, at the cost of the push/commit protocol per write;
* front-end fetches are constant-folded: after instruction ``i`` of a
  sequential run the last-fetched chunk is provably
  ``chunk_last[i]``, so only the first instruction of a region needs
  the dynamic chunk walk and every later instruction fetches a
  statically known (usually empty) chunk list;
* strict-timing hazard scans, watchdog checks, and obs emission are
  generated with the exact expressions, orderings, and f-string
  messages of the interpreter, so exceptions raise at the same
  operation with the same text.

Regions end at jumps.  A region may *contain* exactly one terminating
``jmpi``/``jmpt``/``jmpf`` with a resolved immediate target when its
full delay-slot window fits inside the region; the jump's outcome is
then a compile-time constant or a single flag (guards are the only
dynamic input — ``ctx.guard_value`` is invariantly 1 in both
interpreters, so an *executed* ``jmpi``/``jmpt`` is always taken and
an executed ``jmpf`` never is).  Loop bodies ending in a backward
jump therefore compile to one function per iteration with the
next-pc pre-resolved.

Deoptimization is structural, not exceptional: compiled code runs
only between instruction boundaries, entered only when no jump is in
flight and the remaining instruction/step budget covers the whole
region, so snapshot/restore and the fault-injection monitor always
observe interpreter-equivalent boundary state.  Traces are invalidated
on :meth:`Processor.restore` and on instruction-buffer mutation (the
resilience layer swaps ``executor._plan`` wholesale, which
:meth:`TraceRuntime.ensure` detects by identity).  If a region raises
mid-flight (timing violation, memory fault, watchdog), the generated
``except`` block spills the partial progress counters so the
dispatcher leaves the session exactly where the plan interpreter
would have.

Compiled functions are pure functions of ``(plan, strict)`` — all
run-varying state arrives through parameters — and are cached on the
plan (:attr:`ExecutionPlan._trace_code`), so repeated runs of one
program (the perf harness, conformance sweeps) compile each region
once per process.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from heapq import heappush

from repro.core.pipeline import stage_spans
from repro.core.plan import (
    OP_DSTS,
    OP_FU,
    OP_GUARD,
    OP_IMM,
    OP_IS_JUMP,
    OP_IS_MEM,
    OP_JUMP_INDEX,
    OP_LATENCY,
    OP_NAME,
    OP_SEMANTIC,
    OP_SLOT,
    OP_SRCS,
)
from repro.core.regfile import TimingViolation
from repro.mem.icache import FETCH_CHUNK_BYTES

#: Masks and the MMIO window, baked into generated source as literals.
_M32 = "4294967295"
_MMIO_LO = 0x1000_0000
_MMIO_HI = 0x1000_1000

#: The only jump mnemonics a region may terminate with: their taken
#: target is the immediate, so the pre-resolved ``OP_JUMP_INDEX`` is
#: the complete dynamic outcome (modulo the guard bit).
_JUMP_NAMES = ("jmpi", "jmpt", "jmpf")


@dataclass
class TraceConfig:
    """Tuning knobs of the trace tier (defaults favour loop kernels)."""

    #: Head entries observed before a region is compiled.
    threshold: int = 8
    #: Regions shorter than this are not worth the dispatch overhead.
    min_length: int = 2
    #: Unrolled-source cap: one VLIW instruction generates roughly
    #: 10-60 source lines, so this bounds compile time and code size.
    max_length: int = 128


@dataclass
class TraceStats:
    """Trace-tier telemetry (simulator meta-state, never RunStats)."""

    detected: int = 0
    compiled: int = 0
    activations: int = 0
    enters: int = 0
    compiled_instructions: int = 0
    entry_blocked: int = 0
    monitor_blocks: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        return {
            "detected": self.detected,
            "compiled": self.compiled,
            "activations": self.activations,
            "enters": self.enters,
            "compiled_instructions": self.compiled_instructions,
            "entry_blocked": self.entry_blocked,
            "monitor_blocks": self.monitor_blocks,
            "invalidations": self.invalidations,
        }


@dataclass(frozen=True)
class RegionSpec:
    """One detected region: ``length`` instructions from ``head``.

    ``jump_pos`` (absolute instruction index) and ``jump_op`` (the
    plan op tuple) identify the optional terminating jump; its delay
    window is always the region's tail.
    """

    head: int
    length: int
    jump_pos: int | None
    jump_op: tuple | None


def _classify_jumps(plan) -> list:
    """Per-instruction jump classification.

    ``None`` — no jump ops; a plan op tuple — exactly one supported
    terminator-candidate jump; ``False`` — jump(s) a region cannot
    contain (multiple jumps, register-target jumps, or unresolved
    immediates).
    """
    table = []
    for ops in plan.ops:
        jumps = [op for op in ops if op[OP_IS_JUMP]]
        if not jumps:
            table.append(None)
        elif (len(jumps) == 1 and jumps[0][OP_NAME] in _JUMP_NAMES
                and jumps[0][OP_IMM] is not None
                and jumps[0][OP_JUMP_INDEX] is not None):
            table.append(jumps[0])
        else:
            table.append(False)
    return table


def detect_regions(plan, config: TraceConfig) -> dict[int, RegionSpec]:
    """Find every compilable region of ``plan``.

    Leaders — the only places sequential control flow can (re)enter —
    are instruction 0, every resolved jump target, and the first
    instruction after every jump's delay window.  From each leader a
    region extends over straight-line instructions and may close over
    one supported jump plus its complete delay window; it ends before
    any other jump, at the program end, or at ``max_length``.
    Overlapping regions are fine: each one only assumes sequential
    execution from its own head, which region entry guarantees.
    """
    delay = plan.jump_delay_slots
    count = plan.count
    jump_at = _classify_jumps(plan)

    leaders = {0}
    for index in range(count):
        entry = jump_at[index]
        if entry is None:
            continue
        leaders.add(min(index + delay + 1, count))
        if entry is not False:
            leaders.add(entry[OP_JUMP_INDEX])

    regions: dict[int, RegionSpec] = {}
    for head in sorted(leaders):
        if head >= count:
            continue
        end = min(count, head + config.max_length)
        index = head
        jump_pos = jump_op = None
        while index < end:
            entry = jump_at[index]
            if entry is None:
                index += 1
                continue
            window_end = index + delay + 1
            if (entry is not False and window_end <= count
                    and window_end <= head + config.max_length
                    and all(jump_at[k] is None
                            for k in range(index + 1, window_end))):
                jump_pos, jump_op = index, entry
                index = window_end
            break
        length = index - head
        if length >= config.min_length:
            regions[head] = RegionSpec(head, length, jump_pos, jump_op)
    return regions


class Region:
    """Dispatch-table record: heat counter, compiled entry point, and
    the static per-region counter totals the dispatcher flushes."""

    __slots__ = ("spec", "head", "length", "heat", "fn", "source",
                 "static_issued", "static_guard_reads", "issued_prefix")

    def __init__(self, spec: RegionSpec, plan) -> None:
        self.spec = spec
        self.head = spec.head
        self.length = spec.length
        self.heat = 0
        self.fn = None
        self.source = None
        prefix = [0]
        for index in range(spec.head, spec.head + spec.length):
            prefix.append(prefix[-1] + plan.nops[index])
        #: ``issued_prefix[k]`` = ops issued by the first ``k``
        #: instructions (exception-spill accounting).
        self.issued_prefix = tuple(prefix)
        # Per step the interpreter issues len(ops) ops and charges
        # len(ops) guard reads: the two totals coincide.
        self.static_issued = prefix[-1]
        self.static_guard_reads = prefix[-1]


# ---------------------------------------------------------------------------
# Inline semantics.  Each template reproduces one registry semantic as a
# masked integer expression over committed register values; anything not
# listed (DSP lanes, floats, custom ops, rotates) calls the bound
# semantic exactly as ``_step_fast`` would.  The template-vs-registry
# differential test in tests/core/test_trace_units.py pins every entry.
# ---------------------------------------------------------------------------

_SIGNED_CMP = {"igtr": ">", "igeq": ">=", "iles": "<", "ileq": "<="}
_RAW_CMP = {"ieql": "==", "ineq": "!=", "ugtr": ">", "ugeq": ">="}

#: name -> (nbytes, shaping, nsrcs); shaping resigns the loaded value.
_LOADS = {
    "ld32": (4, None, 2),
    "ld32d": (4, None, 1),
    "uld16d": (2, None, 1),
    "ild16d": (2, "s16", 1),
    "uld8d": (1, None, 1),
    "ild8d": (1, "s8", 1),
}

#: name -> (nbytes, value-mask suffix applied to the stored register).
_STORES = {"st32d": (4, ""), "st16d": (2, " & 65535"), "st8d": (1, " & 255")}

_ASR_FILL = "18446744069414584320"  # 0xFFFFFFFF00000000: sign-fill bits


def _pure_template(name, srcs, imm):
    """``(prelude_lines, masked_expr)`` for an inlinable pure op, or
    ``None``.  ``srcs`` are expression strings over committed register
    values (already 32-bit masked, the register-file invariant)."""
    a = srcs[0] if len(srcs) > 0 else None
    b = srcs[1] if len(srcs) > 1 else None
    if name == "iadd":
        return [], f"({a} + {b}) & {_M32}"
    if name == "isub":
        return [], f"({a} - {b}) & {_M32}"
    if name in ("imin", "imax"):
        # Signed compare via sign-bit bias: s32(x) <= s32(y) iff
        # (x ^ 0x80000000) <= (y ^ 0x80000000) on the masked words.
        relation = "<=" if name == "imin" else ">="
        return ([f"_a = {a}", f"_b = {b}"],
                f"(_a if (_a ^ 2147483648) {relation} "
                "(_b ^ 2147483648) else _b)")
    if name == "bitand":
        return [], f"({a} & {b})"
    if name == "bitor":
        return [], f"({a} | {b})"
    if name == "bitxor":
        return [], f"({a} ^ {b})"
    if name == "bitandinv":
        return [], f"({a} & ({b} ^ {_M32}))"
    if name == "bitinv":
        return [], f"({a} ^ {_M32})"
    if name == "ineg":
        # u32(-s32(x)) == (-x) mod 2**32 because s32(x) == x (mod 2**32).
        return [], f"(-{a}) & {_M32}"
    if name == "iabs":
        # clip_s32(abs(s32(x))): only x == 0x80000000 clips.
        return ([f"_a = {a}"],
                "(_a if _a < 2147483648 else (2147483647 "
                f"if _a == 2147483648 else (-_a) & {_M32}))")
    if name == "mov":
        return [], a
    if name == "sex16":
        return [], f"((({a} & 65535) ^ 32768) - 32768) & {_M32}"
    if name == "zex16":
        return [], f"({a} & 65535)"
    if name == "sex8":
        return [], f"((({a} & 255) ^ 128) - 128) & {_M32}"
    if name == "zex8":
        return [], f"({a} & 255)"
    if name == "iaddi" and imm is not None:
        return [], f"({a} + {imm}) & {_M32}"
    if name == "uimm" and imm is not None:
        return [], str(imm & 0xFFFF)
    if name == "himm" and imm is not None:
        return [], f"({a} | {(imm & 0xFFFF) << 16})"
    if name in _SIGNED_CMP:
        relation = _SIGNED_CMP[name]
        return [], (f"(1 if ({a} ^ 2147483648) {relation} "
                    f"({b} ^ 2147483648) else 0)")
    if name in _RAW_CMP:
        return [], f"(1 if {a} {_RAW_CMP[name]} {b} else 0)"
    if name == "igtri" and imm is not None and -(1 << 31) <= imm < (1 << 31):
        return [], f"(1 if ({a} ^ 2147483648) > {imm + (1 << 31)} else 0)"
    if (name in ("ieqli", "ineqi") and imm is not None
            and -(1 << 31) <= imm < (1 << 31)):
        relation = "==" if name == "ieqli" else "!="
        return [], f"(1 if {a} {relation} {imm & 0xFFFFFFFF} else 0)"
    if name == "asl":
        return [f"_s = {b} & 31"], f"({a} << _s) & {_M32}"
    if name == "asr":
        # Sign-filled arithmetic shift: widen negatives with high ones
        # so a plain Python >> produces the filled bits, then re-mask.
        return ([f"_a = {a}", f"_s = {b} & 31"],
                f"(((_a | {_ASR_FILL}) >> _s) & {_M32} "
                "if _a & 2147483648 else _a >> _s)")
    if name == "lsr":
        return [], f"({a} >> ({b} & 31))"
    if name == "asli" and imm is not None:
        shift = imm & 31
        return [], (f"({a} << {shift}) & {_M32}" if shift else a)
    if name == "asri" and imm is not None:
        shift = imm & 31
        if shift == 0:
            return [], a
        return ([f"_a = {a}"],
                f"(((_a | {_ASR_FILL}) >> {shift}) & {_M32} "
                f"if _a & 2147483648 else _a >> {shift})")
    if name == "lsri" and imm is not None:
        shift = imm & 31
        return [], (f"({a} >> {shift})" if shift else a)
    if name == "imul":
        # s32(a) * s32(b) is congruent to a * b mod 2**32.
        return [], f"({a} * {b}) & {_M32}"
    if name == "pack16lsb":
        return [], f"((({a} & 65535) << 16) | ({b} & 65535))"
    if name == "pack16msb":
        return [], f"((({a} >> 16) << 16) | ({b} >> 16))"
    if name == "packbytes":
        return [], f"((({a} & 255) << 8) | ({b} & 255))"
    if name == "quadavg":
        # Per-lane rounding average; lanes cannot carry (max 255).
        return ([f"_a = {a}", f"_b = {b}"],
                "(((((_a >> 24) + (_b >> 24) + 1) >> 1) << 24)"
                " | (((((_a >> 16) & 255) + ((_b >> 16) & 255) + 1) >> 1)"
                " << 16)"
                " | (((((_a >> 8) & 255) + ((_b >> 8) & 255) + 1) >> 1)"
                " << 8)"
                " | (((_a & 255) + (_b & 255) + 1) >> 1))")
    if name == "ume8uu":
        return ([f"_a = {a}", f"_b = {b}"],
                "(abs((_a >> 24) - (_b >> 24))"
                " + abs(((_a >> 16) & 255) - ((_b >> 16) & 255))"
                " + abs(((_a >> 8) & 255) - ((_b >> 8) & 255))"
                " + abs((_a & 255) - (_b & 255)))")
    return None


def _mem_inlinable(op) -> bool:
    """Can this memory op's address, access, and timing be generated
    statically?  (One non-template mem op routes the whole step's
    memory traffic through the generic ctx path instead.)"""
    name = op[OP_NAME]
    srcs = op[OP_SRCS]
    if name in _LOADS:
        nbytes, _shape, nsrcs = _LOADS[name]
        if len(srcs) != nsrcs or len(op[OP_DSTS]) != 1:
            return False
        return name == "ld32" or op[OP_IMM] is not None
    if name in _STORES:
        return len(srcs) == 2 and op[OP_IMM] is not None
    return False


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

#: Everything run-varying arrives through parameters: the compiled
#: function is a pure function of (plan, strict) and safely cached on
#: the plan across sessions.
_ARGS = ("values, pending, heap, commit_until, ctx, mem_load, mem_store, "
         "mmio_load, mmio_store, icache_fetch, dcache_access, "
         "observe_load, prefetch_queue, prefetch_tick, obs, fu_totals, "
         "now0, cycle, last_chunk, instr0, watchdog_limit, program_name, "
         "config_name, max_cycles, spill")


def _generate(plan, spec: RegionSpec, strict: bool):
    """Source + semantic bindings of one region's specialized function.

    The emitted body is ``_step_fast`` plus the processor hot loop,
    unrolled per instruction with all static operands folded.  See the
    module docstring for the fidelity contract; every block below
    cites the interpreter code it clones.
    """
    from repro.core.processor import CODE_BASE

    head, rlen = spec.head, spec.length
    abs_first, abs_last = plan.code_chunks(CODE_BASE)
    chunk = FETCH_CHUNK_BYTES
    sems: dict = {}
    out: list[str] = []
    w = out.append

    jump_op = spec.jump_op
    dyn_jump = (jump_op is not None and jump_op[OP_GUARD] != 1
                and jump_op[OP_NAME] in ("jmpi", "jmpt"))
    static_taken = (jump_op is not None and jump_op[OP_GUARD] == 1
                    and jump_op[OP_NAME] in ("jmpi", "jmpt"))

    def emit_scan(ind, reg, kind):
        # Strict-mode hazard scan, message-identical to RegisterFile.
        w(f"{ind}if hz and {reg} in pending:")
        w(f"{ind}    for _due, _iss, _val in pending[{reg}]:")
        w(f"{ind}        if _iss < now < _due:")
        w(f"{ind}            raise TimingViolation(")
        w(f'{ind}                f"{kind}r{reg} read at t={{now}} "')
        w(f'{ind}                f"while write issued at t={{_iss}} "')
        w(f'{ind}                f"lands at t={{_due}}")')

    def emit_push(ind, reg, lat, expr):
        # The _step_fast pending-write push, register/latency baked.
        w(f"{ind}_e = (now + {lat}, now, {expr})")
        w(f"{ind}_q = pending.get({reg})")
        w(f"{ind}if _q is None:")
        w(f"{ind}    pending[{reg}] = [_e]")
        w(f"{ind}elif _e >= _q[-1]:")
        w(f"{ind}    _q.append(_e)")
        w(f"{ind}else:")
        w(f"{ind}    insort(_q, _e)")
        w(f"{ind}heappush(heap, (now + {lat}, {reg}))")

    def emit_push_dyn(ind, lat):
        # Same, for a zip-driven multi-destination semantic result.
        w(f"{ind}_e = (now + {lat}, now, _val & {_M32})")
        w(f"{ind}_q = pending.get(_dreg)")
        w(f"{ind}if _q is None:")
        w(f"{ind}    pending[_dreg] = [_e]")
        w(f"{ind}elif _e >= _q[-1]:")
        w(f"{ind}    _q.append(_e)")
        w(f"{ind}else:")
        w(f"{ind}    insort(_q, _e)")
        w(f"{ind}heappush(heap, (now + {lat}, _dreg))")

    def emit_op(ind, op, mem_generic, ad_name):
        guard = op[OP_GUARD]
        name = op[OP_NAME]
        srcs = op[OP_SRCS]
        dsts = op[OP_DSTS]
        imm = op[OP_IMM]
        lat = op[OP_LATENCY]
        inline_mem = op[OP_IS_MEM] and not mem_generic
        if inline_mem and guard != 1:
            w(f"{ind}{ad_name} = None")
        if guard != 1:
            if strict:
                emit_scan(ind, guard, "guard ")
            w(f"{ind}if values[{guard}] & 1:")
            body = ind + "    "
            w(f"{body}_exd += 1")
            w(f"{body}fu_totals[{op[OP_FU]}] += 1")
            if srcs:
                w(f"{body}_rd += {len(srcs)}")
        else:
            body = ind
        if strict:
            for reg in srcs:
                if reg not in (0, 1):
                    emit_scan(body, reg, "")
        if op[OP_IS_JUMP]:
            # Region terminator (detection guarantees this).  An
            # executed jmpi/jmpt is always taken (ctx.guard_value is
            # invariantly 1); an executed jmpf never is.
            if name != "jmpf" and guard != 1:
                w(f"{body}_tk = True")
                w(f"{body}_jt += 1")
            return
        if name == "nop":
            return
        if inline_mem and name in _STORES:
            nbytes, mask = _STORES[name]
            w(f"{body}{ad_name} = (values[{srcs[0]}] + {imm}) & {_M32}")
            w(f"{body}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI} "
              "and mmio_store:")
            w(f"{body}    mmio_store({ad_name}, "
              f"values[{srcs[1]}]{mask}, {nbytes})")
            w(f"{body}else:")
            w(f"{body}    mem_store({ad_name}, "
              f"values[{srcs[1]}]{mask}, {nbytes})")
            return
        if inline_mem:
            nbytes, shape, _nsrcs = _LOADS[name]
            if name == "ld32":
                addr = f"(values[{srcs[0]}] + values[{srcs[1]}]) & {_M32}"
            else:
                addr = f"(values[{srcs[0]}] + {imm}) & {_M32}"
            w(f"{body}{ad_name} = {addr}")
            w(f"{body}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI} "
              "and mmio_load:")
            w(f"{body}    _v = mmio_load({ad_name}, {nbytes})")
            w(f"{body}else:")
            w(f"{body}    _v = mem_load({ad_name}, {nbytes})")
            if shape == "s16":
                w(f"{body}_v = (((_v & 65535) ^ 32768) - 32768) & {_M32}")
                value = "_v"
            elif shape == "s8":
                w(f"{body}_v = (((_v & 255) ^ 128) - 128) & {_M32}")
                value = "_v"
            else:
                value = f"_v & {_M32}"
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_push(body, dsts[0], lat, value)
            return
        src_exprs = [f"values[{reg}]" for reg in srcs]
        template = (None if op[OP_IS_MEM] or len(dsts) != 1
                    else _pure_template(name, src_exprs, imm))
        if template is not None:
            pre, expr = template
            for line in pre:
                w(f"{body}{line}")
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_push(body, dsts[0], lat, expr)
            return
        # Generic fallback: the bound registry semantic, like the plan
        # interpreter (mem ops get slot/name for MemAccess records).
        if op[OP_IS_MEM]:
            w(f"{body}ctx._slot = {op[OP_SLOT]}")
            w(f"{body}ctx._op_name = {name!r}")
        sem = f"_sem_{name}"
        sems[sem] = op[OP_SEMANTIC]
        joined = ", ".join(src_exprs)
        operands = f"({joined},)" if len(srcs) == 1 else f"({joined})"
        w(f"{body}_r = {sem}(ctx, {operands}, {imm!r})")
        if len(dsts) == 1:
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_push(body, dsts[0], lat, f"_r[0] & {_M32}")
        elif len(dsts) > 1:
            w(f"{body}for _dreg, _val in zip({dsts!r}, _r):")
            w(f"{body}    _wr += 1")
            emit_push_dyn(body + "    ", lat)

    w(f"def _region({_ARGS}):")
    w("    _ex = 0; _jt = 0; _ic = 0; _dc = 0; _mm = 0")
    w("    _rd = 0; _wr = 0; _gr = 0; _cbf = 0; _t = 0")
    if dyn_jump:
        w("    _tk = False")
    w("    try:")
    ind = "        "
    for t in range(rlen):
        i = head + t
        ops = plan.ops[i]
        w(f"{ind}# -- instr {i} --")
        w(f"{ind}now = now0" if t == 0 else f"{ind}now += 1")
        w(f"{ind}if heap and heap[0][0] <= now:")
        w(f"{ind}    commit_until(now)")
        has_guard = any(op[OP_GUARD] != 1 for op in ops)
        scan_needed = strict and (has_guard or any(
            any(reg not in (0, 1) for reg in op[OP_SRCS]) for op in ops))
        if scan_needed:
            w(f"{ind}hz = bool(heap)")
        mem_ops = [op for op in ops if op[OP_IS_MEM]]
        mem_generic = bool(mem_ops) and not all(
            _mem_inlinable(op) for op in mem_ops)
        if mem_generic:
            w(f"{ind}_acc = ctx.accesses")
            w(f"{ind}_acc.clear()")
        if has_guard:
            w(f"{ind}_exd = 0")
        inline_mem = []
        for op in ops:
            ad_name = None
            if op[OP_IS_MEM] and not mem_generic:
                ad_name = f"_ad{len(inline_mem)}"
                is_load = op[OP_NAME] in _LOADS
                nbytes = (_LOADS[op[OP_NAME]][0] if is_load
                          else _STORES[op[OP_NAME]][0])
                inline_mem.append(
                    (ad_name, is_load, nbytes, op[OP_GUARD] != 1))
            emit_op(ind, op, mem_generic, ad_name)
        # Per-step counter folds (the plan path flushes at step end,
        # before the processor's timing phase).
        static_exec = sum(1 for op in ops if op[OP_GUARD] == 1)
        static_reads = sum(len(op[OP_SRCS]) for op in ops
                           if op[OP_GUARD] == 1)
        static_writes = sum(1 for op in ops
                            if op[OP_GUARD] == 1 and not op[OP_IS_JUMP]
                            and len(op[OP_DSTS]) == 1)
        if has_guard:
            w(f"{ind}_ex += {static_exec} + _exd" if static_exec
              else f"{ind}_ex += _exd")
        elif static_exec:
            w(f"{ind}_ex += {static_exec}")
        if static_reads:
            w(f"{ind}_rd += {static_reads}")
        if static_writes:
            w(f"{ind}_wr += {static_writes}")
        if ops:
            w(f"{ind}_gr += {len(ops)}")
        fu_static: dict = {}
        for op in ops:
            if op[OP_GUARD] == 1:
                fu_static[op[OP_FU]] = fu_static.get(op[OP_FU], 0) + 1
        for fu, count in sorted(fu_static.items()):
            w(f"{ind}fu_totals[{fu}] += {count}")
        if static_taken and i == spec.jump_pos:
            w(f"{ind}_jt += 1")

        # Front end.  Step 0 clones the processor's dynamic chunk walk
        # (entry last_chunk is unknown); afterwards last_chunk is
        # provably chunk_last[i - 1], so the fetch list is static.
        if t == 0:
            fetches = None
        else:
            prev_last = abs_last[i - 1]
            fetches = [c for c in range(abs_first[i],
                                        abs_last[i] + chunk, chunk)
                       if c != prev_last]
        has_fetch = t == 0 or bool(fetches)
        has_mem = bool(mem_ops)
        has_stall = has_fetch or has_mem
        if has_stall:
            w(f"{ind}_stall = 0")
        if t == 0:
            first, last = abs_first[i], abs_last[i]
            if first == last:
                w(f"{ind}if last_chunk != {first}:")
                w(f"{ind}    _stall += icache_fetch({first}, cycle)")
                w(f"{ind}    _cbf += {chunk}")
                w(f"{ind}    last_chunk = {first}")
                w(f"{ind}    _ic += _stall")
            else:
                w(f"{ind}if last_chunk != {first} "
                  f"or last_chunk != {last}:")
                w(f"{ind}    _ch = {first}")
                w(f"{ind}    while _ch <= {last}:")
                w(f"{ind}        if _ch != last_chunk:")
                w(f"{ind}            _stall += icache_fetch(_ch, "
                  "cycle + _stall)")
                w(f"{ind}            _cbf += {chunk}")
                w(f"{ind}            last_chunk = _ch")
                w(f"{ind}        _ch += {chunk}")
                w(f"{ind}    _ic += _stall")
        elif fetches:
            for index, c in enumerate(fetches):
                tail = " + _stall" if index else ""
                w(f"{ind}_stall += icache_fetch({c}, cycle{tail})")
            w(f"{ind}_cbf += {chunk * len(fetches)}")
            w(f"{ind}_ic += _stall")
        if has_fetch and has_mem:
            w(f"{ind}_fs = _stall")

        # Load/store unit, in access order.
        if mem_generic:
            w(f"{ind}for _ma in _acc:")
            w(f"{ind}    _addr = _ma.address")
            w(f"{ind}    if {_MMIO_LO} <= _addr < {_MMIO_HI}:")
            w(f"{ind}        _mm += 1")
            w(f"{ind}        continue")
            w(f"{ind}    _ms = dcache_access(_ma.is_load, _addr, "
              "_ma.nbytes, cycle + _stall)")
            w(f"{ind}    _stall += _ms")
            w(f"{ind}    _dc += _ms")
            w(f"{ind}    if _ma.is_load:")
            w(f"{ind}        observe_load(_addr, cycle + _stall)")
        else:
            for ad_name, is_load, nbytes, guarded in inline_mem:
                base = ind
                if guarded:
                    w(f"{ind}if {ad_name} is not None:")
                    base = ind + "    "
                w(f"{base}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI}:")
                w(f"{base}    _mm += 1")
                w(f"{base}else:")
                w(f"{base}    _ms = dcache_access({is_load}, {ad_name}, "
                  f"{nbytes}, cycle + _stall)")
                w(f"{base}    _stall += _ms")
                w(f"{base}    _dc += _ms")
                if is_load:
                    w(f"{base}    observe_load({ad_name}, "
                      "cycle + _stall)")
        stall_term = " + _stall" if has_stall else ""
        w(f"{ind}if prefetch_queue:")
        w(f"{ind}    prefetch_tick(cycle{stall_term})")

        exec_expr = (f"{static_exec} + _exd" if has_guard
                     else str(static_exec))
        dur = "1 + _stall" if has_stall else "1"
        w(f"{ind}if obs:")
        w(f"{ind}    obs.instruction(cycle, {dur}, index=instr0 + {t},")
        w(f"{ind}                    issued_ops={len(ops)}, "
          f"executed_ops={exec_expr})")
        if has_fetch:
            amount = "_fs" if has_mem else "_stall"
            w(f'{ind}    obs.stall(cycle, "icache", {amount})')
        if has_mem:
            if has_fetch:
                w(f'{ind}    obs.stall(cycle + _fs, "dcache", '
                  "_stall - _fs)")
            else:
                w(f'{ind}    obs.stall(cycle, "dcache", _stall)')
        w(f"{ind}    if obs.stage_detail:")
        span_args = "cycle, stall=_stall" if has_stall else "cycle"
        w(f"{ind}        for _sn, _ss, _sd in "
          f"stage_spans({span_args}):")
        w(f"{ind}            obs.stage(_ss, _sn, _sd, "
          f"instr=instr0 + {t})")
        w(f"{ind}cycle += {'1 + _stall' if has_stall else '1'}")
        w(f"{ind}_t = {t + 1}")
        w(f"{ind}if cycle > watchdog_limit:")
        w(f"{ind}    raise WatchdogTimeout(program_name, config_name, "
          "cycle,")
        w(f"{ind}                          instr0 + {t + 1}, max_cycles)")

    if static_taken:
        next_expr = str(jump_op[OP_JUMP_INDEX])
    elif dyn_jump:
        next_expr = (f"({jump_op[OP_JUMP_INDEX]} if _tk "
                     f"else {head + rlen})")
    else:
        next_expr = str(head + rlen)
    final_chunk = abs_last[head + rlen - 1]
    w(f"{ind}return ({next_expr}, cycle, {final_chunk}, _ex, _jt, _ic,")
    w(f"{ind}        _dc, _mm, _rd, _wr, _cbf)")
    w("    except BaseException:")
    w("        spill[0] = _t; spill[1] = cycle; spill[2] = _ic")
    w("        spill[3] = _dc; spill[4] = _cbf; spill[5] = _mm")
    w("        spill[6] = _ex; spill[7] = _jt; spill[8] = _rd")
    w("        spill[9] = _wr; spill[10] = _gr")
    w("        raise")
    return "\n".join(out) + "\n", sems


# ---------------------------------------------------------------------------
# Compilation + runtime
# ---------------------------------------------------------------------------

def compile_region(plan, spec: RegionSpec, strict: bool = True):
    """Compile one region, caching ``(fn, source)`` on the plan.

    The cache key includes ``strict`` because hazard scans are baked
    into the source.  Caching on the *plan* (not the runtime) means an
    invalidated-then-rewarmed region, or a second session over the
    same program, is a pure dict hit.
    """
    key = (spec.head, spec.length, strict)
    cached = plan._trace_code.get(key)
    if cached is not None:
        return cached
    from repro.core.processor import WatchdogTimeout

    source, sems = _generate(plan, spec, strict)
    namespace = {
        "insort": insort,
        "heappush": heappush,
        "TimingViolation": TimingViolation,
        "WatchdogTimeout": WatchdogTimeout,
        "stage_spans": stage_spans,
    }
    namespace.update(sems)
    code = compile(source, f"<trace:{plan.program.name}+{spec.head}>",
                   "exec")
    exec(code, namespace)
    fn = namespace["_region"]
    plan._trace_code[key] = (fn, source)
    return fn, source


def regions_for(plan, config: TraceConfig) -> dict[int, RegionSpec]:
    """Detected regions for ``plan``, cached on the plan."""
    cache_key = (config.min_length, config.max_length)
    cached = plan._trace_regions
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    regions = detect_regions(plan, config)
    plan._trace_regions = (cache_key, regions)
    return regions


class TraceRuntime:
    """Per-session trace-tier state: dispatch table, heat, stats.

    One runtime lives on a run session (``engine="trace"``).  It maps
    region head indices to mutable :class:`Region` records; the
    processor's trace block loop probes ``dispatch.get(pc)`` once per
    retired instruction and asks :meth:`warm` / runs ``rec.fn``.

    ``spill`` is the exception side-channel shared with every
    generated function (see the module docstring).
    """

    __slots__ = ("config", "stats", "obs", "strict", "spill", "dispatch",
                 "_plan")

    def __init__(self, plan, config: TraceConfig | None = None,
                 strict: bool = True, obs=None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.stats = TraceStats()
        self.obs = obs
        self.strict = strict
        self.spill: list = [None] * 11
        self.dispatch: dict[int, Region] = {}
        self._plan = None
        self._bind(plan)

    def _bind(self, plan) -> None:
        self._plan = plan
        self.dispatch = {
            head: Region(spec, plan)
            for head, spec in regions_for(plan, self.config).items()
        }
        self.stats.detected += len(self.dispatch)

    def ensure(self, plan, cycle: int) -> None:
        """Rebind after an ibuf mutation swapped the execution plan.

        :class:`repro.resilience.faults.IBufFault` replaces the
        executor's plan wholesale with one decoded from the corrupted
        image; compiled code specialized against the old plan must
        never run against the new one.  Plan identity is the trigger.
        """
        if plan is self._plan:
            return
        self.invalidate("ibuf-swap", cycle)
        self._bind(plan)

    def invalidate(self, reason: str, cycle: int) -> None:
        """Drop every activated region (heat resets; code cache kept).

        Called on ``restore()`` and on plan swaps.  ``plan._trace_code``
        survives so re-warming a region whose plan is unchanged is a
        compile-cache hit, not a recompilation.
        """
        for rec in self.dispatch.values():
            if rec.fn is not None:
                rec.fn = None
                rec.source = None
                self.stats.invalidations += 1
        if self.obs:
            self.obs.trace_tier(cycle, "invalidate", head=-1,
                                reason=reason)

    def warm(self, rec: Region, cycle: int):
        """Bump a region's heat; compile when it crosses threshold."""
        rec.heat += 1
        if rec.heat < self.config.threshold:
            return None
        key = (rec.head, rec.length, self.strict)
        cached = key in self._plan._trace_code
        fn, source = compile_region(self._plan, rec.spec, self.strict)
        rec.fn = fn
        rec.source = source
        self.stats.activations += 1
        if not cached:
            self.stats.compiled += 1
        if self.obs:
            self.obs.trace_tier(cycle, "compile", head=rec.head,
                                length=rec.length, cached=cached)
        return fn


def compile_all(plan, config: TraceConfig | None = None,
                strict: bool = True) -> dict[int, tuple]:
    """Eagerly compile every detected region (test/debug helper)."""
    config = config if config is not None else TraceConfig()
    return {head: compile_region(plan, spec, strict)
            for head, spec in regions_for(plan, config).items()}
