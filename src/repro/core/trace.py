"""Trace compilation: hot plan regions specialized into Python functions.

The :class:`~repro.core.plan.ExecutionPlan` fast path still pays one
Python loop iteration — operand tuple building, semantic dispatch,
``StepInfo`` bookkeeping, processor-side timing — per VLIW instruction.
This module adds the third execution tier (``engine="trace"``): a
counter-triggered region detector finds hot straight-line runs and
loop bodies in the plan, a codegen pass emits one specialized Python
function per region via source generation + :func:`compile`, and the
processor's trace dispatcher enters those functions from the fast
path, deoptimizing back to the plan interpreter at region exits.

The codegen contract (enforced by the three-way lockstep suite in
``tests/core/test_trace_differential.py``) is *bit identity* with the
reference interpreter: every architectural effect, every statistics
counter, every obs event, and every exception — text included — must
be indistinguishable.  The generated code therefore does not model a
simplified machine; it is the plan interpreter and the processor's
hot loop *unrolled and constant-folded* for one region:

* per-operation plan tuples become straight-line statements with
  register indices, immediates, latencies, and FU indices baked in as
  literals; the registry semantic of every foldable operation is
  inlined as a masked integer expression (anything else calls the
  bound semantic exactly as the plan path would);
* register commits are *statically scheduled*: the plan resolves every
  write latency, so a write issued on region step ``t_w`` with latency
  ``lat`` lands on step ``t_w + lat`` — a compile-time constant.  The
  codegen holds the value in a local (``_w<k>``) and emits a direct
  ``values[reg] = _w<k>`` at the top of the landing step, after the
  dynamic ``commit_until`` check (same-due dynamic entries were issued
  earlier, so the static assignment correctly wins).  The
  ``pending``/``_due_heap`` push protocol is kept only for writes the
  analysis *demotes* (multi-destination results, strict-mode writes a
  later in-flight read could observe, and same-``(reg, due)``
  collisions) — those stay bit-identical to the interpreter's hazard
  scans; writes whose due-cycle escapes the region are *materialized*
  into ``pending``/``_due_heap`` at every region exit and in the
  BaseException spill path, so boundary machine state is
  indistinguishable from the interpreter's (DESIGN.md §13);
* front-end fetches are constant-folded: after instruction ``i`` of a
  sequential run the last-fetched chunk is provably
  ``chunk_last[i]``, so only the first instruction of a region needs
  the dynamic chunk walk and every later instruction fetches a
  statically known (usually empty) chunk list;
* strict-timing hazard scans, watchdog checks, and obs emission are
  generated with the exact expressions, orderings, and f-string
  messages of the interpreter, so exceptions raise at the same
  operation with the same text.

Regions end at jumps.  A region may *contain* exactly one terminating
``jmpi``/``jmpt``/``jmpf`` with a resolved immediate target when its
full delay-slot window fits inside the region; the jump's outcome is
then a compile-time constant or a single flag (guards are the only
dynamic input — ``ctx.guard_value`` is invariantly 1 in both
interpreters, so an *executed* ``jmpi``/``jmpt`` is always taken and
an executed ``jmpf`` never is).  Loop bodies ending in a backward
jump therefore compile to one function per iteration with the
next-pc pre-resolved.

Deoptimization is structural, not exceptional: compiled code runs
only between instruction boundaries, entered only when no jump is in
flight and the remaining instruction/step budget covers the whole
region, so snapshot/restore and the fault-injection monitor always
observe interpreter-equivalent boundary state.  Traces are invalidated
on :meth:`Processor.restore` and on instruction-buffer mutation (the
resilience layer swaps ``executor._plan`` wholesale, which
:meth:`TraceRuntime.ensure` detects by identity).  If a region raises
mid-flight (timing violation, memory fault, watchdog), the generated
``except`` block spills the partial progress counters, the faulting
``pc``, and the reconstructed ``_pending_jump`` — plus any in-flight
static writes, materialized back into ``pending``/``_due_heap`` — so
the dispatcher leaves the session exactly where the plan interpreter
would have.

Compiled functions are pure functions of ``(plan, strict)`` — all
run-varying state arrives through parameters — and are cached on the
plan (:attr:`ExecutionPlan._trace_code`), so repeated runs of one
program (the perf harness, conformance sweeps) compile each region
once per process.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from heapq import heappush
from time import perf_counter_ns

from repro.analysis.diagnostics import format_location
from repro.core.pipeline import stage_spans
from repro.core.plan import (
    OP_DSTS,
    OP_FU,
    OP_GUARD,
    OP_IMM,
    OP_IS_JUMP,
    OP_IS_MEM,
    OP_JUMP_INDEX,
    OP_LATENCY,
    OP_NAME,
    OP_SEMANTIC,
    OP_SLOT,
    OP_SRCS,
)
from repro.core.regfile import TimingViolation
from repro.mem.icache import FETCH_CHUNK_BYTES

#: Masks and the MMIO window, baked into generated source as literals.
_M32 = "4294967295"
_MMIO_LO = 0x1000_0000
_MMIO_HI = 0x1000_1000

#: The only jump mnemonics a region may terminate with: their taken
#: target is the immediate, so the pre-resolved ``OP_JUMP_INDEX`` is
#: the complete dynamic outcome (modulo the guard bit).
_JUMP_NAMES = ("jmpi", "jmpt", "jmpf")


def region_location(program_name: str, head: int,
                    length: int | None = None) -> str:
    """Render a region's identity in the shared diagnostics vocabulary.

    Trace-tier messages (compile filenames, validation reports) and
    the static verifier address code the same way —
    :func:`repro.analysis.diagnostics.format_location` — so a region
    failure and a schedule failure over the same instruction read
    identically.
    """
    where = format_location(pc=head)
    if length is not None:
        where += f" +{length}"
    return f"{program_name!r} {where}"


@dataclass
class TraceConfig:
    """Tuning knobs of the trace tier (defaults favour loop kernels)."""

    #: Head entries observed before a region is compiled.
    threshold: int = 8
    #: Regions shorter than this are not worth the dispatch overhead.
    min_length: int = 2
    #: Unrolled-source cap: one VLIW instruction generates roughly
    #: 10-60 source lines, so this bounds compile time and code size.
    max_length: int = 128
    #: Run the translation validator (:mod:`repro.analysis.transval`)
    #: over every freshly generated region before caching it; a
    #: failing region raises ``TranslationValidationError`` instead of
    #: executing.  Cache hits never re-validate, so steady-state
    #: dispatch is unaffected.  Opt out for raw-compile benchmarks.
    validate: bool = True


@dataclass
class TraceStats:
    """Trace-tier telemetry (simulator meta-state, never RunStats)."""

    detected: int = 0
    compiled: int = 0
    activations: int = 0
    enters: int = 0
    compiled_instructions: int = 0
    entry_blocked: int = 0
    monitor_blocks: int = 0
    invalidations: int = 0
    #: Commit-scheduling totals over freshly *compiled* regions (cache
    #: hits re-activate code without re-counting its writes).
    static_commits: int = 0
    escaped_commits: int = 0
    dynamic_writes: int = 0
    #: Wall time spent in ``_generate`` + ``compile`` (cache misses
    #: only) — simulator meta-cost, never simulated time.
    compile_ns: int = 0
    #: One dict per activation: head, length, cached, compile_ns, and
    #: the three commit-scheduling counts (``RunResult.trace.regions``).
    regions: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "detected": self.detected,
            "compiled": self.compiled,
            "activations": self.activations,
            "enters": self.enters,
            "compiled_instructions": self.compiled_instructions,
            "entry_blocked": self.entry_blocked,
            "monitor_blocks": self.monitor_blocks,
            "invalidations": self.invalidations,
            "static_commits": self.static_commits,
            "escaped_commits": self.escaped_commits,
            "dynamic_writes": self.dynamic_writes,
            "compile_ns": self.compile_ns,
            "regions": [dict(entry) for entry in self.regions],
        }


@dataclass(frozen=True)
class RegionSpec:
    """One detected region: ``length`` instructions from ``head``.

    ``jump_pos`` (absolute instruction index) and ``jump_op`` (the
    plan op tuple) identify the optional terminating jump; its delay
    window is always the region's tail.
    """

    head: int
    length: int
    jump_pos: int | None
    jump_op: tuple | None


def _classify_jumps(plan) -> list:
    """Per-instruction jump classification.

    ``None`` — no jump ops; a plan op tuple — exactly one supported
    terminator-candidate jump; ``False`` — jump(s) a region cannot
    contain (multiple jumps, register-target jumps, or unresolved
    immediates).
    """
    table = []
    for ops in plan.ops:
        jumps = [op for op in ops if op[OP_IS_JUMP]]
        if not jumps:
            table.append(None)
        elif (len(jumps) == 1 and jumps[0][OP_NAME] in _JUMP_NAMES
                and jumps[0][OP_IMM] is not None
                and jumps[0][OP_JUMP_INDEX] is not None):
            table.append(jumps[0])
        else:
            table.append(False)
    return table


def detect_regions(plan, config: TraceConfig) -> dict[int, RegionSpec]:
    """Find every compilable region of ``plan``.

    Leaders — the only places sequential control flow can (re)enter —
    are instruction 0, every resolved jump target, and the first
    instruction after every jump's delay window.  From each leader a
    region extends over straight-line instructions and may close over
    one supported jump plus its complete delay window; it ends before
    any other jump, at the program end, or at ``max_length``.
    Overlapping regions are fine: each one only assumes sequential
    execution from its own head, which region entry guarantees.
    """
    delay = plan.jump_delay_slots
    count = plan.count
    jump_at = _classify_jumps(plan)

    leaders = {0}
    for index in range(count):
        entry = jump_at[index]
        if entry is None:
            continue
        leaders.add(min(index + delay + 1, count))
        if entry is not False:
            leaders.add(entry[OP_JUMP_INDEX])

    regions: dict[int, RegionSpec] = {}
    for head in sorted(leaders):
        if head >= count:
            continue
        end = min(count, head + config.max_length)
        index = head
        jump_pos = jump_op = None
        while index < end:
            entry = jump_at[index]
            if entry is None:
                index += 1
                continue
            window_end = index + delay + 1
            if (entry is not False and window_end <= count
                    and window_end <= head + config.max_length
                    and all(jump_at[k] is None
                            for k in range(index + 1, window_end))):
                jump_pos, jump_op = index, entry
                index = window_end
            break
        length = index - head
        if length >= config.min_length:
            regions[head] = RegionSpec(head, length, jump_pos, jump_op)
    return regions


class Region:
    """Dispatch-table record: heat counter, compiled entry point, and
    the static per-region counter totals the dispatcher flushes."""

    __slots__ = ("spec", "head", "length", "heat", "fn", "source",
                 "static_issued", "static_guard_reads", "issued_prefix",
                 "enters", "compile_ns", "static_commits",
                 "escaped_commits", "dynamic_writes")

    def __init__(self, spec: RegionSpec, plan) -> None:
        self.spec = spec
        self.head = spec.head
        self.length = spec.length
        self.heat = 0
        self.fn = None
        self.source = None
        # Per-region telemetry, filled by TraceRuntime.warm / the
        # dispatcher (enters) — exported via TraceStats.regions.
        self.enters = 0
        self.compile_ns = 0
        self.static_commits = 0
        self.escaped_commits = 0
        self.dynamic_writes = 0
        prefix = [0]
        for index in range(spec.head, spec.head + spec.length):
            prefix.append(prefix[-1] + plan.nops[index])
        #: ``issued_prefix[k]`` = ops issued by the first ``k``
        #: instructions (exception-spill accounting).
        self.issued_prefix = tuple(prefix)
        # Per step the interpreter issues len(ops) ops and charges
        # len(ops) guard reads: the two totals coincide.
        self.static_issued = prefix[-1]
        self.static_guard_reads = prefix[-1]


# ---------------------------------------------------------------------------
# Inline semantics.  Each template reproduces one registry semantic as a
# masked integer expression over committed register values; anything not
# listed (DSP lanes, floats, custom ops, rotates) calls the bound
# semantic exactly as ``_step_fast`` would.  The template-vs-registry
# differential test in tests/core/test_trace_units.py pins every entry.
# ---------------------------------------------------------------------------

_SIGNED_CMP = {"igtr": ">", "igeq": ">=", "iles": "<", "ileq": "<="}
_RAW_CMP = {"ieql": "==", "ineq": "!=", "ugtr": ">", "ugeq": ">="}

#: name -> (nbytes, shaping, nsrcs); shaping resigns the loaded value.
_LOADS = {
    "ld32": (4, None, 2),
    "ld32d": (4, None, 1),
    "uld16d": (2, None, 1),
    "ild16d": (2, "s16", 1),
    "uld8d": (1, None, 1),
    "ild8d": (1, "s8", 1),
}

#: name -> (nbytes, value-mask suffix applied to the stored register).
_STORES = {"st32d": (4, ""), "st16d": (2, " & 65535"), "st8d": (1, " & 255")}

_ASR_FILL = "18446744069414584320"  # 0xFFFFFFFF00000000: sign-fill bits


def _pure_template(name, srcs, imm):
    """``(prelude_lines, masked_expr)`` for an inlinable pure op, or
    ``None``.  ``srcs`` are expression strings over committed register
    values (already 32-bit masked, the register-file invariant)."""
    a = srcs[0] if len(srcs) > 0 else None
    b = srcs[1] if len(srcs) > 1 else None
    if name == "iadd":
        return [], f"({a} + {b}) & {_M32}"
    if name == "isub":
        return [], f"({a} - {b}) & {_M32}"
    if name in ("imin", "imax"):
        # Signed compare via sign-bit bias: s32(x) <= s32(y) iff
        # (x ^ 0x80000000) <= (y ^ 0x80000000) on the masked words.
        relation = "<=" if name == "imin" else ">="
        return ([f"_a = {a}", f"_b = {b}"],
                f"(_a if (_a ^ 2147483648) {relation} "
                "(_b ^ 2147483648) else _b)")
    if name == "bitand":
        return [], f"({a} & {b})"
    if name == "bitor":
        return [], f"({a} | {b})"
    if name == "bitxor":
        return [], f"({a} ^ {b})"
    if name == "bitandinv":
        return [], f"({a} & ({b} ^ {_M32}))"
    if name == "bitinv":
        return [], f"({a} ^ {_M32})"
    if name == "ineg":
        # u32(-s32(x)) == (-x) mod 2**32 because s32(x) == x (mod 2**32).
        return [], f"(-{a}) & {_M32}"
    if name in ("iabs", "dspiabs"):
        # clip_s32(abs(s32(x))): only x == 0x80000000 clips.
        return ([f"_a = {a}"],
                "(_a if _a < 2147483648 else (2147483647 "
                f"if _a == 2147483648 else (-_a) & {_M32}))")
    if name == "mov":
        return [], a
    if name == "sex16":
        return [], f"((({a} & 65535) ^ 32768) - 32768) & {_M32}"
    if name == "zex16":
        return [], f"({a} & 65535)"
    if name == "sex8":
        return [], f"((({a} & 255) ^ 128) - 128) & {_M32}"
    if name == "zex8":
        return [], f"({a} & 255)"
    if name == "iaddi" and imm is not None:
        return [], f"({a} + {imm}) & {_M32}"
    if name == "uimm" and imm is not None:
        return [], str(imm & 0xFFFF)
    if name == "himm" and imm is not None:
        return [], f"({a} | {(imm & 0xFFFF) << 16})"
    if name in _SIGNED_CMP:
        relation = _SIGNED_CMP[name]
        return [], (f"(1 if ({a} ^ 2147483648) {relation} "
                    f"({b} ^ 2147483648) else 0)")
    if name in _RAW_CMP:
        return [], f"(1 if {a} {_RAW_CMP[name]} {b} else 0)"
    if name == "igtri" and imm is not None and -(1 << 31) <= imm < (1 << 31):
        return [], f"(1 if ({a} ^ 2147483648) > {imm + (1 << 31)} else 0)"
    if (name in ("ieqli", "ineqi") and imm is not None
            and -(1 << 31) <= imm < (1 << 31)):
        relation = "==" if name == "ieqli" else "!="
        return [], f"(1 if {a} {relation} {imm & 0xFFFFFFFF} else 0)"
    if name == "asl":
        return [f"_s = {b} & 31"], f"({a} << _s) & {_M32}"
    if name == "asr":
        # Sign-filled arithmetic shift: widen negatives with high ones
        # so a plain Python >> produces the filled bits, then re-mask.
        return ([f"_a = {a}", f"_s = {b} & 31"],
                f"(((_a | {_ASR_FILL}) >> _s) & {_M32} "
                "if _a & 2147483648 else _a >> _s)")
    if name == "lsr":
        return [], f"({a} >> ({b} & 31))"
    if name == "asli" and imm is not None:
        shift = imm & 31
        return [], (f"({a} << {shift}) & {_M32}" if shift else a)
    if name == "asri" and imm is not None:
        shift = imm & 31
        if shift == 0:
            return [], a
        return ([f"_a = {a}"],
                f"(((_a | {_ASR_FILL}) >> {shift}) & {_M32} "
                f"if _a & 2147483648 else _a >> {shift})")
    if name == "lsri" and imm is not None:
        shift = imm & 31
        return [], (f"({a} >> {shift})" if shift else a)
    if name == "imul":
        # s32(a) * s32(b) is congruent to a * b mod 2**32.
        return [], f"({a} * {b}) & {_M32}"
    if name == "pack16lsb":
        return [], f"((({a} & 65535) << 16) | ({b} & 65535))"
    if name == "pack16msb":
        return [], f"((({a} >> 16) << 16) | ({b} >> 16))"
    if name == "packbytes":
        return [], f"((({a} & 255) << 8) | ({b} & 255))"
    if name == "quadavg":
        # Carry-free SWAR identity on whole words (isa.simd.quad_avg_u8):
        # (x + y + 1) >> 1  ==  (x | y) - ((x ^ y) >> 1)  per u8 lane.
        return ([f"_a = {a}", f"_b = {b}"],
                "((_a | _b) - (((_a ^ _b) >> 1) & 2139062143))")
    if name == "ume8uu":
        # SWAR |a-b| per lane (isa.simd.quad_abs_diff_sum_u8): widen to
        # 16-bit fields, borrow-guard compare selects the positive
        # difference, then a horizontal field sum (max 4*255 < 1024).
        return ([f"_a = {a}", f"_b = {b}",
                 "_aw = ((_a & 4278190080) << 24) | ((_a & 16711680) << 16)"
                 " | ((_a & 65280) << 8) | (_a & 255)",
                 "_bw = ((_b & 4278190080) << 24) | ((_b & 16711680) << 16)"
                 " | ((_b & 65280) << 8) | (_b & 255)",
                 "_dab = (_aw | 72058693566333184) - _bw",
                 "_dba = (_bw | 72058693566333184) - _aw",
                 "_sel = ((_dab >> 8) & 281479271743489) * 511",
                 "_d = ((_dab & _sel) | (_dba & (_sel ^ "
                 "143835907860922879))) - 72058693566333184"],
                "((_d + (_d >> 16) + (_d >> 32) + (_d >> 48)) & 1023)")
    if name in ("dspidualadd", "dspidualsub"):
        # Batched dual s16 saturating add/sub (isa.simd.dual_add_sat_s16
        # / dual_sub_sat_s16): bias both halfwords to unsigned, widen to
        # 32-bit fields, classify overflow per field from bits 15/16.
        op_tail = ("+" if name == "dspidualadd" else "+ 281474976776192 -")
        return ([f"_a = {a} ^ 2147516416",
                 f"_b = {b} ^ 2147516416",
                 "_u = (((_a & 4294901760) << 16) | (_a & 65535)) "
                 f"{op_tail} (((_b & 4294901760) << 16) | (_b & 65535))",
                 "_hi = (_u >> 15) & (_u >> 16) & 4294967297",
                 "_lo = (((_u >> 15) | (_u >> 16)) & 4294967297)"
                 " ^ 4294967297",
                 "_v = (_u & ((4294967297 ^ _hi ^ _lo) * 65535))"
                 " | (_hi * 32767) | (_lo * 32768)"],
                "(((_v >> 16) & 4294901760) | (_v & 65535))")
    if name == "dspidualmul":
        # Dual s16 saturating multiply: cross terms defeat 64-bit SWAR,
        # so the two lane products stay scalar with conditional clips.
        return ([f"_a = {a}", f"_b = {b}",
                 "_ph = (((_a >> 16) ^ 32768) - 32768) * "
                 "(((_b >> 16) ^ 32768) - 32768)",
                 "_pl = (((_a & 65535) ^ 32768) - 32768) * "
                 "(((_b & 65535) ^ 32768) - 32768)",
                 "_ph = 32767 if _ph > 32767 else "
                 "(-32768 if _ph < -32768 else _ph)",
                 "_pl = 32767 if _pl > 32767 else "
                 "(-32768 if _pl < -32768 else _pl)"],
                "(((_ph & 65535) << 16) | (_pl & 65535))")
    if name == "dspuquadaddui":
        # Batched u8 + s8 with unsigned saturation (simd.quad_add_u8s):
        # bias the signed operand by +0x80 per lane, widen, add a field
        # bias of 0x80, classify per-field bits 8/9.
        return ([f"_a = {a}",
                 f"_b = {b} ^ 2155905152",
                 "_u = (((_a & 4278190080) << 24) | ((_a & 16711680) << 16)"
                 " | ((_a & 65280) << 8) | (_a & 255))"
                 " + (((_b & 4278190080) << 24) | ((_b & 16711680) << 16)"
                 " | ((_b & 65280) << 8) | (_b & 255))"
                 " + 36029346783166592",
                 "_hi = (_u >> 9) & 281479271743489",
                 "_ok = ((_u >> 8) & 281479271743489) & "
                 "(_hi ^ 281479271743489)",
                 "_v = (_u & (_ok * 255)) | (_hi * 255)"],
                "(((_v >> 24) & 4278190080) | ((_v >> 16) & 16711680)"
                " | ((_v >> 8) & 65280) | (_v & 255))")
    if name in ("quadumax", "quadumin"):
        # Batched u8 max/min (simd.quad_max_u8 / quad_min_u8): per-field
        # borrow-guard compare produces a 0xFF/0x00 select mask.
        pick, other = (("_aw", "_bw") if name == "quadumax"
                       else ("_bw", "_aw"))
        return ([f"_a = {a}", f"_b = {b}",
                 "_aw = ((_a & 4278190080) << 24) | ((_a & 16711680) << 16)"
                 " | ((_a & 65280) << 8) | (_a & 255)",
                 "_bw = ((_b & 4278190080) << 24) | ((_b & 16711680) << 16)"
                 " | ((_b & 65280) << 8) | (_b & 255)",
                 "_ge = ((((_aw | 72058693566333184) - _bw) >> 8) & "
                 "281479271743489) * 255",
                 f"_v = ({pick} & _ge) | ({other} & "
                 "(_ge ^ 71777214294589695))"],
                "(((_v >> 24) & 4278190080) | ((_v >> 16) & 16711680)"
                " | ((_v >> 8) & 65280) | (_v & 255))")
    if name == "quadumulmsb":
        return ([f"_a = {a}", f"_b = {b}"],
                "((((_a >> 24) * (_b >> 24) >> 8) << 24)"
                " | ((((_a >> 16) & 255) * ((_b >> 16) & 255) >> 8) << 16)"
                " | ((((_a >> 8) & 255) * ((_b >> 8) & 255) >> 8) << 8)"
                " | ((_a & 255) * (_b & 255) >> 8))")
    if name == "ifir16":
        # Dual s16 dot product; the sum reaches ±2**31 (0x8000 * 0x8000
        # twice), so the clip is live.
        return ([f"_a = {a}", f"_b = {b}",
                 "_p = (((_a >> 16) ^ 32768) - 32768) * "
                 "(((_b >> 16) ^ 32768) - 32768) + "
                 "(((_a & 65535) ^ 32768) - 32768) * "
                 "(((_b & 65535) ^ 32768) - 32768)"],
                "((2147483647 if _p > 2147483647 else (-2147483648 "
                f"if _p < -2147483648 else _p)) & {_M32})")
    if name == "ufir16":
        return ([f"_a = {a}", f"_b = {b}"],
                "(((_a >> 16) * (_b >> 16) + (_a & 65535) * (_b & 65535))"
                f" & {_M32})")
    if name == "ifir8ui":
        # Quad u8 * s8 dot product: |sum| <= 4 * 255 * 128, the clip in
        # the registry semantic can never fire, so only the final mask
        # (two's-complement of a possibly negative sum) remains.
        return ([f"_a = {a}", f"_b = {b}",
                 "_p = ((_a >> 24) * (((_b >> 24) ^ 128) - 128)"
                 " + ((_a >> 16) & 255) * ((((_b >> 16) & 255) ^ 128) - 128)"
                 " + ((_a >> 8) & 255) * ((((_b >> 8) & 255) ^ 128) - 128)"
                 " + (_a & 255) * (((_b & 255) ^ 128) - 128))"],
                f"(_p & {_M32})")
    if name == "mergelsb":
        return [], (f"((({a} & 65280) << 16) | (({b} & 65280) << 8)"
                    f" | (({a} & 255) << 8) | ({b} & 255))")
    if name == "mergemsb":
        return [], (f"(({a} & 4278190080) | (({b} >> 8) & 16711680)"
                    f" | (({a} >> 8) & 65280) | (({b} >> 16) & 255))")
    if name == "ubytesel":
        return [], f"(({a} >> (({b} & 3) << 3)) & 255)"
    if name == "imulm":
        # s32 * s32 high word; Python's arithmetic >> on a negative
        # product matches the reference's sign-extended behaviour.
        return ([f"_p = (({a} ^ 2147483648) - 2147483648) * "
                 f"(({b} ^ 2147483648) - 2147483648)"],
                f"((_p >> 32) & {_M32})")
    if name == "umulm":
        return [], f"(({a} * {b}) >> 32)"
    if name == "rol":
        # _s == 0 still works: a >> 32 is 0 for a masked word.
        return ([f"_a = {a}", f"_s = {b} & 31"],
                f"(((_a << _s) | (_a >> (32 - _s))) & {_M32})")
    if name == "roli" and imm is not None:
        shift = imm & 31
        if shift == 0:
            return [], a
        return ([f"_a = {a}"],
                f"(((_a << {shift}) | (_a >> {32 - shift})) & {_M32})")
    if name == "iclipi" and imm is not None:
        bound = 1 << (imm & 31)
        return ([f"_a = ({a} ^ 2147483648) - 2147483648"],
                f"(({-bound} if _a < {-bound} else "
                f"({bound - 1} if _a > {bound - 1} else _a)) & {_M32})")
    if name == "uclipi" and imm is not None:
        # clip(s32(a), 0, 2**n - 1): always non-negative, no mask.
        bound = 1 << (imm & 31)
        return ([f"_a = ({a} ^ 2147483648) - 2147483648"],
                f"(0 if _a < 0 else ({bound - 1} if _a > {bound - 1} "
                "else _a))")
    return None


def _mem_inlinable(op) -> bool:
    """Can this memory op's address, access, and timing be generated
    statically?  (One non-template mem op routes the whole step's
    memory traffic through the generic ctx path instead.)"""
    name = op[OP_NAME]
    srcs = op[OP_SRCS]
    if name in _LOADS:
        nbytes, _shape, nsrcs = _LOADS[name]
        if len(srcs) != nsrcs or len(op[OP_DSTS]) != 1:
            return False
        return name == "ld32" or op[OP_IMM] is not None
    if name in _STORES:
        return len(srcs) == 2 and op[OP_IMM] is not None
    return False


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

class _WriteRec:
    """One register write of a region, in issue order.

    Analysis record for static commit scheduling: ``k`` names the
    generated local (``_w<k>``), ``t_w``/``t_c`` are the region-relative
    issue and landing steps, and ``dynamic`` marks demotion back to the
    interpreter's pending/heap push protocol.
    """

    __slots__ = ("k", "reg", "t_w", "t_c", "guarded", "dynamic")

    def __init__(self, k: int, reg: int, t_w: int, t_c: int,
                 guarded: bool, dynamic: bool) -> None:
        self.k = k
        self.reg = reg
        self.t_w = t_w
        self.t_c = t_c
        self.guarded = guarded
        self.dynamic = dynamic


#: Everything run-varying arrives through parameters: the compiled
#: function is a pure function of (plan, strict) and safely cached on
#: the plan across sessions.
_ARGS = ("values, pending, heap, commit_until, ctx, mem_load, mem_store, "
         "mmio_load, mmio_store, icache_fetch, dcache_access, "
         "observe_load, prefetch_queue, prefetch_tick, obs, fu_totals, "
         "now0, cycle, last_chunk, instr0, watchdog_limit, program_name, "
         "config_name, max_cycles, spill")


def _generate(plan, spec: RegionSpec, strict: bool):
    """Source + semantic bindings of one region's specialized function.

    The emitted body is ``_step_fast`` plus the processor hot loop,
    unrolled per instruction with all static operands folded.  See the
    module docstring for the fidelity contract; every block below
    cites the interpreter code it clones.
    """
    from repro.core.processor import CODE_BASE

    head, rlen = spec.head, spec.length
    abs_first, abs_last = plan.code_chunks(CODE_BASE)
    chunk = FETCH_CHUNK_BYTES
    sems: dict = {}
    out: list[str] = []
    w = out.append

    jump_op = spec.jump_op
    dyn_jump = (jump_op is not None and jump_op[OP_GUARD] != 1
                and jump_op[OP_NAME] in ("jmpi", "jmpt"))
    static_taken = (jump_op is not None and jump_op[OP_GUARD] == 1
                    and jump_op[OP_NAME] in ("jmpi", "jmpt"))

    # ---- static commit scheduling analysis (DESIGN.md §13) ----------
    # One record per destination register, in issue order, mirroring
    # emit_op's write sites exactly.  A record stays *static* when its
    # commit can be a direct ``values[reg] = _w<k>`` at its landing
    # step; demotion keeps the interpreter's push protocol for it.
    op_recs: dict[tuple[int, int], list] = {}
    all_recs: list[_WriteRec] = []
    for t in range(rlen):
        for j, op in enumerate(plan.ops[head + t]):
            if op[OP_IS_JUMP] or op[OP_NAME] == "nop" or not op[OP_DSTS]:
                continue
            # (a) multi-destination results keep the zip-driven pushes.
            multi = len(op[OP_DSTS]) > 1
            recs = []
            for reg in op[OP_DSTS]:
                rec = _WriteRec(len(all_recs), reg, t,
                                t + op[OP_LATENCY], op[OP_GUARD] != 1,
                                multi)
                recs.append(rec)
                all_recs.append(rec)
            op_recs[(t, j)] = recs
    if strict:
        # (b) a strict-mode read between issue and landing must find
        # the write in ``pending`` for the emitted hazard scan to raise
        # the interpreter's TimingViolation.
        reads_by_reg: dict[int, list[int]] = {}
        for t in range(rlen):
            for op in plan.ops[head + t]:
                if op[OP_GUARD] != 1:
                    reads_by_reg.setdefault(op[OP_GUARD], []).append(t)
                for reg in op[OP_SRCS]:
                    if reg not in (0, 1):
                        reads_by_reg.setdefault(reg, []).append(t)
        for rec in all_recs:
            if not rec.dynamic:
                for t_r in reads_by_reg.get(rec.reg, ()):
                    if rec.t_w < t_r < rec.t_c:
                        rec.dynamic = True
                        break
    # (c) same-(reg, due) collisions: the interpreter's queue commits
    # the last-issued entry; a static/dynamic mix (or a same-step tie)
    # would invert that order, so such groups demote as a whole.
    due_groups: dict[tuple[int, int], list] = {}
    for rec in all_recs:
        due_groups.setdefault((rec.reg, rec.t_c), []).append(rec)
    for group in due_groups.values():
        if (len(group) > 1
                and (len({rec.t_w for rec in group}) != len(group)
                     or any(rec.dynamic for rec in group))):
            for rec in group:
                rec.dynamic = True

    static_recs = [rec for rec in all_recs if not rec.dynamic]
    commits_at: dict[int, list] = {}
    escaped: list = []
    for rec in static_recs:
        if rec.t_c < rlen:
            commits_at.setdefault(rec.t_c, []).append(rec)
        else:
            escaped.append(rec)
    for group in commits_at.values():
        group.sort(key=lambda rec: rec.t_w)
    info = {
        "static_commits": sum(len(g) for g in commits_at.values()),
        "escaped_commits": len(escaped),
        "dynamic_writes": len(all_recs) - len(static_recs),
    }

    def emit_scan(ind, reg, kind):
        # Strict-mode hazard scan, message-identical to RegisterFile.
        w(f"{ind}if hz and {reg} in pending:")
        w(f"{ind}    for _due, _iss, _val in pending[{reg}]:")
        w(f"{ind}        if _iss < now < _due:")
        w(f"{ind}            raise TimingViolation(")
        w(f'{ind}                f"{kind}r{reg} read at t={{now}} "')
        w(f'{ind}                f"while write issued at t={{_iss}} "')
        w(f'{ind}                f"lands at t={{_due}}")')

    def emit_push(ind, reg, lat, expr):
        # The _step_fast pending-write push, register/latency baked.
        w(f"{ind}_e = (now + {lat}, now, {expr})")
        w(f"{ind}_q = pending.get({reg})")
        w(f"{ind}if _q is None:")
        w(f"{ind}    pending[{reg}] = [_e]")
        w(f"{ind}elif _e >= _q[-1]:")
        w(f"{ind}    _q.append(_e)")
        w(f"{ind}else:")
        w(f"{ind}    insort(_q, _e)")
        w(f"{ind}heappush(heap, (now + {lat}, {reg}))")

    def emit_push_dyn(ind, lat):
        # Same, for a zip-driven multi-destination semantic result.
        w(f"{ind}_e = (now + {lat}, now, _val & {_M32})")
        w(f"{ind}_q = pending.get(_dreg)")
        w(f"{ind}if _q is None:")
        w(f"{ind}    pending[_dreg] = [_e]")
        w(f"{ind}elif _e >= _q[-1]:")
        w(f"{ind}    _q.append(_e)")
        w(f"{ind}else:")
        w(f"{ind}    insort(_q, _e)")
        w(f"{ind}heappush(heap, (now + {lat}, _dreg))")

    def emit_write(ind, rec, lat, expr):
        # Statically scheduled write: hold the value in a local until
        # the direct commit emitted at its landing step.  Demoted
        # records keep the interpreter's push protocol verbatim.
        if rec.dynamic:
            emit_push(ind, rec.reg, lat, expr)
        else:
            w(f"{ind}_w{rec.k} = {expr}")

    def emit_materialize(ind, rec):
        # Recreate exactly the pending/heap entry schedule_write would
        # have left for a write still in flight (region exit + spill).
        w(f"{ind}_e = (now0 + {rec.t_c}, now0 + {rec.t_w}, _w{rec.k})")
        w(f"{ind}_q = pending.get({rec.reg})")
        w(f"{ind}if _q is None:")
        w(f"{ind}    pending[{rec.reg}] = [_e]")
        w(f"{ind}elif _e >= _q[-1]:")
        w(f"{ind}    _q.append(_e)")
        w(f"{ind}else:")
        w(f"{ind}    insort(_q, _e)")
        w(f"{ind}heappush(heap, (now0 + {rec.t_c}, {rec.reg}))")

    def emit_op(ind, op, mem_generic, ad_name, recs):
        guard = op[OP_GUARD]
        name = op[OP_NAME]
        srcs = op[OP_SRCS]
        dsts = op[OP_DSTS]
        imm = op[OP_IMM]
        lat = op[OP_LATENCY]
        inline_mem = op[OP_IS_MEM] and not mem_generic
        if inline_mem and guard != 1:
            w(f"{ind}{ad_name} = None")
        if guard != 1:
            if strict:
                emit_scan(ind, guard, "guard ")
            w(f"{ind}if values[{guard}] & 1:")
            body = ind + "    "
            w(f"{body}_exd += 1")
            w(f"{body}fu_totals[{op[OP_FU]}] += 1")
            if srcs:
                w(f"{body}_rd += {len(srcs)}")
        else:
            body = ind
        if strict:
            for reg in srcs:
                if reg not in (0, 1):
                    emit_scan(body, reg, "")
        if op[OP_IS_JUMP]:
            # Region terminator (detection guarantees this).  An
            # executed jmpi/jmpt is always taken (ctx.guard_value is
            # invariantly 1); an executed jmpf never is.  ``_tk`` flips
            # at the jump's exact issue-order position so the spill
            # path can tell whether the interpreter would already have
            # armed ``_pending_jump`` when a later op of the same step
            # raises.
            if name != "jmpf" and guard != 1:
                w(f"{body}_tk = True")
                w(f"{body}_jt += 1")
            elif name != "jmpf":
                w(f"{body}_tk = True")
            return
        if name == "nop":
            return
        if inline_mem and name in _STORES:
            nbytes, mask = _STORES[name]
            w(f"{body}{ad_name} = (values[{srcs[0]}] + {imm}) & {_M32}")
            w(f"{body}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI} "
              "and mmio_store:")
            w(f"{body}    mmio_store({ad_name}, "
              f"values[{srcs[1]}]{mask}, {nbytes})")
            w(f"{body}else:")
            w(f"{body}    mem_store({ad_name}, "
              f"values[{srcs[1]}]{mask}, {nbytes})")
            return
        if inline_mem:
            nbytes, shape, _nsrcs = _LOADS[name]
            if name == "ld32":
                addr = f"(values[{srcs[0]}] + values[{srcs[1]}]) & {_M32}"
            else:
                addr = f"(values[{srcs[0]}] + {imm}) & {_M32}"
            w(f"{body}{ad_name} = {addr}")
            w(f"{body}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI} "
              "and mmio_load:")
            w(f"{body}    _v = mmio_load({ad_name}, {nbytes})")
            w(f"{body}else:")
            w(f"{body}    _v = mem_load({ad_name}, {nbytes})")
            if shape == "s16":
                w(f"{body}_v = (((_v & 65535) ^ 32768) - 32768) & {_M32}")
                value = "_v"
            elif shape == "s8":
                w(f"{body}_v = (((_v & 255) ^ 128) - 128) & {_M32}")
                value = "_v"
            else:
                value = f"_v & {_M32}"
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_write(body, recs[0], lat, value)
            return
        src_exprs = [f"values[{reg}]" for reg in srcs]
        template = (None if op[OP_IS_MEM] or len(dsts) != 1
                    else _pure_template(name, src_exprs, imm))
        if template is not None:
            pre, expr = template
            for line in pre:
                w(f"{body}{line}")
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_write(body, recs[0], lat, expr)
            return
        # Generic fallback: the bound registry semantic, like the plan
        # interpreter (mem ops get slot/name for MemAccess records).
        if op[OP_IS_MEM]:
            w(f"{body}ctx._slot = {op[OP_SLOT]}")
            w(f"{body}ctx._op_name = {name!r}")
        sem = f"_sem_{name}"
        sems[sem] = op[OP_SEMANTIC]
        joined = ", ".join(src_exprs)
        operands = f"({joined},)" if len(srcs) == 1 else f"({joined})"
        w(f"{body}_r = {sem}(ctx, {operands}, {imm!r})")
        if len(dsts) == 1:
            if guard != 1:
                w(f"{body}_wr += 1")
            emit_write(body, recs[0], lat, f"_r[0] & {_M32}")
        elif len(dsts) > 1:
            w(f"{body}for _dreg, _val in zip({dsts!r}, _r):")
            w(f"{body}    _wr += 1")
            emit_push_dyn(body + "    ", lat)

    w(f"def _region({_ARGS}):")
    w("    _ex = 0; _jt = 0; _ic = 0; _dc = 0; _mm = 0")
    w("    _rd = 0; _wr = 0; _gr = 0; _cbf = 0; _t = 0")
    if dyn_jump or static_taken:
        w("    _tk = False")
    # None marks "not issued" (guard off / not reached yet): committed
    # values are always ints, so the sentinel is unambiguous, and
    # initializing before the try keeps the except-path materialization
    # total.
    if static_recs:
        names = [f"_w{rec.k}" for rec in static_recs]
        for start in range(0, len(names), 12):
            w("    " + " = ".join(names[start:start + 12]) + " = None")
    w("    now = now0")
    w("    try:")
    ind = "        "
    for t in range(rlen):
        i = head + t
        ops = plan.ops[i]
        w(f"{ind}# -- instr {i} --")
        if t:
            w(f"{ind}now += 1")
        w(f"{ind}if heap and heap[0][0] <= now:")
        w(f"{ind}    commit_until(now)")
        # Static commits landing this step.  Emitted *after* the
        # dynamic commit check: a dynamic entry with the same due was
        # issued earlier, so the direct assignment correctly wins, and
        # a dynamic entry due later correctly overwrites on its own
        # step.  Same-step static pairs are ordered by issue step.
        for rec in commits_at.get(t, ()):
            if rec.guarded:
                w(f"{ind}if _w{rec.k} is not None:")
                w(f"{ind}    values[{rec.reg}] = _w{rec.k}")
            else:
                w(f"{ind}values[{rec.reg}] = _w{rec.k}")
        has_guard = any(op[OP_GUARD] != 1 for op in ops)
        scan_needed = strict and (has_guard or any(
            any(reg not in (0, 1) for reg in op[OP_SRCS]) for op in ops))
        if scan_needed:
            w(f"{ind}hz = bool(heap)")
        mem_ops = [op for op in ops if op[OP_IS_MEM]]
        mem_generic = bool(mem_ops) and not all(
            _mem_inlinable(op) for op in mem_ops)
        if mem_generic:
            w(f"{ind}_acc = ctx.accesses")
            w(f"{ind}_acc.clear()")
        if has_guard:
            w(f"{ind}_exd = 0")
        inline_mem = []
        for j, op in enumerate(ops):
            ad_name = None
            if op[OP_IS_MEM] and not mem_generic:
                ad_name = f"_ad{len(inline_mem)}"
                is_load = op[OP_NAME] in _LOADS
                nbytes = (_LOADS[op[OP_NAME]][0] if is_load
                          else _STORES[op[OP_NAME]][0])
                inline_mem.append(
                    (ad_name, is_load, nbytes, op[OP_GUARD] != 1))
            emit_op(ind, op, mem_generic, ad_name, op_recs.get((t, j)))
        # Per-step counter folds (the plan path flushes at step end,
        # before the processor's timing phase).
        static_exec = sum(1 for op in ops if op[OP_GUARD] == 1)
        static_reads = sum(len(op[OP_SRCS]) for op in ops
                           if op[OP_GUARD] == 1)
        static_writes = sum(1 for op in ops
                            if op[OP_GUARD] == 1 and not op[OP_IS_JUMP]
                            and len(op[OP_DSTS]) == 1)
        if has_guard:
            w(f"{ind}_ex += {static_exec} + _exd" if static_exec
              else f"{ind}_ex += _exd")
        elif static_exec:
            w(f"{ind}_ex += {static_exec}")
        if static_reads:
            w(f"{ind}_rd += {static_reads}")
        if static_writes:
            w(f"{ind}_wr += {static_writes}")
        if ops:
            w(f"{ind}_gr += {len(ops)}")
        fu_static: dict = {}
        for op in ops:
            if op[OP_GUARD] == 1:
                fu_static[op[OP_FU]] = fu_static.get(op[OP_FU], 0) + 1
        for fu, count in sorted(fu_static.items()):
            w(f"{ind}fu_totals[{fu}] += {count}")
        if static_taken and i == spec.jump_pos:
            w(f"{ind}_jt += 1")

        # Front end.  Step 0 clones the processor's dynamic chunk walk
        # (entry last_chunk is unknown); afterwards last_chunk is
        # provably chunk_last[i - 1], so the fetch list is static.
        if t == 0:
            fetches = None
        else:
            prev_last = abs_last[i - 1]
            fetches = [c for c in range(abs_first[i],
                                        abs_last[i] + chunk, chunk)
                       if c != prev_last]
        has_fetch = t == 0 or bool(fetches)
        has_mem = bool(mem_ops)
        has_stall = has_fetch or has_mem
        if has_stall:
            w(f"{ind}_stall = 0")
        if t == 0:
            first, last = abs_first[i], abs_last[i]
            if first == last:
                w(f"{ind}if last_chunk != {first}:")
                w(f"{ind}    _stall += icache_fetch({first}, cycle)")
                w(f"{ind}    _cbf += {chunk}")
                w(f"{ind}    last_chunk = {first}")
                w(f"{ind}    _ic += _stall")
            else:
                w(f"{ind}if last_chunk != {first} "
                  f"or last_chunk != {last}:")
                w(f"{ind}    _ch = {first}")
                w(f"{ind}    while _ch <= {last}:")
                w(f"{ind}        if _ch != last_chunk:")
                w(f"{ind}            _stall += icache_fetch(_ch, "
                  "cycle + _stall)")
                w(f"{ind}            _cbf += {chunk}")
                w(f"{ind}            last_chunk = _ch")
                w(f"{ind}        _ch += {chunk}")
                w(f"{ind}    _ic += _stall")
        elif fetches:
            for index, c in enumerate(fetches):
                tail = " + _stall" if index else ""
                w(f"{ind}_stall += icache_fetch({c}, cycle{tail})")
            w(f"{ind}_cbf += {chunk * len(fetches)}")
            w(f"{ind}_ic += _stall")
        if has_fetch and has_mem:
            w(f"{ind}_fs = _stall")

        # Load/store unit, in access order.
        if mem_generic:
            w(f"{ind}for _ma in _acc:")
            w(f"{ind}    _addr = _ma.address")
            w(f"{ind}    if {_MMIO_LO} <= _addr < {_MMIO_HI}:")
            w(f"{ind}        _mm += 1")
            w(f"{ind}        continue")
            w(f"{ind}    _ms = dcache_access(_ma.is_load, _addr, "
              "_ma.nbytes, cycle + _stall)")
            w(f"{ind}    _stall += _ms")
            w(f"{ind}    _dc += _ms")
            w(f"{ind}    if _ma.is_load:")
            w(f"{ind}        observe_load(_addr, cycle + _stall)")
        else:
            for ad_name, is_load, nbytes, guarded in inline_mem:
                base = ind
                if guarded:
                    w(f"{ind}if {ad_name} is not None:")
                    base = ind + "    "
                w(f"{base}if {_MMIO_LO} <= {ad_name} < {_MMIO_HI}:")
                w(f"{base}    _mm += 1")
                w(f"{base}else:")
                w(f"{base}    _ms = dcache_access({is_load}, {ad_name}, "
                  f"{nbytes}, cycle + _stall)")
                w(f"{base}    _stall += _ms")
                w(f"{base}    _dc += _ms")
                if is_load:
                    w(f"{base}    observe_load({ad_name}, "
                      "cycle + _stall)")
        stall_term = " + _stall" if has_stall else ""
        w(f"{ind}if prefetch_queue:")
        w(f"{ind}    prefetch_tick(cycle{stall_term})")

        exec_expr = (f"{static_exec} + _exd" if has_guard
                     else str(static_exec))
        dur = "1 + _stall" if has_stall else "1"
        w(f"{ind}if obs:")
        w(f"{ind}    obs.instruction(cycle, {dur}, index=instr0 + {t},")
        w(f"{ind}                    issued_ops={len(ops)}, "
          f"executed_ops={exec_expr})")
        if has_fetch:
            amount = "_fs" if has_mem else "_stall"
            w(f'{ind}    obs.stall(cycle, "icache", {amount})')
        if has_mem:
            if has_fetch:
                w(f'{ind}    obs.stall(cycle + _fs, "dcache", '
                  "_stall - _fs)")
            else:
                w(f'{ind}    obs.stall(cycle, "dcache", _stall)')
        w(f"{ind}    if obs.stage_detail:")
        span_args = "cycle, stall=_stall" if has_stall else "cycle"
        w(f"{ind}        for _sn, _ss, _sd in "
          f"stage_spans({span_args}):")
        w(f"{ind}            obs.stage(_ss, _sn, _sd, "
          f"instr=instr0 + {t})")
        w(f"{ind}cycle += {'1 + _stall' if has_stall else '1'}")
        w(f"{ind}_t = {t + 1}")
        w(f"{ind}if cycle > watchdog_limit:")
        w(f"{ind}    raise WatchdogTimeout(program_name, config_name, "
          "cycle,")
        w(f"{ind}                          instr0 + {t + 1}, max_cycles)")

    if static_taken:
        next_expr = str(jump_op[OP_JUMP_INDEX])
    elif dyn_jump:
        next_expr = (f"({jump_op[OP_JUMP_INDEX]} if _tk "
                     f"else {head + rlen})")
    else:
        next_expr = str(head + rlen)
    if escaped:
        w(f"{ind}# Boundary materialization: writes whose due-cycle")
        w(f"{ind}# escapes the region re-enter pending/heap so exit")
        w(f"{ind}# state matches the interpreter's bit for bit.")
        for rec in escaped:
            if rec.guarded:
                w(f"{ind}if _w{rec.k} is not None:")
                emit_materialize(ind + "    ", rec)
            else:
                emit_materialize(ind, rec)
    final_chunk = abs_last[head + rlen - 1]
    w(f"{ind}return ({next_expr}, cycle, {final_chunk}, _ex, _jt, _ic,")
    w(f"{ind}        _dc, _mm, _rd, _wr, _cbf)")
    w("    except BaseException:")
    # A static write is still in flight at the raise point iff it was
    # issued (non-None) and its due cycle lies beyond the current one
    # — exactly the entries the interpreter would have in pending.
    for rec in static_recs:
        w(f"        if _w{rec.k} is not None and now < now0 + {rec.t_c}:")
        emit_materialize("            ", rec)
    w("        spill[0] = _t; spill[1] = cycle; spill[2] = _ic")
    w("        spill[3] = _dc; spill[4] = _cbf; spill[5] = _mm")
    w("        spill[6] = _ex; spill[7] = _jt; spill[8] = _rd")
    w("        spill[9] = _wr; spill[10] = _gr")
    # Sequencing state at the raise point.  The interpreter leaves
    # ``pc`` on the instruction whose step raised, and decrements
    # ``_pending_jump`` once per retired step after the jump armed it
    # at ``(delay_slots, target)`` — both are pure functions of the
    # retired count ``_t`` and the statically known jump geometry, so
    # the hot path pays nothing for them.
    if static_taken or dyn_jump:
        jp = spec.jump_pos - head
        delay = plan.jump_delay_slots
        target = jump_op[OP_JUMP_INDEX]
        w(f"        spill[11] = ({target} if _tk and _t == {rlen} "
          f"else {head} + _t)")
        w(f"        spill[12] = (({delay} - (_t - {jp}), {target}) "
          f"if _tk and _t < {rlen} else None)")
    else:
        w(f"        spill[11] = {head} + _t")
        w("        spill[12] = None")
    w("        raise")
    return "\n".join(out) + "\n", sems, info


# ---------------------------------------------------------------------------
# Compilation + runtime
# ---------------------------------------------------------------------------

def compile_region(plan, spec: RegionSpec, strict: bool = True,
                   validate: bool = True) -> tuple:
    """Compile one region, caching ``(fn, source, info)`` on the plan.

    ``info`` carries the codegen telemetry: the three commit-scheduling
    counts from :func:`_generate` plus ``compile_ns``, the wall time of
    generation + :func:`compile` + translation validation (zero cost on
    cache hits).  The cache key includes ``strict`` because hazard
    scans are baked into the source.  Caching on the *plan* (not the
    runtime) means an invalidated-then-rewarmed region, or a second
    session over the same program, is a pure dict hit.

    With ``validate`` (the default), the freshly generated source must
    pass the translation validator before it is cached or returned;
    a failing region raises :class:`TranslationValidationError` from
    :mod:`repro.analysis.transval` rather than ever executing.
    """
    key = (spec.head, spec.length, strict)
    cached = plan._trace_code.get(key)
    if cached is not None:
        return cached
    from repro.core.processor import WatchdogTimeout

    start = perf_counter_ns()
    source, sems, info = _generate(plan, spec, strict)
    if validate:
        from repro.analysis.transval import (
            TranslationValidationError,
            validate_region,
        )
        validation = validate_region(plan, spec, strict, source=source)
        if not validation.ok:
            raise TranslationValidationError(validation)
    namespace = {
        "insort": insort,
        "heappush": heappush,
        "TimingViolation": TimingViolation,
        "WatchdogTimeout": WatchdogTimeout,
        "stage_spans": stage_spans,
    }
    namespace.update(sems)
    code = compile(
        source,
        f"<trace:{region_location(plan.program.name, spec.head, spec.length)}>",
        "exec")
    exec(code, namespace)
    fn = namespace["_region"]
    info["compile_ns"] = perf_counter_ns() - start
    entry = (fn, source, info)
    plan._trace_code[key] = entry
    return entry


def regions_for(plan, config: TraceConfig) -> dict[int, RegionSpec]:
    """Detected regions for ``plan``, cached on the plan."""
    cache_key = (config.min_length, config.max_length)
    cached = plan._trace_regions
    if cached is not None and cached[0] == cache_key:
        return cached[1]
    regions = detect_regions(plan, config)
    plan._trace_regions = (cache_key, regions)
    return regions


class TraceRuntime:
    """Per-session trace-tier state: dispatch table, heat, stats.

    One runtime lives on a run session (``engine="trace"``).  It maps
    region head indices to mutable :class:`Region` records; the
    processor's trace block loop probes ``dispatch.get(pc)`` once per
    retired instruction and asks :meth:`warm` / runs ``rec.fn``.

    ``spill`` is the exception side-channel shared with every
    generated function (see the module docstring).
    """

    __slots__ = ("config", "stats", "obs", "strict", "spill", "dispatch",
                 "_plan")

    def __init__(self, plan, config: TraceConfig | None = None,
                 strict: bool = True, obs=None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.stats = TraceStats()
        self.obs = obs
        self.strict = strict
        self.spill: list = [None] * 13
        self.dispatch: dict[int, Region] = {}
        self._plan = None
        self._bind(plan)

    def _bind(self, plan) -> None:
        self._plan = plan
        self.dispatch = {
            head: Region(spec, plan)
            for head, spec in regions_for(plan, self.config).items()
        }
        self.stats.detected += len(self.dispatch)

    def ensure(self, plan, cycle: int) -> None:
        """Rebind after an ibuf mutation swapped the execution plan.

        :class:`repro.resilience.faults.IBufFault` replaces the
        executor's plan wholesale with one decoded from the corrupted
        image; compiled code specialized against the old plan must
        never run against the new one.  Plan identity is the trigger.
        """
        if plan is self._plan:
            return
        self.invalidate("ibuf-swap", cycle)
        self._bind(plan)

    def invalidate(self, reason: str, cycle: int) -> None:
        """Drop every activated region (heat resets; code cache kept).

        Called on ``restore()`` and on plan swaps.  ``plan._trace_code``
        survives so re-warming a region whose plan is unchanged is a
        compile-cache hit, not a recompilation.
        """
        self.finalize()
        for rec in self.dispatch.values():
            if rec.fn is not None:
                rec.fn = None
                rec.source = None
                self.stats.invalidations += 1
        if self.obs:
            self.obs.trace_tier(cycle, "invalidate", head=-1,
                                reason=reason)

    def warm(self, rec: Region, cycle: int):
        """Bump a region's heat; compile when it crosses threshold."""
        rec.heat += 1
        if rec.heat < self.config.threshold:
            return None
        key = (rec.head, rec.length, self.strict)
        cached = key in self._plan._trace_code
        fn, source, info = compile_region(self._plan, rec.spec,
                                          self.strict,
                                          self.config.validate)
        rec.fn = fn
        rec.source = source
        rec.static_commits = info["static_commits"]
        rec.escaped_commits = info["escaped_commits"]
        rec.dynamic_writes = info["dynamic_writes"]
        rec.compile_ns = 0 if cached else info["compile_ns"]
        stats = self.stats
        stats.activations += 1
        if not cached:
            stats.compiled += 1
            stats.compile_ns += info["compile_ns"]
            stats.static_commits += info["static_commits"]
            stats.escaped_commits += info["escaped_commits"]
            stats.dynamic_writes += info["dynamic_writes"]
        stats.regions.append({
            "head": rec.head,
            "length": rec.length,
            "cached": cached,
            "compile_ns": rec.compile_ns,
            "static_commits": info["static_commits"],
            "escaped_commits": info["escaped_commits"],
            "dynamic_writes": info["dynamic_writes"],
            "enters": 0,
        })
        if self.obs:
            # compile_ns deliberately stays out of the event payload:
            # event streams must be deterministic (golden digests).
            self.obs.trace_tier(cycle, "compile", head=rec.head,
                                length=rec.length, cached=cached,
                                static_commits=info["static_commits"],
                                escaped_commits=info["escaped_commits"],
                                dynamic_writes=info["dynamic_writes"])
        return fn

    def finalize(self) -> None:
        """Fold per-region enter counts into ``stats.regions`` (called
        when a session ends; the hot loop only bumps ``rec.enters``).
        ``max`` keeps counts monotone across plan swaps, which rebuild
        the dispatch table with fresh zero-count Region records.
        """
        dispatch = self.dispatch
        for entry in self.stats.regions:
            rec = dispatch.get(entry["head"])
            if rec is not None:
                entry["enters"] = max(entry["enters"], rec.enters)


def compile_all(plan, config: TraceConfig | None = None,
                strict: bool = True) -> dict[int, tuple]:
    """Eagerly compile every detected region (test/debug helper);
    maps head -> ``(fn, source, info)``."""
    config = config if config is not None else TraceConfig()
    return {head: compile_region(plan, spec, strict, config.validate)
            for head, spec in regions_for(plan, config).items()}
