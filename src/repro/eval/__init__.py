"""Experiment drivers: one module per table/figure of the paper."""
