"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one TM3270 design decision and measures its
effect with everything else held constant:

* write-miss policy (allocate vs fetch) — memcpy traffic/time;
* data-cache line size (128 vs 64 bytes at fixed capacity) — the
  MPEG2 capacity-miss effect of Section 6;
* instruction-cache access mode (sequential vs parallel) — SRAM
  way-read energy (Section 5.2);
* two-slot operations — SUPER_LD32R memcpy vs the plain one;
* collapsed loads — LD_FRAC8 motion estimation vs explicit
  interpolation;
* prefetch stride — the Figure 3 stride around width x block-height.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG, ProcessorConfig
from repro.core.processor import run_kernel
from repro.core.stats import RunStats
from repro.eval.runner import run_case
from repro.kernels import blockscan, memops, motion
from repro.kernels.common import DATA_BASE, args_for
from repro.kernels.registry import kernel_by_name
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import WriteMissPolicy
from repro.mem.icache import ICacheMode
from repro.mem.prefetch import (
    OFFSET_END,
    OFFSET_START,
    OFFSET_STRIDE,
)
from repro.mem.flatmem import FlatMemory
from repro.workloads.video import synthetic_frame


@dataclass(frozen=True)
class Comparison:
    """A labeled pair of runs."""

    label_a: str
    stats_a: RunStats
    label_b: str
    stats_b: RunStats

    @property
    def speedup(self) -> float:
        """Time(a) / time(b): how much faster b is."""
        return self.stats_a.seconds / self.stats_b.seconds


def write_policy_ablation(kernel: str = "memcpy") -> Comparison:
    """TM3270 with allocate- vs fetch-on-write-miss (Section 4.1)."""
    case = kernel_by_name(kernel)
    allocate = TM3270_CONFIG
    fetch = TM3270_CONFIG.with_overrides(
        name="TM3270-fetchwm", write_miss_policy=WriteMissPolicy.FETCH)
    return Comparison(
        "fetch-on-write-miss", run_case(case, fetch, bench=False),
        "allocate-on-write-miss", run_case(case, allocate, bench=False))


def line_size_ablation(kernel: str = "mpeg2_a",
                       capacity: int = 16 * 1024) -> Comparison:
    """64- vs 128-byte lines at fixed (small) capacity (Section 6)."""
    case = kernel_by_name(kernel)
    lines64 = TM3270_CONFIG.with_overrides(
        name="16K/64B", freq_mhz=240.0,
        dcache=CacheGeometry(capacity, 64, 4))
    lines128 = TM3270_CONFIG.with_overrides(
        name="16K/128B", freq_mhz=240.0,
        dcache=CacheGeometry(capacity, 128, 4))
    return Comparison(
        "128-byte lines", run_case(case, lines128, verify=False,
                                   bench=False),
        "64-byte lines", run_case(case, lines64, verify=False,
                                  bench=False))


def icache_mode_ablation(kernel: str = "filter") -> Comparison:
    """Sequential vs parallel instruction cache (Section 5.2).

    Timing is identical; the difference is SRAM way reads — the
    caller inspects ``stats.icache.data_way_reads``.
    """
    case = kernel_by_name(kernel)
    sequential = TM3270_CONFIG
    parallel = TM3270_CONFIG.with_overrides(
        name="TM3270-parallel-I$", icache_mode=ICacheMode.PARALLEL)
    return Comparison(
        "parallel I$", _run_cold_code(case, parallel),
        "sequential I$", _run_cold_code(case, sequential))


def _run_cold_code(case, config: ProcessorConfig) -> RunStats:
    from repro.core.processor import Processor

    linked = compile_program(case.build(), config.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    processor = Processor(config, memory=memory)
    result = processor.run(linked, args=args, warm_code=False)
    case.verify(memory, result)
    return result.stats


def two_slot_ablation(nbytes: int = 16 * 1024) -> Comparison:
    """memcpy with plain loads vs SUPER_LD32R (Section 2.2.1)."""
    src, dst = DATA_BASE, DATA_BASE + 2 * nbytes
    results = {}
    payload = synthetic_frame(nbytes, 1, seed=17)
    for label, build in (("plain loads", memops.build_memcpy),
                         ("super_ld32r", memops.build_memcpy_super)):
        memory = FlatMemory(1 << 19)
        memory.write_block(src, payload)
        linked = compile_program(build(), TM3270_CONFIG.target)
        run = run_kernel(linked, TM3270_CONFIG,
                         args=args_for(dst, src, nbytes), memory=memory)
        assert memory.read_block(dst, nbytes) == payload
        results[label] = run.stats
    return Comparison("plain loads", results["plain loads"],
                      "super_ld32r", results["super_ld32r"])


def collapsed_load_ablation(width: int = 64) -> Comparison:
    """Motion estimation: explicit interpolation vs LD_FRAC8 ([12])."""
    frame = synthetic_frame(width, 16, seed=77)
    cur, ref, result = DATA_BASE, DATA_BASE + 0x800, DATA_BASE + 0x1000
    results = {}
    for label, build in (("explicit interp", motion.build_me_frac_plain),
                         ("ld_frac8", motion.build_me_frac_ld8)):
        memory = FlatMemory(1 << 15)
        memory.write_block(cur, frame[:8 * width])
        memory.write_block(ref, frame[8 * width:16 * width])
        linked = compile_program(build(), TM3270_CONFIG.target)
        run = run_kernel(linked, TM3270_CONFIG,
                         args=args_for(cur, ref, width, result),
                         memory=memory)
        results[label] = run.stats
    return Comparison("explicit interp", results["explicit interp"],
                      "ld_frac8", results["ld_frac8"])


@dataclass(frozen=True)
class StridePoint:
    """One prefetch-stride measurement."""

    stride: int
    dcache_stalls: int
    cycles: int


def prefetch_stride_sweep(width: int = 256, height: int = 64,
                          work: int = 12) -> list[StridePoint]:
    """Sweep PF0_STRIDE around the Figure 3 value (width x 4)."""
    image_base = 0x0004_0000
    image = synthetic_frame(width, height, seed=88)
    points = []
    strides = [0, width, width * 2, width * 4, width * 8, 128]
    program = blockscan.build_blockscan(
        image_base, width, height, work=work, setup_prefetch=False)
    for stride in strides:
        from repro.core.processor import Processor

        linked = compile_program(program, TM3270_CONFIG.target)
        memory = FlatMemory(1 << 19)
        memory.write_block(image_base, image)
        processor = Processor(TM3270_CONFIG, memory=memory)
        if stride:
            processor.prefetcher.mmio_store(OFFSET_START, image_base)
            processor.prefetcher.mmio_store(
                OFFSET_END, image_base + width * height)
            processor.prefetcher.mmio_store(OFFSET_STRIDE, stride)
        result = processor.run(linked, args=args_for(DATA_BASE))
        expected = blockscan.reference_blockscan(
            image, width, height, work)
        assert memory.load(DATA_BASE, 4) == expected
        points.append(StridePoint(
            stride, result.stats.dcache_stall_cycles,
            result.stats.cycles))
    return points


#: Named registry of the pairwise ablations, so each can be emitted as
#: a self-describing :class:`~repro.eval.jobs.Job` ("ablation/<name>")
#: and sharded by the parallel engine.  Entries must be deterministic
#: zero-argument callables returning a :class:`Comparison`.
ABLATIONS: dict[str, object] = {
    "write_policy": write_policy_ablation,
    "line_size": line_size_ablation,
    "icache_mode": icache_mode_ablation,
    "two_slot": two_slot_ablation,
    "collapsed_load": collapsed_load_ablation,
}
