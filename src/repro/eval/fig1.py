"""Figure 1 / Section 2.1: compressed VLIW encoding effectiveness.

Encodes every Table 5 kernel with the template-based compression and
compares against the uncompressed format (every instruction at the
28-byte jump-target size).  Also verifies the decoder round-trips the
image and reports the paper's boundary sizes: 2 bytes for an empty
instruction, 28 bytes maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import compile_program
from repro.asm.target import TM3270_TARGET
from repro.eval.reporting import format_table
from repro.isa.encoding import decode_program
from repro.kernels.registry import TABLE5_KERNELS

UNCOMPRESSED_INSTRUCTION_BYTES = 28


@dataclass(frozen=True)
class EncodingRow:
    """Code-size measurement of one kernel."""

    kernel: str
    instructions: int
    operations: int
    compressed_bytes: int
    roundtrip_ok: bool

    @property
    def uncompressed_bytes(self) -> int:
        return self.instructions * UNCOMPRESSED_INSTRUCTION_BYTES

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.uncompressed_bytes

    @property
    def bytes_per_instruction(self) -> float:
        return self.compressed_bytes / self.instructions


def _roundtrip_ok(linked) -> bool:
    decoded = decode_program(linked.image)
    if len(decoded) != len(linked.instructions):
        return False
    for original, recovered in zip(linked.instructions, decoded):
        original_ops = sorted(
            (op.name, op.slot, op.dsts, op.srcs, op.guard, op.imm)
            for op in original.ops if op.name != "nop")
        recovered_ops = sorted(
            (op.name, op.slot, op.dsts, op.srcs, op.guard, op.imm)
            for op in recovered.ops)
        if original_ops != recovered_ops:
            return False
    return True


def run_fig1() -> list[EncodingRow]:
    """Encode the whole kernel suite; returns per-kernel code sizes."""
    rows = []
    for case in TABLE5_KERNELS:
        linked = compile_program(case.build(), TM3270_TARGET)
        rows.append(EncodingRow(
            kernel=case.name,
            instructions=linked.instruction_count,
            operations=linked.operation_count,
            compressed_bytes=linked.nbytes,
            roundtrip_ok=_roundtrip_ok(linked),
        ))
    return rows


def format_fig1(rows: list[EncodingRow]) -> str:
    """Render the compression study."""
    body = [[
        row.kernel, row.instructions, row.operations,
        row.compressed_bytes, row.uncompressed_bytes,
        round(row.bytes_per_instruction, 1),
        f"{100 * row.compression_ratio:.0f}%",
        "yes" if row.roundtrip_ok else "NO",
    ] for row in rows]
    total_compressed = sum(row.compressed_bytes for row in rows)
    total_uncompressed = sum(row.uncompressed_bytes for row in rows)
    body.append([
        "total", sum(row.instructions for row in rows),
        sum(row.operations for row in rows),
        total_compressed, total_uncompressed,
        round(total_compressed / sum(r.instructions for r in rows), 1),
        f"{100 * total_compressed / total_uncompressed:.0f}%", "",
    ])
    return format_table(
        "Figure 1 / Section 2.1: template-based operation compression",
        ["kernel", "instrs", "ops", "compressed B", "uncompressed B",
         "B/instr", "ratio", "roundtrip"],
        body)
