"""Figure 3: memory-region based prefetching on block-based processing.

Runs the 4x4 block-scan kernel over an image with and without the
prefetch region programmed (stride = image width x 4, Section 2.3) and
reports data-cache stall cycles.  Also sweeps the per-block compute
("work") knob to show the paper's condition: when the time to process
a row of blocks exceeds the time to prefetch the next row, stall
cycles (beyond the first rows) vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG, ProcessorConfig
from repro.core.processor import run_kernel
from repro.eval.reporting import format_table
from repro.kernels import blockscan
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.video import synthetic_frame

IMAGE_ADDR = 0x0004_0000
RESULT_ADDR = DATA_BASE
WIDTH, HEIGHT = 256, 64


@dataclass(frozen=True)
class Fig3Point:
    """One (work, prefetch) measurement."""

    work: int
    prefetch: bool
    cycles: int
    dcache_stalls: int
    prefetches_issued: int
    result_ok: bool

    @property
    def stall_fraction(self) -> float:
        return self.dcache_stalls / self.cycles


def run_point(work: int, prefetch: bool,
              config: ProcessorConfig = TM3270_CONFIG,
              width: int = WIDTH, height: int = HEIGHT) -> Fig3Point:
    """Measure one block-scan configuration."""
    program = compile_program(
        blockscan.build_blockscan(IMAGE_ADDR, width, height, work=work,
                                  setup_prefetch=prefetch),
        config.target)
    image = synthetic_frame(width, height, seed=88)
    memory = FlatMemory(1 << 19)
    memory.write_block(IMAGE_ADDR, image)
    result = run_kernel(program, config, args=args_for(RESULT_ADDR),
                        memory=memory)
    expected = blockscan.reference_blockscan(image, width, height, work)
    stats = result.stats
    return Fig3Point(
        work=work,
        prefetch=prefetch,
        cycles=stats.cycles,
        dcache_stalls=stats.dcache_stall_cycles,
        prefetches_issued=stats.prefetch.issued if stats.prefetch else 0,
        result_ok=memory.load(RESULT_ADDR, 4) == expected,
    )


def run_fig3(works: tuple[int, ...] = (0, 4, 8, 12, 16, 24)
             ) -> list[tuple[Fig3Point, Fig3Point]]:
    """(no-prefetch, prefetch) pairs across the compute sweep."""
    return [(run_point(work, False), run_point(work, True))
            for work in works]


def format_fig3(pairs: list[tuple[Fig3Point, Fig3Point]]) -> str:
    """Render the stall-cycle comparison."""
    body = []
    for without, with_pf in pairs:
        assert without.result_ok and with_pf.result_ok
        removed = 1.0 - (with_pf.dcache_stalls
                         / max(without.dcache_stalls, 1))
        body.append([
            without.work,
            without.cycles, without.dcache_stalls,
            with_pf.cycles, with_pf.dcache_stalls,
            with_pf.prefetches_issued,
            f"{100 * removed:.0f}%",
        ])
    return format_table(
        "Figure 3: 4x4 block scan, region prefetch stride = width*4 "
        f"({WIDTH}x{HEIGHT} image, TM3270)",
        ["work/blk", "cycles (no pf)", "stalls (no pf)",
         "cycles (pf)", "stalls (pf)", "prefetches", "stalls removed"],
        body)
