"""Figure 6: the TM3270 floorplan, rendered from the area model.

The paper's Figure 6 is a die photo-style floorplan of the major
modules.  This driver renders an ASCII floorplan whose module tile
areas are proportional to the parametric area model's breakdown —
the same data as Table 4's area column, arranged spatially.
"""

from __future__ import annotations

from repro.core.area import AreaBreakdown, area_breakdown
from repro.core.config import ProcessorConfig, TM3270_CONFIG

#: Render resolution: characters per row of the floorplan box.
WIDTH_CHARS = 64
HEIGHT_CHARS = 24


def _tile_rows(breakdown: AreaBreakdown) -> list[tuple[str, float]]:
    """Modules ordered roughly as in the paper's floorplan."""
    return [
        ("LS (D$ SRAM + logic)", breakdown.load_store),
        ("IFU (I$ SRAM + fetch)", breakdown.ifu),
        ("Execute", breakdown.execute),
        ("Regfile", breakdown.regfile),
        ("BIU", breakdown.biu),
        ("MMIO", breakdown.mmio),
        ("Decode", breakdown.decode),
    ]


def render_floorplan(config: ProcessorConfig = TM3270_CONFIG) -> str:
    """ASCII floorplan with row heights proportional to module area."""
    breakdown = area_breakdown(config)
    total = breakdown.total
    lines = [
        f"Figure 6: {config.name} floorplan "
        f"({total:.2f} mm2, areas to scale)",
        "+" + "-" * WIDTH_CHARS + "+",
    ]
    remaining_rows = HEIGHT_CHARS
    tiles = _tile_rows(breakdown)
    for index, (label, area) in enumerate(tiles):
        if index == len(tiles) - 1:
            rows = max(remaining_rows, 1)
        else:
            rows = max(1, round(HEIGHT_CHARS * area / total))
            rows = min(rows, remaining_rows - (len(tiles) - index - 1))
        remaining_rows -= rows
        text = f" {label}: {area:.2f} mm2 "
        for row in range(rows):
            body = text if row == rows // 2 else ""
            lines.append("|" + body.ljust(WIDTH_CHARS, " ")[:WIDTH_CHARS]
                         + "|")
        if index != len(tiles) - 1:
            lines.append("+" + "-" * WIDTH_CHARS + "+")
    lines.append("+" + "-" * WIDTH_CHARS + "+")
    return "\n".join(lines)
