"""Figure 7: relative performance of configurations A-D (Section 6).

Every Table 5 kernel is compiled *once per target* from the same
source (baseline operations only — the paper's "re-compilation, no
TM3270-specific optimization" methodology), executed on all four
configurations, and verified.  Performance is wall-clock execution
time at each configuration's operating frequency; Figure 7 reports it
relative to configuration A (the TM3260).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EVALUATION_CONFIGS, ProcessorConfig
from repro.core.stats import RunStats
from repro.eval.reporting import format_table
from repro.eval.runner import run_case
from repro.kernels.registry import TABLE5_KERNELS, KernelCase


@dataclass(frozen=True)
class Fig7Row:
    """One kernel's results across configurations."""

    kernel: str
    stats: dict  # config name -> RunStats

    def seconds(self, config_name: str) -> float:
        return self.stats[config_name].seconds

    def relative(self, config_name: str) -> float:
        """Speedup of ``config_name`` over configuration A."""
        return self.seconds("A") / self.seconds(config_name)


def run_fig7(configs: tuple[ProcessorConfig, ...] = EVALUATION_CONFIGS,
             kernels: tuple[KernelCase, ...] = TABLE5_KERNELS,
             verify: bool = True) -> list[Fig7Row]:
    """Run the full suite; returns one row per kernel."""
    rows = []
    for case in kernels:
        stats: dict[str, RunStats] = {}
        for config in configs:
            stats[config.name] = run_case(case, config, verify=verify)
        rows.append(Fig7Row(case.name, stats))
    return rows


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def average_gain(rows: list[Fig7Row], config_name: str = "D") -> float:
    """Mean speedup of a configuration over A across all kernels.

    The paper reports "an average 2.29 performance gain over the
    TM3260" for the TM3270 (configuration D).
    """
    return geometric_mean([row.relative(config_name) for row in rows])


def format_fig7(rows: list[Fig7Row]) -> str:
    """Render the relative-performance series of Figure 7."""
    body = []
    for row in rows:
        body.append([
            row.kernel,
            1.0,
            round(row.relative("B"), 2),
            round(row.relative("C"), 2),
            round(row.relative("D"), 2),
        ])
    body.append([
        "geomean", 1.0,
        round(average_gain(rows, "B"), 2),
        round(average_gain(rows, "C"), 2),
        round(average_gain(rows, "D"), 2),
    ])
    return format_table(
        "Figure 7: performance relative to configuration A (TM3260); "
        "paper average for D: 2.29",
        ["kernel", "A", "B", "C", "D"], body, precision=2)
