"""Self-describing evaluation jobs: the unit of sharded evaluation.

Every evaluation artifact in this repository — a Table 5 kernel x
configuration point, a simulator-throughput measurement, an ablation
comparison, a figure panel — can be expressed as a :class:`Job`: a
picklable, JSON-parameterized description of one unit of work.  The
parallel engine (:mod:`repro.eval.parallel`) shards jobs across a
worker pool; because a job carries only a dotted-path runner name and
plain-data parameters, it crosses a ``multiprocessing`` boundary
without dragging closures, compiled programs, or processor state along.

A runner is any module-level function returning a :class:`JobOutput`:
the run's bench records (``tm3270.bench/1`` dicts), its obs event
stream (:class:`~repro.obs.events.Event` list, raw per-run cycle
stamps — the merge step re-timestamps), and human-readable summary
lines.  Runners must be *deterministic* for the conformance corpus:
given the same parameters they produce byte-identical records, events,
and summaries in any process (``tests/eval/test_parallel_conformance``
holds the engine to that).

Later PRs get sharding for free: define a runner, emit ``Job``s.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from dataclasses import dataclass, field

#: Default per-job wall-clock budget (generous: workers time-share
#: cores, so a loaded host can legitimately run several times slower
#: than an idle serial sweep).
DEFAULT_TIMEOUT = 300.0

#: Default extra attempts after a first failure/timeout/crash.
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class Job:
    """One self-contained, picklable unit of evaluation work.

    ``runner`` is a ``"package.module:function"`` dotted path resolved
    in the worker process; ``params`` are its keyword arguments and
    must stay JSON-serializable so the job remains self-describing
    (:meth:`describe` round-trips through ``json``).
    """

    job_id: str
    kind: str
    runner: str
    params: dict = field(default_factory=dict)
    timeout: float = DEFAULT_TIMEOUT
    retries: int = DEFAULT_RETRIES
    description: str = ""

    def describe(self) -> dict:
        """JSON-safe description (raises if ``params`` are not)."""
        payload = {
            "job_id": self.job_id,
            "kind": self.kind,
            "runner": self.runner,
            "params": self.params,
            "timeout": self.timeout,
            "retries": self.retries,
            "description": self.description,
        }
        return json.loads(json.dumps(payload))


@dataclass
class JobOutput:
    """What a runner returns: records, raw events, summary lines."""

    records: list = field(default_factory=list)
    events: list = field(default_factory=list)
    summaries: list = field(default_factory=list)


def resolve_runner(spec: str):
    """``"module:function"`` -> the callable (importing the module)."""
    module_name, sep, func_name = spec.partition(":")
    if not sep or not module_name or not func_name:
        raise ValueError(f"runner spec {spec!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as error:
        raise ValueError(
            f"runner {spec!r}: module {module_name!r} has no "
            f"attribute {func_name!r}") from error


def execute_job(job: Job) -> JobOutput:
    """Resolve and invoke one job's runner (in whatever process)."""
    runner = resolve_runner(job.runner)
    output = runner(**job.params)
    if not isinstance(output, JobOutput):
        raise TypeError(
            f"job {job.job_id}: runner {job.runner} returned "
            f"{type(output).__name__}, expected JobOutput")
    return output


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def run_kernel_job(kernel: str, config: str, verify: bool = True,
                   trace: bool = False,
                   engine: str = "plan") -> JobOutput:
    """One Table 5 kernel on one evaluation configuration.

    With ``trace`` the run captures its obs event stream (cycle
    stamps are per-run; the merge step rebases them).  ``engine``
    selects the execution tier (``interp`` / ``plan`` / ``trace`` —
    note the unfortunate collision: the ``trace`` *flag* means "record
    events", the ``trace`` *engine* means "compile hot regions"); all
    three must produce byte-identical records, which is exactly what
    the engine-pinned conformance jobs hold them to.
    """
    from repro.asm.link import compile_program
    from repro.core.config import EVALUATION_CONFIGS
    from repro.core.processor import run_kernel
    from repro.kernels.registry import kernel_by_name
    from repro.mem.flatmem import FlatMemory
    from repro.obs.events import EventBus
    from repro.obs.export import bench_record

    case = kernel_by_name(kernel)
    by_name = {cfg.name: cfg for cfg in EVALUATION_CONFIGS}
    cfg = by_name[config]
    linked = compile_program(case.build(), cfg.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    bus = EventBus() if trace else None
    result = run_kernel(linked, cfg, args=args, memory=memory, obs=bus,
                        engine=engine)
    if verify:
        case.verify(memory, result)
    return JobOutput(records=[bench_record(result.stats)],
                     events=list(bus.events) if bus else [],
                     summaries=[result.stats.summary()])


def run_perf_job(case: str, repeats: int = 3) -> JobOutput:
    """One simulator-throughput measurement (fast vs reference path).

    Wall-clock fields are inherently nondeterministic; the simulated
    statistics inside the record stay deterministic.
    """
    from repro.eval.perf import (
        format_measurement,
        measure_case,
        perf_cases,
        perf_record,
    )

    by_name = {candidate.name: candidate for candidate in perf_cases()}
    measurement = measure_case(by_name[case], repeats=repeats)
    return JobOutput(records=[perf_record(measurement)],
                     summaries=[format_measurement(measurement)])


def run_ablation_job(name: str) -> JobOutput:
    """One named ablation comparison (see ``eval/ablations.ABLATIONS``)."""
    from repro.eval.ablations import ABLATIONS
    from repro.obs.export import bench_record

    comparison = ABLATIONS[name]()
    records = [bench_record(comparison.stats_a),
               bench_record(comparison.stats_b)]
    summary = (f"ablation {name}: {comparison.label_a} -> "
               f"{comparison.label_b}  speedup {comparison.speedup:.2f}x")
    return JobOutput(records=records, summaries=[summary])


def run_fig1_job() -> JobOutput:
    """Figure 1 panel: compressed-encoding size rows (deterministic)."""
    from repro.eval import fig1

    rows = fig1.run_fig1()
    summaries = [fig1.format_fig1(rows)]
    for row in rows:
        assert row.roundtrip_ok, row
    return JobOutput(summaries=summaries)


def run_fault_job(mode: str = "ok", seconds: float = 0.0,
                  scratch: str = "") -> JobOutput:
    """Test-support runner that misbehaves on demand.

    Exists so the fault-injection suite
    (``tests/eval/test_parallel_faults.py``) can exercise the pool's
    retry/quarantine machinery with jobs that are still ordinary,
    picklable :class:`Job` instances:

    * ``ok`` — succeed immediately;
    * ``raise`` — raise from inside the runner;
    * ``hang`` — sleep ``seconds`` (drive the per-job timeout);
    * ``exit`` — kill the worker process outright (``os._exit``);
    * ``flaky`` — fail on the first attempt, succeed on the next
      (``scratch`` names a marker file recording the first attempt).
    """
    if mode == "raise":
        raise RuntimeError("injected failure (run_fault_job)")
    if mode == "hang":
        time.sleep(seconds)
    elif mode == "exit":
        os._exit(3)
    elif mode == "flaky":
        if not os.path.exists(scratch):
            with open(scratch, "w", encoding="utf-8") as handle:
                handle.write("first attempt\n")
            raise RuntimeError("injected flaky failure (first attempt)")
    elif mode != "ok":
        raise ValueError(f"unknown fault mode {mode!r}")
    return JobOutput(summaries=[f"fault:{mode} completed"])


# ---------------------------------------------------------------------------
# Enumeration: the standard job graphs
# ---------------------------------------------------------------------------

def kernel_jobs(kernels: list[str] | None = None,
                configs: list[str] | None = None,
                verify: bool = True,
                trace: bool = False,
                engine: str = "plan") -> list[Job]:
    """Kernel x configuration grid, in the serial sweep's order.

    Non-default engines get a ``/<engine>`` job-id suffix so an
    engine-pinned job and its plan-engine twin coexist in one merged
    sweep without colliding in ``bench_compare``'s index.
    """
    from repro.core.config import EVALUATION_CONFIGS
    from repro.kernels.registry import TABLE5_KERNELS

    kernels = kernels or [case.name for case in TABLE5_KERNELS]
    configs = configs or [config.name for config in EVALUATION_CONFIGS
                          if config.name in ("A", "D")]
    suffix = "" if engine == "plan" else f"/{engine}"
    note = "" if engine == "plan" else f" ({engine} engine)"
    return [
        Job(job_id=f"kernel/{kernel}/{config}{suffix}", kind="kernel",
            runner="repro.eval.jobs:run_kernel_job",
            params={"kernel": kernel, "config": config,
                    "verify": verify, "trace": trace,
                    "engine": engine},
            description=(f"Table 5 kernel {kernel} on config "
                         f"{config}{note}"))
        for kernel in kernels
        for config in configs
    ]


def perf_jobs(cases: list[str] | None = None,
              repeats: int = 3) -> list[Job]:
    """Simulator-throughput measurements, one job per perf case."""
    from repro.eval.perf import perf_cases

    names = cases or [case.name for case in perf_cases()]
    return [
        Job(job_id=f"perf/{name}", kind="perf",
            runner="repro.eval.jobs:run_perf_job",
            params={"case": name, "repeats": repeats},
            description=f"simulator throughput, {name}")
        for name in names
    ]


def ablation_jobs(names: list[str] | None = None) -> list[Job]:
    """The named ablation comparisons as jobs."""
    from repro.eval.ablations import ABLATIONS

    return [
        Job(job_id=f"ablation/{name}", kind="ablation",
            runner="repro.eval.jobs:run_ablation_job",
            params={"name": name},
            description=f"ablation study: {name}")
        for name in (names or sorted(ABLATIONS))
    ]


def figure_jobs() -> list[Job]:
    """Deterministic figure/table panels currently expressed as jobs."""
    return [
        Job(job_id="fig1/encoding", kind="figure",
            runner="repro.eval.jobs:run_fig1_job", params={},
            description="Figure 1: compressed VLIW encoding sizes"),
    ]


def enumerate_jobs() -> list[Job]:
    """The full standard evaluation graph, in deterministic order."""
    return (kernel_jobs() + ablation_jobs() + figure_jobs()
            + perf_jobs(repeats=1))


def injection_jobs(kernels: list[str] | None = None,
                   configs: list[str] | None = None,
                   structures: list[str] | None = None,
                   protections: list[str] | None = None,
                   count: int | None = None,
                   base_seed: int | None = None) -> list[Job]:
    """Fault-injection campaign cells as jobs (resilience layer).

    Thin facade over
    :func:`repro.resilience.campaign.campaign_jobs` so the standard
    job-graph entry point lives beside the other enumerators.
    """
    from repro.resilience.campaign import (
        DEFAULT_BASE_SEED,
        DEFAULT_COUNT,
        campaign_jobs,
    )

    return campaign_jobs(
        kernels=kernels, configs=configs, structures=structures,
        protections=protections,
        count=DEFAULT_COUNT if count is None else count,
        base_seed=DEFAULT_BASE_SEED if base_seed is None else base_seed)


def conformance_jobs() -> list[Job]:
    """The golden-trace corpus: a fixed, fast, *deterministic* job set.

    Chosen so a full run stays in the low seconds while covering every
    deterministic runner family, both traced and untraced kernels, and
    *all three execution engines* (perf jobs carry wall-clock timings
    and are deliberately absent).  The engine-pinned jobs are the
    corpus's lockstep anchor: the interp / plan / trace tiers must
    produce byte-identical golden records at every worker count, so a
    codegen bug in the trace tier breaks ``make conformance``, not
    just the dedicated differential suite.  The set, its order, and
    its parameters are part of the golden contract — changing any of
    them requires ``make golden``.
    """
    jobs = kernel_jobs(
        kernels=["memset", "memcpy", "filter", "filmdet",
                 "majority_sel", "rgb2cmyk"],
        configs=["A", "D"])
    traced = kernel_jobs(kernels=["memset", "filmdet"], configs=["D"],
                         trace=True)
    for index, job in enumerate(traced):
        traced[index] = Job(
            job_id=job.job_id + "/trace", kind=job.kind,
            runner=job.runner, params=job.params,
            timeout=job.timeout, retries=job.retries,
            description=job.description + " (traced)")
    engine_pinned = [
        job
        for engine in ("interp", "trace")
        for job in kernel_jobs(kernels=["memcpy", "filter"],
                               configs=["A"], engine=engine)
    ]
    return (jobs + traced + engine_pinned
            + ablation_jobs(["two_slot"]) + figure_jobs())
