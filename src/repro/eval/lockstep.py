"""Three-way lockstep conformance: interp vs plan vs trace.

The trace engine (:mod:`repro.core.trace`) is correct *by test*, not
by construction: its codegen aggressively constant-folds the plan
interpreter and the processor hot loop, so the repository pins it with
a differential surface instead of a proof.  This module is that
surface's engine-room: a catalog of thirty real programs (the full
Table 5 suite on both TriMedia family members, plus the TM3270-only
companion kernels) and a driver that runs all three execution engines
in *lockstep* — block by block, comparing machine state at every
instruction boundary, not just at the end.

Lockstep matters because end-of-run equality can mask compensating
errors (a cycle lost here, regained there).  The driver steps the
trace engine first — compiled regions are entered only when they fit
the block, so a block retires exactly its limit until halt — then
advances the other two engines by the *same retired count* and
compares program counters, issue counts, every session counter, and
the committed register file.  At halt it additionally compares final
:class:`RunStats`, memory images, and the obs event streams (with
:data:`~repro.obs.events.CAT_TRACE` filtered out: compile/invalidate
events describe the simulator's own tiering, not the simulated
machine, and legitimately differ across engines).

``tests/core/test_trace_differential.py`` runs a five-program smoke
subset in tier 1 (and under ``make ci``); the full catalog is the
``@slow`` sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.asm.link import compile_program
from repro.core.config import (
    TM3260_CONFIG,
    TM3270_CONFIG,
    ProcessorConfig,
)
from repro.core.processor import ENGINES, Processor
from repro.kernels import motion, texture
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.obs.events import CAT_TRACE, EventBus
from repro.workloads.video import synthetic_frame

#: Register-file width compared at every boundary.
_NUM_REGS = 128


@dataclass(frozen=True)
class LockstepCase:
    """One program x configuration point of the conformance catalog."""

    name: str
    config: ProcessorConfig
    build: Callable
    prepare: Callable[[FlatMemory], dict[int, int]]
    memory_size: int = 1 << 19


@dataclass
class LockstepReport:
    """What one lockstep run proved (returned on success)."""

    case_name: str
    config_name: str
    instructions: int
    boundaries_compared: int
    trace_enters: int
    trace_compiled: int


# ---------------------------------------------------------------------------
# Catalog: 30 programs
# ---------------------------------------------------------------------------

_TEX_SRC = DATA_BASE
_TEX_DST = DATA_BASE + 0x4000
_TEX_QUANT = DATA_BASE + 0x8000
_TEX_COEFF = DATA_BASE + 0x8100
_TEX_NBLOCKS = 6


def _prepare_texture(memory: FlatMemory) -> dict[int, int]:
    rng = random.Random(41)
    src = [rng.randrange(-256, 256) for _ in range(_TEX_NBLOCKS * 64)]
    quant = [rng.randrange(1, 32) for _ in range(8)]
    coeff_w = [rng.randrange(-64, 64) for _ in range(8)]
    coeff_v = [rng.randrange(-64, 64) for _ in range(8)]
    for index, value in enumerate(src):
        memory.store(_TEX_SRC + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(quant):
        memory.store(_TEX_QUANT + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_w):
        memory.store(_TEX_COEFF + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_v):
        memory.store(_TEX_COEFF + 16 + 2 * index, value & 0xFFFF, 2)
    return args_for(_TEX_SRC, _TEX_DST, _TEX_QUANT, _TEX_COEFF,
                    _TEX_NBLOCKS)


_ME_WIDTH = 64
_ME_CUR = DATA_BASE
_ME_REF = DATA_BASE + 0x800
_ME_RESULT = DATA_BASE + 0x1000


def _prepare_motion(memory: FlatMemory) -> dict[int, int]:
    frame = synthetic_frame(_ME_WIDTH, 16, seed=77)
    memory.write_block(_ME_CUR, frame[:8 * _ME_WIDTH])
    memory.write_block(_ME_REF, frame[8 * _ME_WIDTH:16 * _ME_WIDTH])
    return args_for(_ME_CUR, _ME_REF, _ME_WIDTH, _ME_RESULT)


def _prepare_mp3(memory: FlatMemory) -> dict[int, int]:
    from repro.eval.mp3 import (
        COEFFS_ADDR,
        DEFAULT_FRAMES,
        OUT_ADDR,
        SAMPLES_ADDR,
        mp3_workload,
    )

    samples, coeff_pairs = mp3_workload(99)
    for index, value in enumerate(samples):
        memory.store(SAMPLES_ADDR + 2 * index, value & 0xFFFF, 2)
    for index, (hi, lo) in enumerate(coeff_pairs):
        memory.store(COEFFS_ADDR + 4 * index,
                     ((hi & 0xFFFF) << 16) | (lo & 0xFFFF), 4)
    return args_for(SAMPLES_ADDR, COEFFS_ADDR, OUT_ADDR, DEFAULT_FRAMES)


def _build_mp3():
    from repro.kernels import mp3proxy

    return mp3proxy.build_mp3proxy()


def _extra_cases() -> list[LockstepCase]:
    """TM3270-only companions: new-operation kernels and the MP3 proxy
    (these use TM3270 custom ops, so they cannot recompile for the
    TM3260 the way the Table 5 suite does)."""
    from repro.eval.perf import _build_cabac, _prepare_cabac
    from repro.kernels import cabac_kernel, memops

    return [
        LockstepCase("memcpy_super", TM3270_CONFIG,
                     memops.build_memcpy_super,
                     _table5("memcpy").prepare,
                     _table5("memcpy").memory_size),
        LockstepCase("cabac_plain", TM3270_CONFIG,
                     _build_cabac(cabac_kernel.build_cabac_plain),
                     _prepare_cabac, 1 << 18),
        LockstepCase("cabac_super", TM3270_CONFIG,
                     _build_cabac(cabac_kernel.build_cabac_super),
                     _prepare_cabac, 1 << 18),
        LockstepCase("texture_plain", TM3270_CONFIG,
                     texture.build_texture_plain, _prepare_texture,
                     1 << 17),
        LockstepCase("texture_super", TM3270_CONFIG,
                     texture.build_texture_super, _prepare_texture,
                     1 << 17),
        LockstepCase("me_frac_plain", TM3270_CONFIG,
                     motion.build_me_frac_plain, _prepare_motion,
                     1 << 15),
        LockstepCase("me_frac_ld8", TM3270_CONFIG,
                     motion.build_me_frac_ld8, _prepare_motion,
                     1 << 15),
        LockstepCase("mp3proxy", TM3270_CONFIG, _build_mp3,
                     _prepare_mp3, 1 << 17),
    ]


def _table5(name: str):
    from repro.kernels.registry import kernel_by_name

    return kernel_by_name(name)


def lockstep_catalog() -> list[LockstepCase]:
    """All 30 conformance programs, in deterministic order.

    The Table 5 suite (11 kernels) runs on both family members — 22
    points exercising both jump-delay depths (TM3260: 3 slots,
    TM3270: 5) — plus the 8 TM3270-only companion kernels.
    """
    from repro.kernels.registry import TABLE5_KERNELS

    cases = [
        LockstepCase(case.name, config, case.build, case.prepare,
                     case.memory_size)
        for case in TABLE5_KERNELS
        for config in (TM3270_CONFIG, TM3260_CONFIG)
    ]
    return cases + _extra_cases()


#: Tier-1 / ``make ci`` smoke subset: five fast points spanning both
#: configs, straight-line and looping code, custom ops, and
#: generic-semantic regions (CABAC).
SMOKE_NAMES = (
    ("memset", "TM3270"),
    ("filter", "TM3260"),
    ("me_frac_ld8", "TM3270"),
    ("texture_super", "TM3270"),
    ("mp3proxy", "TM3270"),
)


def smoke_catalog() -> list[LockstepCase]:
    wanted = set(SMOKE_NAMES)
    picked = [case for case in lockstep_catalog()
              if (case.name, case.config.name) in wanted]
    assert len(picked) == len(SMOKE_NAMES), \
        "smoke subset out of sync with catalog"
    return picked


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

class LockstepMismatch(AssertionError):
    """Raised when an engine diverges; message pinpoints the boundary."""


def _machine_state(processor: Processor) -> dict:
    """Comparable machine state at an instruction boundary."""
    session = processor.session
    executor = session.executor
    return {
        "pc": executor.pc,
        "issue_count": executor.issue_count,
        "pending_jump": executor._pending_jump,
        "cycle": session.cycle,
        "instructions": session.instructions,
        "ops_issued": session.ops_issued,
        "ops_executed": session.ops_executed,
        "jumps_taken": session.jumps_taken,
        "icache_stall_cycles": session.icache_stall_cycles,
        "dcache_stall_cycles": session.dcache_stall_cycles,
        "code_bytes_fetched": session.code_bytes_fetched,
        "mmio_accesses": session.mmio_accesses,
        "values": list(executor.regfile._values),
        # In-flight write state (the trace tier's static commit
        # scheduling must materialize escaped writes back into
        # pending/heap at every boundary — RegisterFile docstring).
        "in_flight": executor.regfile.in_flight(),
    }


def _diff(kind: str, case: LockstepCase, boundary: int,
          states: dict) -> None:
    baseline_name, baseline = next(iter(states.items()))
    for engine, state in states.items():
        if state == baseline:
            continue
        detail = ""
        if isinstance(state, dict):
            for key in baseline:
                if state[key] != baseline[key]:
                    detail = (f" (first differing field: {key}: "
                              f"{baseline_name}={baseline[key]!r} "
                              f"{engine}={state[key]!r})")
                    break
        raise LockstepMismatch(
            f"{case.name}@{case.config.name}: {kind} diverged between "
            f"{baseline_name} and {engine} at boundary "
            f"{boundary}{detail}")


def run_lockstep(case: LockstepCase, block: int = 64,
                 max_instructions: int = 50_000_000,
                 trace_config=None) -> LockstepReport:
    """Run one case on all three engines in lockstep; raise on any
    divergence, return a report on success."""
    linked = compile_program(case.build(), case.config.target)

    processors: dict[str, Processor] = {}
    buses: dict[str, EventBus] = {}
    for engine in ENGINES:
        memory = FlatMemory(case.memory_size)
        args = case.prepare(memory)
        bus = EventBus()
        processor = Processor(case.config, memory=memory, obs=bus)
        processor.begin(linked, args=args,
                        max_instructions=max_instructions,
                        engine=engine, trace_config=trace_config)
        processors[engine] = processor
        buses[engine] = bus

    trace_proc = processors["trace"]
    boundaries = 0
    while True:
        before = trace_proc.session.instructions
        trace_halted = trace_proc.step_block(limit=block)
        retired = trace_proc.session.instructions - before
        boundaries += 1
        if retired == 0 and not trace_halted:
            raise LockstepMismatch(
                f"{case.name}@{case.config.name}: no progress "
                f"(boundary {boundaries})")
        halted = {"trace": trace_halted}
        for engine in ("interp", "plan"):
            flag = processors[engine].step_block(limit=retired or 1)
            if trace_halted and not flag:
                # The interpreter reports halt lazily when the limit
                # runs out exactly at the final instruction; the trace
                # engine's region exit reports it eagerly.  Probe one
                # more step: at a true end it retires nothing and
                # flips halted; a genuine divergence retires an extra
                # instruction the state comparison below will catch.
                flag = processors[engine].step_block(limit=1)
            halted[engine] = flag
        _diff("halt state", case, boundaries,
              {engine: flag for engine, flag in halted.items()})
        _diff("machine state", case, boundaries,
              {engine: _machine_state(processor)
               for engine, processor in processors.items()})
        if trace_halted:
            break

    results = {engine: processor.result()
               for engine, processor in processors.items()}
    _diff("final RunStats", case, boundaries,
          {engine: result.stats for engine, result in results.items()})
    _diff("final registers", case, boundaries,
          {engine: [result.regfile.peek(reg)
                    for reg in range(_NUM_REGS)]
           for engine, result in results.items()})
    _diff("final memory", case, boundaries,
          {engine: result.memory.read_block(0, case.memory_size)
           for engine, result in results.items()})
    _diff("event stream", case, boundaries,
          {engine: [event for event in bus.events
                    if event.cat != CAT_TRACE]
           for engine, bus in buses.items()})

    trace_stats = results["trace"].trace
    return LockstepReport(
        case_name=case.name,
        config_name=case.config.name,
        instructions=results["trace"].stats.instructions,
        boundaries_compared=boundaries,
        trace_enters=trace_stats.enters,
        trace_compiled=trace_stats.compiled,
    )


def run_catalog(cases: list[LockstepCase] | None = None,
                block: int = 64,
                report: Callable[[str], None] | None = None
                ) -> list[LockstepReport]:
    """Run a case list (default: all 30); return the reports."""
    reports = []
    for case in cases if cases is not None else lockstep_catalog():
        outcome = run_lockstep(case, block=block)
        reports.append(outcome)
        if report:
            report(f"{outcome.case_name:<16} {outcome.config_name:<8} "
                   f"{outcome.instructions:>9} instr  "
                   f"{outcome.boundaries_compared:>6} boundaries  "
                   f"{outcome.trace_enters:>6} region enters")
    return reports


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.eval.lockstep [--smoke] [--block N]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Run the three-way lockstep conformance catalog "
                    "(interp vs plan vs trace; any divergence raises).")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the 5-case smoke subset instead of all 30 programs")
    parser.add_argument(
        "--block", type=int, default=64, metavar="N",
        help="instructions per lockstep boundary (default 64)")
    options = parser.parse_args(argv)

    cases = smoke_catalog() if options.smoke else lockstep_catalog()
    reports = run_catalog(cases, block=options.block, report=print)
    total = sum(outcome.instructions for outcome in reports)
    print(f"lockstep OK: {len(reports)} case(s), {total} instructions, "
          "three engines bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
