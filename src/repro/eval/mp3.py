"""MP3-proxy run setup (shared by Table 4 power/area and calibration)."""

from __future__ import annotations

import random

from repro.asm.link import compile_program
from repro.core.config import ProcessorConfig, TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.core.stats import RunStats
from repro.kernels import mp3proxy
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory

SAMPLES_ADDR = DATA_BASE
COEFFS_ADDR = DATA_BASE + 0x1000
OUT_ADDR = DATA_BASE + 0x2000
DEFAULT_FRAMES = 20


def mp3_workload(seed: int = 99):
    """Deterministic samples and packed coefficient pairs."""
    rng = random.Random(seed)
    samples = [rng.randrange(-2000, 2000)
               for _ in range(mp3proxy.SUBBANDS + mp3proxy.TAPS * 2 + 2)]
    coeff_pairs = [(rng.randrange(-300, 300), rng.randrange(-300, 300))
                   for _ in range(mp3proxy.SUBBANDS * mp3proxy.TAPS)]
    return samples, coeff_pairs


def run_mp3_proxy(config: ProcessorConfig = TM3270_CONFIG,
                  nframes: int = DEFAULT_FRAMES,
                  verify: bool = True, seed: int = 99) -> RunStats:
    """Run the MP3 proxy on ``config`` and return its stats."""
    samples, coeff_pairs = mp3_workload(seed)
    memory = FlatMemory(1 << 17)
    for index, value in enumerate(samples):
        memory.store(SAMPLES_ADDR + 2 * index, value & 0xFFFF, 2)
    for index, (hi, lo) in enumerate(coeff_pairs):
        memory.store(COEFFS_ADDR + 4 * index,
                     ((hi & 0xFFFF) << 16) | (lo & 0xFFFF), 4)
    linked = compile_program(mp3proxy.build_mp3proxy(), config.target)
    result = run_kernel(
        linked, config,
        args=args_for(SAMPLES_ADDR, COEFFS_ADDR, OUT_ADDR, nframes),
        memory=memory)
    if verify:
        expected = mp3proxy.reference_mp3proxy(samples, coeff_pairs)
        for index, (v_out, u_out) in enumerate(expected):
            got_v = _signed(memory.load(OUT_ADDR + 8 * index, 4))
            got_u = _signed(memory.load(OUT_ADDR + 8 * index + 4, 4))
            assert (got_v, got_u) == (v_out, u_out), index
    return result.stats


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value
