"""Parallel sharded evaluation engine with deterministic merge.

The single biggest wall-clock cost in this repository is evaluation:
figure panels, table rows, ablation sweeps, and kernel x configuration
grids are embarrassingly parallel across independent simulator
instances, yet the drivers ran them strictly sequentially.  This
module runs any list of :class:`~repro.eval.jobs.Job` across a
``multiprocessing`` worker pool and merges the results so the output
is **byte-identical to a serial run**:

* **deterministic sharding** — shard ``i`` of ``N`` owns
  ``jobs[i::N]`` (round-robin by enumeration index; no dependence on
  completion order, hash seeds, or scheduler timing);
* **isolation** — each shard runs in its own worker process; a worker
  that raises, hangs past its job's timeout, or dies outright fails
  *that job* (bounded retry, then quarantine), never the sweep;
* **deterministic merge** — results are reassembled in original job
  order.  Bench records are tagged with ``job_id``; obs event streams
  are re-timestamped onto one monotone timeline by rebasing each job's
  cycle stamps on the cumulative span of all *earlier jobs in job
  order* (per-job, not per-shard, so the merged stream is invariant
  under the worker count).

``--jobs 1`` executes in-process and is the reference semantics; the
golden-trace conformance corpus (``tests/golden/``) pins ``--jobs N``
to it byte for byte.  Engine telemetry (dispatch/retry/timeout events,
per-worker utilization) lives in the ``parallel`` obs group and is
kept out of the merged stream: wall-clock is honest telemetry, and
honest wall-clock is not deterministic.

CLI::

    python -m repro.eval.parallel [--jobs N] [--bench-out PATH]
    python -m repro.eval.parallel --conformance [--jobs N]
    python -m repro.eval.parallel --write-golden PATH
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro.eval.jobs import Job, JobOutput, execute_job
from repro.obs.events import Event, EventBus

#: Seconds allowed for a worker process to come up and report its
#: first ``start`` message (on top of the first job's own timeout).
SPAWN_GRACE = 60.0

#: Statuses a finished job can end in.
STATUS_OK = "ok"
STATUS_FAILED = "failed"          # runner raised, retries exhausted
STATUS_TIMEOUT = "timeout"        # exceeded Job.timeout, retries exhausted
STATUS_CRASHED = "crashed"        # worker process died, retries exhausted


def _context():
    """Fork when available (cheap, inherits warm caches); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def default_jobs() -> int:
    """The default worker count: every core the host offers."""
    return os.cpu_count() or 1


def shard(jobs: list[Job], num_shards: int) -> list[list[Job]]:
    """Round-robin by enumeration index: shard ``i`` owns ``jobs[i::N]``.

    Purely positional, so the assignment is reproducible across runs,
    hosts, and hash seeds.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return [jobs[index::num_shards] for index in range(num_shards)]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class JobResult:
    """Outcome of one job (successful or quarantined)."""

    job: Job
    status: str
    output: JobOutput | None = None
    error: str = ""
    attempts: int = 1
    wall_seconds: float = 0.0
    worker: int = 0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class PoolStats:
    """Engine telemetry: what the pool did and how busy workers were."""

    num_workers: int = 0
    dispatched: int = 0
    completed: int = 0
    retried: int = 0
    timed_out: int = 0
    crashed: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    worker_busy_seconds: dict = field(default_factory=dict)

    @property
    def busy_seconds(self) -> float:
        return sum(self.worker_busy_seconds.values())

    @property
    def speedup_vs_serial(self) -> float:
        """Aggregate job seconds / engine wall seconds (an estimate of
        the wall-clock win over running the same jobs back to back)."""
        if not self.wall_seconds:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    def utilization(self, worker: int) -> float:
        if not self.wall_seconds:
            return 0.0
        return self.worker_busy_seconds.get(worker, 0.0) / self.wall_seconds

    def metrics(self, registry=None):
        """Project into the unified registry (``parallel`` group)."""
        from repro.obs.metrics import MetricsRegistry

        registry = registry or MetricsRegistry()
        jobs = registry.counter(
            "parallel_jobs_total",
            "parallel-engine job dispositions", ("event",))
        jobs.labels("dispatched").inc(self.dispatched)
        jobs.labels("completed").inc(self.completed)
        jobs.labels("retried").inc(self.retried)
        jobs.labels("timed_out").inc(self.timed_out)
        jobs.labels("crashed").inc(self.crashed)
        jobs.labels("failed").inc(self.failed)
        registry.gauge("parallel_workers", "worker pool size"
                       ).set(self.num_workers)
        registry.gauge("parallel_wall_seconds",
                       "engine wall-clock for the sweep"
                       ).set(self.wall_seconds)
        registry.gauge("parallel_speedup_vs_serial",
                       "aggregate job seconds / engine wall seconds"
                       ).set(self.speedup_vs_serial)
        busy = registry.gauge(
            "parallel_worker_busy_seconds",
            "seconds each worker spent executing jobs", ("worker",))
        util = registry.gauge(
            "parallel_worker_utilization",
            "busy fraction of the engine wall per worker", ("worker",))
        for worker in sorted(self.worker_busy_seconds):
            busy.labels(str(worker)).set(self.worker_busy_seconds[worker])
            util.labels(str(worker)).set(self.utilization(worker))
        return registry

    def summary(self) -> str:
        return (f"parallel: {self.completed}/{self.dispatched} jobs ok "
                f"on {self.num_workers} worker(s) in "
                f"{self.wall_seconds:.2f}s (retried {self.retried}, "
                f"timed out {self.timed_out}, crashed {self.crashed}, "
                f"failed {self.failed}; "
                f"{self.speedup_vs_serial:.2f}x vs back-to-back)")


@dataclass
class MergedRun:
    """The deterministic merge of a sweep, in original job order."""

    results: list[JobResult]
    pool: PoolStats

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    @property
    def failures(self) -> list[JobResult]:
        return [result for result in self.results if not result.ok]

    @property
    def records(self) -> list[dict]:
        """Bench records in job order, each tagged with its job_id."""
        out: list[dict] = []
        for result in self.results:
            if result.output is None:
                continue
            for record in result.output.records:
                out.append({**record, "job_id": result.job.job_id})
        return out

    @property
    def summaries(self) -> list[str]:
        out: list[str] = []
        for result in self.results:
            if result.output is not None:
                out.extend(result.output.summaries)
        return out

    @property
    def events(self) -> list[Event]:
        """One monotone merged stream: each job's events rebased on the
        cumulative span of earlier jobs (job order, so the stream is
        identical for any worker count) and tagged with ``job_id``."""
        merged: list[Event] = []
        base = 0
        for result in self.results:
            if result.output is None or not result.output.events:
                continue
            span = 0
            for event in result.output.events:
                merged.append(Event(
                    base + event.ts, event.cat, event.name, event.dur,
                    event.track,
                    {**event.args, "job_id": result.job.job_id}))
                span = max(span, event.ts + event.dur)
            base += span + 1
        return merged

    def digests(self) -> dict:
        """Stable SHA-256 digests of the three merged output surfaces."""
        records = json.dumps(self.records, sort_keys=True,
                             separators=(",", ":"))
        stats = "\n".join(self.summaries)
        events = json.dumps(
            [[event.ts, event.cat, event.name, event.dur, event.track,
              sorted(event.args.items())] for event in self.events],
            sort_keys=True, separators=(",", ":"), default=str)
        return {
            "records": hashlib.sha256(records.encode()).hexdigest(),
            "stats": hashlib.sha256(stats.encode()).hexdigest(),
            "events": hashlib.sha256(events.encode()).hexdigest(),
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _worker_main(jobs: list[Job], conn) -> None:
    """Run a shard's jobs in order, reporting over ``conn``.

    Protocol (all messages are tuples):
      ``("start", job_id)`` then ``("done", job_id, output, seconds)``
      or ``("error", job_id, traceback, seconds)`` per job.  Exceptions
      are contained per job; only a hard process death (os._exit,
      signal) ends the stream early.
    """
    for job in jobs:
        conn.send(("start", job.job_id))
        began = time.perf_counter()
        try:
            output = execute_job(job)
        except BaseException:
            conn.send(("error", job.job_id, traceback.format_exc(),
                       time.perf_counter() - began))
        else:
            conn.send(("done", job.job_id, output,
                       time.perf_counter() - began))
    conn.close()


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------

class _ShardSupervisor:
    """Owns one shard: spawns workers, enforces timeouts, retries."""

    def __init__(self, shard_index: int, jobs: list[Job], ctx,
                 obs: EventBus | None) -> None:
        self.shard_index = shard_index
        self.ctx = ctx
        self.obs = obs
        #: (job, attempts_remaining); attempts = 1 + retries.
        self.pending = deque((job, 1 + job.retries) for job in jobs)
        self.results: dict[str, JobResult] = {}
        self.busy_seconds = 0.0
        self.retried = 0
        self.t0 = time.perf_counter()

    def _emit(self, kind: str, job: Job, **extra) -> None:
        if self.obs:
            ts = int((time.perf_counter() - self.t0) * 1e6)
            self.obs.parallel(ts, kind, job_id=job.job_id,
                              worker=self.shard_index, **extra)

    def _finish(self, job: Job, attempts_used: int, status: str,
                output: JobOutput | None = None, error: str = "",
                seconds: float = 0.0) -> None:
        self.results[job.job_id] = JobResult(
            job=job, status=status, output=output, error=error,
            attempts=attempts_used, wall_seconds=seconds,
            worker=self.shard_index)
        self.busy_seconds += seconds

    def _spawn(self):
        payload = [job for job, _ in self.pending]
        parent_conn, child_conn = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_worker_main, args=(payload, child_conn), daemon=True)
        process.start()
        child_conn.close()
        return process, parent_conn, payload

    def _reap(self, process) -> None:
        process.terminate()
        process.join(5.0)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(5.0)

    def _charge_failure(self, status: str, seconds: float,
                        error: str) -> None:
        """The in-flight job died or timed out: retry or quarantine."""
        job, attempts = self.pending.popleft()
        self.busy_seconds += min(seconds, job.timeout)
        self._emit(status, job)
        if attempts > 1:
            self.retried += 1
            self.pending.appendleft((job, attempts - 1))
        else:
            self._finish(job, 1 + job.retries, status, error=error)

    def _attempt_number(self, job: Job, attempts_remaining: int) -> int:
        return (1 + job.retries) - attempts_remaining + 1

    def run(self) -> None:
        """Drive the shard to completion (including retries).

        Each worker session walks the current ``pending`` snapshot in
        order; runner exceptions are contained worker-side (the worker
        keeps going, the job is deferred for retry), while timeouts and
        process deaths end the session and a fresh worker resumes the
        rest of the shard.
        """
        sessions_without_progress = 0
        while self.pending:
            process, conn, payload = self._spawn()
            deferred: deque = deque()  # retryable runner errors
            current: Job | None = None
            progressed = False
            started = time.perf_counter()
            deadline = started + SPAWN_GRACE + payload[0].timeout
            while self.pending:
                remaining = deadline - time.perf_counter()
                try:
                    ready = remaining > 0 and conn.poll(remaining)
                except (EOFError, OSError):  # pragma: no cover
                    ready, remaining = False, 1.0  # treat as a death
                if not ready:
                    if remaining > 0 and process.is_alive():
                        continue  # spurious wakeup
                    self._reap(process)
                    if current is not None:
                        status = (STATUS_TIMEOUT if remaining <= 0
                                  else STATUS_CRASHED)
                        seconds = time.perf_counter() - started
                        self._charge_failure(
                            status, seconds,
                            f"job {status} after {seconds:.1f}s "
                            f"(timeout {current.timeout:.0f}s)")
                        progressed = True
                    break
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Pipe closed: clean end of the payload, or a death
                    # (e.g. os._exit) mid-job.
                    if current is not None:
                        self._reap(process)
                        self._charge_failure(
                            STATUS_CRASHED,
                            time.perf_counter() - started,
                            "worker process died mid-job")
                        progressed = True
                    break
                kind = message[0]
                if kind == "start":
                    current = self.pending[0][0]
                    assert message[1] == current.job_id, message
                    started = time.perf_counter()
                    deadline = started + current.timeout
                    self._emit("dispatch", current)
                    continue
                job, attempts = self.pending.popleft()
                assert message[1] == job.job_id, message
                progressed = True
                current = None
                if kind == "done":
                    _, _, output, seconds = message
                    self._finish(job, self._attempt_number(job, attempts),
                                 STATUS_OK, output=output,
                                 seconds=seconds)
                    self._emit("complete", job, seconds=seconds)
                elif kind == "error":
                    _, _, error_text, seconds = message
                    self.busy_seconds += seconds
                    self._emit("error", job)
                    if attempts > 1:
                        self.retried += 1
                        deferred.append((job, attempts - 1))
                    else:
                        self._finish(job, 1 + job.retries, STATUS_FAILED,
                                     error=error_text, seconds=seconds)
                else:  # pragma: no cover - protocol error
                    raise RuntimeError(f"unknown message {message!r}")
                deadline = (time.perf_counter() + SPAWN_GRACE
                            + (self.pending[0][0].timeout
                               if self.pending else 0.0))
            self.pending.extend(deferred)
            if process.is_alive():
                process.join(0.2)
                if process.is_alive():
                    self._reap(process)
            conn.close()
            # A worker that keeps dying before making any progress must
            # not respawn forever: quarantine the whole remainder.
            sessions_without_progress = \
                0 if progressed else sessions_without_progress + 1
            if sessions_without_progress >= 3 and self.pending:
                while self.pending:
                    job, _ = self.pending.popleft()
                    self._finish(job, 1 + job.retries, STATUS_CRASHED,
                                 error="worker died repeatedly before "
                                 "reaching this job")
                break


def _run_serial(jobs: list[Job], obs: EventBus | None) -> MergedRun:
    """``--jobs 1``: in-process execution, the reference semantics.

    Exceptions still quarantine the job (no retry: a deterministic
    runner fails identically on every in-process attempt); timeouts
    and crash containment need process isolation and only apply to
    the multiprocess path.
    """
    t0 = time.perf_counter()
    results: list[JobResult] = []
    stats = PoolStats(num_workers=1, dispatched=len(jobs))
    for job in jobs:
        if obs:
            obs.parallel(int((time.perf_counter() - t0) * 1e6),
                         "dispatch", job_id=job.job_id, worker=0)
        began = time.perf_counter()
        try:
            output = execute_job(job)
        except Exception:
            seconds = time.perf_counter() - began
            results.append(JobResult(
                job=job, status=STATUS_FAILED,
                error=traceback.format_exc(), wall_seconds=seconds))
            stats.failed += 1
        else:
            seconds = time.perf_counter() - began
            results.append(JobResult(
                job=job, status=STATUS_OK, output=output,
                wall_seconds=seconds))
            stats.completed += 1
        stats.worker_busy_seconds[0] = \
            stats.worker_busy_seconds.get(0, 0.0) + seconds
    stats.wall_seconds = time.perf_counter() - t0
    return MergedRun(results=results, pool=stats)


def run_jobs(jobs: list[Job], workers: int | None = None,
             obs: EventBus | None = None) -> MergedRun:
    """Run ``jobs`` over ``workers`` processes; merge deterministically.

    ``workers=None`` uses every core (:func:`default_jobs`);
    ``workers=1`` runs in-process (the reference path).  The merged
    records/summaries/events are byte-identical for every worker
    count; only :class:`PoolStats` (telemetry) differs.
    """
    jobs = list(jobs)
    workers = workers or default_jobs()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError("job_ids must be unique within a sweep")
    if workers == 1 or len(jobs) <= 1:
        return _run_serial(jobs, obs)

    t0 = time.perf_counter()
    ctx = _context()
    shards = [candidate for candidate in shard(jobs, workers)
              if candidate]
    supervisors = [
        _ShardSupervisor(index, shard_jobs, ctx, obs)
        for index, shard_jobs in enumerate(shards)
    ]
    threads = [threading.Thread(target=supervisor.run, daemon=True)
               for supervisor in supervisors]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = PoolStats(num_workers=len(shards), dispatched=len(jobs))
    stats.wall_seconds = time.perf_counter() - t0
    by_id: dict[str, JobResult] = {}
    for supervisor in supervisors:
        by_id.update(supervisor.results)
        stats.retried += supervisor.retried
        stats.worker_busy_seconds[supervisor.shard_index] = \
            supervisor.busy_seconds
    results = [by_id[job.job_id] for job in jobs]
    for result in results:
        if result.status == STATUS_OK:
            stats.completed += 1
        elif result.status == STATUS_TIMEOUT:
            stats.timed_out += 1
        elif result.status == STATUS_CRASHED:
            stats.crashed += 1
        else:
            stats.failed += 1
    return MergedRun(results=results, pool=stats)


# ---------------------------------------------------------------------------
# Golden digests
# ---------------------------------------------------------------------------

GOLDEN_SCHEMA = "tm3270.golden/1"


def golden_document(merged: MergedRun, jobs: list[Job]) -> dict:
    return {
        "schema": GOLDEN_SCHEMA,
        "jobs": [job.job_id for job in jobs],
        "digests": merged.digests(),
    }


def default_golden_path():
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "tests" / "golden" / "conformance.json"


def check_conformance(merged: MergedRun, jobs: list[Job],
                      golden_path=None) -> list[str]:
    """Compare a merged run against the stored golden digests."""
    path = golden_path or default_golden_path()
    with open(path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    problems = []
    if golden.get("schema") != GOLDEN_SCHEMA:
        problems.append(f"golden schema is {golden.get('schema')!r}, "
                        f"expected {GOLDEN_SCHEMA!r}")
        return problems
    expected_ids = [job.job_id for job in jobs]
    if golden.get("jobs") != expected_ids:
        problems.append(
            "golden job list differs from the corpus (regenerate with "
            "'make golden' if the corpus changed deliberately)")
    digests = merged.digests()
    for surface, value in golden.get("digests", {}).items():
        if digests.get(surface) != value:
            problems.append(
                f"{surface} digest mismatch: got "
                f"{digests.get(surface)}, golden {value}")
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.eval.jobs import conformance_jobs, enumerate_jobs
    from repro.obs.export import write_bench

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.parallel",
        description="Sharded evaluation engine: run the standard job "
                    "graph, or check/regenerate the golden-trace "
                    "conformance corpus.")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count(); 1 = run "
             "in-process)")
    parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write the merged bench records here")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the merged (re-timestamped) event stream as a "
             "Chrome trace")
    parser.add_argument(
        "--conformance", action="store_true",
        help="run the golden corpus and verify digests against "
             "tests/golden/conformance.json")
    parser.add_argument(
        "--write-golden", default=None, metavar="PATH",
        help="run the golden corpus and (re)write the digest file")
    options = parser.parse_args(argv)

    if options.conformance or options.write_golden:
        jobs = conformance_jobs()
    else:
        jobs = enumerate_jobs()
    merged = run_jobs(jobs, workers=options.jobs)

    for line in merged.summaries:
        print(line)
    print(merged.pool.summary())
    for failure in merged.failures:
        print(f"[{failure.status}] {failure.job.job_id} "
              f"(attempts={failure.attempts})")
        if failure.error:
            print("    " + failure.error.strip().splitlines()[-1])

    if options.bench_out:
        write_bench(options.bench_out, merged.records)
        print(f"wrote {len(merged.records)} merged bench records to "
              f"{options.bench_out}")
    if options.trace:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(options.trace, merged.events)
        print(f"wrote {len(merged.events)} merged events to "
              f"{options.trace}")

    if options.write_golden:
        if not merged.ok:
            print("refusing to write golden digests from a failing run")
            return 1
        document = golden_document(merged, jobs)
        os.makedirs(os.path.dirname(options.write_golden) or ".",
                    exist_ok=True)
        with open(options.write_golden, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        print(f"wrote golden digests to {options.write_golden}")
        return 0
    if options.conformance:
        problems = check_conformance(merged, jobs)
        if not merged.ok:
            problems.append(f"{len(merged.failures)} corpus job(s) "
                            "failed")
        if problems:
            print("conformance FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("conformance OK: merged output matches the golden "
              "digests")
        return 0
    return merged.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
