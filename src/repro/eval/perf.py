"""Simulator throughput benchmarks: how fast the simulator simulates.

Every other evaluation in this repository measures the *simulated*
processor (cycles, CPI, hit rates).  This module measures the
simulator itself — simulated VLIW instructions retired per wall-clock
second — on representative media kernels, across all three execution
engines: the dynamic reference interpreter (``engine="interp"``), the
pre-decoded plan path (``engine="plan"``, :mod:`repro.core.plan`), and
the trace-compiled tier (``engine="trace"``,
:mod:`repro.core.trace`).

Each measurement doubles as a differential test: all three engines'
runs of a case must produce *identical* :class:`RunStats` (cycle
counts, stall decomposition, cache and register-file statistics), or
:func:`measure_case` raises.  Throughput numbers are only reported for
runs proven equivalent.

Measurement is pinned to ``time.perf_counter_ns`` (the monotonic
high-resolution clock; float ``perf_counter`` loses resolution on long
uptimes) and every repeat's raw sample is recorded, so noise under
load — e.g. when the parallel engine co-schedules measurements — is
visible in the record instead of silently folded into a best-of.
``scripts/bench_compare.py`` gates on the **median**, which a single
descheduled repeat cannot move.

Records ride on the standard ``tm3270.bench/1`` schema with one extra
section::

    "sim_speed": {
        "instructions_per_sec": ...,     # plan path, best repeat
        "wall_seconds": ...,             # plan path, best of N
        "median_instructions_per_sec": ...,  # plan path, median repeat
        "median_wall_seconds": ...,
        "reference_instructions_per_sec": ...,
        "reference_wall_seconds": ...,
        "speedup_vs_reference": ...,     # of the medians
        "samples_ns": {"fast": [...], "reference": [...],
                       "trace": [...]},
        "engines": {                     # per-engine medians; the
            "interp": {...},             # regression gate checks each
            "plan": {...},               # engine independently
            "trace": {...},
        },
        "trace_speedup_vs_plan": ...,    # of the medians
    }

The legacy top-level fields (``fast`` = plan engine, ``reference`` =
interp engine) are kept so older baselines stay comparable; the
``engines`` section is the authoritative per-engine record.

``python -m repro.eval.runner --perf`` writes the suite to
``benchmarks/results/BENCH_sim_speed.json``; ``make perf`` wraps that,
and ``scripts/bench_compare.py`` diffs two such files in CI.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG, ProcessorConfig
from repro.core.processor import Processor
from repro.core.stats import RunStats
from repro.kernels import cabac_kernel, motion
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.obs.export import bench_record
from repro.workloads.cabac_streams import generate_field
from repro.workloads.video import synthetic_frame


@dataclass(frozen=True)
class PerfCase:
    """One simulator-throughput workload."""

    name: str
    description: str
    build: Callable
    prepare: Callable[[FlatMemory], dict[int, int]]
    memory_size: int = 1 << 19


@dataclass(frozen=True)
class PerfMeasurement:
    """Per-engine wall-clock for one case (stats proven equal).

    Raw per-repeat samples (``*_samples_ns``) are kept alongside the
    best-of aggregates; the median properties are the noise-robust
    view the regression gate consumes.  ``fast_samples_ns`` times the
    plan engine and ``reference_samples_ns`` the interp engine (the
    pre-trace field names, kept for record compatibility).

    ``trace_stats`` is the trace tier's codegen telemetry from the
    last repeat (``TraceStats.as_dict()``: region count, static vs
    escaped vs dynamic commit splits, compile wall time) — wall-clock
    nondeterminism is fine here because perf records are measurements,
    not conformance artifacts.
    """

    case_name: str
    stats: RunStats
    fast_samples_ns: tuple[int, ...]
    reference_samples_ns: tuple[int, ...]
    trace_samples_ns: tuple[int, ...] = ()
    trace_stats: dict | None = None

    def samples_ns(self, engine: str) -> tuple[int, ...]:
        return {"interp": self.reference_samples_ns,
                "plan": self.fast_samples_ns,
                "trace": self.trace_samples_ns}[engine]

    def median_seconds(self, engine: str) -> float:
        return statistics.median(self.samples_ns(engine)) / 1e9

    def median_ips(self, engine: str) -> float:
        return self.stats.instructions / self.median_seconds(engine)

    @property
    def fast_seconds(self) -> float:
        return min(self.fast_samples_ns) / 1e9

    @property
    def reference_seconds(self) -> float:
        return min(self.reference_samples_ns) / 1e9

    @property
    def median_fast_seconds(self) -> float:
        return self.median_seconds("plan")

    @property
    def median_reference_seconds(self) -> float:
        return self.median_seconds("interp")

    @property
    def instructions_per_sec(self) -> float:
        return self.stats.instructions / self.fast_seconds

    @property
    def median_instructions_per_sec(self) -> float:
        return self.median_ips("plan")

    @property
    def reference_instructions_per_sec(self) -> float:
        return self.stats.instructions / self.reference_seconds

    @property
    def speedup(self) -> float:
        """Plan over interp, median-over-median: robust to one
        descheduled repeat."""
        return self.median_seconds("interp") / self.median_seconds("plan")

    @property
    def trace_speedup_vs_plan(self) -> float:
        """Trace over plan, median-over-median."""
        return self.median_seconds("plan") / self.median_seconds("trace")


# ---------------------------------------------------------------------------
# The perf suite
# ---------------------------------------------------------------------------

_ME_WIDTH = 64
_ME_CUR = DATA_BASE
_ME_REF = DATA_BASE + 0x800
_ME_RESULT = DATA_BASE + 0x1000


def _prepare_motion(memory: FlatMemory) -> dict[int, int]:
    frame = synthetic_frame(_ME_WIDTH, 16, seed=77)
    memory.write_block(_ME_CUR, frame[:8 * _ME_WIDTH])
    memory.write_block(_ME_REF, frame[8 * _ME_WIDTH:16 * _ME_WIDTH])
    return args_for(_ME_CUR, _ME_REF, _ME_WIDTH, _ME_RESULT)


_CABAC_SCALE = 0.02
_CABAC_STREAM = DATA_BASE
_CABAC_OUT = DATA_BASE + 0x8000
_CABAC_CTX = DATA_BASE + 0xA000
_CABAC_TABLES = DATA_BASE + 0xB000


@lru_cache(maxsize=4)
def _cabac_field(scale: float = _CABAC_SCALE):
    return generate_field("I", seed=7, scale=scale)


def _prepare_cabac(memory: FlatMemory) -> dict[int, int]:
    field = _cabac_field()
    memory.write_block(_CABAC_STREAM, field.data)
    memory.write_block(_CABAC_TABLES, cabac_kernel.prepare_tables())
    return args_for(_CABAC_STREAM, _CABAC_OUT, _CABAC_CTX,
                    _CABAC_TABLES, field.num_symbols)


def _build_cabac(build):
    def factory():
        return build(num_contexts=_cabac_field().num_contexts)
    return factory


def _from_kernel(name: str) -> PerfCase:
    """Wrap a Table 5 registry kernel as a perf case."""
    from repro.kernels.registry import kernel_by_name

    case = kernel_by_name(name)
    return PerfCase(case.name, case.description, case.build,
                    case.prepare, case.memory_size)


def perf_cases() -> list[PerfCase]:
    """The default suite: motion estimation, CABAC, and two Table 5
    kernels for breadth (streaming memory and control-heavy code)."""
    return [
        PerfCase("me_frac_plain",
                 "Motion estimation, explicit fractional interpolation.",
                 motion.build_me_frac_plain, _prepare_motion, 1 << 15),
        PerfCase("me_frac_ld8",
                 "Motion estimation with collapsed LD_FRAC8 loads.",
                 motion.build_me_frac_ld8, _prepare_motion, 1 << 15),
        PerfCase("cabac_plain",
                 "CABAC I-field decode, baseline operations.",
                 _build_cabac(cabac_kernel.build_cabac_plain),
                 _prepare_cabac, 1 << 18),
        PerfCase("cabac_super",
                 "CABAC I-field decode, SUPER_CABAC operations.",
                 _build_cabac(cabac_kernel.build_cabac_super),
                 _prepare_cabac, 1 << 18),
        _from_kernel("memcpy"),
        _from_kernel("mpeg2_b"),
    ]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _timed_run(program, case: PerfCase, config: ProcessorConfig,
               engine: str):
    """One run under ``time.perf_counter_ns`` (monotonic, integer ns)."""
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    processor = Processor(config, memory=memory)
    start = time.perf_counter_ns()
    result = processor.run(program, args=args, engine=engine)
    return result, time.perf_counter_ns() - start


def measure_case(case: PerfCase,
                 config: ProcessorConfig = TM3270_CONFIG,
                 repeats: int = 3) -> PerfMeasurement:
    """``repeats`` interleaved wall-time samples for every engine,
    stats verified equal.

    Raises ``AssertionError`` if any engine's statistics diverge from
    the reference interpreter's — a throughput number for a run that
    simulated something different is meaningless.

    The trace engine's first repeat pays its compile cost (regions
    warm at threshold and compile inside the timed run); that is the
    honest number — a fresh process running a kernel once sees exactly
    that cost — and the median over repeats reflects the steady state
    because the plan-level code cache persists across repeats.
    """
    program = compile_program(case.build(), config.target)
    program.plan()  # compile the plan outside the timed region

    results: dict[str, object] = {}
    samples: dict[str, list[int]] = {"interp": [], "plan": [],
                                     "trace": []}
    for _ in range(repeats):
        for engine in ("plan", "interp", "trace"):
            result, nanos = _timed_run(program, case, config, engine)
            results[engine] = result
            samples[engine].append(nanos)

    for engine in ("plan", "trace"):
        assert results[engine].stats == results["interp"].stats, (
            f"{case.name}: {engine} engine diverged from reference "
            f"(differential check failed)")
    trace_result = results["trace"]
    return PerfMeasurement(
        case_name=case.name,
        stats=results["plan"].stats,
        fast_samples_ns=tuple(samples["plan"]),
        reference_samples_ns=tuple(samples["interp"]),
        trace_samples_ns=tuple(samples["trace"]),
        trace_stats=(trace_result.trace.as_dict()
                     if trace_result.trace is not None else None),
    )


def perf_record(measurement: PerfMeasurement) -> dict:
    """One measurement as a ``tm3270.bench/1`` record."""
    record = bench_record(measurement.stats)
    engines = {
        engine: {
            "median_instructions_per_sec":
                measurement.median_ips(engine),
            "median_wall_seconds": measurement.median_seconds(engine),
            "samples_ns": list(measurement.samples_ns(engine)),
        }
        for engine in ("interp", "plan", "trace")
        if measurement.samples_ns(engine)
    }
    record["sim_speed"] = {
        "instructions_per_sec": measurement.instructions_per_sec,
        "wall_seconds": measurement.fast_seconds,
        "median_instructions_per_sec":
            measurement.median_instructions_per_sec,
        "median_wall_seconds": measurement.median_fast_seconds,
        "reference_instructions_per_sec":
            measurement.reference_instructions_per_sec,
        "reference_wall_seconds": measurement.reference_seconds,
        "speedup_vs_reference": measurement.speedup,
        "samples_ns": {
            "fast": list(measurement.fast_samples_ns),
            "reference": list(measurement.reference_samples_ns),
            "trace": list(measurement.trace_samples_ns),
        },
        "engines": engines,
    }
    if measurement.trace_samples_ns:
        record["sim_speed"]["trace_speedup_vs_plan"] = \
            measurement.trace_speedup_vs_plan
    if measurement.trace_stats is not None:
        record["sim_speed"]["trace_tier"] = measurement.trace_stats
    return record


def run_perf(cases: list[PerfCase] | None = None,
             config: ProcessorConfig = TM3270_CONFIG,
             repeats: int = 3,
             report: Callable[[str], None] | None = None) -> list[dict]:
    """Measure the suite; returns the bench records."""
    records = []
    for case in cases if cases is not None else perf_cases():
        measurement = measure_case(case, config, repeats=repeats)
        records.append(perf_record(measurement))
        if report:
            report(format_measurement(measurement))
    return records


def format_measurement(measurement: PerfMeasurement) -> str:
    line = (f"{measurement.case_name:<16} "
            f"{measurement.stats.instructions:>9} instr  "
            f"plan {measurement.instructions_per_sec:>10,.0f}/s  "
            f"ref {measurement.reference_instructions_per_sec:>10,.0f}/s  "
            f"speedup {measurement.speedup:5.2f}x")
    if measurement.trace_samples_ns:
        line += (f"  trace {measurement.median_ips('trace'):>10,.0f}/s "
                 f"({measurement.trace_speedup_vs_plan:4.2f}x plan)")
    return line
