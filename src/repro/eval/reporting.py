"""Plain-text table rendering for experiment drivers and benches."""

from __future__ import annotations


def format_table(title: str, headers: list[str],
                 rows: list[list], precision: int = 3) -> str:
    """Render an aligned monospace table with a title rule."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(row) for row in text_rows)
    out.append(rule)
    return "\n".join(out)
