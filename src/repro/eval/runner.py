"""Shared experiment plumbing: compile, run, verify, collect stats.

Every verified kernel run is also recorded on the module-level
:data:`BENCH_SINK`, which maintains a ``BENCH_*.json`` perf-trajectory
file (schema ``tm3270.bench/1``, see :mod:`repro.obs.export`) — so any
benchmark or evaluation driver leaves a machine-readable record behind
without further ceremony.  The default output is
``benchmarks/results/BENCH_runs.json`` in the source tree; override
with the ``REPRO_BENCH_OUT`` environment variable or
:meth:`BenchSink.set_path`.

Run ``python -m repro.eval.runner --bench-out BENCH_pr1.json`` to
regenerate the trajectory mechanically (see :func:`main`).  Sweeps
and ``--perf`` benchmarks execute through the sharded job engine
(:mod:`repro.eval.parallel`); ``--jobs N`` picks the worker count
(default ``os.cpu_count()``) and the merged output is byte-identical
for every value.
"""

from __future__ import annotations

import os
import pathlib

from repro.asm.link import compile_program
from repro.core.config import EVALUATION_CONFIGS, ProcessorConfig
from repro.core.processor import RunResult, run_kernel
from repro.core.stats import RunStats
from repro.kernels.registry import TABLE5_KERNELS, KernelCase
from repro.mem.flatmem import FlatMemory
from repro.obs.export import bench_record, write_bench

_PROGRAM_CACHE: dict = {}


def _default_bench_path() -> pathlib.Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return pathlib.Path(override)
    # src/repro/eval/runner.py -> repository root; falls back to the
    # working directory when running from an installed package.
    root = pathlib.Path(__file__).resolve().parents[3]
    results = root / "benchmarks" / "results"
    if results.is_dir():
        return results / "BENCH_runs.json"
    return pathlib.Path("BENCH_runs.json")


class BenchSink:
    """Accumulates bench records and keeps one ``BENCH_*.json`` fresh."""

    def __init__(self, path: os.PathLike | str | None = None) -> None:
        self._path = pathlib.Path(path) if path else None
        self.records: list[dict] = []

    @property
    def path(self) -> pathlib.Path:
        return self._path or _default_bench_path()

    def set_path(self, path: os.PathLike | str) -> None:
        self._path = pathlib.Path(path)

    def record(self, stats: RunStats) -> dict:
        """Validate, append, and persist one run's record."""
        record = bench_record(stats)
        self.records.append(record)
        self.flush()
        return record

    def flush(self) -> None:
        write_bench(self.path, self.records)


#: Process-wide sink every :func:`run_case` reports into.
BENCH_SINK = BenchSink()


def compile_case(case: KernelCase, config: ProcessorConfig):
    """Compile a kernel for a configuration's target (cached)."""
    key = (case.name, config.target.name)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = compile_program(case.build(), config.target)
    return _PROGRAM_CACHE[key]


def run_case(case: KernelCase, config: ProcessorConfig,
             verify: bool = True, bench: bool = True) -> RunStats:
    """Run one kernel case on one configuration; returns its stats.

    With ``bench`` (the default) the run is appended to
    :data:`BENCH_SINK`'s ``BENCH_*.json``.
    """
    linked = compile_case(case, config)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    result = run_kernel(linked, config, args=args, memory=memory)
    if verify:
        case.verify(memory, result)
    if bench:
        BENCH_SINK.record(result.stats)
    return result.stats


def run_program(program, config: ProcessorConfig, args: dict[int, int],
                memory: FlatMemory | None = None,
                memory_size: int = 1 << 19) -> RunResult:
    """Compile-free variant for pre-built programs."""
    return run_kernel(program, config, args=args, memory=memory,
                      memory_size=memory_size)


# ---------------------------------------------------------------------------
# CLI: python -m repro.eval.runner --bench-out BENCH_pr1.json
# ---------------------------------------------------------------------------

def _profiled(enabled: bool, work):
    """Run ``work()``; with ``enabled`` dump a cProfile report after."""
    if not enabled:
        return work()
    import cProfile
    import io
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    try:
        return work()
    finally:
        profile.disable()
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream) \
            .sort_stats("cumulative").print_stats(30)
        print(stream.getvalue())


def _run_verify() -> int:
    """``--verify``: static verification over the full kernel catalog."""
    from repro.analysis.catalog import verify_all

    failed = total = 0
    for entry, report in verify_all():
        total += 1
        if report.ok:
            print(f"[ok] {entry.label}")
            continue
        failed += 1
        print(report.format())
    print(f"{total - failed}/{total} programs verified clean")
    return 1 if failed else 0


def _run_perf(options) -> int:
    """``--perf``: simulator-throughput suite -> BENCH_sim_speed.json.

    Cases are sharded across the worker pool (``--jobs``); note that
    co-scheduled measurement adds wall-clock noise, which is why the
    records carry per-repeat raw samples and the regression gate
    (``scripts/bench_compare.py``) works on the median.
    """
    from repro.eval.jobs import perf_jobs
    from repro.eval.parallel import run_jobs
    from repro.eval.perf import perf_cases

    names = None
    if options.kernels:
        known = {case.name for case in perf_cases()}
        names = [name.strip() for name in options.kernels.split(",")]
        unknown = [name for name in names if name not in known]
        if unknown:
            raise SystemExit(f"unknown perf case(s) {unknown} "
                             f"(choose from {sorted(known)})")
    path = (pathlib.Path(options.bench_out) if options.bench_out
            else _default_bench_path().with_name("BENCH_sim_speed.json"))
    jobs = perf_jobs(cases=names, repeats=options.repeats)
    merged = _profiled(
        options.profile,
        lambda: run_jobs(jobs, workers=options.jobs))
    for line in merged.summaries:
        print(line)
    _report_failures(merged)
    write_bench(path, merged.records)
    print(f"\n{merged.pool.summary()}")
    print(f"wrote {len(merged.records)} sim-speed records to {path}")
    return merged.exit_code


def _run_inject(options) -> int:
    """``--inject``: fault-injection campaign ->
    BENCH_fault_tolerance.json.

    Runs the resilience layer's campaign cells (kernel x config x
    structure x protection, ``--repeats`` unused) through the worker
    pool; the merged record/summary/event surfaces are byte-identical
    at every ``--jobs`` level.
    """
    from repro.eval.jobs import injection_jobs
    from repro.eval.parallel import run_jobs

    kernels = ([name.strip() for name in options.kernels.split(",")]
               if options.kernels else None)
    configs = ([name.strip() for name in options.configs.split(",")]
               if options.configs and options.configs != "A,D" else None)
    path = (pathlib.Path(options.bench_out) if options.bench_out
            else _default_bench_path()
            .with_name("BENCH_fault_tolerance.json"))
    jobs = injection_jobs(kernels=kernels, configs=configs)
    merged = _profiled(
        options.profile,
        lambda: run_jobs(jobs, workers=options.jobs))
    for line in merged.summaries:
        print(line)
    _report_failures(merged)
    write_bench(path, merged.records)
    print(f"\n{merged.pool.summary()}")
    print(f"wrote {len(merged.records)} fault-tolerance records "
          f"to {path}")
    return merged.exit_code


def _report_failures(merged) -> None:
    for failure in merged.failures:
        print(f"[{failure.status}] {failure.job.job_id} "
              f"(attempts={failure.attempts})")
        if failure.error:
            print("    " + failure.error.strip().splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    """Run kernels across configurations and write a bench file."""
    import argparse

    from repro.kernels.registry import kernel_by_name

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.runner",
        description="Run Table 5 kernels and export BENCH_*.json "
                    "perf-trajectory records.")
    parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="output file (default: benchmarks/results/BENCH_runs.json "
             "or $REPRO_BENCH_OUT)")
    parser.add_argument(
        "--kernels", default=None, metavar="NAME[,NAME...]",
        help="comma-separated kernel names (default: all Table 5 "
             "kernels)")
    parser.add_argument(
        "--configs", default="A,D", metavar="NAME[,NAME...]",
        help="comma-separated configuration names among "
             "A,B,C,D (default: A,D)")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip bit-exact output verification")
    parser.add_argument(
        "--verify", action="store_true",
        help="statically verify every registered kernel (no execution) "
             "and exit non-zero on any finding")
    parser.add_argument(
        "--perf", action="store_true",
        help="measure simulator throughput (fast vs reference path) "
             "instead of Table 5 kernels; writes BENCH_sim_speed.json")
    parser.add_argument(
        "--inject", action="store_true",
        help="run the fault-injection smoke campaign (seeded soft "
             "errors under none/parity protection) instead of plain "
             "kernel runs; writes BENCH_fault_tolerance.json")
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="--perf: wall-clock repeats per case, best-of (default 3)")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: os.cpu_count(); "
             "1 = in-process). Merged output is byte-identical for "
             "every worker count.")
    parser.add_argument(
        "--engine", default="plan", metavar="NAME",
        choices=("interp", "plan", "trace"),
        help="execution tier for kernel runs: interp (reference "
             "interpreter), plan (pre-decoded fast path, default), or "
             "trace (plan + compiled hot regions). All tiers are "
             "bit-identical; the choice only trades simulation "
             "wall-clock.")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="capture each run's obs events and write the merged "
             "(re-timestamped, job_id-tagged) Chrome trace here")
    parser.add_argument(
        "--profile", action="store_true",
        help="dump a cProfile report of the run to stdout")
    options = parser.parse_args(argv)

    if options.verify:
        return _run_verify()
    if options.perf:
        return _run_perf(options)
    if options.inject:
        return _run_inject(options)

    if options.kernels:
        try:
            kernels = [kernel_by_name(name.strip())
                       for name in options.kernels.split(",")]
        except KeyError:
            known = sorted(case.name for case in TABLE5_KERNELS)
            parser.error(f"unknown kernel in {options.kernels!r} "
                         f"(choose from {known})")
    else:
        kernels = list(TABLE5_KERNELS)
    by_name = {config.name: config for config in EVALUATION_CONFIGS}
    try:
        configs = [by_name[name.strip()]
                   for name in options.configs.split(",")]
    except KeyError as error:
        parser.error(f"unknown configuration {error.args[0]!r} "
                     f"(choose from {sorted(by_name)})")

    sink = BenchSink(options.bench_out) if options.bench_out \
        else BENCH_SINK

    from repro.eval.jobs import kernel_jobs
    from repro.eval.parallel import run_jobs

    jobs = kernel_jobs(
        kernels=[case.name for case in kernels],
        configs=[config.name for config in configs],
        verify=not options.no_verify,
        trace=bool(options.trace),
        engine=options.engine)
    merged = _profiled(
        options.profile,
        lambda: run_jobs(jobs, workers=options.jobs))
    for line in merged.summaries:
        print(line)
    _report_failures(merged)
    sink.records.extend(merged.records)
    sink.flush()
    if options.trace:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(options.trace, merged.events)
        print(f"wrote {len(merged.events)} merged events to "
              f"{options.trace}")
    print(f"\n{merged.pool.summary()}")
    print(f"wrote {len(sink.records)} bench records to {sink.path}")
    return merged.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
