"""Shared experiment plumbing: compile, run, verify, collect stats."""

from __future__ import annotations

from repro.asm.link import compile_program
from repro.core.config import ProcessorConfig
from repro.core.processor import RunResult, run_kernel
from repro.core.stats import RunStats
from repro.kernels.registry import KernelCase
from repro.mem.flatmem import FlatMemory

_PROGRAM_CACHE: dict = {}


def compile_case(case: KernelCase, config: ProcessorConfig):
    """Compile a kernel for a configuration's target (cached)."""
    key = (case.name, config.target.name)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = compile_program(case.build(), config.target)
    return _PROGRAM_CACHE[key]


def run_case(case: KernelCase, config: ProcessorConfig,
             verify: bool = True) -> RunStats:
    """Run one kernel case on one configuration; returns its stats."""
    linked = compile_case(case, config)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    result = run_kernel(linked, config, args=args, memory=memory)
    if verify:
        case.verify(memory, result)
    return result.stats


def run_program(program, config: ProcessorConfig, args: dict[int, int],
                memory: FlatMemory | None = None,
                memory_size: int = 1 << 19) -> RunResult:
    """Compile-free variant for pre-built programs."""
    return run_kernel(program, config, args=args, memory=memory,
                      memory_size=memory_size)
