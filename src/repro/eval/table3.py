"""Table 3: CABAC decoding with and without the new operations.

For each field type (I, P, B): generate a synthetic CABAC bitstream
with the paper's per-field bit budget (scaled), decode it on the
TM3270 with the baseline-operation kernel and with the
``SUPER_CABAC_*`` kernel, verify both decode the exact symbol
sequence, and report VLIW instructions, instructions/bit, and the
speedup — Table 3's columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.eval.reporting import format_table
from repro.kernels import cabac_kernel
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.cabac_streams import SCALE, CabacField, generate_field

STREAM_ADDR = DATA_BASE
OUT_ADDR = DATA_BASE + 0x8000
CTX_ADDR = DATA_BASE + 0xA000
TABLES_ADDR = DATA_BASE + 0xB000


@dataclass(frozen=True)
class Table3Row:
    """One field type's measurements."""

    field_type: str
    bits_per_field: int
    plain_instructions: int
    plain_instr_per_bit: float
    super_instructions: int
    super_instr_per_bit: float

    @property
    def speedup(self) -> float:
        return self.plain_instructions / self.super_instructions


def _decode_with(build, field: CabacField) -> int:
    """Run one decode kernel over ``field``; returns VLIW instructions."""
    program = compile_program(
        build(num_contexts=field.num_contexts), TM3270_CONFIG.target)
    memory = FlatMemory(1 << 18)
    memory.write_block(STREAM_ADDR, field.data)
    memory.write_block(TABLES_ADDR, cabac_kernel.prepare_tables())
    result = run_kernel(
        program, TM3270_CONFIG,
        args=args_for(STREAM_ADDR, OUT_ADDR, CTX_ADDR, TABLES_ADDR,
                      field.num_symbols),
        memory=memory)
    decoded = memory.read_block(OUT_ADDR, field.num_symbols)
    assert decoded == bytes(field.symbols), (
        f"{program.name} mis-decoded a {field.field_type} field")
    return result.stats.instructions


def run_table3(scale: float = SCALE, seed: int = 7) -> list[Table3Row]:
    """Measure all three field types; returns Table 3's rows."""
    rows = []
    for field_type in ("I", "P", "B"):
        field = generate_field(field_type, seed=seed, scale=scale)
        plain = _decode_with(cabac_kernel.build_cabac_plain, field)
        optimized = _decode_with(cabac_kernel.build_cabac_super, field)
        rows.append(Table3Row(
            field_type=field_type,
            bits_per_field=field.num_bits,
            plain_instructions=plain,
            plain_instr_per_bit=plain / field.num_bits,
            super_instructions=optimized,
            super_instr_per_bit=optimized / field.num_bits,
        ))
    return rows


#: The paper's Table 3 values for shape comparison.
PAPER_TABLE3 = {
    "I": {"bits": 215_408, "plain_ipb": 21.1, "super_ipb": 12.5,
          "speedup": 1.7},
    "P": {"bits": 103_544, "plain_ipb": 28.0, "super_ipb": 17.4,
          "speedup": 1.6},
    "B": {"bits": 153_035, "plain_ipb": 33.8, "super_ipb": 22.3,
          "speedup": 1.5},
}


def format_table3(rows: list[Table3Row]) -> str:
    """Render measured-vs-paper Table 3."""
    body = []
    for row in rows:
        paper = PAPER_TABLE3[row.field_type]
        body.append([
            row.field_type, row.bits_per_field,
            row.plain_instructions, round(row.plain_instr_per_bit, 1),
            row.super_instructions, round(row.super_instr_per_bit, 1),
            round(row.speedup, 2), paper["speedup"],
        ])
    return format_table(
        "Table 3: CABAC decoding, non-optimized vs optimized (TM3270)",
        ["field", "bits/field", "instr (plain)", "instr/bit",
         "instr (super)", "instr/bit", "speedup", "paper speedup"],
        body)
