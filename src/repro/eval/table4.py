"""Table 4: area and power breakdown (Section 5).

Area comes from the parametric model (:mod:`repro.core.area`); power
from the activity-based model (:mod:`repro.core.power`) driven by an
actual MP3-proxy run on the TM3270.  Also reproduces Section 5.2's
derived numbers: the 0.8 V total (quadratic scaling) and the absolute
MP3-decode power at the paper's effective 8 MHz operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import AreaBreakdown, area_breakdown
from repro.core.config import TM3270_CONFIG
from repro.core.power import PowerBreakdown, PowerModel
from repro.eval.mp3 import run_mp3_proxy
from repro.eval.reporting import format_table

#: Table 4 as published: module -> (area mm^2, power mW/MHz at 1.2 V).
PAPER_TABLE4 = {
    "IFU": (1.46, 0.272),
    "Decode": (0.05, 0.022),
    "Regfile": (0.97, 0.170),
    "Execute": (1.53, 0.255),
    "LS": (3.60, 0.266),
    "BIU": (0.24, 0.002),
    "MMIO": (0.23, 0.012),
    "Total": (8.08, 0.935),
}

#: Section 5.2: MP3 decoding runs in ~8 MHz; at 0.8 V that is 3.32 mW.
MP3_EFFECTIVE_MHZ = 8.0
PAPER_MP3_MILLIWATTS_08V = 3.32


@dataclass(frozen=True)
class Table4Result:
    """Measured area + power, plus the derived Section 5.2 numbers."""

    area: AreaBreakdown
    power_12v: PowerBreakdown
    power_08v: PowerBreakdown
    mp3_milliwatts_08v: float
    opi: float
    cpi: float


def run_table4() -> Table4Result:
    """Compute the full Table 4 reproduction."""
    stats = run_mp3_proxy(TM3270_CONFIG)
    model = PowerModel()
    power_12v = model.breakdown(stats, voltage=1.2)
    power_08v = model.breakdown(stats, voltage=0.8)
    return Table4Result(
        area=area_breakdown(TM3270_CONFIG),
        power_12v=power_12v,
        power_08v=power_08v,
        mp3_milliwatts_08v=power_08v.milliwatts(MP3_EFFECTIVE_MHZ),
        opi=stats.opi,
        cpi=stats.cpi,
    )


def format_table4(result: Table4Result) -> str:
    """Render measured-vs-paper Table 4."""
    area_rows = dict(result.area.as_rows())
    power_rows = dict(result.power_12v.as_rows())
    body = []
    for module, (paper_area, paper_power) in PAPER_TABLE4.items():
        body.append([
            module,
            round(area_rows[module], 2), paper_area,
            round(power_rows[module], 3), paper_power,
        ])
    table = format_table(
        "Table 4: TM3270 area/power breakdown "
        f"(MP3 proxy: OPI {result.opi:.2f}, CPI {result.cpi:.2f})",
        ["module", "area mm2", "paper", "mW/MHz @1.2V", "paper"], body)
    extra = (
        f"\nTotal at 0.8 V: {result.power_08v.total:.3f} mW/MHz "
        f"(paper: 0.415); MP3 decoding at {MP3_EFFECTIVE_MHZ:.0f} MHz, "
        f"0.8 V: {result.mp3_milliwatts_08v:.2f} mW "
        f"(paper: {PAPER_MP3_MILLIWATTS_08V})")
    return table + extra
