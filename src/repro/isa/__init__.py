"""TM3270 instruction-set architecture: specs, semantics, encoding.

Importing this package populates the global operation
:data:`~repro.isa.operations.REGISTRY` with both the baseline TriMedia
operation set and the TM3270's new operations.
"""

from repro.isa import custom_ops, semantics  # noqa: F401  (registry side effects)
from repro.isa.operations import FU, REGISTRY, OpSpec, spec

__all__ = ["FU", "REGISTRY", "OpSpec", "spec"]
