"""Semantics of the TM3270's new operations (Section 2.2, Table 2).

These are the ISA enhancements the paper introduces:

* ``SUPER_DUALIMIX`` — two-slot pair-wise 2-taps filter on signed
  16-bit values, results clipped to the signed 32-bit range.
* ``SUPER_UFIR16`` — two-slot dual unsigned 16-bit dot products (a
  companion two-slot arithmetic operation).
* ``SUPER_LD32R`` — two-slot load of two consecutive big-endian 32-bit
  words; doubles load bandwidth.
* ``LD_FRAC8`` / ``LD_FRAC16`` — collapsed loads with two-taps
  fractional interpolation (Section 2.2.2), the motion-estimation
  operations.
* ``SUPER_CABAC_CTX`` / ``SUPER_CABAC_STR`` — the CABAC decode step
  split across two two-slot operations (Section 2.2.3, Figure 2).

All semantics follow Table 2 bit for bit.  The CABAC pair delegates to
:func:`repro.cabac.reference.decode_step`, the same function the
reference software decoder uses, which guarantees hardware/software
agreement by construction.
"""

from __future__ import annotations

from repro.cabac.reference import decode_step
from repro.isa import simd
from repro.isa.operations import REGISTRY
from repro.isa.semantics import semantic


@semantic("super_dualimix")
def _super_dualimix(ctx, srcs, imm):
    """Table 2: pair-wise 2-taps filter with 32-bit clipping.

    ``rdest1 = clip32(r1.hi * r2.hi + r3.hi * r4.hi)``
    ``rdest2 = clip32(r1.lo * r2.lo + r3.lo * r4.lo)``
    """
    r1_hi, r1_lo = simd.unpack16s(srcs[0])
    r2_hi, r2_lo = simd.unpack16s(srcs[1])
    r3_hi, r3_lo = simd.unpack16s(srcs[2])
    r4_hi, r4_lo = simd.unpack16s(srcs[3])
    dest1 = simd.clip_s32(r1_hi * r2_hi + r3_hi * r4_hi)
    dest2 = simd.clip_s32(r1_lo * r2_lo + r3_lo * r4_lo)
    return (simd.u32(dest1), simd.u32(dest2))


@semantic("super_ufir16")
def _super_ufir16(ctx, srcs, imm):
    """Two-slot dual unsigned dot products.

    ``rdest1 = r1.hi * r2.hi + r1.lo * r2.lo`` (unsigned lanes),
    ``rdest2 = r3.hi * r4.hi + r3.lo * r4.lo``.
    """
    r1_hi, r1_lo = simd.unpack16(srcs[0])
    r2_hi, r2_lo = simd.unpack16(srcs[1])
    r3_hi, r3_lo = simd.unpack16(srcs[2])
    r4_hi, r4_lo = simd.unpack16(srcs[3])
    return (
        simd.u32(r1_hi * r2_hi + r1_lo * r2_lo),
        simd.u32(r3_hi * r4_hi + r3_lo * r4_lo),
    )


@semantic("super_ld32r")
def _super_ld32r(ctx, srcs, imm):
    """Table 2: load two consecutive 32-bit words, big endian.

    The effective address is ``rsrc3 + rsrc4`` (the two sources are
    encoded in the second operation of the pair); ``rdest1`` receives
    the word at the address, ``rdest2`` the word 4 bytes above.  The
    whole transfer is a single 8-byte cache access — that is exactly
    why the operation is "easily supported by our cache
    implementation" while two independent loads are not (Section 2.2.1).
    """
    address = simd.u32(srcs[0] + srcs[1])
    double_word = ctx.load(address, 8)
    return (double_word >> 32, double_word & simd.MASK32)


@semantic("ld_frac8")
def _ld_frac8(ctx, srcs, imm):
    """Table 2: collapsed load of 5 bytes with two-taps interpolation.

    ``frac = rsrc2[3:0]``; each destination byte ``i`` is
    ``(data[i]*(16-frac) + data[i+1]*frac + 8) / 16``.
    """
    address = simd.u32(srcs[0])
    frac = srcs[1] & 0xF
    block = ctx.load(address, 5)  # one 5-byte (non-aligned) access
    data = [(block >> (8 * (4 - i))) & 0xFF for i in range(5)]
    lanes = [simd.interp2(data[i], data[i + 1], frac) for i in range(4)]
    return (simd.pack8(*lanes),)


@semantic("ld_frac16")
def _ld_frac16(ctx, srcs, imm):
    """Collapsed load of 3 big-endian half-words with interpolation.

    The 16-bit lane variant of ``LD_FRAC8`` (used by texture filters on
    intermediate 16-bit data).  ``frac = rsrc2[3:0]``; the two result
    lanes interpolate half-word pairs (0,1) and (1,2).
    """
    address = simd.u32(srcs[0])
    frac = srcs[1] & 0xF
    block = ctx.load(address, 6)  # one 6-byte (non-aligned) access
    halves = [(block >> (16 * (2 - i))) & 0xFFFF for i in range(3)]
    lane_hi = simd.interp2(halves[0], halves[1], frac)
    lane_lo = simd.interp2(halves[1], halves[2], frac)
    return (simd.pack16(lane_hi, lane_lo),)


def _unpack_cabac_srcs(srcs):
    value, range_ = simd.unpack16(srcs[0])
    position = srcs[1]
    state, mps = simd.unpack16(srcs[-1])
    return value, range_, position, state, mps & 1


@semantic("super_cabac_ctx")
def _super_cabac_ctx(ctx, srcs, imm):
    """Table 2: CABAC context update.

    Inputs: ``rsrc1 = DUAL16(value, range)``, ``rsrc2 = position``,
    ``rsrc3 = stream_data``, ``rsrc4 = DUAL16(state, mps)``.
    Outputs: ``rdest1 = DUAL16(value', range')`` (post-renormalization,
    which is why ``stream_data`` is needed) and
    ``rdest2 = DUAL16(state', mps')``.
    """
    value, range_, position, state, mps = _unpack_cabac_srcs(srcs)
    stream_data = srcs[2]
    value, range_, state, mps, _, _ = decode_step(
        value, range_, state, mps, stream_data, position)
    return (simd.pack16(value, range_), simd.pack16(state, mps))


@semantic("super_cabac_str")
def _super_cabac_str(ctx, srcs, imm):
    """Table 2: CABAC bitstream update.

    Inputs: ``rsrc1 = DUAL16(value, range)``, ``rsrc2 = position``,
    ``rsrc4 = DUAL16(state, mps)`` (``stream_data`` is *not* required:
    the renormalization shift count follows from the range alone).
    Outputs: ``rdest1 = position'``, ``rdest2 = decoded bit``.
    """
    value, range_, position, state, mps = _unpack_cabac_srcs(srcs)
    _, _, _, _, position, bit = decode_step(
        value, range_, state, mps, 0, position)
    return (simd.u32(position), bit)


def new_operation_names() -> list[str]:
    """Mnemonics of the operations the TM3270 adds over the TM3260."""
    return [spec.name for spec in REGISTRY.new_operations()]
