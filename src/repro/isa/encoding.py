"""Template-based compressed VLIW instruction encoding (Section 2.1).

Every VLIW instruction starts with a 10-bit template field that
specifies the compression of the operations in the *next* VLIW
instruction (making the template available one cycle before the
instruction's encoding, which relaxes decode timing).  The template has
five 2-bit sub-fields, one per issue slot:

====  ==========================
code  operation encoding size
====  ==========================
00    26 bits
01    34 bits
10    42 bits
11    slot unused
====  ==========================

An empty instruction therefore encodes in 2 bytes (template only) and a
maximal one in 28 bytes (10 + 5*42 = 220 bits), as in the paper.

Jump-target instructions are not compressed: all five slots are present
at 42 bits (empty slots carry explicit NOPs), so no template in the
*preceding* instruction is needed to decode them — a jump can land on
one cold.  Their total size is exactly the 28-byte maximum.

Operation chunk layout (MSB first)::

    opcode(9) | gflag(1) | [guard(7) if gflag] | dst*7 ... | src*7 ... |
    imm(spec.imm_bits) | zero padding to the chunk size

Two-slot operations span two chunks: the anchor chunk carries the
opcode, guard, destinations and the first two sources; a continuation
chunk (opcode ``CONTINUATION``) in the next slot carries the remaining
sources — "encoded as part of the second operation in the operation
pair" (Section 2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.operations import REGISTRY, OpSpec

#: 2-bit template codes, by chunk size.
CHUNK_SIZES = (26, 34, 42)
SLOT_UNUSED = 3
TEMPLATE_BITS = 10
MAX_CHUNK_BITS = 42

#: Reserved opcode marking the continuation chunk of a two-slot op.
CONTINUATION_OPCODE = (1 << 9) - 1

#: The guard register meaning "always execute" (r1 holds constant 1).
TRUE_GUARD = 1


class DecodeError(ValueError):
    """A malformed instruction stream failed to decode.

    Every decode-path failure — truncation, an unknown opcode, a
    continuation chunk without its anchor, a two-slot operation cut
    off from its continuation — raises this (and only this), carrying
    the position and chunk context so corrupt images fail diagnosably:

    * ``bit_offset`` / ``byte_offset`` — stream position of the
      offending chunk (or read), when known;
    * ``instruction`` — index of the VLIW instruction being decoded;
    * ``slot`` — 1-based issue slot of the offending chunk.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old bare ``ValueError`` keep working.
    """

    def __init__(self, reason: str, *, bit_offset: int | None = None,
                 instruction: int | None = None,
                 slot: int | None = None) -> None:
        self.reason = reason
        self.bit_offset = bit_offset
        self.byte_offset = None if bit_offset is None else bit_offset // 8
        self.instruction = instruction
        self.slot = slot
        super().__init__(self._format())

    def _format(self) -> str:
        context = []
        if self.instruction is not None:
            context.append(f"instruction {self.instruction}")
        if self.slot is not None:
            context.append(f"slot {self.slot}")
        if self.byte_offset is not None:
            context.append(f"byte offset {self.byte_offset:#x}")
        if context:
            return f"{self.reason} ({', '.join(context)})"
        return self.reason

    def with_context(self, *, instruction: int | None = None,
                     slot: int | None = None) -> DecodeError:
        """A copy with missing context fields filled in."""
        return DecodeError(
            self.reason, bit_offset=self.bit_offset,
            instruction=(self.instruction if self.instruction is not None
                         else instruction),
            slot=self.slot if self.slot is not None else slot)


@dataclass
class EncodedOp:
    """One operation as placed in an instruction, ready to encode.

    ``slot`` is the anchor issue slot (1-based).  ``dsts``/``srcs`` are
    physical register numbers; ``guard`` is a physical register number
    (``TRUE_GUARD`` when unguarded); ``imm`` is the raw immediate value
    (signed immediates still in signed form).
    """

    name: str
    slot: int
    dsts: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    guard: int = TRUE_GUARD
    imm: int | None = None

    @property
    def spec(self) -> OpSpec:
        return REGISTRY.spec(self.name)


class _BitPacker:
    """MSB-first bit accumulator with byte-aligned output."""

    def __init__(self) -> None:
        self._value = 0
        self._nbits = 0

    def put(self, value: int, nbits: int) -> None:
        if nbits < 0 or value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._value = (self._value << nbits) | value
        self._nbits += nbits

    def to_bytes(self) -> bytes:
        pad = (-self._nbits) % 8
        value = self._value << pad
        return value.to_bytes((self._nbits + pad) // 8, "big")

    @property
    def nbits(self) -> int:
        return self._nbits


class _BitUnpacker:
    """MSB-first bit reader over bytes."""

    def __init__(self, data: bytes, bit_offset: int = 0) -> None:
        self._data = data
        self.pos = bit_offset

    def get(self, nbits: int) -> int:
        if self.pos + nbits > 8 * len(self._data):
            raise DecodeError(
                f"truncated stream: needed {nbits} bits of "
                f"{8 * len(self._data)}", bit_offset=self.pos)
        value = 0
        for _ in range(nbits):
            byte = self._data[self.pos >> 3]
            value = (value << 1) | ((byte >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return value


def _imm_field(op: EncodedOp) -> int:
    """Raw (unsigned) immediate field bits for ``op``."""
    spec = op.spec
    if not spec.has_imm:
        return 0
    imm = op.imm or 0
    if spec.imm_signed:
        lo = -(1 << (spec.imm_bits - 1))
        hi = (1 << (spec.imm_bits - 1)) - 1
        if not lo <= imm <= hi:
            raise ValueError(
                f"{op.name}: immediate {imm} out of signed "
                f"{spec.imm_bits}-bit range")
        return imm & ((1 << spec.imm_bits) - 1)
    if not 0 <= imm < (1 << spec.imm_bits):
        raise ValueError(
            f"{op.name}: immediate {imm} out of unsigned "
            f"{spec.imm_bits}-bit range")
    return imm


def chunk_bits(op: EncodedOp) -> tuple[int, ...]:
    """Exact payload bit counts of the chunk(s) encoding ``op``.

    Single-slot ops produce one chunk; two-slot ops produce the anchor
    chunk and the continuation chunk.
    """
    spec = op.spec
    guard_bits = 0 if op.guard == TRUE_GUARD else 7
    if not spec.two_slot:
        bits = 9 + 1 + guard_bits + 7 * (spec.ndst + spec.nsrc)
        if spec.has_imm:
            bits += spec.imm_bits
        return (bits,)
    # Anchor: opcode, guard flag, dsts, first two srcs.
    anchor_srcs = min(2, spec.nsrc)
    anchor = 9 + 1 + guard_bits + 7 * (spec.ndst + anchor_srcs)
    # Continuation: marker opcode plus remaining srcs and immediate.
    cont = 9 + 7 * (spec.nsrc - anchor_srcs)
    if spec.has_imm:
        cont += spec.imm_bits
    return (anchor, cont)


def chunk_sizes(op: EncodedOp) -> tuple[int, ...]:
    """Template chunk sizes (26/34/42) for ``op``'s chunk(s)."""
    sizes = []
    for bits in chunk_bits(op):
        for size in CHUNK_SIZES:
            if bits <= size:
                sizes.append(size)
                break
        else:
            raise ValueError(
                f"{op.name}: chunk needs {bits} bits, exceeds "
                f"{MAX_CHUNK_BITS}")
    return tuple(sizes)


def encoding_errors(op: EncodedOp) -> list[str]:
    """Reasons ``op`` cannot be encoded; empty when fully encodable.

    The non-raising face of the encoder's own validation, shared with
    the static verifier: register fields must fit their 7-bit slots,
    the immediate its declared width, and every chunk the 42-bit
    template maximum.
    """
    try:
        spec = op.spec
    except KeyError:
        return [f"unknown operation {op.name!r}"]
    errors = []
    fields = (("guard", op.guard),)
    fields += tuple((f"dst r{reg}", reg) for reg in op.dsts)
    fields += tuple((f"src r{reg}", reg) for reg in op.srcs)
    for label, reg in fields:
        if not 0 <= reg < (1 << 7):
            errors.append(
                f"{label} register {reg} does not fit the 7-bit field")
    if spec.has_imm:
        try:
            _imm_field(op)
        except ValueError as error:
            errors.append(str(error))
    try:
        for bits in chunk_bits(op):
            if bits > MAX_CHUNK_BITS:
                errors.append(
                    f"chunk needs {bits} bits, exceeds {MAX_CHUNK_BITS}")
    except KeyError:
        pass  # unknown operation, reported above
    return errors


@dataclass
class EncodedInstruction:
    """One VLIW instruction: up to five operations bound to slots."""

    ops: tuple[EncodedOp, ...] = ()
    is_jump_target: bool = False

    def slot_map(self) -> dict[int, tuple[EncodedOp, int, int]]:
        """Map slot -> (op, chunk_index, chunk_size)."""
        mapping: dict[int, tuple[EncodedOp, int, int]] = {}
        for op in self.ops:
            sizes = chunk_sizes(op)
            for index, size in enumerate(sizes):
                slot = op.slot + index
                if slot in mapping:
                    raise ValueError(f"slot {slot} doubly occupied")
                if not 1 <= slot <= 5:
                    raise ValueError(f"slot {slot} out of range")
                mapping[slot] = (op, index, size)
        return mapping

    def template_codes(self) -> tuple[int, ...]:
        """Per-slot 2-bit compression codes for this instruction."""
        if self.is_jump_target:
            return (2, 2, 2, 2, 2)  # uncompressed: all slots at 42 bits
        mapping = self.slot_map()
        codes = []
        for slot in range(1, 6):
            if slot in mapping:
                codes.append(CHUNK_SIZES.index(mapping[slot][2]))
            else:
                codes.append(SLOT_UNUSED)
        return tuple(codes)


def _encode_chunk(packer: _BitPacker, op: EncodedOp, chunk_index: int,
                  size: int) -> None:
    spec = op.spec
    start = packer.nbits
    if chunk_index == 0:
        packer.put(spec.opcode, 9)
        if op.guard == TRUE_GUARD:
            packer.put(0, 1)
        else:
            packer.put(1, 1)
            packer.put(op.guard, 7)
        for dst in op.dsts:
            packer.put(dst, 7)
        srcs = op.srcs if not spec.two_slot else op.srcs[:2]
        for src in srcs:
            packer.put(src, 7)
        if spec.has_imm and not spec.two_slot:
            packer.put(_imm_field(op), spec.imm_bits)
    else:
        packer.put(CONTINUATION_OPCODE, 9)
        for src in op.srcs[2:]:
            packer.put(src, 7)
        if spec.has_imm:
            packer.put(_imm_field(op), spec.imm_bits)
    used = packer.nbits - start
    packer.put(0, size - used)


def encode_instruction(instr: EncodedInstruction,
                       next_template: tuple[int, ...]) -> bytes:
    """Encode one instruction given the *next* instruction's template."""
    packer = _BitPacker()
    for code in next_template:
        packer.put(code, 2)
    mapping = instr.slot_map()
    own_template = instr.template_codes()
    for slot in range(1, 6):
        code = own_template[slot - 1]
        if code == SLOT_UNUSED:
            continue
        size = CHUNK_SIZES[code]
        if slot in mapping:
            op, chunk_index, natural = mapping[slot]
            if natural > size:
                raise ValueError("chunk larger than template size")
            # At jump targets all chunks are stretched to 42 bits; the
            # payload layout is unchanged, padding grows.
            _encode_chunk(packer, op, chunk_index, size)
        else:
            # Uncompressed empty slot: explicit NOP chunk.
            nop = EncodedOp("nop", slot)
            _encode_chunk(packer, nop, 0, size)
    return packer.to_bytes()


def instruction_nbytes(instr: EncodedInstruction) -> int:
    """Encoded size in bytes (template + chunks, byte-aligned)."""
    bits = TEMPLATE_BITS
    for code in instr.template_codes():
        if code != SLOT_UNUSED:
            bits += CHUNK_SIZES[code]
    return (bits + 7) // 8


def encode_program(
    instructions: list[EncodedInstruction],
) -> tuple[bytes, list[int]]:
    """Encode a whole program image.

    The first instruction is implicitly a jump target (the entry point).
    Returns ``(image, addresses)`` where ``addresses[i]`` is the byte
    address of instruction ``i``.
    """
    if not instructions:
        return b"", []
    instructions = list(instructions)
    instructions[0].is_jump_target = True
    addresses: list[int] = []
    image = bytearray()
    empty_template = (SLOT_UNUSED,) * 5
    for index, instr in enumerate(instructions):
        addresses.append(len(image))
        if index + 1 < len(instructions):
            next_template = instructions[index + 1].template_codes()
        else:
            next_template = empty_template
        image.extend(encode_instruction(instr, next_template))
    return bytes(image), addresses


def _decode_chunk(unpacker: _BitUnpacker, size: int,
                  pending: EncodedOp | None,
                  slot: int) -> tuple[EncodedOp | None, EncodedOp | None]:
    """Decode one chunk.

    Returns ``(completed_op, still_pending)``; two-slot anchors return
    as pending until their continuation chunk arrives.
    """
    start = unpacker.pos
    opcode = unpacker.get(9)
    if opcode == CONTINUATION_OPCODE:
        if pending is None:
            raise DecodeError(
                "continuation chunk with no pending super-op",
                bit_offset=start, slot=slot)
        spec = pending.spec
        srcs = list(pending.srcs)
        for _ in range(spec.nsrc - len(srcs)):
            srcs.append(unpacker.get(7))
        imm = pending.imm
        if spec.has_imm:
            raw = unpacker.get(spec.imm_bits)
            imm = _decode_imm(spec, raw)
        unpacker.pos = start + size
        done = EncodedOp(pending.name, pending.slot, pending.dsts,
                         tuple(srcs), pending.guard, imm)
        return done, None
    try:
        spec = REGISTRY.spec_by_opcode(opcode)
    except KeyError:
        raise DecodeError(f"unknown opcode {opcode}", bit_offset=start,
                          slot=slot) from None
    guard = TRUE_GUARD
    if unpacker.get(1):
        guard = unpacker.get(7)
    dsts = tuple(unpacker.get(7) for _ in range(spec.ndst))
    nsrc = spec.nsrc if not spec.two_slot else min(2, spec.nsrc)
    srcs = tuple(unpacker.get(7) for _ in range(nsrc))
    imm = None
    if spec.has_imm and not spec.two_slot:
        imm = _decode_imm(spec, unpacker.get(spec.imm_bits))
    unpacker.pos = start + size
    op = EncodedOp(spec.name, slot, dsts, srcs, guard, imm)
    if spec.two_slot:
        return None, op
    return op, None


def _decode_imm(spec: OpSpec, raw: int) -> int:
    if spec.imm_signed and raw & (1 << (spec.imm_bits - 1)):
        return raw - (1 << spec.imm_bits)
    return raw


def decode_program(image: bytes) -> list[EncodedInstruction]:
    """Decode a program image produced by :func:`encode_program`.

    Walks linearly from the entry, tracking each instruction's template
    from its predecessor (the entry is uncompressed by construction).
    """
    instructions: list[EncodedInstruction] = []
    template = (2, 2, 2, 2, 2)
    bit = 0
    total_bits = 8 * len(image)
    first = True
    while bit < total_bits:
        index = len(instructions)
        unpacker = _BitUnpacker(image, bit)
        try:
            next_template = tuple(unpacker.get(2) for _ in range(5))
            ops: list[EncodedOp] = []
            pending: EncodedOp | None = None
            for slot in range(1, 6):
                code = template[slot - 1]
                if code == SLOT_UNUSED:
                    continue
                done, pending = _decode_chunk(
                    unpacker, CHUNK_SIZES[code], pending, slot)
                if done is not None and done.name != "nop":
                    ops.append(done)
            if pending is not None:
                raise DecodeError(
                    f"two-slot operation {pending.name!r} missing its "
                    "continuation chunk", bit_offset=unpacker.pos,
                    slot=pending.slot)
        except DecodeError as error:
            raise error.with_context(instruction=index) from None
        instructions.append(EncodedInstruction(tuple(ops), first))
        bit += 8 * ((unpacker.pos - bit + 7) // 8)
        template = next_template
        first = False
    return instructions
