"""TM3270 operation set: specifications and the operation registry.

The TM3270 is a 5 issue-slot VLIW with guarded RISC-like operations
(Table 1).  Every operation is described by an :class:`OpSpec`: its
functional-unit class, result latency, the issue slots that can execute
it, operand counts, and encoding-relevant properties.

Functional-unit classes and their slot assignments follow the TriMedia
organization described in the paper (Sections 3 and 4):

* ALU units exist in every slot.
* The load/store unit lives in issue slots 4 and 5 (Section 4.2): stores
  can issue in slots 4 or 5, a single load only in slot 5.
* Branch units live in slots 2, 3, and 4.
* Two-slot ("super") operations occupy two *neighboring* slots and are
  anchored at the lower slot (Section 2.2.1).

Semantics live in :mod:`repro.isa.semantics` (baseline TriMedia ops) and
:mod:`repro.isa.custom_ops` (the TM3270's new operations) and are bound
into the registry at import time by :mod:`repro.isa`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FU(enum.Enum):
    """Functional-unit classes."""

    ALU = "alu"
    SHIFTER = "shifter"
    DSPALU = "dspalu"
    DSPMUL = "dspmul"
    BRANCH = "branch"
    FALU = "falu"
    FMUL = "fmul"
    FCOMP = "fcomp"
    FTOUGH = "ftough"
    LOADSTORE = "loadstore"
    SUPER_DSPMUL = "super_dspmul"  # two-slot, anchored at slot 2 (slots 2+3)
    SUPER_CABAC = "super_cabac"    # two-slot, anchored at slot 2 (slots 2+3)
    SUPER_LS = "super_ls"          # two-slot, anchored at slot 4 (slots 4+5)
    FRACLOAD = "fracload"          # collapsed load with interpolation, slot 5


# Issue slots are numbered 1..5 as in the paper.  For each FU class the
# tuple lists the slots in which an instance of that class exists; for
# two-slot classes the slot listed is the *anchor* (lower) slot.
FU_SLOTS: dict[FU, tuple[int, ...]] = {
    FU.ALU: (1, 2, 3, 4, 5),
    FU.SHIFTER: (1, 2),
    FU.DSPALU: (1, 3),
    FU.DSPMUL: (2, 3),
    FU.BRANCH: (2, 3, 4),
    FU.FALU: (1, 4),
    FU.FMUL: (2, 3),
    FU.FCOMP: (3,),
    FU.FTOUGH: (2,),
    FU.LOADSTORE: (4, 5),
    FU.SUPER_DSPMUL: (2,),
    FU.SUPER_CABAC: (2,),
    FU.SUPER_LS: (4,),
    FU.FRACLOAD: (5,),
}

TWO_SLOT_FUS = frozenset({FU.SUPER_DSPMUL, FU.SUPER_CABAC, FU.SUPER_LS})

#: Slot-occupancy of each functional-unit *instance* of the TM3270.
#: 31 instances in total (Table 1: "Functional units: 31").
FUNCTIONAL_UNIT_INVENTORY: tuple[tuple[FU, int], ...] = tuple(
    (fu, slot) for fu in FU for slot in FU_SLOTS[fu]
) + (
    # Constant-generation units (immediate formers), one in each of
    # slots 1..5, share the ALU slot assignment but are separate units.
    (FU.ALU, 1),
    (FU.ALU, 2),
    (FU.ALU, 3),
    (FU.ALU, 4),
    (FU.ALU, 5),
)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operation.

    Attributes
    ----------
    name:
        Mnemonic, lowercase (e.g. ``"iadd"``, ``"super_ld32r"``).
    fu:
        Functional-unit class executing the operation.
    latency:
        Result latency in cycles on the TM3270 (targets may override
        load latencies — Table 6: 3 cycles on TM3260 vs 4 on TM3270).
    nsrc / ndst:
        Number of register source/destination operands.
    has_imm / imm_bits:
        Whether an immediate operand is present and its encoded width.
    imm_signed:
        Whether the immediate is sign-extended when decoded.
    is_load / is_store / is_jump:
        Memory- and control-flow classification used by the scheduler
        and the load/store unit.
    mem_bytes:
        Number of memory bytes referenced (for loads/stores), used by
        the LSU to compute the first/last byte addresses of possibly
        non-aligned accesses.
    new_in_tm3270:
        True for operations introduced by the TM3270 (Section 2.2).
    description:
        One-line human-readable summary.
    """

    name: str
    fu: FU
    latency: int
    nsrc: int
    ndst: int
    has_imm: bool = False
    imm_bits: int = 0
    imm_signed: bool = False
    is_load: bool = False
    is_store: bool = False
    is_jump: bool = False
    mem_bytes: int = 0
    new_in_tm3270: bool = False
    description: str = ""
    opcode: int = field(default=-1, compare=False)

    @property
    def two_slot(self) -> bool:
        """True when the operation occupies two neighboring slots."""
        return self.fu in TWO_SLOT_FUS

    @property
    def slots(self) -> tuple[int, ...]:
        """Anchor slots in which this operation may issue."""
        return FU_SLOTS[self.fu]

    @property
    def is_mem(self) -> bool:
        """True for any memory-referencing operation."""
        return self.is_load or self.is_store


class OperationRegistry:
    """Name-indexed registry of operation specs and their semantics."""

    def __init__(self) -> None:
        self._specs: dict[str, OpSpec] = {}
        self._semantics: dict[str, object] = {}

    def define(self, spec: OpSpec) -> OpSpec:
        """Register ``spec``, assigning it the next opcode number."""
        if spec.name in self._specs:
            raise ValueError(f"duplicate operation name: {spec.name}")
        numbered = OpSpec(**{**spec.__dict__, "opcode": len(self._specs)})
        self._specs[spec.name] = numbered
        return numbered

    def bind(self, name: str, semantic) -> None:
        """Attach an executable semantic function to operation ``name``."""
        if name not in self._specs:
            raise KeyError(f"unknown operation: {name}")
        self._semantics[name] = semantic

    def spec(self, name: str) -> OpSpec:
        """Look up the spec for ``name``; raises ``KeyError`` if absent."""
        return self._specs[name]

    def spec_by_opcode(self, opcode: int) -> OpSpec:
        """Look up a spec by its assigned opcode number."""
        for spec in self._specs.values():
            if spec.opcode == opcode:
                return spec
        raise KeyError(f"unknown opcode: {opcode}")

    def semantic(self, name: str):
        """Return the semantic function bound to ``name``."""
        return self._semantics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        """All registered mnemonics, in opcode order."""
        return list(self._specs)

    def new_operations(self) -> list[OpSpec]:
        """Operations introduced by the TM3270 (Section 2.2)."""
        return [s for s in self._specs.values() if s.new_in_tm3270]


#: The global operation registry used by the assembler, scheduler,
#: encoder, and processor.  Populated below and by the semantics modules.
REGISTRY = OperationRegistry()


def _op(name: str, fu: FU, latency: int, nsrc: int, ndst: int, **kw) -> OpSpec:
    return REGISTRY.define(OpSpec(name, fu, latency, nsrc, ndst, **kw))


# ---------------------------------------------------------------------------
# Baseline TriMedia operation set (available on TM3260 and TM3270)
# ---------------------------------------------------------------------------

# Scalar ALU, single-cycle, any slot.
_op("iadd", FU.ALU, 1, 2, 1, description="32-bit add")
_op("isub", FU.ALU, 1, 2, 1, description="32-bit subtract")
_op("imin", FU.ALU, 1, 2, 1, description="signed minimum")
_op("imax", FU.ALU, 1, 2, 1, description="signed maximum")
_op("bitand", FU.ALU, 1, 2, 1, description="bitwise AND")
_op("bitor", FU.ALU, 1, 2, 1, description="bitwise OR")
_op("bitxor", FU.ALU, 1, 2, 1, description="bitwise XOR")
_op("bitandinv", FU.ALU, 1, 2, 1, description="a AND NOT b")
_op("bitinv", FU.ALU, 1, 1, 1, description="bitwise NOT")
_op("ineg", FU.ALU, 1, 1, 1, description="two's complement negate")
_op("iabs", FU.ALU, 1, 1, 1, description="absolute value (saturating)")
_op("mov", FU.ALU, 1, 1, 1, description="register copy")
_op("sex16", FU.ALU, 1, 1, 1, description="sign-extend low 16 bits")
_op("zex16", FU.ALU, 1, 1, 1, description="zero-extend low 16 bits")
_op("sex8", FU.ALU, 1, 1, 1, description="sign-extend low 8 bits")
_op("zex8", FU.ALU, 1, 1, 1, description="zero-extend low 8 bits")

# Immediate forms.
_op("iaddi", FU.ALU, 1, 1, 1, has_imm=True, imm_bits=7, imm_signed=True,
    description="add signed 7-bit immediate")
_op("uimm", FU.ALU, 1, 0, 1, has_imm=True, imm_bits=16,
    description="load 16-bit unsigned immediate")
_op("himm", FU.ALU, 1, 1, 1, has_imm=True, imm_bits=16,
    description="dst = src | (imm16 << 16); forms 32-bit constants")

# Comparisons (produce 1/0, typically consumed as guards).
_op("igtr", FU.ALU, 1, 2, 1, description="signed greater-than")
_op("igeq", FU.ALU, 1, 2, 1, description="signed greater-or-equal")
_op("iles", FU.ALU, 1, 2, 1, description="signed less-than")
_op("ileq", FU.ALU, 1, 2, 1, description="signed less-or-equal")
_op("ieql", FU.ALU, 1, 2, 1, description="equality")
_op("ineq", FU.ALU, 1, 2, 1, description="inequality")
_op("ugtr", FU.ALU, 1, 2, 1, description="unsigned greater-than")
_op("ugeq", FU.ALU, 1, 2, 1, description="unsigned greater-or-equal")
_op("igtri", FU.ALU, 1, 1, 1, has_imm=True, imm_bits=7, imm_signed=True,
    description="signed greater-than immediate")
_op("ieqli", FU.ALU, 1, 1, 1, has_imm=True, imm_bits=7, imm_signed=True,
    description="equal-to-immediate")
_op("ineqi", FU.ALU, 1, 1, 1, has_imm=True, imm_bits=7, imm_signed=True,
    description="not-equal-to-immediate")

# Shifter, slots 1 and 2.
_op("asl", FU.SHIFTER, 1, 2, 1, description="arithmetic shift left")
_op("asr", FU.SHIFTER, 1, 2, 1, description="arithmetic shift right")
_op("lsr", FU.SHIFTER, 1, 2, 1, description="logical shift right")
_op("rol", FU.SHIFTER, 1, 2, 1, description="rotate left")
_op("asli", FU.SHIFTER, 1, 1, 1, has_imm=True, imm_bits=7,
    description="arithmetic shift left immediate")
_op("asri", FU.SHIFTER, 1, 1, 1, has_imm=True, imm_bits=7,
    description="arithmetic shift right immediate")
_op("lsri", FU.SHIFTER, 1, 1, 1, has_imm=True, imm_bits=7,
    description="logical shift right immediate")
_op("roli", FU.SHIFTER, 1, 1, 1, has_imm=True, imm_bits=7,
    description="rotate left immediate")

# Multiplier, slots 2 and 3, 3-cycle latency.
_op("imul", FU.DSPMUL, 3, 2, 1, description="signed 32x32 multiply, low 32")
_op("imulm", FU.DSPMUL, 3, 2, 1, description="signed 32x32 multiply, high 32")
_op("umulm", FU.DSPMUL, 3, 2, 1, description="unsigned 32x32 multiply, high 32")
_op("ifir16", FU.DSPMUL, 3, 2, 1,
    description="dual 16-bit dot product (signed, clipped)")
_op("ufir16", FU.DSPMUL, 3, 2, 1,
    description="dual 16-bit dot product (unsigned)")
_op("ifir8ui", FU.DSPMUL, 3, 2, 1,
    description="quad 8-bit dot product (unsigned x signed)")
_op("quadumulmsb", FU.DSPMUL, 3, 2, 1,
    description="per-byte unsigned multiply, keep MSBs")

# DSP ALU, slots 1 and 3, 2-cycle latency.
_op("dspiabs", FU.DSPALU, 2, 1, 1, description="clipped absolute value")
_op("dspidualadd", FU.DSPALU, 2, 2, 1,
    description="dual 16-bit saturating add")
_op("dspidualsub", FU.DSPALU, 2, 2, 1,
    description="dual 16-bit saturating subtract")
_op("dspidualmul", FU.DSPALU, 2, 2, 1,
    description="dual 16-bit saturating multiply (low halves)")
_op("dspuquadaddui", FU.DSPALU, 2, 2, 1,
    description="quad 8-bit saturating add (unsigned + signed)")
_op("quadavg", FU.DSPALU, 2, 2, 1,
    description="quad 8-bit rounding average")
_op("quadumax", FU.DSPALU, 2, 2, 1, description="quad 8-bit unsigned max")
_op("quadumin", FU.DSPALU, 2, 2, 1, description="quad 8-bit unsigned min")
_op("ume8uu", FU.DSPALU, 2, 2, 1,
    description="sum of absolute differences over 4 unsigned bytes")
_op("iclipi", FU.DSPALU, 2, 1, 1, has_imm=True, imm_bits=7,
    description="clip to [-2^imm, 2^imm - 1]")
_op("uclipi", FU.DSPALU, 2, 1, 1, has_imm=True, imm_bits=7,
    description="clip to [0, 2^imm - 1]")
_op("mergelsb", FU.DSPALU, 2, 2, 1,
    description="interleave the two low bytes of each source")
_op("mergemsb", FU.DSPALU, 2, 2, 1,
    description="interleave the two high bytes of each source")
_op("pack16lsb", FU.DSPALU, 2, 2, 1,
    description="pack low halves: (a.lo << 16) | b.lo")
_op("pack16msb", FU.DSPALU, 2, 2, 1,
    description="pack high halves: (a.hi << 16) | b.hi")
_op("packbytes", FU.DSPALU, 2, 2, 1,
    description="pack low bytes: (a.byte0 << 8) | b.byte0")
_op("ubytesel", FU.DSPALU, 2, 2, 1,
    description="select byte of a indexed by low 2 bits of b")

# Floating point (IEEE-754 single precision; Table 1).
_op("fadd", FU.FALU, 3, 2, 1, description="FP add")
_op("fsub", FU.FALU, 3, 2, 1, description="FP subtract")
_op("i2f", FU.FALU, 3, 1, 1, description="int to float")
_op("f2i", FU.FALU, 3, 1, 1, description="float to int (truncate)")
_op("fmul", FU.FMUL, 3, 2, 1, description="FP multiply")
_op("fgtr", FU.FCOMP, 1, 2, 1, description="FP greater-than")
_op("feql", FU.FCOMP, 1, 2, 1, description="FP equality")
_op("fdiv", FU.FTOUGH, 17, 2, 1, description="FP divide (iterative)")
_op("fsqrt", FU.FTOUGH, 17, 1, 1, description="FP square root (iterative)")

# Loads.  Latency is the TM3270's 4 cycles; targets override (Table 6).
_op("ld32", FU.LOADSTORE, 4, 2, 1, is_load=True, mem_bytes=4,
    description="load 32-bit word, indexed addressing (base + index)")
_op("ld32d", FU.LOADSTORE, 4, 1, 1, has_imm=True, imm_bits=7,
    imm_signed=True, is_load=True, mem_bytes=4,
    description="load 32-bit word, base + displacement")
_op("ild16d", FU.LOADSTORE, 4, 1, 1, has_imm=True, imm_bits=7,
    imm_signed=True, is_load=True, mem_bytes=2,
    description="load signed 16-bit, base + displacement")
_op("uld16d", FU.LOADSTORE, 4, 1, 1, has_imm=True, imm_bits=7,
    imm_signed=True, is_load=True, mem_bytes=2,
    description="load unsigned 16-bit, base + displacement")
_op("ild8d", FU.LOADSTORE, 4, 1, 1, has_imm=True, imm_bits=7,
    imm_signed=True, is_load=True, mem_bytes=1,
    description="load signed 8-bit, base + displacement")
_op("uld8d", FU.LOADSTORE, 4, 1, 1, has_imm=True, imm_bits=7,
    imm_signed=True, is_load=True, mem_bytes=1,
    description="load unsigned 8-bit, base + displacement")

# Stores (no register result).
_op("st32d", FU.LOADSTORE, 1, 2, 0, has_imm=True, imm_bits=7,
    imm_signed=True, is_store=True, mem_bytes=4,
    description="store 32-bit word, base + displacement")
_op("st16d", FU.LOADSTORE, 1, 2, 0, has_imm=True, imm_bits=7,
    imm_signed=True, is_store=True, mem_bytes=2,
    description="store low 16 bits, base + displacement")
_op("st8d", FU.LOADSTORE, 1, 2, 0, has_imm=True, imm_bits=7,
    imm_signed=True, is_store=True, mem_bytes=1,
    description="store low 8 bits, base + displacement")

# Jumps.  Control transfer takes effect after the target's architectural
# jump delay slots (Section 3: 5 on the TM3270, Table 6: 3 on TM3260).
_op("jmpi", FU.BRANCH, 1, 0, 0, has_imm=True, imm_bits=24, is_jump=True,
    description="unconditional jump to immediate address")
_op("jmpt", FU.BRANCH, 1, 0, 0, has_imm=True, imm_bits=24, is_jump=True,
    description="jump if guard is true")
_op("jmpf", FU.BRANCH, 1, 0, 0, has_imm=True, imm_bits=24, is_jump=True,
    description="jump if guard is false")

# Explicit no-operation (used to encode empty slots at branch targets).
_op("nop", FU.ALU, 1, 0, 0, description="no operation")


# ---------------------------------------------------------------------------
# TM3270 ISA enhancements (Section 2.2) — specifications.
# Semantics are implemented in repro.isa.custom_ops.
# ---------------------------------------------------------------------------

_op("super_dualimix", FU.SUPER_DSPMUL, 4, 4, 2, new_in_tm3270=True,
    description="two-slot pair-wise 2-taps filter on signed 16-bit values "
                "with 32-bit clipping (Table 2)")
_op("super_ufir16", FU.SUPER_DSPMUL, 4, 4, 2, new_in_tm3270=True,
    description="two-slot dual unsigned 16-bit dot products")
_op("super_ld32r", FU.SUPER_LS, 4, 2, 2, is_load=True, mem_bytes=8,
    new_in_tm3270=True,
    description="two-slot load of two consecutive 32-bit words, big endian "
                "(Table 2); doubles load bandwidth")
_op("ld_frac8", FU.FRACLOAD, 6, 2, 1, is_load=True, mem_bytes=5,
    new_in_tm3270=True,
    description="collapsed load: 5 bytes + two-taps fractional interpolation "
                "(Table 2); for motion estimation at fractional positions")
_op("ld_frac16", FU.FRACLOAD, 6, 2, 1, is_load=True, mem_bytes=6,
    new_in_tm3270=True,
    description="collapsed load: 3 half-words + two-taps fractional "
                "interpolation on 16-bit lanes")
_op("super_cabac_ctx", FU.SUPER_CABAC, 4, 4, 2, new_in_tm3270=True,
    description="two-slot CABAC context update: (value,range),(state,mps) "
                "out of full decode state (Table 2, Figure 2)")
_op("super_cabac_str", FU.SUPER_CABAC, 4, 3, 2, new_in_tm3270=True,
    description="two-slot CABAC bitstream update: stream position and "
                "decoded bit (Table 2, Figure 2)")


def spec(name: str) -> OpSpec:
    """Convenience module-level lookup into :data:`REGISTRY`."""
    return REGISTRY.spec(name)
