"""Executable semantics of the baseline TriMedia operation set.

Each semantic is a function ``fn(ctx, srcs, imm) -> tuple_of_results``:

* ``ctx`` — an execution context providing byte-addressed memory access
  through ``ctx.load(addr, nbytes) -> int`` (big-endian, as in Table 2's
  ``SUPER_LD32R`` definition) and ``ctx.store(addr, value, nbytes)``.
* ``srcs`` — tuple of unsigned 32-bit source register values.
* ``imm`` — decoded immediate (already sign-extended where applicable),
  or ``None``.

The return value is a tuple of unsigned 32-bit results, one per
destination register.  Jumps return the resolved target address wrapped
in a :class:`JumpOutcome`; the pipeline applies the control transfer
after the configured number of delay slots.

Semantics are *purely functional* over their inputs and the memory
context, which is what makes them reusable across the cycle-accurate
processor, the assembler-level interpreter, and the unit tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.isa import simd
from repro.isa.operations import REGISTRY


@dataclass(frozen=True)
class JumpOutcome:
    """Result of a jump operation: whether taken and the target address."""

    taken: bool
    target: int


def _f32(value: int) -> float:
    """Reinterpret an unsigned 32-bit word as an IEEE-754 float."""
    return struct.unpack(">f", struct.pack(">I", value & simd.MASK32))[0]


def _bits(value: float) -> int:
    """Reinterpret an IEEE-754 single as an unsigned 32-bit word.

    Overflow to infinity follows IEEE-754 round-to-nearest semantics via
    the struct codec; NaNs are canonicalized by the codec as well.
    """
    try:
        return struct.unpack(">I", struct.pack(">f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def semantic(name: str):
    """Decorator: bind the decorated function to operation ``name``."""

    def register(fn):
        REGISTRY.bind(name, fn)
        return fn

    return register


# ---------------------------------------------------------------------------
# Scalar ALU
# ---------------------------------------------------------------------------

@semantic("iadd")
def _iadd(ctx, srcs, imm):
    return (simd.u32(srcs[0] + srcs[1]),)


@semantic("isub")
def _isub(ctx, srcs, imm):
    return (simd.u32(srcs[0] - srcs[1]),)


@semantic("imin")
def _imin(ctx, srcs, imm):
    return (simd.u32(min(simd.s32(srcs[0]), simd.s32(srcs[1]))),)


@semantic("imax")
def _imax(ctx, srcs, imm):
    return (simd.u32(max(simd.s32(srcs[0]), simd.s32(srcs[1]))),)


@semantic("bitand")
def _bitand(ctx, srcs, imm):
    return (srcs[0] & srcs[1],)


@semantic("bitor")
def _bitor(ctx, srcs, imm):
    return (srcs[0] | srcs[1],)


@semantic("bitxor")
def _bitxor(ctx, srcs, imm):
    return (srcs[0] ^ srcs[1],)


@semantic("bitandinv")
def _bitandinv(ctx, srcs, imm):
    return (srcs[0] & simd.u32(~srcs[1]),)


@semantic("bitinv")
def _bitinv(ctx, srcs, imm):
    return (simd.u32(~srcs[0]),)


@semantic("ineg")
def _ineg(ctx, srcs, imm):
    return (simd.u32(-simd.s32(srcs[0])),)


@semantic("iabs")
def _iabs(ctx, srcs, imm):
    value = simd.s32(srcs[0])
    return (simd.u32(simd.clip_s32(abs(value))),)


@semantic("mov")
def _mov(ctx, srcs, imm):
    return (srcs[0],)


@semantic("sex16")
def _sex16(ctx, srcs, imm):
    return (simd.u32(simd.s16(srcs[0])),)


@semantic("zex16")
def _zex16(ctx, srcs, imm):
    return (simd.u16(srcs[0]),)


@semantic("sex8")
def _sex8(ctx, srcs, imm):
    return (simd.u32(simd.s8(srcs[0])),)


@semantic("zex8")
def _zex8(ctx, srcs, imm):
    return (simd.u8(srcs[0]),)


@semantic("iaddi")
def _iaddi(ctx, srcs, imm):
    return (simd.u32(srcs[0] + imm),)


@semantic("uimm")
def _uimm(ctx, srcs, imm):
    return (imm & simd.MASK16,)


@semantic("himm")
def _himm(ctx, srcs, imm):
    return (simd.u32(srcs[0] | ((imm & simd.MASK16) << 16)),)


# ---------------------------------------------------------------------------
# Comparisons (results are 1/0 words, typically consumed as guards)
# ---------------------------------------------------------------------------

@semantic("igtr")
def _igtr(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) > simd.s32(srcs[1]) else 0,)


@semantic("igeq")
def _igeq(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) >= simd.s32(srcs[1]) else 0,)


@semantic("iles")
def _iles(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) < simd.s32(srcs[1]) else 0,)


@semantic("ileq")
def _ileq(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) <= simd.s32(srcs[1]) else 0,)


@semantic("ieql")
def _ieql(ctx, srcs, imm):
    return (1 if srcs[0] == srcs[1] else 0,)


@semantic("ineq")
def _ineq(ctx, srcs, imm):
    return (1 if srcs[0] != srcs[1] else 0,)


@semantic("ugtr")
def _ugtr(ctx, srcs, imm):
    return (1 if srcs[0] > srcs[1] else 0,)


@semantic("ugeq")
def _ugeq(ctx, srcs, imm):
    return (1 if srcs[0] >= srcs[1] else 0,)


@semantic("igtri")
def _igtri(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) > imm else 0,)


@semantic("ieqli")
def _ieqli(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) == imm else 0,)


@semantic("ineqi")
def _ineqi(ctx, srcs, imm):
    return (1 if simd.s32(srcs[0]) != imm else 0,)


# ---------------------------------------------------------------------------
# Shifter
# ---------------------------------------------------------------------------

def _shift_amount(value: int) -> int:
    return value & 31


@semantic("asl")
def _asl(ctx, srcs, imm):
    return (simd.u32(srcs[0] << _shift_amount(srcs[1])),)


@semantic("asr")
def _asr(ctx, srcs, imm):
    return (simd.u32(simd.s32(srcs[0]) >> _shift_amount(srcs[1])),)


@semantic("lsr")
def _lsr(ctx, srcs, imm):
    return (srcs[0] >> _shift_amount(srcs[1]),)


@semantic("rol")
def _rol(ctx, srcs, imm):
    return (simd.rotate_left32(srcs[0], srcs[1]),)


@semantic("asli")
def _asli(ctx, srcs, imm):
    return (simd.u32(srcs[0] << _shift_amount(imm)),)


@semantic("asri")
def _asri(ctx, srcs, imm):
    return (simd.u32(simd.s32(srcs[0]) >> _shift_amount(imm)),)


@semantic("lsri")
def _lsri(ctx, srcs, imm):
    return (srcs[0] >> _shift_amount(imm),)


@semantic("roli")
def _roli(ctx, srcs, imm):
    return (simd.rotate_left32(srcs[0], imm),)


# ---------------------------------------------------------------------------
# Multiplier
# ---------------------------------------------------------------------------

@semantic("imul")
def _imul(ctx, srcs, imm):
    return (simd.u32(simd.s32(srcs[0]) * simd.s32(srcs[1])),)


@semantic("imulm")
def _imulm(ctx, srcs, imm):
    product = simd.s32(srcs[0]) * simd.s32(srcs[1])
    return (simd.u32(product >> 32),)


@semantic("umulm")
def _umulm(ctx, srcs, imm):
    return ((srcs[0] * srcs[1]) >> 32,)


@semantic("ifir16")
def _ifir16(ctx, srcs, imm):
    a_hi, a_lo = simd.unpack16s(srcs[0])
    b_hi, b_lo = simd.unpack16s(srcs[1])
    return (simd.u32(simd.clip_s32(a_hi * b_hi + a_lo * b_lo)),)


@semantic("ufir16")
def _ufir16(ctx, srcs, imm):
    a_hi, a_lo = simd.unpack16(srcs[0])
    b_hi, b_lo = simd.unpack16(srcs[1])
    return (simd.u32(a_hi * b_hi + a_lo * b_lo),)


@semantic("ifir8ui")
def _ifir8ui(ctx, srcs, imm):
    a = simd.unpack8(srcs[0])
    b = simd.unpack8s(srcs[1])
    return (simd.u32(simd.clip_s32(sum(x * y for x, y in zip(a, b)))),)


@semantic("quadumulmsb")
def _quadumulmsb(ctx, srcs, imm):
    return (simd.map8(lambda a, b: (a * b) >> 8, srcs[0], srcs[1]),)


# ---------------------------------------------------------------------------
# DSP ALU
# ---------------------------------------------------------------------------

@semantic("dspiabs")
def _dspiabs(ctx, srcs, imm):
    return (simd.u32(simd.clip_s32(abs(simd.s32(srcs[0])))),)


# The 16/8-bit lane semantics run on the batched SWAR helpers — all
# lanes in one pass of masked integer arithmetic.  The scalar lane
# helpers (map16/map8/unpack*) remain in repro.isa.simd as the pinned
# reference; tests/isa/test_simd_batched.py holds the two forms equal
# on full-range edge words.

@semantic("dspidualadd")
def _dspidualadd(ctx, srcs, imm):
    return (simd.dual_add_sat_s16(srcs[0], srcs[1]),)


@semantic("dspidualsub")
def _dspidualsub(ctx, srcs, imm):
    return (simd.dual_sub_sat_s16(srcs[0], srcs[1]),)


@semantic("dspidualmul")
def _dspidualmul(ctx, srcs, imm):
    return (simd.dual_mul_sat_s16(srcs[0], srcs[1]),)


@semantic("dspuquadaddui")
def _dspuquadaddui(ctx, srcs, imm):
    return (simd.quad_add_u8s(srcs[0], srcs[1]),)


@semantic("quadavg")
def _quadavg(ctx, srcs, imm):
    return (simd.quad_avg_u8(srcs[0], srcs[1]),)


@semantic("quadumax")
def _quadumax(ctx, srcs, imm):
    return (simd.quad_max_u8(srcs[0], srcs[1]),)


@semantic("quadumin")
def _quadumin(ctx, srcs, imm):
    return (simd.quad_min_u8(srcs[0], srcs[1]),)


@semantic("ume8uu")
def _ume8uu(ctx, srcs, imm):
    return (simd.quad_abs_diff_sum_u8(srcs[0], srcs[1]),)


@semantic("iclipi")
def _iclipi(ctx, srcs, imm):
    bound = 1 << (imm & 31)
    return (simd.u32(simd.clip(simd.s32(srcs[0]), -bound, bound - 1)),)


@semantic("uclipi")
def _uclipi(ctx, srcs, imm):
    bound = 1 << (imm & 31)
    return (simd.clip(simd.s32(srcs[0]), 0, bound - 1),)


@semantic("mergelsb")
def _mergelsb(ctx, srcs, imm):
    a3, a2, a1, a0 = simd.unpack8(srcs[0])
    b3, b2, b1, b0 = simd.unpack8(srcs[1])
    return (simd.pack8(a1, b1, a0, b0),)


@semantic("mergemsb")
def _mergemsb(ctx, srcs, imm):
    a3, a2, a1, a0 = simd.unpack8(srcs[0])
    b3, b2, b1, b0 = simd.unpack8(srcs[1])
    return (simd.pack8(a3, b3, a2, b2),)


@semantic("pack16lsb")
def _pack16lsb(ctx, srcs, imm):
    return (simd.pack16(srcs[0] & simd.MASK16, srcs[1] & simd.MASK16),)


@semantic("pack16msb")
def _pack16msb(ctx, srcs, imm):
    return (simd.pack16(srcs[0] >> 16, srcs[1] >> 16),)


@semantic("packbytes")
def _packbytes(ctx, srcs, imm):
    return (((srcs[0] & simd.MASK8) << 8) | (srcs[1] & simd.MASK8),)


@semantic("ubytesel")
def _ubytesel(ctx, srcs, imm):
    index = srcs[1] & 3
    return ((srcs[0] >> (8 * index)) & simd.MASK8,)


# ---------------------------------------------------------------------------
# Floating point
# ---------------------------------------------------------------------------

@semantic("fadd")
def _fadd(ctx, srcs, imm):
    return (_bits(_f32(srcs[0]) + _f32(srcs[1])),)


@semantic("fsub")
def _fsub(ctx, srcs, imm):
    return (_bits(_f32(srcs[0]) - _f32(srcs[1])),)


@semantic("fmul")
def _fmul(ctx, srcs, imm):
    return (_bits(_f32(srcs[0]) * _f32(srcs[1])),)


@semantic("fdiv")
def _fdiv(ctx, srcs, imm):
    denominator = _f32(srcs[1])
    if denominator == 0.0:
        numerator = _f32(srcs[0])
        infinity = float("inf") if numerator >= 0 else float("-inf")
        return (_bits(infinity),)
    return (_bits(_f32(srcs[0]) / denominator),)


@semantic("fsqrt")
def _fsqrt(ctx, srcs, imm):
    value = _f32(srcs[0])
    if value < 0.0:
        return (0x7FC00000,)  # quiet NaN
    return (_bits(value ** 0.5),)


@semantic("i2f")
def _i2f(ctx, srcs, imm):
    return (_bits(float(simd.s32(srcs[0]))),)


@semantic("f2i")
def _f2i(ctx, srcs, imm):
    value = _f32(srcs[0])
    if value != value:  # NaN
        return (0,)
    return (simd.u32(simd.clip_s32(int(value))),)


@semantic("fgtr")
def _fgtr(ctx, srcs, imm):
    return (1 if _f32(srcs[0]) > _f32(srcs[1]) else 0,)


@semantic("feql")
def _feql(ctx, srcs, imm):
    return (1 if _f32(srcs[0]) == _f32(srcs[1]) else 0,)


# ---------------------------------------------------------------------------
# Loads and stores (big-endian byte order, as in Table 2)
# ---------------------------------------------------------------------------

@semantic("ld32")
def _ld32(ctx, srcs, imm):
    return (ctx.load(simd.u32(srcs[0] + srcs[1]), 4),)


@semantic("ld32d")
def _ld32d(ctx, srcs, imm):
    return (ctx.load(simd.u32(srcs[0] + imm), 4),)


@semantic("ild16d")
def _ild16d(ctx, srcs, imm):
    return (simd.u32(simd.s16(ctx.load(simd.u32(srcs[0] + imm), 2))),)


@semantic("uld16d")
def _uld16d(ctx, srcs, imm):
    return (ctx.load(simd.u32(srcs[0] + imm), 2),)


@semantic("ild8d")
def _ild8d(ctx, srcs, imm):
    return (simd.u32(simd.s8(ctx.load(simd.u32(srcs[0] + imm), 1))),)


@semantic("uld8d")
def _uld8d(ctx, srcs, imm):
    return (ctx.load(simd.u32(srcs[0] + imm), 1),)


@semantic("st32d")
def _st32d(ctx, srcs, imm):
    ctx.store(simd.u32(srcs[0] + imm), srcs[1], 4)
    return ()


@semantic("st16d")
def _st16d(ctx, srcs, imm):
    ctx.store(simd.u32(srcs[0] + imm), srcs[1] & simd.MASK16, 2)
    return ()


@semantic("st8d")
def _st8d(ctx, srcs, imm):
    ctx.store(simd.u32(srcs[0] + imm), srcs[1] & simd.MASK8, 1)
    return ()


# ---------------------------------------------------------------------------
# Jumps.  The guard decides whether jmpt/jmpf are taken; the guard value
# is evaluated by the pipeline and passed via ctx.guard_value.
# ---------------------------------------------------------------------------

@semantic("jmpi")
def _jmpi(ctx, srcs, imm):
    return (JumpOutcome(True, imm),)


@semantic("jmpt")
def _jmpt(ctx, srcs, imm):
    return (JumpOutcome(bool(ctx.guard_value), imm),)


@semantic("jmpf")
def _jmpf(ctx, srcs, imm):
    return (JumpOutcome(not ctx.guard_value, imm),)


@semantic("nop")
def _nop(ctx, srcs, imm):
    return ()
