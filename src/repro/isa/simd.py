"""Bit-exact 32-bit word and SIMD lane arithmetic.

All TM3270 operations work on 32-bit registers, optionally treated as a
vector of two 16-bit or four 8-bit lanes (Table 1: "SIMD capabilities:
1 x 32-bit, 2 x 16-bit, 4 x 8-bit").  This module provides the
masking/sign/saturation helpers that every operation semantic builds on.

All functions take and return plain Python ints.  Register values are
canonically represented as *unsigned* 32-bit ints in ``[0, 2**32)``.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF

INT8_MIN, INT8_MAX = -(1 << 7), (1 << 7) - 1
INT16_MIN, INT16_MAX = -(1 << 15), (1 << 15) - 1
INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1
UINT8_MAX = MASK8
UINT16_MAX = MASK16
UINT32_MAX = MASK32


def u32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit word."""
    return value & MASK32


def u16(value: int) -> int:
    """Truncate ``value`` to an unsigned 16-bit half-word."""
    return value & MASK16


def u8(value: int) -> int:
    """Truncate ``value`` to an unsigned byte."""
    return value & MASK8


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def s16(value: int) -> int:
    """Interpret the low 16 bits of ``value`` as a signed integer."""
    value &= MASK16
    return value - (1 << 16) if value & 0x8000 else value


def s8(value: int) -> int:
    """Interpret the low 8 bits of ``value`` as a signed integer."""
    value &= MASK8
    return value - (1 << 8) if value & 0x80 else value


def clip(value: int, lo: int, hi: int) -> int:
    """Clip ``value`` into the inclusive range ``[lo, hi]``.

    This is the ``min(max(lo, value), hi)`` clipping used throughout
    Table 2's operation definitions.
    """
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def clip_s32(value: int) -> int:
    """Clip to the signed 32-bit range (result still signed)."""
    return clip(value, INT32_MIN, INT32_MAX)


def clip_s16(value: int) -> int:
    """Clip to the signed 16-bit range (result still signed)."""
    return clip(value, INT16_MIN, INT16_MAX)


def clip_u8(value: int) -> int:
    """Clip to the unsigned 8-bit range."""
    return clip(value, 0, UINT8_MAX)


def clip_u16(value: int) -> int:
    """Clip to the unsigned 16-bit range."""
    return clip(value, 0, UINT16_MAX)


# ---------------------------------------------------------------------------
# Lane packing / unpacking
# ---------------------------------------------------------------------------

def unpack16(word: int) -> tuple[int, int]:
    """Split a 32-bit word into (high, low) unsigned 16-bit lanes."""
    word &= MASK32
    return (word >> 16) & MASK16, word & MASK16


def pack16(hi: int, lo: int) -> int:
    """Pack two 16-bit lanes into a word: ``(hi << 16) | lo``.

    This is the paper's ``DUAL16(a, b) = (a << 16) | (b & 0xffff)``.
    """
    return ((hi & MASK16) << 16) | (lo & MASK16)


def unpack16s(word: int) -> tuple[int, int]:
    """Split a word into (high, low) *signed* 16-bit lanes."""
    hi, lo = unpack16(word)
    return s16(hi), s16(lo)


def unpack8(word: int) -> tuple[int, int, int, int]:
    """Split a word into four unsigned bytes, most-significant first."""
    word &= MASK32
    return (
        (word >> 24) & MASK8,
        (word >> 16) & MASK8,
        (word >> 8) & MASK8,
        word & MASK8,
    )


def pack8(b3: int, b2: int, b1: int, b0: int) -> int:
    """Pack four bytes into a word, ``b3`` most significant."""
    return (
        ((b3 & MASK8) << 24)
        | ((b2 & MASK8) << 16)
        | ((b1 & MASK8) << 8)
        | (b0 & MASK8)
    )


def unpack8s(word: int) -> tuple[int, int, int, int]:
    """Split a word into four *signed* bytes, most-significant first."""
    return tuple(s8(b) for b in unpack8(word))  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Lane-wise maps
# ---------------------------------------------------------------------------

def map16(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to signed 16-bit lane pairs.

    The per-lane results are truncated back to 16 bits.
    """
    a_hi, a_lo = unpack16s(a)
    b_hi, b_lo = unpack16s(b)
    return pack16(fn(a_hi, b_hi), fn(a_lo, b_lo))


def map8(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to unsigned 8-bit lane quadruples."""
    av = unpack8(a)
    bv = unpack8(b)
    return pack8(*(fn(x, y) for x, y in zip(av, bv)))


def map8s(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to signed 8-bit lane quadruples."""
    av = unpack8s(a)
    bv = unpack8s(b)
    return pack8(*(fn(x, y) for x, y in zip(av, bv)))


# ---------------------------------------------------------------------------
# Common media arithmetic
# ---------------------------------------------------------------------------

def add_sat_s16(a: int, b: int) -> int:
    """Signed-saturating 16-bit add (one lane)."""
    return clip_s16(a + b)


def sub_sat_s16(a: int, b: int) -> int:
    """Signed-saturating 16-bit subtract (one lane)."""
    return clip_s16(a - b)


def add_sat_u8(a: int, b: int) -> int:
    """Unsigned-saturating 8-bit add (one lane)."""
    return clip_u8(a + b)


def sub_sat_u8(a: int, b: int) -> int:
    """Unsigned-saturating 8-bit subtract (one lane)."""
    return clip_u8(a - b)


def avg_round_u8(a: int, b: int) -> int:
    """Rounding average of two unsigned bytes: ``(a + b + 1) >> 1``."""
    return (a + b + 1) >> 1


def abs_diff_u8(a: int, b: int) -> int:
    """Absolute difference of two unsigned bytes."""
    return a - b if a >= b else b - a


def interp2(a: int, b: int, frac: int, scale: int = 16) -> int:
    """Two-taps linear interpolation with rounding.

    ``(a * (scale - frac) + b * frac + scale/2) / scale`` — the filter
    function used by the collapsed-load ``LD_FRAC8`` operation (Table 2),
    with ``scale = 16`` and a 4-bit fractional position.
    """
    return (a * (scale - frac) + b * frac + scale // 2) // scale


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def rotate_left32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by ``amount`` (mod 32)."""
    amount &= 31
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32
