"""Bit-exact 32-bit word and SIMD lane arithmetic.

All TM3270 operations work on 32-bit registers, optionally treated as a
vector of two 16-bit or four 8-bit lanes (Table 1: "SIMD capabilities:
1 x 32-bit, 2 x 16-bit, 4 x 8-bit").  This module provides the
masking/sign/saturation helpers that every operation semantic builds on.

All functions take and return plain Python ints.  Register values are
canonically represented as *unsigned* 32-bit ints in ``[0, 2**32)``.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF

INT8_MIN, INT8_MAX = -(1 << 7), (1 << 7) - 1
INT16_MIN, INT16_MAX = -(1 << 15), (1 << 15) - 1
INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1
UINT8_MAX = MASK8
UINT16_MAX = MASK16
UINT32_MAX = MASK32


def u32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit word."""
    return value & MASK32


def u16(value: int) -> int:
    """Truncate ``value`` to an unsigned 16-bit half-word."""
    return value & MASK16


def u8(value: int) -> int:
    """Truncate ``value`` to an unsigned byte."""
    return value & MASK8


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def s16(value: int) -> int:
    """Interpret the low 16 bits of ``value`` as a signed integer."""
    value &= MASK16
    return value - (1 << 16) if value & 0x8000 else value


def s8(value: int) -> int:
    """Interpret the low 8 bits of ``value`` as a signed integer."""
    value &= MASK8
    return value - (1 << 8) if value & 0x80 else value


def clip(value: int, lo: int, hi: int) -> int:
    """Clip ``value`` into the inclusive range ``[lo, hi]``.

    This is the ``min(max(lo, value), hi)`` clipping used throughout
    Table 2's operation definitions.
    """
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def clip_s32(value: int) -> int:
    """Clip to the signed 32-bit range (result still signed)."""
    return clip(value, INT32_MIN, INT32_MAX)


def clip_s16(value: int) -> int:
    """Clip to the signed 16-bit range (result still signed)."""
    return clip(value, INT16_MIN, INT16_MAX)


def clip_u8(value: int) -> int:
    """Clip to the unsigned 8-bit range."""
    return clip(value, 0, UINT8_MAX)


def clip_u16(value: int) -> int:
    """Clip to the unsigned 16-bit range."""
    return clip(value, 0, UINT16_MAX)


# ---------------------------------------------------------------------------
# Lane packing / unpacking
# ---------------------------------------------------------------------------

def unpack16(word: int) -> tuple[int, int]:
    """Split a 32-bit word into (high, low) unsigned 16-bit lanes."""
    word &= MASK32
    return (word >> 16) & MASK16, word & MASK16


def pack16(hi: int, lo: int) -> int:
    """Pack two 16-bit lanes into a word: ``(hi << 16) | lo``.

    This is the paper's ``DUAL16(a, b) = (a << 16) | (b & 0xffff)``.
    """
    return ((hi & MASK16) << 16) | (lo & MASK16)


def unpack16s(word: int) -> tuple[int, int]:
    """Split a word into (high, low) *signed* 16-bit lanes."""
    hi, lo = unpack16(word)
    return s16(hi), s16(lo)


def unpack8(word: int) -> tuple[int, int, int, int]:
    """Split a word into four unsigned bytes, most-significant first."""
    word &= MASK32
    return (
        (word >> 24) & MASK8,
        (word >> 16) & MASK8,
        (word >> 8) & MASK8,
        word & MASK8,
    )


def pack8(b3: int, b2: int, b1: int, b0: int) -> int:
    """Pack four bytes into a word, ``b3`` most significant."""
    return (
        ((b3 & MASK8) << 24)
        | ((b2 & MASK8) << 16)
        | ((b1 & MASK8) << 8)
        | (b0 & MASK8)
    )


def unpack8s(word: int) -> tuple[int, int, int, int]:
    """Split a word into four *signed* bytes, most-significant first."""
    return tuple(s8(b) for b in unpack8(word))  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Lane-wise maps
# ---------------------------------------------------------------------------

def map16(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to signed 16-bit lane pairs.

    The per-lane results are truncated back to 16 bits.
    """
    a_hi, a_lo = unpack16s(a)
    b_hi, b_lo = unpack16s(b)
    return pack16(fn(a_hi, b_hi), fn(a_lo, b_lo))


def map8(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to unsigned 8-bit lane quadruples."""
    av = unpack8(a)
    bv = unpack8(b)
    return pack8(*(fn(x, y) for x, y in zip(av, bv)))


def map8s(fn, a: int, b: int) -> int:
    """Apply ``fn(lane_a, lane_b)`` to signed 8-bit lane quadruples."""
    av = unpack8s(a)
    bv = unpack8s(b)
    return pack8(*(fn(x, y) for x, y in zip(av, bv)))


# ---------------------------------------------------------------------------
# Common media arithmetic
# ---------------------------------------------------------------------------

def add_sat_s16(a: int, b: int) -> int:
    """Signed-saturating 16-bit add (one lane)."""
    return clip_s16(a + b)


def sub_sat_s16(a: int, b: int) -> int:
    """Signed-saturating 16-bit subtract (one lane)."""
    return clip_s16(a - b)


def add_sat_u8(a: int, b: int) -> int:
    """Unsigned-saturating 8-bit add (one lane)."""
    return clip_u8(a + b)


def sub_sat_u8(a: int, b: int) -> int:
    """Unsigned-saturating 8-bit subtract (one lane)."""
    return clip_u8(a - b)


def avg_round_u8(a: int, b: int) -> int:
    """Rounding average of two unsigned bytes: ``(a + b + 1) >> 1``."""
    return (a + b + 1) >> 1


def abs_diff_u8(a: int, b: int) -> int:
    """Absolute difference of two unsigned bytes."""
    return a - b if a >= b else b - a


def interp2(a: int, b: int, frac: int, scale: int = 16) -> int:
    """Two-taps linear interpolation with rounding.

    ``(a * (scale - frac) + b * frac + scale/2) / scale`` — the filter
    function used by the collapsed-load ``LD_FRAC8`` operation (Table 2),
    with ``scale = 16`` and a 4-bit fractional position.
    """
    return (a * (scale - frac) + b * frac + scale // 2) // scale


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def rotate_left32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by ``amount`` (mod 32)."""
    amount &= 31
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


# ---------------------------------------------------------------------------
# Batched lane arithmetic (SWAR over one Python int)
#
# The scalar helpers above split a word into lanes, apply a per-lane
# function, and repack — one Python-level call per lane.  The batched
# forms below compute *all* lanes in a single pass of masked 64-bit
# integer arithmetic: each 8-bit lane is widened into its own 16-bit
# field (and each 16-bit lane into a 32-bit field) of one Python int,
# so per-lane carries cannot cross fields, saturation is decided by
# per-field mask bits, and the whole vector narrows back with four
# shifts.  Pure int only — no numpy dependency — which keeps every
# engine (and the trace codegen templates that inline these formulas)
# bit-identical to the scalar reference retained above.  The
# differential suite in ``tests/isa/test_simd_batched.py`` pins each
# batched helper against its scalar composition on full-range edge
# words.
# ---------------------------------------------------------------------------

#: Per-field constants for four 8-bit lanes widened to 16-bit fields.
F8_ONE = 0x0001_0001_0001_0001    # 1 in each field
F8_LOW = 0x00FF_00FF_00FF_00FF    # low byte of each field
F8_BIT8 = 0x0100_0100_0100_0100   # bit 8 of each field (borrow guard)
F8_LOW9 = 0x01FF_01FF_01FF_01FF   # low 9 bits of each field
F8_BIAS = 0x0080_0080_0080_0080   # +0x80 in each field

#: Per-field constants for two 16-bit lanes widened to 32-bit fields.
F16_ONE = 0x00000001_00000001     # 1 in each field
F16_BIAS = 0x00010000_00010000    # +0x10000 in each field


def spread8(word: int) -> int:
    """Widen four 8-bit lanes into the 16-bit fields of one int."""
    return (((word & 0xFF000000) << 24) | ((word & 0x00FF0000) << 16)
            | ((word & 0x0000FF00) << 8) | (word & 0xFF))


def squeeze8(fields: int) -> int:
    """Narrow the low byte of each 16-bit field back into a word."""
    return (((fields >> 24) & 0xFF000000) | ((fields >> 16) & 0x00FF0000)
            | ((fields >> 8) & 0x0000FF00) | (fields & 0xFF))


def spread16(word: int) -> int:
    """Widen two 16-bit lanes into the 32-bit fields of one int."""
    return ((word & 0xFFFF0000) << 16) | (word & 0xFFFF)


def squeeze16(fields: int) -> int:
    """Narrow the low half of each 32-bit field back into a word."""
    return ((fields >> 16) & 0xFFFF0000) | (fields & 0xFFFF)


def _dual_sat_s16(u: int) -> int:
    """Shared tail of the biased dual signed-saturating add/subtract.

    ``u`` holds, per 32-bit field, the lane result biased by
    ``+0x10000`` (range ``[0, 0x1FFFF]``); the true lane value is
    ``u - 0x10000``.  Bits 15 and 16 of each field classify it: both
    set means ``>= 0x8000`` after unbiasing (saturate positive), both
    clear means ``< -0x8000`` (saturate negative), anything else is
    in range and truncates to the low 16 bits.
    """
    hi = (u >> 15) & (u >> 16) & F16_ONE
    lo = (((u >> 15) | (u >> 16)) & F16_ONE) ^ F16_ONE
    ok = F16_ONE ^ hi ^ lo
    return squeeze16((u & (ok * 0xFFFF)) | (hi * 0x7FFF) | (lo * 0x8000))


def dual_add_sat_s16(a: int, b: int) -> int:
    """Both 16-bit lanes of ``map16(add_sat_s16, a, b)`` at once.

    Lanes are biased by ``^ 0x8000`` so each widened field holds
    ``lane + 0x8000 >= 0`` and the field sum carries the bias twice.
    """
    return _dual_sat_s16(spread16((a & MASK32) ^ 0x80008000)
                         + spread16((b & MASK32) ^ 0x80008000))


def dual_sub_sat_s16(a: int, b: int) -> int:
    """Both 16-bit lanes of ``map16(sub_sat_s16, a, b)`` at once.

    The per-field ``+0x10000`` keeps every field non-negative (minimum
    ``(0 + 0x10000) - 0xFFFF = 1``), so the single big-int subtraction
    never borrows across fields.
    """
    return _dual_sat_s16(spread16((a & MASK32) ^ 0x80008000) + F16_BIAS
                         - spread16((b & MASK32) ^ 0x80008000))


def dual_mul_sat_s16(a: int, b: int) -> int:
    """Both lanes of ``map16(lambda x, y: clip_s16(x * y), a, b)``.

    Products need 31 bits per lane, which two 32-bit fields of one int
    cannot hold without cross-terms, so the multiplies stay per-lane;
    only the unpack/clip/pack plumbing is flattened.
    """
    ph = (((a >> 16) & 0xFFFF ^ 0x8000) - 0x8000) * \
        (((b >> 16) & 0xFFFF ^ 0x8000) - 0x8000)
    pl = ((a & 0xFFFF ^ 0x8000) - 0x8000) * ((b & 0xFFFF ^ 0x8000) - 0x8000)
    ph = 0x7FFF if ph > 0x7FFF else (-0x8000 if ph < -0x8000 else ph)
    pl = 0x7FFF if pl > 0x7FFF else (-0x8000 if pl < -0x8000 else pl)
    return ((ph & 0xFFFF) << 16) | (pl & 0xFFFF)


def quad_avg_u8(a: int, b: int) -> int:
    """All four lanes of ``map8(avg_round_u8, a, b)`` at once.

    Uses the carry-free identity ``(x + y + 1) >> 1 ==
    (x | y) - ((x ^ y) >> 1)``: per byte the subtrahend never exceeds
    the minuend, so no borrow can cross a lane boundary and the word
    never needs widening at all.
    """
    a &= MASK32
    b &= MASK32
    return (a | b) - (((a ^ b) >> 1) & 0x7F7F7F7F)


def quad_max_u8(a: int, b: int) -> int:
    """All four lanes of ``map8(max, a, b)`` at once."""
    aw = spread8(a & MASK32)
    bw = spread8(b & MASK32)
    ge = ((((aw | F8_BIT8) - bw) >> 8) & F8_ONE) * 0xFF
    return squeeze8((aw & ge) | (bw & (ge ^ F8_LOW)))


def quad_min_u8(a: int, b: int) -> int:
    """All four lanes of ``map8(min, a, b)`` at once."""
    aw = spread8(a & MASK32)
    bw = spread8(b & MASK32)
    ge = ((((aw | F8_BIT8) - bw) >> 8) & F8_ONE) * 0xFF
    return squeeze8((bw & ge) | (aw & (ge ^ F8_LOW)))


def quad_add_u8s(a: int, b: int) -> int:
    """Unsigned bytes of ``a`` plus *signed* bytes of ``b``, each lane
    clipped to ``[0, 255]`` (the ``dspuquadaddui`` semantic).

    Fields hold ``a + s8(b) + 0x100`` (range ``[0x80, 0x27E]``): bit 9
    set means the true sum overflowed 255, bit 8 clear means it went
    negative, and only the bit-8-set/bit-9-clear band passes through.
    """
    u = (spread8(a & MASK32) + spread8((b & MASK32) ^ 0x80808080)
         + F8_BIAS)
    hi = (u >> 9) & F8_ONE
    ok = ((u >> 8) & F8_ONE) & (hi ^ F8_ONE)
    return squeeze8((u & (ok * 0xFF)) | (hi * 0xFF))


def quad_abs_diff_sum_u8(a: int, b: int) -> int:
    """Sum over lanes of ``abs_diff_u8`` (the ``ume8uu`` semantic).

    Computes both borrow-guarded differences ``0x100 + a - b`` and
    ``0x100 + b - a`` per field, selects the non-negative one with the
    bit-8 compare mask, and folds the four fields with shifts (the sum
    is at most ``4 * 255 = 1020``, well inside one field).
    """
    aw = spread8(a & MASK32)
    bw = spread8(b & MASK32)
    dab = (aw | F8_BIT8) - bw
    dba = (bw | F8_BIT8) - aw
    sel = ((dab >> 8) & F8_ONE) * 0x1FF
    d = ((dab & sel) | (dba & (sel ^ F8_LOW9))) - F8_BIT8
    return (d + (d >> 16) + (d >> 32) + (d >> 48)) & 0x3FF
