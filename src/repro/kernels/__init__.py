"""Kernel suite: Table 5 workloads plus optimization-study kernels."""

from repro.kernels.registry import TABLE5_KERNELS, KernelCase, kernel_by_name

__all__ = ["TABLE5_KERNELS", "KernelCase", "kernel_by_name"]
