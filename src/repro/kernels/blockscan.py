"""Block-scan kernel: the Figure 3 prefetching scenario.

Section 2.3 explains region prefetching with exactly this workload: an
image processed at 4x4-block granularity, left-to-right, top-down.
With ``PFx_STRIDE = image_width * 4`` (the block height), loads from
the current row of blocks prefetch the row of blocks below; "if the
time to process a row of blocks exceeds the time to prefetch the lower
row of blocks, the processor will not incur any stall cycles due to
data cache misses".

The kernel reads each 4x4 block (four 32-bit loads), reduces it
(per-block SAD pairs plus an accumulate), and performs ``work`` extra
arithmetic operations per block to emulate heavier processing — the
knob that trades compute time against prefetch time.  The prefetch
region is programmed by the kernel itself through MMIO stores
(``setup_prefetch=True``) or left untouched for the baseline.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram
from repro.kernels.common import emit_prefetch_region_setup

BLOCK = 4


def build_blockscan(image_base: int, width: int, height: int,
                    work: int = 12, setup_prefetch: bool = True,
                    name: str | None = None) -> AsmProgram:
    """Params: (result_addr,).  Image geometry is compile-time.

    ``work`` extra ALU operations per block emulate the block
    processing the image feeds (Figure 3's "processing").
    """
    if width % BLOCK or height % BLOCK:
        raise ValueError("image dimensions must be multiples of 4")
    if name is None:
        name = "blockscan_pf" if setup_prefetch else "blockscan"
    b = ProgramBuilder(name)
    (result,) = b.params("result")
    if setup_prefetch:
        emit_prefetch_region_setup(
            b, region=0, start=image_base, end=image_base + width * height,
            stride=width * BLOCK)
    base = b.const32(image_base)
    width_reg = b.const32(width)
    row_step = b.const32(width * BLOCK)
    blocks_x = b.const32(width // BLOCK)
    blocks_y = b.const32(height // BLOCK)
    acc = b.emit("mov", srcs=(b.zero,))
    scratch = b.emit("mov", srcs=(b.one,))
    row_ptr = b.emit("mov", srcs=(base,))

    end_rows = b.counted_loop(blocks_y, "rows")
    col_ptr = b.emit("mov", srcs=(row_ptr,))
    end_cols = b.counted_loop(blocks_x, "cols")
    rows = [b.emit("ld32d", srcs=(col_ptr,), imm=0, alias="img")]
    line_ptr = col_ptr
    for _row in range(1, BLOCK):
        line_ptr = b.emit("iadd", srcs=(line_ptr, width_reg))
        rows.append(b.emit("ld32d", srcs=(line_ptr,), imm=0,
                           alias="img"))
    sum01 = b.emit("ume8uu", srcs=(rows[0], rows[1]))
    sum23 = b.emit("ume8uu", srcs=(rows[2], rows[3]))
    reduced = b.emit("iadd", srcs=(sum01, sum23))
    b.emit_into(acc, "iadd", srcs=(acc, reduced))
    for _ in range(work):
        b.emit_into(scratch, "bitxor", srcs=(scratch, reduced))
        b.emit_into(scratch, "roli", srcs=(scratch,), imm=3)
    b.emit_into(acc, "iadd", srcs=(acc, scratch))
    b.emit_into(col_ptr, "iaddi", srcs=(col_ptr,), imm=BLOCK)
    end_cols()
    b.emit_into(row_ptr, "iadd", srcs=(row_ptr, row_step))
    end_rows()
    b.emit("st32d", srcs=(result, acc), imm=0, alias="res")
    return b.finish()


def reference_blockscan(image: bytes, width: int, height: int,
                        work: int) -> int:
    """Pure-Python reference of the accumulated result."""
    acc = 0
    scratch = 1
    for block_y in range(height // BLOCK):
        for block_x in range(width // BLOCK):
            words = []
            for row in range(BLOCK):
                start = (block_y * BLOCK + row) * width + block_x * BLOCK
                words.append(
                    int.from_bytes(image[start:start + 4], "big"))
            def sad(a, b):
                return sum(
                    abs(((a >> shift) & 0xFF) - ((b >> shift) & 0xFF))
                    for shift in (24, 16, 8, 0))
            reduced = sad(words[0], words[1]) + sad(words[2], words[3])
            acc = (acc + reduced) & 0xFFFFFFFF
            for _ in range(work):
                scratch ^= reduced
                scratch &= 0xFFFFFFFF
                scratch = ((scratch << 3) | (scratch >> 29)) & 0xFFFFFFFF
            acc = (acc + scratch) & 0xFFFFFFFF
    return acc
