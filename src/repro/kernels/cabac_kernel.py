"""CABAC decoding kernels: with and without the new operations.

Reproduces the Table 3 experiment: decode a CABAC bitstream and count
VLIW instructions per coded bit, in two forms:

* :func:`build_cabac_plain` — "non-optimized": Figure 2's
  ``biari_decode_symbol`` implemented with baseline operations.  The
  MPS/LPS split is if-converted (guarded operations — the TriMedia
  way to avoid jump-delay-slot costs), table lookups (LPS range, state
  transitions) are byte loads, and renormalization uses a 512-entry
  shift-count table plus shift/mask arithmetic, as real software
  decoders do.
* :func:`build_cabac_super` — "optimized": the decision step collapses
  into ``SUPER_CABAC_STR`` + ``SUPER_CABAC_CTX`` (Section 2.2.3), with
  the (value, range) and (state, mps) pairs kept in DUAL16 packing.

Both kernels include the surrounding decoder maintenance that Table 3's
measurement covers: bitstream refill (a non-aligned 32-bit load per
symbol), context fetch/write-back, round-robin context selection, and
decoded-bit output.

Shared memory layout (built by :func:`prepare_tables`):

====================  =============================================
offset (from tables)  contents
====================  =============================================
0                     ``LpsRangeTable``: 64 states x 4 bytes
256                   ``MpsNextStateTable``: 64 bytes
320                   ``LpsNextStateTable``: 64 bytes
384                   renorm shift counts: 512 bytes (index = range)
====================  =============================================

Contexts: the plain kernel stores a context as 2 bytes
``(state, mps)``; the optimized kernel as a 4-byte DUAL16 word, which
is what the super operations consume directly.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram
from repro.cabac import tables

OFF_LPS_RANGE = 0
OFF_MPS_NEXT = 256
OFF_LPS_NEXT = 320
OFF_RENORM = 384
TABLES_BYTES = 384 + 512


def prepare_tables() -> bytes:
    """The shared lookup-table blob both kernels index into."""
    blob = bytearray(TABLES_BYTES)
    for state in range(tables.N_STATES):
        for quant in range(tables.N_RANGE_QUANT):
            blob[OFF_LPS_RANGE + 4 * state + quant] = (
                tables.LPS_RANGE_TABLE[state][quant])
        blob[OFF_MPS_NEXT + state] = tables.MPS_NEXT_STATE[state]
        blob[OFF_LPS_NEXT + state] = tables.LPS_NEXT_STATE[state]
    for range_value in range(512):
        count = 0
        value = max(range_value, 1)
        while value < tables.RENORM_THRESHOLD:
            value <<= 1
            count += 1
        blob[OFF_RENORM + range_value] = count
    return bytes(blob)


def _emit_engine_init(b: ProgramBuilder, stream: int):
    """Initialize the arithmetic decoding engine: 9-bit value read."""
    first_word = b.emit("ld32d", srcs=(stream,), imm=0)
    value = b.emit("lsri", srcs=(first_word,), imm=23)
    position = b.const32(9)
    return value, position


def _emit_refill(b: ProgramBuilder, ptr: int, position: int,
                 mask7: int) -> int:
    """Fold consumed bytes into the stream pointer; reload the window.

    The reload is a byte-aligned (generally non-aligned) 32-bit load —
    penalty-free on the TM3270 (Section 4.1).
    """
    advance = b.emit("lsri", srcs=(position,), imm=3)
    b.emit_into(ptr, "iadd", srcs=(ptr, advance))
    b.emit_into(position, "bitand", srcs=(position, mask7))
    return b.emit("ld32d", srcs=(ptr,), imm=0, alias="stream")


def _emit_context_rotate(b: ProgramBuilder, index: int,
                         num_contexts: int) -> None:
    """Round-robin context selection (mirrored by the encoder side)."""
    b.emit_into(index, "iaddi", srcs=(index,), imm=1)
    wrap = b.emit("ieqli", srcs=(index,), imm=num_contexts)
    b.emit_into(index, "mov", srcs=(b.zero,), guard=wrap)


def build_cabac_plain(num_contexts: int = 8) -> AsmProgram:
    """Non-optimized decoder.  Params: (stream, out, ctx, tables, nsym)."""
    b = ProgramBuilder("cabac_plain")
    stream, out, ctx_base, tab, nsym = b.params(
        "stream", "out", "ctx", "tables", "nsymbols")
    mask7 = b.const32(7)
    mask3 = b.const32(3)
    c32 = b.const32(32)
    mps_next = b.emit("iadd", srcs=(tab, b.const32(OFF_MPS_NEXT)))
    lps_next = b.emit("iadd", srcs=(tab, b.const32(OFF_LPS_NEXT)))
    renorm = b.emit("iadd", srcs=(tab, b.const32(OFF_RENORM)))
    range_ = b.const32(tables.INITIAL_RANGE)
    value, position = _emit_engine_init(b, stream)
    ptr = b.emit("mov", srcs=(stream,))
    index = b.emit("mov", srcs=(b.zero,))

    end_loop = b.counted_loop(nsym, "symbols")
    window = _emit_refill(b, ptr, position, mask7)
    # Context fetch: (state << 8) | mps.
    ctx_offset = b.emit("asli", srcs=(index,), imm=1)
    ctx_addr = b.emit("iadd", srcs=(ctx_base, ctx_offset))
    packed = b.emit("uld16d", srcs=(ctx_addr,), imm=0, alias="ctx")
    state = b.emit("lsri", srcs=(packed,), imm=8)
    mps = b.emit("zex8", srcs=(packed,))
    # range_lps = LpsRangeTable[state][(range >> 6) & 3]
    quant = b.emit("lsri", srcs=(range_,), imm=6)
    quant = b.emit_into(quant, "bitand", srcs=(quant, mask3))
    row = b.emit("asli", srcs=(state,), imm=2)
    entry = b.emit("iadd", srcs=(row, quant))
    entry_addr = b.emit("iadd", srcs=(tab, entry))
    range_lps = b.emit("uld8d", srcs=(entry_addr,), imm=0,
                       alias="tables")
    temp_range = b.emit("isub", srcs=(range_, range_lps))
    # MPS/LPS split, fully if-converted.
    is_mps = b.emit("igtr", srcs=(temp_range, value))  # value < temp
    is_lps = b.emit("bitxor", srcs=(is_mps, b.one))
    bit = b.emit("mov", srcs=(mps,), guard=is_mps)
    bit = b.emit_into(bit, "bitxor", srcs=(mps, b.one), guard=is_lps)
    b.emit_into(value, "isub", srcs=(value, temp_range), guard=is_lps)
    zero_state = b.emit("ieqli", srcs=(state,), imm=0)
    flip = b.emit("bitand", srcs=(is_lps, zero_state))
    new_mps = b.emit("bitxor", srcs=(mps, flip))
    new_range = b.emit("mov", srcs=(temp_range,), guard=is_mps)
    new_range = b.emit_into(new_range, "mov", srcs=(range_lps,),
                            guard=is_lps)
    mps_addr = b.emit("iadd", srcs=(mps_next, state))
    lps_addr = b.emit("iadd", srcs=(lps_next, state))
    new_state = b.emit("uld8d", srcs=(mps_addr,), imm=0, guard=is_mps,
                       alias="tables")
    new_state = b.emit_into(new_state, "uld8d", srcs=(lps_addr,), imm=0,
                            guard=is_lps, alias="tables")
    # Renormalization via shift-count table.
    renorm_addr = b.emit("iadd", srcs=(renorm, new_range))
    count = b.emit("uld8d", srcs=(renorm_addr,), imm=0,
                   alias="tables")
    aligned = b.emit("asl", srcs=(window, position))
    inverse = b.emit("isub", srcs=(c32, count))
    incoming = b.emit("lsr", srcs=(aligned, inverse))
    no_shift = b.emit("ieqli", srcs=(count,), imm=0)
    b.emit_into(incoming, "mov", srcs=(b.zero,), guard=no_shift)
    shifted_value = b.emit("asl", srcs=(value, count))
    b.emit_into(value, "bitor", srcs=(shifted_value, incoming))
    b.emit_into(range_, "asl", srcs=(new_range, count))
    b.emit_into(position, "iadd", srcs=(position, count))
    # Context write-back and bit output.
    repacked = b.emit("asli", srcs=(new_state,), imm=8)
    repacked = b.emit_into(repacked, "bitor", srcs=(repacked, new_mps))
    b.emit("st16d", srcs=(ctx_addr, repacked), imm=0, alias="ctx")
    b.emit("st8d", srcs=(out, bit), imm=0, alias="out")
    b.emit_into(out, "iaddi", srcs=(out,), imm=1)
    _emit_context_rotate(b, index, num_contexts)
    end_loop()
    return b.finish()


def build_cabac_super(num_contexts: int = 8) -> AsmProgram:
    """Optimized decoder using SUPER_CABAC_STR / SUPER_CABAC_CTX.

    Params: (stream, out, ctx, tables, nsymbols).  ``tables`` is unused
    (the operation embodies the tables) but kept for a uniform calling
    convention.
    """
    b = ProgramBuilder("cabac_super")
    stream, out, ctx_base, _tab, nsym = b.params(
        "stream", "out", "ctx", "tables", "nsymbols")
    mask7 = b.const32(7)
    value, position = _emit_engine_init(b, stream)
    # vr = DUAL16(value, range)
    vr = b.emit("asli", srcs=(value,), imm=16)
    vr = b.emit_into(vr, "bitor",
                     srcs=(vr, b.const32(tables.INITIAL_RANGE)))
    ptr = b.emit("mov", srcs=(stream,))
    index = b.emit("mov", srcs=(b.zero,))

    end_loop = b.counted_loop(nsym, "symbols")
    window = _emit_refill(b, ptr, position, mask7)
    ctx_offset = b.emit("asli", srcs=(index,), imm=2)
    ctx_addr = b.emit("iadd", srcs=(ctx_base, ctx_offset))
    state_mps = b.emit("ld32d", srcs=(ctx_addr,), imm=0, alias="ctx")
    # STR first (reads the old engine state), then CTX.
    new_position, bit = b.emit(
        "super_cabac_str", srcs=(vr, position, state_mps))
    new_vr, new_state_mps = b.emit(
        "super_cabac_ctx", srcs=(vr, position, window, state_mps))
    b.emit_into(vr, "mov", srcs=(new_vr,))
    b.emit_into(position, "mov", srcs=(new_position,))
    b.emit("st32d", srcs=(ctx_addr, new_state_mps), imm=0,
           alias="ctx")
    b.emit("st8d", srcs=(out, bit), imm=0, alias="out")
    b.emit_into(out, "iaddi", srcs=(out,), imm=1)
    _emit_context_rotate(b, index, num_contexts)
    end_loop()
    return b.finish()
