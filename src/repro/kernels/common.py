"""Shared kernel-construction helpers.

Memory-layout conventions for all kernels: data buffers live from
:data:`DATA_BASE` upward (code occupies a separate region, see
:mod:`repro.core.processor`), and kernel parameters arrive in physical
registers r10, r11, ... (:data:`repro.asm.builder.PARAM_BASE_PREG`).
"""

from __future__ import annotations

from repro.asm.builder import PARAM_BASE_PREG, ProgramBuilder
from repro.core.executor import MMIO_BASE
from repro.mem.prefetch import (
    OFFSET_END,
    OFFSET_START,
    OFFSET_STRIDE,
    REGION_STRIDE_BYTES,
)

#: First byte address available to kernel data.
DATA_BASE = 0x0000_1000


def args_for(*values: int) -> dict[int, int]:
    """Map positional kernel arguments onto the calling convention."""
    return {PARAM_BASE_PREG + index: value & 0xFFFFFFFF
            for index, value in enumerate(values)}


def emit_prefetch_region_setup(builder: ProgramBuilder, region: int,
                               start: int, end: int, stride: int) -> None:
    """Emit MMIO stores that program prefetch region ``region``.

    This is the software side of Section 2.3: the ``PFn_START_ADDR``,
    ``PFn_END_ADDR`` and ``PFn_STRIDE`` parameters are memory-mapped
    registers written with ordinary store operations.
    """
    base = builder.const32(MMIO_BASE + region * REGION_STRIDE_BYTES)
    start_reg = builder.const32(start)
    end_reg = builder.const32(end)
    stride_reg = builder.const32(stride)
    builder.emit("st32d", srcs=(base, start_reg), imm=OFFSET_START)
    builder.emit("st32d", srcs=(base, end_reg), imm=OFFSET_END)
    builder.emit("st32d", srcs=(base, stride_reg), imm=OFFSET_STRIDE)


def emit_prefetch_region_disable(builder: ProgramBuilder,
                                 region: int) -> None:
    """Emit MMIO stores that deactivate prefetch region ``region``."""
    base = builder.const32(MMIO_BASE + region * REGION_STRIDE_BYTES)
    builder.emit("st32d", srcs=(base, builder.zero), imm=OFFSET_START)
    builder.emit("st32d", srcs=(base, builder.zero), imm=OFFSET_END)
