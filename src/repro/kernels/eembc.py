"""EEMBC consumer-suite kernels: filter, rgb2yuv, rgb2cmyk, rgb2yiq.

Table 5: "Four kernels taken from the EEMBC consumer suite."  These are
compute-bound pixel kernels; the paper's Figure 7 shows them gaining
mostly from the TM3270's higher operating frequency (Section 6: "these
applications benefit most from a higher operating frequency").

All kernels use baseline operations only (the re-compilation
methodology) and planar byte images.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram


def _packed_coeff(builder: ProgramBuilder, hi: int, lo: int) -> int:
    """Materialize DUAL16(hi, lo) with signed 16-bit halves."""
    return builder.const32(((hi & 0xFFFF) << 16) | (lo & 0xFFFF))


def build_filter() -> AsmProgram:
    """High-pass grey-scale filter: out[x] = clip(2c - w - e).

    A 3-tap [-1, 2, -1] horizontal filter with the window slid through
    registers (one load per output pixel).  Params: (src, dst, width,
    height); interior pixels only (columns 1 .. width-2).
    """
    b = ProgramBuilder("filter")
    src, dst, width, height = b.params("src", "dst", "width", "height")
    inner_count = b.emit("iaddi", srcs=(width,), imm=-2)
    src_row = b.emit("mov", srcs=(src,))
    dst_row = b.emit("mov", srcs=(dst,))

    unroll = 4
    iters = b.emit("lsri", srcs=(inner_count,),
                   imm=unroll.bit_length() - 1)
    end_rows = b.counted_loop(height, "rows")
    in_ptr = b.emit("mov", srcs=(src_row,))
    out_ptr = b.emit("iaddi", srcs=(dst_row,), imm=1)
    end_cols = b.counted_loop(iters, "cols")
    # Sliding 3-tap window, four output pixels per iteration.
    window = [b.emit("uld8d", srcs=(in_ptr,), imm=offset, alias="src")
              for offset in range(unroll + 2)]
    for pixel in range(unroll):
        west, center, east = window[pixel:pixel + 3]
        doubled = b.emit("asli", srcs=(center,), imm=1)
        no_west = b.emit("isub", srcs=(doubled, west))
        raw = b.emit("isub", srcs=(no_west, east))
        clipped = b.emit("uclipi", srcs=(raw,), imm=8)
        b.emit("st8d", srcs=(out_ptr, clipped), imm=pixel,
               alias="dst")
    b.emit_into(in_ptr, "iaddi", srcs=(in_ptr,), imm=unroll)
    b.emit_into(out_ptr, "iaddi", srcs=(out_ptr,), imm=unroll)
    end_cols()
    b.emit_into(src_row, "iadd", srcs=(src_row, width))
    b.emit_into(dst_row, "iadd", srcs=(dst_row, width))
    end_rows()
    return b.finish()


def _build_color_transform(name: str, rows: list[tuple[int, int, int, int]],
                           ) -> AsmProgram:
    """Shared 3x3 fixed-point color-space transform builder.

    ``rows`` holds (coeff_r, coeff_g, coeff_b, offset) per output plane;
    out = clip8(((cr*r + cg*g + cb*b + 128) >> 8) + offset).
    Params: (src_r, src_g, src_b, out0, out1, out2, npixels).
    """
    b = ProgramBuilder(name)
    src_r, src_g, src_b, out0, out1, out2 = b.params(
        "src_r", "src_g", "src_b", "out0", "out1", "out2")
    (npixels,) = b.params("npixels")
    outs = (out0, out1, out2)
    coeff_rg = [_packed_coeff(b, cr, cg) for cr, cg, _cb, _off in rows]
    coeff_b = [b.const32(cb & 0xFFFFFFFF) for _cr, _cg, cb, _off in rows]
    rounding = b.const32(128)
    offsets = [b.const32(off) if off else None
               for _cr, _cg, _cb, off in rows]

    unroll = 2
    iters = b.emit("lsri", srcs=(npixels,), imm=unroll.bit_length() - 1)
    end_loop = b.counted_loop(iters, "pixels")
    for pixel in range(unroll):
        red = b.emit("uld8d", srcs=(src_r,), imm=pixel, alias="in")
        green = b.emit("uld8d", srcs=(src_g,), imm=pixel, alias="in")
        blue = b.emit("uld8d", srcs=(src_b,), imm=pixel, alias="in")
        rg = b.emit("pack16lsb", srcs=(red, green))
        for plane in range(len(rows)):
            partial = b.emit("ifir16", srcs=(rg, coeff_rg[plane]))
            blue_term = b.emit("imul", srcs=(blue, coeff_b[plane]))
            total = b.emit("iadd", srcs=(partial, blue_term))
            rounded = b.emit("iadd", srcs=(total, rounding))
            shifted = b.emit("asri", srcs=(rounded,), imm=8)
            if offsets[plane] is None:
                biased = shifted
            else:
                biased = b.emit("iadd", srcs=(shifted, offsets[plane]))
            clipped = b.emit("uclipi", srcs=(biased,), imm=8)
            b.emit("st8d", srcs=(outs[plane], clipped), imm=pixel,
                   alias=f"out{plane}")
    for pointer in (src_r, src_g, src_b, *outs):
        b.emit_into(pointer, "iaddi", srcs=(pointer,), imm=unroll)
    end_loop()
    return b.finish()


def build_rgb2yuv() -> AsmProgram:
    """RGB -> YUV (BT.601 fixed point), planar in/out."""
    return _build_color_transform("rgb2yuv", [
        (66, 129, 25, 16),
        (-38, -74, 112, 128),
        (112, -94, -18, 128),
    ])


def build_rgb2yiq() -> AsmProgram:
    """RGB -> YIQ (fixed point), planar in/out; I/Q biased by 128."""
    return _build_color_transform("rgb2yiq", [
        (77, 150, 29, 0),
        (153, -70, -83, 128),
        (54, -133, 79, 128),
    ])


def build_rgb2cmyk() -> AsmProgram:
    """RGB -> CMYK: k = min(255-r, 255-g, 255-b), c/m/y = x' - k.

    Params: (src_r, src_g, src_b, out_c, out_m, out_y, out_k, npixels).
    """
    b = ProgramBuilder("rgb2cmyk")
    src_r, src_g, src_b, out_c, out_m, out_y = b.params(
        "src_r", "src_g", "src_b", "out_c", "out_m", "out_y")
    out_k, npixels = b.params("out_k", "npixels")
    max_byte = b.const32(255)

    unroll = 2
    iters = b.emit("lsri", srcs=(npixels,), imm=unroll.bit_length() - 1)
    end_loop = b.counted_loop(iters, "pixels")
    for pixel in range(unroll):
        red = b.emit("uld8d", srcs=(src_r,), imm=pixel, alias="in")
        green = b.emit("uld8d", srcs=(src_g,), imm=pixel, alias="in")
        blue = b.emit("uld8d", srcs=(src_b,), imm=pixel, alias="in")
        inv_c = b.emit("isub", srcs=(max_byte, red))
        inv_m = b.emit("isub", srcs=(max_byte, green))
        inv_y = b.emit("isub", srcs=(max_byte, blue))
        k_partial = b.emit("imin", srcs=(inv_c, inv_m))
        black = b.emit("imin", srcs=(k_partial, inv_y))
        cyan = b.emit("isub", srcs=(inv_c, black))
        magenta = b.emit("isub", srcs=(inv_m, black))
        yellow = b.emit("isub", srcs=(inv_y, black))
        b.emit("st8d", srcs=(out_c, cyan), imm=pixel, alias="outc")
        b.emit("st8d", srcs=(out_m, magenta), imm=pixel, alias="outm")
        b.emit("st8d", srcs=(out_y, yellow), imm=pixel, alias="outy")
        b.emit("st8d", srcs=(out_k, black), imm=pixel, alias="outk")
    for pointer in (src_r, src_g, src_b, out_c, out_m, out_y, out_k):
        b.emit_into(pointer, "iaddi", srcs=(pointer,), imm=unroll)
    end_loop()
    return b.finish()
