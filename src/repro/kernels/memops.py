"""memset and memcpy kernels (Table 5).

The paper's versions touch a 64 KB region; the default here is 32 KB
(scaled for simulation speed — see DESIGN.md) which preserves the
relevant behaviour: both kernels are memory-bound on every
configuration, so relative performance is set by memory *traffic*, and
the TM3270's allocate-on-write-miss policy halves memcpy's traffic
relative to the TM3260's fetch-on-write-miss (Section 6: "the memcpy
kernel shows the largest performance gain going from configuration A
to B ... since the TM3270 generates less memory traffic").

Both kernels use only baseline TriMedia operations so the same source
compiles for the TM3260 and TM3270 (the paper's re-compilation
methodology).  :func:`build_memcpy_super` is the TM3270-specific
variant using the two-slot ``SUPER_LD32R`` to double load bandwidth
(used by the ablation benches, not by Figure 7).
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram

#: Default region size (bytes); the paper uses 64 KB.
DEFAULT_REGION_BYTES = 32 * 1024

#: Words processed per loop iteration (unroll factor).
UNROLL_WORDS = 8


def build_memset(unroll: int = UNROLL_WORDS) -> AsmProgram:
    """memset: params (dst, nbytes, value32); nbytes % (4*unroll) == 0."""
    b = ProgramBuilder("memset")
    dst, nbytes, value = b.params("dst", "nbytes", "value")
    step = 4 * unroll
    iters = b.emit("lsri", srcs=(nbytes,), imm=step.bit_length() - 1)
    end_loop = b.counted_loop(iters, "loop")
    for word in range(unroll):
        b.emit("st32d", srcs=(dst, value), imm=4 * word)
    b.emit_into(dst, "iaddi", srcs=(dst,), imm=step)
    end_loop()
    return b.finish()


def build_memcpy(unroll: int = UNROLL_WORDS) -> AsmProgram:
    """memcpy: params (dst, src, nbytes); nbytes % (4*unroll) == 0."""
    b = ProgramBuilder("memcpy")
    dst, src, nbytes = b.params("dst", "src", "nbytes")
    step = 4 * unroll
    iters = b.emit("lsri", srcs=(nbytes,), imm=step.bit_length() - 1)
    end_loop = b.counted_loop(iters, "loop")
    words = [b.emit("ld32d", srcs=(src,), imm=4 * word, alias="src")
             for word in range(unroll)]
    for word, value in enumerate(words):
        b.emit("st32d", srcs=(dst, value), imm=4 * word, alias="dst")
    b.emit_into(src, "iaddi", srcs=(src,), imm=step)
    b.emit_into(dst, "iaddi", srcs=(dst,), imm=step)
    end_loop()
    return b.finish()


def build_memcpy_super(unroll_pairs: int = UNROLL_WORDS // 2) -> AsmProgram:
    """TM3270-only memcpy using SUPER_LD32R (two words per load issue).

    Params (dst, src, nbytes); nbytes % (8*unroll_pairs) == 0.
    """
    b = ProgramBuilder("memcpy_super")
    dst, src, nbytes = b.params("dst", "src", "nbytes")
    step = 8 * unroll_pairs
    iters = b.emit("lsri", srcs=(nbytes,), imm=step.bit_length() - 1)
    offsets = [b.const32(8 * pair) for pair in range(unroll_pairs)]
    end_loop = b.counted_loop(iters, "loop")
    pairs = [b.emit("super_ld32r", srcs=(src, offsets[pair]),
                    alias="src")
             for pair in range(unroll_pairs)]
    for pair, (lo_word, hi_word) in enumerate(pairs):
        b.emit("st32d", srcs=(dst, lo_word), imm=8 * pair, alias="dst")
        b.emit("st32d", srcs=(dst, hi_word), imm=8 * pair + 4,
               alias="dst")
    b.emit_into(src, "iaddi", srcs=(src,), imm=step)
    b.emit_into(dst, "iaddi", srcs=(dst,), imm=step)
    end_loop()
    return b.finish()
