"""Motion-estimation kernels: fractional-position search, plain vs
collapsed loads (Section 2.2.2, reference [12]).

Motion estimation refines a candidate around fractional horizontal
positions: each candidate row must be interpolated between neighboring
pixels before the SAD is computed.  The baseline implementation loads
five bytes (two 32-bit loads), unpacks them, performs the two-taps
filter ``(b[i]*(16-frac) + b[i+1]*frac + 8)/16`` per output byte, and
repacks — "at least two 32-bit loads ... and multiple arithmetic
operations" as the paper puts it.  The TM3270's ``LD_FRAC8`` collapses
all of that into one operation, and additionally relaxes register
pressure (Section 2.2.2).

Both kernels evaluate seven fractional horizontal sub-positions
(2/16 .. 14/16 pel) of an 8x8 block against the current block and
write the best (minimum) SAD to ``result``.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram

BLOCK = 8
#: Fractional positions evaluated (1/16-pel units).
FRACTIONS = tuple(range(2, 16, 2))


def build_me_frac_plain() -> AsmProgram:
    """Baseline fractional search: loads + explicit interpolation.

    Params: (cur, ref, width, result); writes best SAD to result.
    """
    b = ProgramBuilder("me_frac_plain")
    cur, ref, width, result = b.params("cur", "ref", "width", "result")
    best = b.const32(0x7FFFFFFF)
    sixteen = b.const32(16)
    frac = b.emit("mov", srcs=(b.zero,))

    end_fracs = b.counted_loop(b.const32(len(FRACTIONS)), "fracs")
    b.emit_into(frac, "iaddi", srcs=(frac,), imm=2)
    weight_b = b.emit("mov", srcs=(frac,))
    weight_a = b.emit("isub", srcs=(sixteen, frac))
    acc = b.emit("mov", srcs=(b.zero,))
    ref_row = b.emit("mov", srcs=(ref,))
    cur_row = b.emit("mov", srcs=(cur,))
    end_rows = b.counted_loop(b.const32(BLOCK), "rows")
    for half in range(2):  # two 4-pixel groups per 8-wide row
        word = b.emit("ld32d", srcs=(ref_row,), imm=4 * half,
                      alias="ref")
        tail = b.emit("uld8d", srcs=(ref_row,), imm=4 * half + 4,
                      alias="ref")
        raw = [
            b.emit("lsri", srcs=(word,), imm=24),
            b.emit("zex8", srcs=(b.emit("lsri", srcs=(word,), imm=16),)),
            b.emit("zex8", srcs=(b.emit("lsri", srcs=(word,), imm=8),)),
            b.emit("zex8", srcs=(word,)),
            tail,
        ]
        lanes = []
        for lane in range(4):
            left = b.emit("imul", srcs=(raw[lane], weight_a))
            right = b.emit("imul", srcs=(raw[lane + 1], weight_b))
            mixed = b.emit("iadd", srcs=(left, right))
            rounded = b.emit("iaddi", srcs=(mixed,), imm=8)
            lanes.append(b.emit("asri", srcs=(rounded,), imm=4))
        high = b.emit("packbytes", srcs=(lanes[0], lanes[1]))
        low = b.emit("packbytes", srcs=(lanes[2], lanes[3]))
        interp = b.emit("pack16lsb", srcs=(high, low))
        cur_word = b.emit("ld32d", srcs=(cur_row,), imm=4 * half,
                          alias="cur")
        sad = b.emit("ume8uu", srcs=(interp, cur_word))
        b.emit_into(acc, "iadd", srcs=(acc, sad))
    b.emit_into(ref_row, "iadd", srcs=(ref_row, width))
    b.emit_into(cur_row, "iadd", srcs=(cur_row, width))
    end_rows()
    b.emit_into(best, "imin", srcs=(best, acc))
    end_fracs()
    b.emit("st32d", srcs=(result, best), imm=0)
    return b.finish()


def build_me_frac_ld8() -> AsmProgram:
    """TM3270-optimized fractional search using LD_FRAC8.

    Params: (cur, ref, width, result); writes best SAD to result.
    """
    b = ProgramBuilder("me_frac_ld8")
    cur, ref, width, result = b.params("cur", "ref", "width", "result")
    best = b.const32(0x7FFFFFFF)
    frac = b.emit("mov", srcs=(b.zero,))

    end_fracs = b.counted_loop(b.const32(len(FRACTIONS)), "fracs")
    b.emit_into(frac, "iaddi", srcs=(frac,), imm=2)
    acc = b.emit("mov", srcs=(b.zero,))
    ref_row = b.emit("mov", srcs=(ref,))
    cur_row = b.emit("mov", srcs=(cur,))
    end_rows = b.counted_loop(b.const32(BLOCK), "rows")
    for half in range(2):
        if half:
            address = b.emit("iaddi", srcs=(ref_row,), imm=4)
        else:
            address = ref_row
        interp = b.emit("ld_frac8", srcs=(address, frac),
                        alias="ref")
        cur_word = b.emit("ld32d", srcs=(cur_row,), imm=4 * half,
                          alias="cur")
        sad = b.emit("ume8uu", srcs=(interp, cur_word))
        b.emit_into(acc, "iadd", srcs=(acc, sad))
    b.emit_into(ref_row, "iadd", srcs=(ref_row, width))
    b.emit_into(cur_row, "iadd", srcs=(cur_row, width))
    end_rows()
    b.emit_into(best, "imin", srcs=(best, acc))
    end_fracs()
    b.emit("st32d", srcs=(result, best), imm=0)
    return b.finish()


def reference_best_sad(cur: bytes, ref: bytes, width: int) -> int:
    """Pure-Python reference of the best fractional SAD."""
    best = 0x7FFFFFFF
    for frac in FRACTIONS:
        acc = 0
        for row in range(BLOCK):
            for col in range(BLOCK):
                a = ref[row * width + col]
                b_ = ref[row * width + col + 1]
                interp = (a * (16 - frac) + b_ * frac + 8) >> 4
                acc += abs(interp - cur[row * width + col])
        best = min(best, acc)
    return best
