"""MP3-decoder proxy: the power-calibration workload (Section 5.2).

The paper derives its Table 4 power breakdown from an MP3 decoder
(384 kbit/s stereo at 44.1 kHz) running with "an OPI around 4.5 and a
CPI close to 1.0, thanks to the large caches and the high efficiency of
data cache prefetching".  The computational heart of an MP3 decoder is
the 32-subband synthesis filterbank: long windowed dot products over
16-bit samples producing the V and U vectors.

The proxy computes, per subband, two dot products (a windowed V-path
and a raw U-path) plus a cross-term over ``TAPS`` packed sample pairs
using dual-16 ``ifir16`` MACs and saturating dual-16 windowing — a
dense mix of loads (slot 5), multiplies (slots 2/3), DSP adds (slots
1/3), and ALU traffic that fills the five issue slots the way the real
filterbank does.  Measured on the TM3270 it reaches OPI ~4 at CPI ~1.0
(the sample buffer sits in the data cache).
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram

SUBBANDS = 32
TAPS = 16  # sample pairs per dot product (32 16-bit samples)

#: Dual-16 window bias added (saturating) to each sample pair.
WINDOW_BIAS = 0x0010_0010


def build_mp3proxy() -> AsmProgram:
    """Params: (samples, coeffs, out, nframes).

    ``samples``: >= (SUBBANDS + TAPS*2) 16-bit values per frame window;
    ``coeffs``: SUBBANDS * TAPS 32-bit packed coefficient pairs;
    ``out``: 2 * SUBBANDS 32-bit results per frame (V and U vectors).
    """
    b = ProgramBuilder("mp3proxy")
    samples, coeffs, out, nframes = b.params(
        "samples", "coeffs", "out", "nframes")
    window = b.const32(WINDOW_BIAS)

    end_frames = b.counted_loop(nframes, "frames")
    coeff_ptr = b.emit("mov", srcs=(coeffs,))
    out_ptr = b.emit("mov", srcs=(out,))
    subband = b.emit("mov", srcs=(b.zero,))
    end_subbands = b.counted_loop(b.const32(SUBBANDS), "subbands")
    sample_ptr = b.emit("asli", srcs=(subband,), imm=1)
    sample_ptr = b.emit_into(
        sample_ptr, "iadd", srcs=(sample_ptr, samples))
    acc_v0 = b.emit("mov", srcs=(b.zero,))
    acc_v1 = b.emit("mov", srcs=(b.zero,))
    acc_u0 = b.emit("mov", srcs=(b.zero,))
    acc_u1 = b.emit("mov", srcs=(b.zero,))
    energy = b.emit("mov", srcs=(b.zero,))
    tap_sample = b.emit("mov", srcs=(sample_ptr,))
    tap_coeff = b.emit("mov", srcs=(coeff_ptr,))
    # Four packed-pair groups (16 samples) per iteration, unrolled so
    # the scheduler can overlap load latencies across groups — a VLIW
    # compiler's unrolling of the filterbank inner loop.
    groups = 8
    end_taps = b.counted_loop(b.const32(TAPS // (2 * groups)), "taps")
    for group in range(groups):
        base = 8 * group
        pair0 = b.emit("ld32d", srcs=(tap_sample,), imm=base,
                       alias="samples")
        pair1 = b.emit("ld32d", srcs=(tap_sample,), imm=base + 4,
                       alias="samples")
        coeff0 = b.emit("ld32d", srcs=(tap_coeff,), imm=base,
                        alias="coeffs")
        coeff1 = b.emit("ld32d", srcs=(tap_coeff,), imm=base + 4,
                        alias="coeffs")
        win0 = b.emit("dspidualadd", srcs=(pair0, window))
        win1 = b.emit("dspidualadd", srcs=(pair1, window))
        mac_v0 = b.emit("ifir16", srcs=(win0, coeff0))
        mac_v1 = b.emit("ifir16", srcs=(win1, coeff1))
        mac_u0 = b.emit("ifir16", srcs=(pair0, coeff1))
        mac_u1 = b.emit("ifir16", srcs=(pair1, coeff0))
        b.emit_into(acc_v0, "iadd", srcs=(acc_v0, mac_v0))
        b.emit_into(acc_v1, "iadd", srcs=(acc_v1, mac_v1))
        b.emit_into(acc_u0, "iadd", srcs=(acc_u0, mac_u0))
        b.emit_into(acc_u1, "iadd", srcs=(acc_u1, mac_u1))
        cross0 = b.emit("bitxor", srcs=(mac_v0, mac_u0))
        cross1 = b.emit("bitxor", srcs=(mac_v1, mac_u1))
        folded0 = b.emit("lsri", srcs=(cross0,), imm=3)
        folded1 = b.emit("lsri", srcs=(cross1,), imm=3)
        b.emit_into(energy, "iadd", srcs=(energy, folded0))
        b.emit_into(energy, "iadd", srcs=(energy, folded1))
    b.emit_into(tap_sample, "iaddi", srcs=(tap_sample,), imm=4 * groups)
    b.emit_into(tap_sample, "iaddi", srcs=(tap_sample,), imm=4 * groups)
    b.emit_into(tap_coeff, "iaddi", srcs=(tap_coeff,), imm=4 * groups)
    b.emit_into(tap_coeff, "iaddi", srcs=(tap_coeff,), imm=4 * groups)
    end_taps()
    total_v = b.emit("iadd", srcs=(acc_v0, acc_v1))
    total_u = b.emit("iadd", srcs=(acc_u0, acc_u1))
    total_u = b.emit_into(total_u, "iadd", srcs=(total_u, energy))
    scaled_v = b.emit("asri", srcs=(total_v,), imm=6)
    scaled_u = b.emit("asri", srcs=(total_u,), imm=6)
    clipped_v = b.emit("iclipi", srcs=(scaled_v,), imm=15)
    clipped_u = b.emit("iclipi", srcs=(scaled_u,), imm=15)
    b.emit("st32d", srcs=(out_ptr, clipped_v), imm=0, alias="out")
    b.emit("st32d", srcs=(out_ptr, clipped_u), imm=4, alias="out")
    b.emit_into(out_ptr, "iaddi", srcs=(out_ptr,), imm=8)
    b.emit_into(coeff_ptr, "iaddi", srcs=(coeff_ptr,), imm=4 * TAPS // 2)
    b.emit_into(coeff_ptr, "iaddi", srcs=(coeff_ptr,), imm=4 * TAPS // 2)
    b.emit_into(subband, "iaddi", srcs=(subband,), imm=1)
    end_subbands()
    end_frames()
    return b.finish()


def reference_mp3proxy(samples: list[int],
                       coeff_pairs: list[tuple[int, int]]
                       ) -> list[tuple[int, int]]:
    """Pure-Python reference of one frame's (V, U) outputs per subband.

    ``samples`` is the signed 16-bit sample window (in memory order);
    ``coeff_pairs`` holds SUBBANDS*TAPS (hi, lo) signed pairs, matching
    the packed 32-bit coefficient words.
    """
    def clip(value, lo, hi):
        return min(max(value, lo), hi)

    def wrap32(value):
        value &= 0xFFFFFFFF
        return value - (1 << 32) if value & 0x80000000 else value

    def sat16(value):
        return clip(value, -(1 << 15), (1 << 15) - 1)

    def fir(hi_a, lo_a, hi_b, lo_b):
        return clip(hi_a * hi_b + lo_a * lo_b,
                    -(1 << 31), (1 << 31) - 1)

    outputs = []
    for subband in range(SUBBANDS):
        acc_v = acc_u = energy = 0
        for tap in range(TAPS):
            s_hi = samples[subband + 2 * tap]
            s_lo = samples[subband + 2 * tap + 1]
            # Coefficient pairing mirrors the unrolled kernel: even
            # taps use (own, next) and odd taps (own, previous).
            partner = tap + 1 if tap % 2 == 0 else tap - 1
            c_own = coeff_pairs[subband * TAPS + tap]
            c_other = coeff_pairs[subband * TAPS + partner]
            w_hi = sat16(s_hi + 16)
            w_lo = sat16(s_lo + 16)
            mac_v = fir(w_hi, w_lo, *c_own)
            mac_u = fir(s_hi, s_lo, *c_other)
            acc_v = wrap32(acc_v + mac_v)
            acc_u = wrap32(acc_u + mac_u)
            energy = wrap32(energy + (((mac_v ^ mac_u) & 0xFFFFFFFF) >> 3))
        total_u = wrap32(acc_u + energy)
        outputs.append((
            clip(acc_v >> 6, -(1 << 15), (1 << 15) - 1),
            clip(total_u >> 6, -(1 << 15), (1 << 15) - 1),
        ))
    return outputs
