"""MPEG2 decoder kernel: block-based motion compensation + residual add.

The paper runs a full MPEG2 decoder on three streams (Table 5);
``mpeg2_a`` is "characterized by a highly disruptive motion vector
field".  The performance story (Section 6) is entirely about the data
cache capturing the decoder's working set: reference-field fetches at
motion-compensated addresses are what miss.  This kernel implements
exactly that access pattern — per 8x8 block: read the motion vector,
fetch the (byte-aligned but arbitrary) reference block, add the
saturating residual, write the reconstructed block — driven by
synthetic motion-vector fields of controlled disruptiveness
(:mod:`repro.workloads.video`).

Memory layout: reference frame, current frame, packed MV array
(one 32-bit ``(dy << 16) | (dx & 0xffff)`` word per block, row-major),
residual array (64 bytes per block, block-sequential).
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram

BLOCK = 8  # 8x8 pixel blocks


def build_mpeg2() -> AsmProgram:
    """Params: (cur, ref, mv, resid, width, blocks_x, blocks_y, fields).

    ``fields`` repeats the whole field reconstruction (a decoder runs
    continuously; with more than one field the caches measure warm
    behaviour, which is what the paper's full-decoder runs see).
    """
    b = ProgramBuilder("mpeg2")
    cur, ref, mv_base, resid_base = b.params("cur", "ref", "mv", "resid")
    width, blocks_x, blocks_y, fields = b.params(
        "width", "blocks_x", "blocks_y", "fields")

    row_step = b.emit("asli", srcs=(width,), imm=3)  # 8 * width

    end_fields = b.counted_loop(fields, "fields")
    cur_row = b.emit("mov", srcs=(cur,))
    ref_row = b.emit("mov", srcs=(ref,))
    mv_ptr = b.emit("mov", srcs=(mv_base,))
    resid = b.emit("mov", srcs=(resid_base,))
    end_rows = b.counted_loop(blocks_y, "block_rows")
    cur_blk = b.emit("mov", srcs=(cur_row,))
    ref_blk = b.emit("mov", srcs=(ref_row,))
    end_cols = b.counted_loop(blocks_x, "block_cols")

    vector = b.emit("ld32d", srcs=(mv_ptr,), imm=0, alias="mv")
    dx = b.emit("sex16", srcs=(vector,))
    dy = b.emit("asri", srcs=(vector,), imm=16)
    vertical = b.emit("imul", srcs=(dy, width))
    offset = b.emit("iadd", srcs=(vertical, dx))
    src = b.emit("iadd", srcs=(ref_blk, offset))
    dst = b.emit("mov", srcs=(cur_blk,))
    for row in range(BLOCK):
        ref_lo = b.emit("ld32d", srcs=(src,), imm=0, alias="ref")
        ref_hi = b.emit("ld32d", srcs=(src,), imm=4, alias="ref")
        res_lo = b.emit("ld32d", srcs=(resid,), imm=8 * row,
                        alias="resid")
        res_hi = b.emit("ld32d", srcs=(resid,), imm=8 * row + 4,
                        alias="resid")
        out_lo = b.emit("dspuquadaddui", srcs=(ref_lo, res_lo))
        out_hi = b.emit("dspuquadaddui", srcs=(ref_hi, res_hi))
        b.emit("st32d", srcs=(dst, out_lo), imm=0, alias="cur")
        b.emit("st32d", srcs=(dst, out_hi), imm=4, alias="cur")
        if row != BLOCK - 1:
            src = b.emit("iadd", srcs=(src, width))
            dst = b.emit("iadd", srcs=(dst, width))
    b.emit_into(mv_ptr, "iaddi", srcs=(mv_ptr,), imm=4)
    b.emit_into(resid, "iaddi", srcs=(resid,), imm=BLOCK * BLOCK // 2)
    b.emit_into(resid, "iaddi", srcs=(resid,), imm=BLOCK * BLOCK // 2)
    b.emit_into(cur_blk, "iaddi", srcs=(cur_blk,), imm=BLOCK)
    b.emit_into(ref_blk, "iaddi", srcs=(ref_blk,), imm=BLOCK)
    end_cols()
    b.emit_into(cur_row, "iadd", srcs=(cur_row, row_step))
    b.emit_into(ref_row, "iadd", srcs=(ref_row, row_step))
    end_rows()
    end_fields()
    return b.finish()


def reference_mpeg2(ref: bytes, mvs: list[tuple[int, int]],
                    residuals: bytes, width: int, blocks_x: int,
                    blocks_y: int) -> bytearray:
    """Pure-Python reference for verification."""
    out = bytearray(width * blocks_y * BLOCK)
    block_index = 0
    for by in range(blocks_y):
        for bx in range(blocks_x):
            dx, dy = mvs[block_index]
            for row in range(BLOCK):
                src_base = (by * BLOCK + dy + row) * width + bx * BLOCK + dx
                dst_base = (by * BLOCK + row) * width + bx * BLOCK
                for col in range(BLOCK):
                    residual = residuals[block_index * 64 + row * 8 + col]
                    residual -= 256 if residual & 0x80 else 0
                    value = ref[src_base + col] + residual
                    out[dst_base + col] = min(255, max(0, value))
            block_index += 1
    return out
