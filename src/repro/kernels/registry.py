"""The Table 5 kernel suite: builders, workload setup, verification.

Each :class:`KernelCase` bundles everything needed to measure one of
the paper's evaluation kernels on any processor configuration: the IR
builder (baseline operations only, so one source recompiles for the
TM3260 and TM3270 — the paper's methodology), a ``prepare`` function
that lays the workload out in memory and returns the argument
registers, and a ``verify`` function asserting the kernel computed the
right answer (so performance numbers are never measured on broken
runs).

Workload sizes are scaled from the paper's full-rate video for
simulation speed; DESIGN.md records each substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.asm.ir import AsmProgram
from repro.core.processor import RunResult
from repro.kernels import eembc, memops, mpeg2, tv
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads import video


@dataclass(frozen=True)
class KernelCase:
    """One runnable, verifiable kernel workload."""

    name: str
    description: str
    build: Callable[[], AsmProgram]
    prepare: Callable[[FlatMemory], dict[int, int]]
    verify: Callable[[FlatMemory, RunResult], None]
    memory_size: int = 1 << 19
    work_units: int = 1  # bytes/pixels processed, for rate reporting
    #: ``(address, nbytes)`` regions holding the kernel's *output* —
    #: the bytes whose corruption is observable to a consumer.  The
    #: resilience layer digests exactly these regions to decide
    #: silent-data-corruption vs masked outcomes, so corrupted inputs
    #: or scratch space that nothing reads again never count as SDC.
    outputs: tuple[tuple[int, int], ...] = ()

    def output_digest(self, memory: FlatMemory) -> str:
        """SHA-256 over the declared output regions, in order."""
        import hashlib

        digest = hashlib.sha256()
        for address, nbytes in self.outputs:
            digest.update(memory.read_block(address, nbytes))
        return digest.hexdigest()


# ---------------------------------------------------------------------------
# memset / memcpy
# ---------------------------------------------------------------------------

MEM_REGION = memops.DEFAULT_REGION_BYTES
MEMSET_VALUE = 0xA5A5A5A5


def _prepare_memset(memory: FlatMemory) -> dict[int, int]:
    return args_for(DATA_BASE, MEM_REGION, MEMSET_VALUE)


def _verify_memset(memory: FlatMemory, result: RunResult) -> None:
    expected = MEMSET_VALUE.to_bytes(4, "big") * (MEM_REGION // 4)
    assert memory.read_block(DATA_BASE, MEM_REGION) == expected


MEMCPY_SRC = DATA_BASE
MEMCPY_DST = DATA_BASE + 2 * MEM_REGION


def _prepare_memcpy(memory: FlatMemory) -> dict[int, int]:
    payload = video.synthetic_frame(MEM_REGION, 1, seed=11)
    memory.write_block(MEMCPY_SRC, payload)
    return args_for(MEMCPY_DST, MEMCPY_SRC, MEM_REGION)


def _verify_memcpy(memory: FlatMemory, result: RunResult) -> None:
    assert (memory.read_block(MEMCPY_DST, MEM_REGION)
            == memory.read_block(MEMCPY_SRC, MEM_REGION))


# ---------------------------------------------------------------------------
# EEMBC kernels
# ---------------------------------------------------------------------------

FILTER_W, FILTER_H = 130, 48
FILTER_SRC = DATA_BASE
FILTER_DST = DATA_BASE + FILTER_W * FILTER_H + 64


def _prepare_filter(memory: FlatMemory) -> dict[int, int]:
    image = video.synthetic_frame(FILTER_W, FILTER_H, seed=21)
    memory.write_block(FILTER_SRC, image)
    return args_for(FILTER_SRC, FILTER_DST, FILTER_W, FILTER_H)


def _verify_filter(memory: FlatMemory, result: RunResult) -> None:
    image = memory.read_block(FILTER_SRC, FILTER_W * FILTER_H)
    out = memory.read_block(FILTER_DST, FILTER_W * FILTER_H)
    for y in range(FILTER_H):
        for x in range(1, FILTER_W - 1, 7):  # spot-check a lattice
            expected = 2 * image[y * FILTER_W + x] \
                - image[y * FILTER_W + x - 1] - image[y * FILTER_W + x + 1]
            expected = min(255, max(0, expected))
            assert out[y * FILTER_W + x] == expected, (x, y)


PIXELS = 64 * 64


def _plane(index: int) -> int:
    return DATA_BASE + index * (PIXELS + 64)


def _prepare_rgb(memory: FlatMemory) -> dict[int, int]:
    for plane in range(3):
        data = video.synthetic_frame(64, 64, seed=31 + plane)
        memory.write_block(_plane(plane), data)
    return args_for(_plane(0), _plane(1), _plane(2),
                    _plane(3), _plane(4), _plane(5), PIXELS)


def _prepare_cmyk(memory: FlatMemory) -> dict[int, int]:
    for plane in range(3):
        data = video.synthetic_frame(64, 64, seed=31 + plane)
        memory.write_block(_plane(plane), data)
    return args_for(_plane(0), _plane(1), _plane(2), _plane(3),
                    _plane(4), _plane(5), _plane(6), PIXELS)


def _color_rows(kind: str) -> list[tuple[int, int, int, int]]:
    if kind == "yuv":
        return [(66, 129, 25, 16), (-38, -74, 112, 128),
                (112, -94, -18, 128)]
    return [(77, 150, 29, 0), (153, -70, -83, 128), (54, -133, 79, 128)]


def _verify_color(kind: str):
    rows = _color_rows(kind)

    def verify(memory: FlatMemory, result: RunResult) -> None:
        planes = [memory.read_block(_plane(i), PIXELS) for i in range(6)]
        for pixel in range(0, PIXELS, 97):  # spot-check a lattice
            red, green, blue = (planes[i][pixel] for i in range(3))
            for out_plane, (cr, cg, cb, offset) in enumerate(rows):
                value = ((cr * red + cg * green + cb * blue + 128) >> 8)
                value = min(255, max(0, value + offset))
                assert planes[3 + out_plane][pixel] == value, (pixel,
                                                               out_plane)
    return verify


def _verify_cmyk(memory: FlatMemory, result: RunResult) -> None:
    planes = [memory.read_block(_plane(i), PIXELS) for i in range(7)]
    for pixel in range(0, PIXELS, 89):
        red, green, blue = (planes[i][pixel] for i in range(3))
        black = min(255 - red, 255 - green, 255 - blue)
        expected = (255 - red - black, 255 - green - black,
                    255 - blue - black, black)
        got = tuple(planes[3 + i][pixel] for i in range(4))
        assert got == expected, pixel


# ---------------------------------------------------------------------------
# MPEG2 (three streams of differing motion disruptiveness)
# ---------------------------------------------------------------------------

MPEG2_W, MPEG2_H = 256, 128
#: Fields decoded per run: >1 so warm-cache behaviour is measured (the
#: paper runs a continuously decoding application).
MPEG2_FIELDS = 2
MPEG2_BX, MPEG2_BY = MPEG2_W // 8, MPEG2_H // 8
MPEG2_REF = DATA_BASE
MPEG2_CUR = DATA_BASE + 0x10000
MPEG2_MV = DATA_BASE + 0x20000
MPEG2_RESID = DATA_BASE + 0x21000


def _prepare_mpeg2(stream: str):
    def prepare(memory: FlatMemory) -> dict[int, int]:
        frame = video.synthetic_frame(MPEG2_W, MPEG2_H, seed=41)
        memory.write_block(MPEG2_REF, frame)
        field = video.motion_field(
            MPEG2_BX, MPEG2_BY, MPEG2_W, MPEG2_H,
            video.MPEG2_STREAM_DISRUPTIVENESS[stream], seed=43)
        for index, word in enumerate(field.packed_words()):
            memory.store(MPEG2_MV + 4 * index, word, 4)
        residuals = video.synthetic_residuals(MPEG2_BX * MPEG2_BY, seed=47)
        memory.write_block(MPEG2_RESID, residuals)
        return args_for(MPEG2_CUR, MPEG2_REF, MPEG2_MV, MPEG2_RESID,
                        MPEG2_W, MPEG2_BX, MPEG2_BY, MPEG2_FIELDS)
    return prepare


def _verify_mpeg2(memory: FlatMemory, result: RunResult) -> None:
    ref = memory.read_block(MPEG2_REF, MPEG2_W * MPEG2_H)
    residuals = memory.read_block(MPEG2_RESID, MPEG2_BX * MPEG2_BY * 64)
    mvs = []
    for index in range(MPEG2_BX * MPEG2_BY):
        word = memory.load(MPEG2_MV + 4 * index, 4)
        dx = word & 0xFFFF
        dx -= 0x10000 if dx & 0x8000 else 0
        dy = word >> 16
        dy -= 0x10000 if dy & 0x8000 else 0
        mvs.append((dx, dy))
    expected = mpeg2.reference_mpeg2(
        ref, mvs, residuals, MPEG2_W, MPEG2_BX, MPEG2_BY)
    assert memory.read_block(MPEG2_CUR, len(expected)) == bytes(expected)


# ---------------------------------------------------------------------------
# TV kernels
# ---------------------------------------------------------------------------

TV_W, TV_H = 256, 64
FILMDET_A = DATA_BASE
FILMDET_B = DATA_BASE + TV_W * TV_H + 64
FILMDET_RESULT = DATA_BASE + 0x10000
FILMDET_THRESH = 1800


def _prepare_filmdet(memory: FlatMemory) -> dict[int, int]:
    memory.write_block(FILMDET_A, video.synthetic_frame(TV_W, TV_H, seed=51))
    memory.write_block(FILMDET_B, video.synthetic_frame(TV_W, TV_H, seed=52))
    return args_for(FILMDET_A, FILMDET_B, TV_W // 4, TV_H,
                    FILMDET_THRESH, FILMDET_RESULT)


def _verify_filmdet(memory: FlatMemory, result: RunResult) -> None:
    field_a = memory.read_block(FILMDET_A, TV_W * TV_H)
    field_b = memory.read_block(FILMDET_B, TV_W * TV_H)
    moving, total = tv.reference_filmdet(
        field_a, field_b, TV_W, TV_H, FILMDET_THRESH)
    assert memory.load(FILMDET_RESULT, 4) == moving
    assert memory.load(FILMDET_RESULT + 4, 4) == total & 0xFFFFFFFF


MAJ_ABOVE = DATA_BASE
MAJ_BELOW = DATA_BASE + TV_W * TV_H + 64
MAJ_PREV = MAJ_BELOW + TV_W * TV_H + 64
MAJ_OUT = MAJ_PREV + TV_W * TV_H + 64


def _prepare_majority(memory: FlatMemory) -> dict[int, int]:
    for base, seed in ((MAJ_ABOVE, 61), (MAJ_BELOW, 62), (MAJ_PREV, 63)):
        memory.write_block(base, video.synthetic_frame(TV_W, TV_H, seed=seed))
    return args_for(MAJ_ABOVE, MAJ_BELOW, MAJ_PREV, MAJ_OUT,
                    TV_W * TV_H // 4)


def _verify_majority(memory: FlatMemory, result: RunResult) -> None:
    above = memory.read_block(MAJ_ABOVE, TV_W * TV_H)
    below = memory.read_block(MAJ_BELOW, TV_W * TV_H)
    prev = memory.read_block(MAJ_PREV, TV_W * TV_H)
    expected = tv.reference_majority_sel(above, below, prev)
    assert memory.read_block(MAJ_OUT, TV_W * TV_H) == expected


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------

#: Output planes of the three-plane color conversions.
_PLANE_OUTPUTS = tuple((_plane(i), PIXELS) for i in range(3, 6))
_CMYK_OUTPUTS = tuple((_plane(i), PIXELS) for i in range(3, 7))

TABLE5_KERNELS: tuple[KernelCase, ...] = (
    KernelCase(
        "memset", "Sets a 32 Kbyte region to a pre-defined value "
        "(paper: 64 Kbyte).", memops.build_memset,
        _prepare_memset, _verify_memset, work_units=MEM_REGION,
        outputs=((DATA_BASE, MEM_REGION),)),
    KernelCase(
        "memcpy", "Copies a 32 Kbyte region (paper: 64 Kbyte).",
        memops.build_memcpy, _prepare_memcpy, _verify_memcpy,
        work_units=MEM_REGION, outputs=((MEMCPY_DST, MEM_REGION),)),
    KernelCase(
        "filter", "EEMBC consumer: 3-tap high-pass grey-scale filter.",
        eembc.build_filter, _prepare_filter, _verify_filter,
        work_units=FILTER_W * FILTER_H,
        outputs=((FILTER_DST, FILTER_W * FILTER_H),)),
    KernelCase(
        "rgb2yuv", "EEMBC consumer: RGB to YUV color conversion.",
        eembc.build_rgb2yuv, _prepare_rgb, _verify_color("yuv"),
        work_units=PIXELS, outputs=_PLANE_OUTPUTS),
    KernelCase(
        "rgb2cmyk", "EEMBC consumer: RGB to CMYK color conversion.",
        eembc.build_rgb2cmyk, _prepare_cmyk, _verify_cmyk,
        work_units=PIXELS, outputs=_CMYK_OUTPUTS),
    KernelCase(
        "rgb2yiq", "EEMBC consumer: RGB to YIQ color conversion.",
        eembc.build_rgb2yiq, _prepare_rgb, _verify_color("yiq"),
        work_units=PIXELS, outputs=_PLANE_OUTPUTS),
    KernelCase(
        "mpeg2_a", "MPEG2 decoder, highly disruptive motion vector field.",
        mpeg2.build_mpeg2, _prepare_mpeg2("mpeg2_a"), _verify_mpeg2,
        work_units=MPEG2_W * MPEG2_H,
        outputs=((MPEG2_CUR, MPEG2_W * MPEG2_H),)),
    KernelCase(
        "mpeg2_b", "MPEG2 decoder, moderate motion vector field.",
        mpeg2.build_mpeg2, _prepare_mpeg2("mpeg2_b"), _verify_mpeg2,
        work_units=MPEG2_W * MPEG2_H,
        outputs=((MPEG2_CUR, MPEG2_W * MPEG2_H),)),
    KernelCase(
        "mpeg2_c", "MPEG2 decoder, smooth motion vector field.",
        mpeg2.build_mpeg2, _prepare_mpeg2("mpeg2_c"), _verify_mpeg2,
        work_units=MPEG2_W * MPEG2_H,
        outputs=((MPEG2_CUR, MPEG2_W * MPEG2_H),)),
    KernelCase(
        "filmdet", "Film detection algorithm, as used in TV sets.",
        tv.build_filmdet, _prepare_filmdet, _verify_filmdet,
        work_units=TV_W * TV_H, outputs=((FILMDET_RESULT, 8),)),
    KernelCase(
        "majority_sel", "De-interlacer algorithm, as used in TV sets.",
        tv.build_majority_sel, _prepare_majority, _verify_majority,
        work_units=TV_W * TV_H, outputs=((MAJ_OUT, TV_W * TV_H),)),
)


def kernel_by_name(name: str) -> KernelCase:
    """Look up one Table 5 kernel case."""
    for case in TABLE5_KERNELS:
        if case.name == name:
            return case
    raise KeyError(f"unknown kernel {name!r}")
