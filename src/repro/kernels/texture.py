"""MPEG2 8x8 texture pipeline kernel (Section 6, reference [13]).

The paper: "In [13] a MPEG2 encoder application was evaluated.  New
operations improve the performance of a MPEG2 8x8 texture pipeline by
50%."  The texture pipeline is dequantization followed by the inverse
transform's multiply-accumulate butterflies over 16-bit coefficients.

Both variants compute, per 8x8 block of dual-16 packed coefficients:

1. dequantization — saturating dual-16 multiply with a per-column
   quantizer word;
2. a butterfly stage per row: for word pairs (X, Y) and coefficient
   words (W, V), two 32-bit MACs
   ``hi = clip32(x_hi*w_hi + y_hi*v_hi)``,
   ``lo = clip32(x_lo*w_lo + y_lo*v_lo)``;
3. scale (arithmetic shift), clip to 9 bits (MPEG2 range), repack to
   dual-16, store.

The **baseline** variant realizes each MAC pair with four pack
operations and two ``ifir16`` dot products; the **optimized** variant
is a single two-slot ``SUPER_DUALIMIX`` — the exact use case of
Section 2.2.1 (combining two-input operations, reducing latency and
register pressure).
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram

BLOCK_WORDS = 4  # 8 dual-16 coefficients per row = 4 words
ROWS = 8
SCALE_SHIFT = 6
CLIP_BITS = 9  # MPEG2 coefficient range [-256, 255]


def _emit_shared_head(name: str):
    b = ProgramBuilder(name)
    src, dst, quant, coeff, nblocks = b.params(
        "src", "dst", "quant", "coeff", "nblocks")
    return b, src, dst, quant, coeff, nblocks


def _emit_row_tail(b: ProgramBuilder, hi32: int, lo32: int,
                   dst: int, offset: int) -> None:
    """Scale, clip, repack and store one output word."""
    hi_scaled = b.emit("asri", srcs=(hi32,), imm=SCALE_SHIFT)
    lo_scaled = b.emit("asri", srcs=(lo32,), imm=SCALE_SHIFT)
    hi_clipped = b.emit("iclipi", srcs=(hi_scaled,), imm=CLIP_BITS)
    lo_clipped = b.emit("iclipi", srcs=(lo_scaled,), imm=CLIP_BITS)
    packed = b.emit("pack16lsb", srcs=(hi_clipped, lo_clipped))
    b.emit("st32d", srcs=(dst, packed), imm=offset, alias="dst")


def _emit_block_body(b: ProgramBuilder, src, dst, quant, coeff,
                     use_super: bool) -> None:
    """One 8x8 block: 8 rows of butterfly MACs, two rows per trip.

    Dequantization is folded into the coefficient words host-side
    (the standard texture-pipeline optimization); the ``quant``
    parameter is kept in the signature for layout compatibility.
    """
    coeff_w = [b.emit("ld32d", srcs=(coeff,), imm=4 * index,
                      alias="coeff")
               for index in range(BLOCK_WORDS)]
    coeff_v = [b.emit("ld32d", srcs=(coeff,), imm=16 + 4 * index,
                      alias="coeff")
               for index in range(BLOCK_WORDS)]
    row_src = b.emit("mov", srcs=(src,))
    row_dst = b.emit("mov", srcs=(dst,))
    unrolled_rows = 4
    end_rows = b.counted_loop(b.const32(ROWS // unrolled_rows),
                              f"{b.name}.rows")
    for half in range(unrolled_rows):  # four rows per loop trip
        src_base = (half % 2) * 4 * BLOCK_WORDS
        dst_base = (half % 2) * 2 * BLOCK_WORDS
        if half and half % 2 == 0:
            b.emit_into(row_src, "iaddi", srcs=(row_src,),
                        imm=2 * 4 * BLOCK_WORDS)
            b.emit_into(row_dst, "iaddi", srcs=(row_dst,),
                        imm=2 * 2 * BLOCK_WORDS)
        words = [b.emit("ld32d", srcs=(row_src,),
                        imm=src_base + 4 * index, alias="src")
                 for index in range(BLOCK_WORDS)]
        for pair in range(BLOCK_WORDS // 2):
            x_word = words[2 * pair]
            y_word = words[2 * pair + 1]
            w_word = coeff_w[2 * pair]
            v_word = coeff_v[2 * pair]
            if use_super:
                hi32, lo32 = b.emit(
                    "super_dualimix",
                    srcs=(x_word, w_word, y_word, v_word))
            else:
                top = b.emit("pack16msb", srcs=(x_word, y_word))
                top_coeff = b.emit("pack16msb", srcs=(w_word, v_word))
                bottom = b.emit("pack16lsb", srcs=(x_word, y_word))
                bottom_coeff = b.emit("pack16lsb",
                                      srcs=(w_word, v_word))
                hi32 = b.emit("ifir16", srcs=(top, top_coeff))
                lo32 = b.emit("ifir16", srcs=(bottom, bottom_coeff))
            _emit_row_tail(b, hi32, lo32, row_dst,
                           dst_base + 4 * pair)
    b.emit_into(row_src, "iaddi", srcs=(row_src,),
                imm=2 * 4 * BLOCK_WORDS)
    # The butterfly halves the data: 2 output words per 4 input words.
    b.emit_into(row_dst, "iaddi", srcs=(row_dst,),
                imm=2 * 2 * BLOCK_WORDS)
    end_rows()


def _build(name: str, use_super: bool) -> AsmProgram:
    b, src, dst, quant, coeff, nblocks = _emit_shared_head(name)
    src_step = b.const32(ROWS * 4 * BLOCK_WORDS)
    dst_step = b.const32(ROWS * 2 * BLOCK_WORDS)
    end_blocks = b.counted_loop(nblocks, "blocks")
    _emit_block_body(b, src, dst, quant, coeff, use_super)
    b.emit_into(src, "iadd", srcs=(src, src_step))
    b.emit_into(dst, "iadd", srcs=(dst, dst_step))
    end_blocks()
    return b.finish()


def build_texture_plain() -> AsmProgram:
    """Baseline texture pipeline: pack + ifir16 butterflies.

    Params: (src, dst, quant, coeff, nblocks); src/dst hold nblocks
    8x16-bit-row blocks; quant 4 words; coeff 8 words (W then V).
    """
    return _build("texture_plain", use_super=False)


def build_texture_super() -> AsmProgram:
    """Optimized texture pipeline using SUPER_DUALIMIX."""
    return _build("texture_super", use_super=True)


def reference_texture(src_halves: list[int], quant_halves: list[int],
                      coeff_w_halves: list[int],
                      coeff_v_halves: list[int],
                      nblocks: int) -> list[int]:
    """Pure-Python reference: output 16-bit halves in memory order.

    All arguments are signed 16-bit values; ``src_halves`` has
    ``nblocks * ROWS * 8`` entries, the quantizer 8, W and V 8 each.
    """
    def sat16(value):
        return min(max(value, -(1 << 15)), (1 << 15) - 1)

    def clip(value, bits):
        bound = 1 << bits
        return min(max(value, -bound), bound - 1)

    out = []
    for block in range(nblocks):
        for row in range(ROWS):
            base = (block * ROWS + row) * 8
            dequantized = [src_halves[base + lane] for lane in range(8)]
            for pair in range(BLOCK_WORDS // 2):
                x_hi, x_lo = dequantized[4 * pair], dequantized[4 * pair + 1]
                y_hi, y_lo = (dequantized[4 * pair + 2],
                              dequantized[4 * pair + 3])
                w_hi, w_lo = (coeff_w_halves[4 * pair],
                              coeff_w_halves[4 * pair + 1])
                v_hi, v_lo = (coeff_v_halves[4 * pair],
                              coeff_v_halves[4 * pair + 1])
                hi32 = clip(x_hi * w_hi + y_hi * v_hi, 31)
                lo32 = clip(x_lo * w_lo + y_lo * v_lo, 31)
                out.append(clip(hi32 >> SCALE_SHIFT, CLIP_BITS))
                out.append(clip(lo32 >> SCALE_SHIFT, CLIP_BITS))
    return out
