"""TV-set algorithms: film detection and majority-select de-interlacing.

Table 5 lists ``filmdet`` ("film detection algorithm, as used in TV
sets") and ``majority_sel`` ("de-interlacer algorithm").  Both are
line-oriented streaming video algorithms:

* **filmdet** — detects 3:2/2:2 pull-down by accumulating the sum of
  absolute differences between co-sited pixels of two same-parity
  fields; lines whose SAD exceeds a threshold count as "moving".  The
  moving-line count per field pair is the detector's decision input.
* **majority_sel** — a three-way per-pixel majority (median) selector
  between the line above, the line below, and the temporally previous
  line — a classic motion-adaptive de-interlacing kernel, done four
  pixels at a time with the quad byte SIMD min/max operations.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram


def build_filmdet() -> AsmProgram:
    """Params: (field_a, field_b, width_words, height, thresh, result).

    Writes the number of "moving" lines (line SAD > thresh) and the
    total SAD to ``result`` and ``result + 4``.
    """
    b = ProgramBuilder("filmdet")
    field_a, field_b, width_words, height = b.params(
        "field_a", "field_b", "width_words", "height")
    thresh, result = b.params("thresh", "result")
    moving_lines = b.emit("mov", srcs=(b.zero,))
    total_sad = b.emit("mov", srcs=(b.zero,))

    unroll = 4
    iters = b.emit("lsri", srcs=(width_words,),
                   imm=unroll.bit_length() - 1)
    end_lines = b.counted_loop(height, "lines")
    line_sad = b.emit("mov", srcs=(b.zero,))
    end_cols = b.counted_loop(iters, "cols")
    for word in range(unroll):
        word_a = b.emit("ld32d", srcs=(field_a,), imm=4 * word,
                        alias="fa")
        word_b = b.emit("ld32d", srcs=(field_b,), imm=4 * word,
                        alias="fb")
        sad = b.emit("ume8uu", srcs=(word_a, word_b))
        b.emit_into(line_sad, "iadd", srcs=(line_sad, sad))
    b.emit_into(field_a, "iaddi", srcs=(field_a,), imm=4 * unroll)
    b.emit_into(field_b, "iaddi", srcs=(field_b,), imm=4 * unroll)
    end_cols()
    moving = b.emit("igtr", srcs=(line_sad, thresh))
    b.emit_into(moving_lines, "iaddi", srcs=(moving_lines,), imm=1,
                guard=moving)
    b.emit_into(total_sad, "iadd", srcs=(total_sad, line_sad))
    end_lines()
    b.emit("st32d", srcs=(result, moving_lines), imm=0)
    b.emit("st32d", srcs=(result, total_sad), imm=4)
    return b.finish()


def reference_filmdet(field_a: bytes, field_b: bytes, width: int,
                      height: int, thresh: int) -> tuple[int, int]:
    """Pure-Python reference: (moving_lines, total_sad)."""
    moving = 0
    total = 0
    for line in range(height):
        sad = sum(
            abs(field_a[line * width + x] - field_b[line * width + x])
            for x in range(width))
        if sad > thresh:
            moving += 1
        total += sad
    return moving, total


def build_majority_sel(unroll: int = 4) -> AsmProgram:
    """Params: (above, below, previous, out, nwords).

    out = median(above, below, previous), four pixels per word:
    ``max(min(a,b), min(max(a,b), c))``.
    """
    b = ProgramBuilder("majority_sel")
    above, below, prev, out, nwords = b.params(
        "above", "below", "previous", "out", "nwords")
    step = 4 * unroll
    iters = b.emit("lsri", srcs=(nwords,), imm=unroll.bit_length() - 1)
    end_loop = b.counted_loop(iters, "words")
    for index in range(unroll):
        offset = 4 * index
        word_a = b.emit("ld32d", srcs=(above,), imm=offset, alias="a")
        word_b = b.emit("ld32d", srcs=(below,), imm=offset, alias="b")
        word_c = b.emit("ld32d", srcs=(prev,), imm=offset, alias="p")
        lo = b.emit("quadumin", srcs=(word_a, word_b))
        hi = b.emit("quadumax", srcs=(word_a, word_b))
        mid = b.emit("quadumin", srcs=(hi, word_c))
        median = b.emit("quadumax", srcs=(lo, mid))
        b.emit("st32d", srcs=(out, median), imm=offset, alias="out")
    for pointer in (above, below, prev, out):
        b.emit_into(pointer, "iaddi", srcs=(pointer,), imm=step)
    end_loop()
    return b.finish()


def reference_majority_sel(above: bytes, below: bytes,
                           prev: bytes) -> bytes:
    """Pure-Python reference median."""
    return bytes(
        max(min(a, b), min(max(a, b), c))
        for a, b, c in zip(above, below, prev))
