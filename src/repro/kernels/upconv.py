"""Temporal video up-conversion kernel (Section 6, reference [14]).

The paper: "In [14] a state-of-the-art temporal upconversion algorithm
was evaluated.  New operations improve performance by 40%, data
prefetching improves performance by more than 20%."

Frame-rate up-conversion interpolates a new field between two coded
fields along the motion trajectory: each output pixel mixes the
*previous* field sampled at +mv/2 and the *next* field sampled at
-mv/2, protected by a median against the unshifted temporal average.
With half-pel motion the trajectory samples need two-taps
interpolation — on the TM3270 that is one ``LD_FRAC8`` per 4 pixels,
while the baseline issues two (generally non-aligned) loads and
averages them.  The streaming access pattern is exactly the Figure 3
prefetch case (stride = one image row).

Both variants compute, per output word::

    p  = interp(prev + dx, frac)         # trajectory sample, previous
    n  = interp(next - dx - 1, 16-frac)  # trajectory sample, next
    s  = quadavg(prev_aligned, next_aligned)   # unshifted fallback
    out = median(p, n, s)                # quad-byte SIMD median

Params: (prev, next, out, width, height, dx_frac16) — the motion is a
uniform horizontal pan in 1/16-pel units (integer part + 4-bit
fraction), as produced by :func:`trajectory`.
"""

from __future__ import annotations

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram
from repro.kernels.common import emit_prefetch_region_setup


def _emit_median(b: ProgramBuilder, p: int, n: int, s: int) -> int:
    low = b.emit("quadumin", srcs=(p, n))
    high = b.emit("quadumax", srcs=(p, n))
    middle = b.emit("quadumin", srcs=(high, s))
    return b.emit("quadumax", srcs=(low, middle))


def _emit_plain_sample(b: ProgramBuilder, base: int, offset: int,
                       frac_fwd: int, frac_is_zero: int,
                       alias: str = "prev") -> int:
    """Two-taps interpolation with baseline operations.

    Half-pel-capable: loads the word at ``base + offset`` and one byte
    above and blends per the 4-bit fraction.  At fraction 0 the
    aligned word passes through (guarded select).
    """
    word0 = b.emit("ld32d", srcs=(base,), imm=offset, alias=alias)
    word1 = b.emit("ld32d", srcs=(base,), imm=offset + 1,
                   alias=alias)  # non-aligned
    # General 4-bit blend via the rounding average at frac=8 and
    # guarded passthroughs at the extremes (the dominant cases for
    # half-pel upconversion).
    blended = b.emit("quadavg", srcs=(word0, word1))
    b.emit_into(blended, "mov", srcs=(word0,), guard=frac_is_zero)
    return blended


def build_upconv(use_frac_loads: bool, setup_prefetch: bool,
                 image_base: int = 0, image_bytes: int = 0,
                 width_hint: int = 0,
                 name: str | None = None) -> AsmProgram:
    """Build the up-conversion kernel.

    ``use_frac_loads`` selects LD_FRAC8 trajectory sampling;
    ``setup_prefetch`` emits PF region programming over the two source
    fields (requires the compile-time ``image_base``/``image_bytes``/
    ``width_hint`` geometry, as region registers hold absolute
    addresses).
    """
    if name is None:
        name = "upconv_" + ("frac" if use_frac_loads else "plain") \
                + ("_pf" if setup_prefetch else "")
    b = ProgramBuilder(name)
    prev, next_, out, width = b.params("prev", "next", "out", "width")
    height, motion = b.params("height", "dx_frac16")
    if setup_prefetch:
        emit_prefetch_region_setup(
            b, region=0, start=image_base,
            end=image_base + image_bytes, stride=width_hint)
        emit_prefetch_region_setup(
            b, region=1, start=image_base + image_bytes,
            end=image_base + 2 * image_bytes, stride=width_hint)

    dx = b.emit("asri", srcs=(motion,), imm=4)
    frac = b.emit("bitand", srcs=(motion, b.const32(15)))
    frac_back = b.emit("isub", srcs=(b.const32(16), frac))
    frac_back = b.emit_into(frac_back, "bitand",
                            srcs=(frac_back, b.const32(15)))
    frac_is_zero = b.emit("ieqli", srcs=(frac,), imm=0)
    words_per_row = b.emit("lsri", srcs=(width,), imm=2)

    end_rows = b.counted_loop(height, "rows")
    prev_traj = b.emit("iadd", srcs=(prev, dx))
    next_traj = b.emit("isub", srcs=(next_, dx))
    next_traj = b.emit_into(next_traj, "iaddi", srcs=(next_traj,), imm=-1)
    prev_row = b.emit("mov", srcs=(prev,))
    next_row = b.emit("mov", srcs=(next_,))
    out_row = b.emit("mov", srcs=(out,))
    unroll = 2
    iters = b.emit("lsri", srcs=(words_per_row,),
                   imm=unroll.bit_length() - 1)
    end_cols = b.counted_loop(iters, "cols")
    for group in range(unroll):
        offset = 4 * group
        if use_frac_loads:
            if group:
                p_addr = b.emit("iaddi", srcs=(prev_traj,), imm=offset)
                n_addr = b.emit("iaddi", srcs=(next_traj,), imm=offset)
            else:
                p_addr, n_addr = prev_traj, next_traj
            p_sample = b.emit("ld_frac8", srcs=(p_addr, frac),
                              alias="prev")
            n_sample = b.emit("ld_frac8", srcs=(n_addr, frac_back),
                              alias="next")
        else:
            p_sample = _emit_plain_sample(
                b, prev_traj, offset, frac, frac_is_zero, alias="prev")
            n_sample = _emit_plain_sample(
                b, next_traj, offset, frac_back, b.zero, alias="next")
        prev_word = b.emit("ld32d", srcs=(prev_row,), imm=offset,
                           alias="prev")
        next_word = b.emit("ld32d", srcs=(next_row,), imm=offset,
                           alias="next")
        fallback = b.emit("quadavg", srcs=(prev_word, next_word))
        median = _emit_median(b, p_sample, n_sample, fallback)
        b.emit("st32d", srcs=(out_row, median), imm=offset,
               alias="out")
    for pointer in (prev_traj, next_traj, prev_row, next_row, out_row):
        b.emit_into(pointer, "iaddi", srcs=(pointer,), imm=4 * unroll)
    end_cols()
    b.emit_into(prev, "iadd", srcs=(prev, width))
    b.emit_into(next_, "iadd", srcs=(next_, width))
    b.emit_into(out, "iadd", srcs=(out, width))
    end_rows()
    return b.finish()


def trajectory(dx_pixels: int, frac16: int) -> int:
    """Pack a horizontal motion vector into the kernel's format."""
    return ((dx_pixels << 4) | (frac16 & 15)) & 0xFFFFFFFF


def reference_upconv(prev_padded: bytes, next_padded: bytes, margin: int,
                     width: int, height: int, motion: int,
                     half_pel_blend: bool) -> bytes:
    """Pure-Python reference for either variant.

    ``prev_padded``/``next_padded`` are the fields with ``margin``
    guard bytes before and after (trajectory sampling may reach
    outside the field proper, as the hardware kernel's loads do).
    ``half_pel_blend`` selects the baseline's quadavg blend (rounding
    average, used for any nonzero fraction) instead of the exact
    4-bit interpolation of LD_FRAC8.
    """
    dx = motion >> 4
    frac = motion & 15
    frac_back = (16 - frac) & 15

    def sample(field, row, col, offset, fraction):
        index = margin + row * width + col + offset
        a = field[index]
        b_ = field[index + 1]
        if fraction == 0:
            return a
        if half_pel_blend:
            return (a + b_ + 1) >> 1
        return (a * (16 - fraction) + b_ * fraction + 8) >> 4

    out = bytearray(width * height)
    for row in range(height):
        for col in range(0, width, 4):
            for lane in range(4):
                p = sample(prev_padded, row, col + lane, dx, frac)
                n = sample(next_padded, row, col + lane, -dx - 1,
                           frac_back)
                s = (prev_padded[margin + row * width + col + lane]
                     + next_padded[margin + row * width + col + lane]
                     + 1) >> 1
                out[row * width + col + lane] = max(
                    min(p, n), min(max(p, n), s))
    return bytes(out)
