"""Memory hierarchy: flat memory, caches, prefetch unit, BIU, SDRAM."""

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry, Line, TagStore
from repro.mem.dcache import DataCache, WriteMissPolicy
from repro.mem.flatmem import FlatMemory
from repro.mem.icache import ICacheMode, InstructionCache
from repro.mem.prefetch import RegionPrefetcher
from repro.mem.sdram import Sdram, SdramConfig

__all__ = [
    "BusInterfaceUnit", "CacheGeometry", "Line", "TagStore", "DataCache",
    "WriteMissPolicy", "FlatMemory", "ICacheMode", "InstructionCache",
    "RegionPrefetcher", "Sdram", "SdramConfig",
]
