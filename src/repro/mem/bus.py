"""Bus interface unit (BIU).

The BIU is the processor's window to the SoC (Section 3): cache line
refills, copy-backs, and prefetches all cross it to the off-chip SDRAM.
It contains an asynchronous clock-domain transfer — the processor and
memory run at independent frequencies — which the model captures by
keeping bus time in nanoseconds and converting at the boundary.

A single shared channel serializes all traffic.  Demand refills stall
the processor until completion; copy-backs and prefetches only occupy
bandwidth (which *indirectly* delays later demand misses — the effect
that makes memcpy memory-bound and rewards the TM3270's
allocate-on-write-miss policy with its lower traffic, Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mem.sdram import Sdram, SdramConfig


@dataclass
class BiuStats:
    """Per-category byte counters plus occupancy."""

    refill_bytes: int = 0
    copyback_bytes: int = 0
    prefetch_bytes: int = 0
    ifetch_bytes: int = 0
    transactions: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.refill_bytes + self.copyback_bytes
                + self.prefetch_bytes + self.ifetch_bytes)


class BusInterfaceUnit:
    """Serializing bus + clock-domain conversion to SDRAM time."""

    #: Fixed cost of crossing the asynchronous clock-domain boundary
    #: (request + response), in processor cycles.
    DOMAIN_CROSSING_CYCLES = 4

    def __init__(self, cpu_freq_mhz: float,
                 sdram_config: SdramConfig | None = None) -> None:
        self.cpu_freq_mhz = cpu_freq_mhz
        self.sdram = Sdram(sdram_config)
        self._busy_until_ns = 0.0
        self.stats = BiuStats()

    def snapshot_state(self) -> tuple:
        """Capture bus occupancy + stats + SDRAM state (resilience)."""
        return (self._busy_until_ns, replace(self.stats),
                self.sdram.snapshot_state())

    def restore_state(self, state: tuple) -> None:
        busy_until_ns, stats, sdram = state
        self._busy_until_ns = busy_until_ns
        self.stats = replace(stats)
        self.sdram.restore_state(sdram)

    # -- time conversion ----------------------------------------------------

    def ns_of_cycle(self, cycle: int) -> float:
        return cycle * 1e3 / self.cpu_freq_mhz

    def cycle_of_ns(self, ns: float) -> int:
        return int(ns * self.cpu_freq_mhz / 1e3 + 0.999999)

    # -- transactions ---------------------------------------------------------

    def _transact(self, address: int, nbytes: int, now_cycle: int) -> int:
        """Run one bus transaction; returns the completion cycle."""
        now_ns = self.ns_of_cycle(now_cycle)
        start_ns = max(now_ns, self._busy_until_ns)
        duration = self.sdram.transaction_ns(address, nbytes)
        self._busy_until_ns = start_ns + duration
        self.stats.transactions += 1
        return (self.cycle_of_ns(self._busy_until_ns)
                + self.DOMAIN_CROSSING_CYCLES)

    def demand_refill(self, address: int, nbytes: int, now_cycle: int) -> int:
        """Fetch a cache line for a demand miss; returns completion cycle."""
        self.stats.refill_bytes += nbytes
        return self._transact(address, nbytes, now_cycle)

    def instruction_refill(self, address: int, nbytes: int,
                           now_cycle: int) -> int:
        """Fetch an instruction-cache line; returns completion cycle."""
        self.stats.ifetch_bytes += nbytes
        return self._transact(address, nbytes, now_cycle)

    def copyback(self, address: int, nbytes: int, now_cycle: int) -> int:
        """Write validated victim bytes back; occupies bandwidth only.

        With byte-validity support in the bus protocol (Section 4.1)
        only the validated bytes travel.
        """
        self.stats.copyback_bytes += nbytes
        return self._transact(address, nbytes, now_cycle)

    def prefetch(self, address: int, nbytes: int, now_cycle: int) -> int:
        """Fetch a line for the prefetch unit; returns completion cycle."""
        self.stats.prefetch_bytes += nbytes
        return self._transact(address, nbytes, now_cycle)

    def idle_at(self, now_cycle: int) -> bool:
        """True when the bus has no transaction in flight at ``now``."""
        return self.ns_of_cycle(now_cycle) >= self._busy_until_ns
