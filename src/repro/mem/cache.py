"""Generic set-associative tag store with true-LRU replacement.

Shared machinery of the instruction cache and the data cache
(both are LRU set-associative caches — Table 1); the data cache adds
byte-validity, write policies, and the write buffer on top
(:mod:`repro.mem.dcache`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheGeometry:
    """Size/line/associativity of one cache."""

    size_bytes: int
    line_bytes: int
    ways: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("size must be a multiple of line_bytes * ways")
        for value in (self.size_bytes, self.line_bytes, self.ways):
            if value <= 0 or value & (value - 1):
                raise ValueError("cache parameters must be powers of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    def set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        return address // (self.line_bytes * self.num_sets)

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)


@dataclass
class Line:
    """One resident cache line and its per-byte state."""

    tag: int
    #: Bitmask over the line's bytes: 1 = byte holds valid data.
    valid_mask: int = 0
    #: Bitmask over the line's bytes: 1 = byte modified since fill.
    dirty_mask: int = 0
    #: Cycle at which an in-flight fill completes (prefetch/refill).
    ready_at: int = 0


class TagStore:
    """Tag array: per-set recency-ordered lists (index 0 = MRU)."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[list[Line]] = [
            [] for _ in range(geometry.num_sets)]
        # All parameters are powers of two (CacheGeometry validates),
        # so index/tag extraction reduces to shifts and masks — this
        # runs on every lookup of both caches.
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        self._tag_shift = (self._line_shift
                           + geometry.num_sets.bit_length() - 1)
        self._ways = geometry.ways

    def lookup(self, address: int) -> Line | None:
        """Find the resident line covering ``address``; updates LRU."""
        set_list = self._sets[(address >> self._line_shift)
                              & self._set_mask]
        tag = address >> self._tag_shift
        for position, line in enumerate(set_list):
            if line.tag == tag:
                if position:
                    set_list.pop(position)
                    set_list.insert(0, line)
                return line
        return None

    def probe(self, address: int) -> Line | None:
        """Find without updating LRU (used by the prefetch unit)."""
        set_list = self._sets[(address >> self._line_shift)
                              & self._set_mask]
        tag = address >> self._tag_shift
        for line in set_list:
            if line.tag == tag:
                return line
        return None

    def install(self, address: int) -> tuple[Line, Line | None]:
        """Insert a line for ``address`` as MRU.

        Returns ``(new_line, victim)``; the victim is the evicted LRU
        line, or ``None`` when the set still had room.
        """
        set_list = self._sets[(address >> self._line_shift)
                              & self._set_mask]
        victim = None
        if len(set_list) >= self._ways:
            victim = set_list.pop()
        line = Line(tag=address >> self._tag_shift)
        set_list.insert(0, line)
        return line, victim

    def victim_address(self, set_index: int, line: Line) -> int:
        """Reconstruct the byte address of an evicted line."""
        return ((line.tag * self.geometry.num_sets + set_index)
                * self.geometry.line_bytes)

    def resident_lines(self) -> int:
        """Number of lines currently resident (tests/introspection)."""
        return sum(len(s) for s in self._sets)

    def entries(self):
        """Yield ``(set_index, line)`` for every resident line.

        Order is structural (set index, then recency position), so two
        identically-exercised caches enumerate identically — the
        deterministic target space of the fault-injection engine.
        """
        for index, set_list in enumerate(self._sets):
            for line in set_list:
                yield index, line

    def snapshot_state(self) -> list:
        """Capture tags/validity/dirtiness/recency (resilience layer)."""
        return [[(line.tag, line.valid_mask, line.dirty_mask,
                  line.ready_at) for line in set_list]
                for set_list in self._sets]

    def restore_state(self, state: list) -> None:
        """Restore a :meth:`snapshot_state` capture (fresh Lines, so
        the snapshot survives further mutation and re-restores)."""
        self._sets = [
            [Line(tag=tag, valid_mask=valid, dirty_mask=dirty,
                  ready_at=ready) for tag, valid, dirty, ready in set_list]
            for set_list in state]

    def flush(self) -> list[tuple[int, Line]]:
        """Drop everything; returns (address, line) of dirty lines."""
        dirty = []
        for index, set_list in enumerate(self._sets):
            for line in set_list:
                if line.dirty_mask:
                    dirty.append((self.victim_address(index, line), line))
            set_list.clear()
        return dirty
