"""The TM3270 data cache / load-store unit timing model (Section 4).

Implements the policies the paper describes:

* 4-way set-associative, 128-byte lines, true LRU, copy-back
  (Table 1 — all parameters configurable for the A–D study);
* **allocate-on-write-miss** with a per-byte validity structure: a
  write miss allocates a line without fetching it, validating only the
  written bytes; when the line is victimized, only validated dirty
  bytes travel back over the bus (Section 4.1).  The alternative
  **fetch-on-write-miss** policy of the TM3260 (Table 6) fetches the
  line on a write miss and stalls for it;
* penalty-free non-aligned access: an access spanning a line boundary
  becomes two lookups and may produce two misses (Section 4.2);
* load hits must find every requested byte *valid*; a hit on a line
  whose requested bytes are invalid refetches and merges (the
  byte-validity complication of the hit signal, Section 4.2);
* a cache write buffer (CWB) absorbs store hits without stalling;
* lines delivered by the prefetch unit carry a ``ready_at`` time — a
  demand access arriving before the prefetch completed stalls only for
  the remainder (partial prefetch coverage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry, Line, TagStore


class WriteMissPolicy(enum.Enum):
    """Write-miss handling (Table 6)."""

    ALLOCATE = "allocate-on-write-miss"   # TM3270
    FETCH = "fetch-on-write-miss"         # TM3260


@dataclass
class DCacheStats:
    """Hit/miss/stall accounting."""

    load_accesses: int = 0
    load_hits: int = 0
    load_misses: int = 0
    load_validity_misses: int = 0  # line present, requested bytes invalid
    store_accesses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    stall_cycles: int = 0
    prefetch_partial_hits: int = 0
    copyback_bytes: int = 0
    split_accesses: int = 0  # non-aligned accesses spanning two lines
    cwb_writes: int = 0

    @property
    def accesses(self) -> int:
        return self.load_accesses + self.store_accesses

    @property
    def load_hit_rate(self) -> float:
        """Per-lookup load hit rate.

        A non-aligned access spanning a line boundary produces *two*
        hit-or-miss outcomes (Section 4.2), so the rate is taken over
        outcomes (``hits + misses``), not accesses — with splits,
        hits alone can exceed the access count.
        """
        outcomes = self.load_hits + self.load_misses
        if not outcomes:
            return 1.0
        return self.load_hits / outcomes


def _mask(geometry: CacheGeometry, address: int, nbytes: int) -> int:
    """Byte-validity mask of ``nbytes`` starting at ``address``."""
    offset = address % geometry.line_bytes
    return ((1 << nbytes) - 1) << offset


class DataCache:
    """Timing-only data cache (architectural data lives in FlatMemory)."""

    def __init__(
        self,
        geometry: CacheGeometry,
        biu: BusInterfaceUnit,
        write_miss_policy: WriteMissPolicy = WriteMissPolicy.ALLOCATE,
    ) -> None:
        self.geometry = geometry
        self.biu = biu
        self.write_miss_policy = write_miss_policy
        self.tags = TagStore(geometry)
        self.stats = DCacheStats()
        #: Optional :class:`~repro.obs.events.EventBus`; ``None`` keeps
        #: every emission site a single falsy check (zero events).
        self.obs = None

    # -- internals ------------------------------------------------------------

    def _victimize(self, victim: Line, set_index: int, now: int) -> None:
        """Copy validated dirty bytes of a victim back to memory."""
        writeback = victim.dirty_mask & victim.valid_mask
        address = self.tags.victim_address(set_index, victim)
        if self.obs:
            self.obs.cache(now, "dcache", "evict", address,
                           dirty=bool(writeback))
        if writeback:
            nbytes = bin(writeback).count("1")
            self.biu.copyback(address, nbytes, now)
            self.stats.copyback_bytes += nbytes
            if self.obs:
                self.obs.cache(now, "dcache", "copyback", address,
                               nbytes=nbytes)

    def _fill(self, address: int, now: int, *, demand: bool) -> tuple[Line, int]:
        """Install and fetch a full line; returns (line, ready cycle)."""
        line_address = self.geometry.line_address(address)
        set_index = self.geometry.set_index(address)
        line, victim = self.tags.install(line_address)
        if victim is not None:
            self._victimize(victim, set_index, now)
        if demand:
            done = self.biu.demand_refill(
                line_address, self.geometry.line_bytes, now)
        else:
            done = self.biu.prefetch(
                line_address, self.geometry.line_bytes, now)
        line.valid_mask = (1 << self.geometry.line_bytes) - 1
        line.ready_at = done
        return line, done

    def _allocate(self, address: int, now: int) -> Line:
        """Install a line *without* fetching (allocate-on-write-miss)."""
        line_address = self.geometry.line_address(address)
        set_index = self.geometry.set_index(address)
        line, victim = self.tags.install(line_address)
        if victim is not None:
            self._victimize(victim, set_index, now)
        line.ready_at = now
        return line

    def _wait(self, line: Line, now: int) -> int:
        """Stall cycles until an in-flight fill of ``line`` lands."""
        if line.ready_at > now:
            self.stats.prefetch_partial_hits += 1
            return line.ready_at - now
        return 0

    # -- per-line pieces of an access ------------------------------------------

    def _load_piece(self, address: int, nbytes: int, now: int) -> int:
        mask = _mask(self.geometry, address, nbytes)
        line = self.tags.lookup(address)
        if line is not None and (line.valid_mask & mask) == mask:
            stall = self._wait(line, now)
            if stall == 0:
                self.stats.load_hits += 1
            else:
                self.stats.load_misses += 1
            if self.obs:
                self.obs.cache(now, "dcache",
                               "load-hit" if stall == 0
                               else "load-inflight-hit",
                               address, stall=stall)
            return stall
        if line is not None:
            # Present but requested bytes invalid: refetch and merge.
            # Dirty validated bytes keep their (newer) data; the fill
            # validates the rest.
            self.stats.load_validity_misses += 1
            done = self.biu.demand_refill(
                self.geometry.line_address(address),
                self.geometry.line_bytes, now)
            line.valid_mask = (1 << self.geometry.line_bytes) - 1
            line.ready_at = max(line.ready_at, done)
            self.stats.load_misses += 1
            if self.obs:
                self.obs.cache(now, "dcache", "load-validity-miss",
                               address, stall=done - now)
            return done - now
        self.stats.load_misses += 1
        _line, done = self._fill(address, now, demand=True)
        if self.obs:
            self.obs.cache(now, "dcache", "load-miss", address,
                           stall=done - now)
        return done - now

    def _store_piece(self, address: int, nbytes: int, now: int) -> int:
        mask = _mask(self.geometry, address, nbytes)
        line = self.tags.lookup(address)
        if line is not None:
            stall = self._wait(line, now)
            line.valid_mask |= mask
            line.dirty_mask |= mask
            self.stats.store_hits += 1
            self.stats.cwb_writes += 1
            if self.obs:
                self.obs.cache(now, "dcache", "store-hit", address,
                               stall=stall)
            return stall
        self.stats.store_misses += 1
        if self.write_miss_policy is WriteMissPolicy.ALLOCATE:
            line = self._allocate(address, now)
            line.valid_mask = mask
            line.dirty_mask = mask
            self.stats.cwb_writes += 1
            if self.obs:
                self.obs.cache(now, "dcache", "store-allocate", address,
                               stall=0)
            return 0
        # Fetch-on-write-miss: bring the line in, then merge the write.
        line, done = self._fill(address, now, demand=True)
        line.dirty_mask |= mask
        self.stats.cwb_writes += 1
        if self.obs:
            self.obs.cache(now, "dcache", "store-miss", address,
                           stall=done - now)
        return done - now

    # -- public API -------------------------------------------------------------

    def access(self, is_load: bool, address: int, nbytes: int,
               now: int) -> int:
        """One load/store; returns stall cycles.

        Accesses spanning a line boundary are split in two (both halves
        may miss — Section 4.2); the stalls serialize.

        The aligned-hit case — a single-line access finding a resident,
        landed line with every byte valid — is short-circuited before
        the general path: it is the overwhelmingly common access in
        warmed-up kernels and needs only a tag lookup and a mask test.
        In-flight lines (``ready_at > now``) deliberately fall through
        so ``_wait`` keeps its partial-prefetch-coverage accounting.
        """
        stats = self.stats
        line_bytes = self.geometry.line_bytes
        offset = address % line_bytes
        if offset + nbytes <= line_bytes:
            if is_load:
                stats.load_accesses += 1
                line = self.tags.lookup(address)
                if line is not None and line.ready_at <= now:
                    mask = ((1 << nbytes) - 1) << offset
                    if (line.valid_mask & mask) == mask:
                        stats.load_hits += 1
                        if self.obs:
                            self.obs.cache(now, "dcache", "load-hit",
                                           address, stall=0)
                        return 0
                stall = self._load_piece(address, nbytes, now)
            else:
                stats.store_accesses += 1
                line = self.tags.lookup(address)
                if line is not None and line.ready_at <= now:
                    mask = ((1 << nbytes) - 1) << offset
                    line.valid_mask |= mask
                    line.dirty_mask |= mask
                    stats.store_hits += 1
                    stats.cwb_writes += 1
                    if self.obs:
                        self.obs.cache(now, "dcache", "store-hit",
                                       address, stall=0)
                    return 0
                stall = self._store_piece(address, nbytes, now)
            stats.stall_cycles += stall
            return stall
        # Line-crossing access: split at the boundary.
        if is_load:
            stats.load_accesses += 1
        else:
            stats.store_accesses += 1
        stats.split_accesses += 1
        split = (address // line_bytes + 1) * line_bytes
        first_bytes = split - address
        if is_load:
            stall = self._load_piece(address, first_bytes, now)
            stall += self._load_piece(
                split, nbytes - first_bytes, now + stall)
        else:
            stall = self._store_piece(address, first_bytes, now)
            stall += self._store_piece(
                split, nbytes - first_bytes, now + stall)
        stats.stall_cycles += stall
        return stall

    def prefetch_line(self, address: int, now: int) -> bool:
        """Install a prefetched line (no processor stall).

        Returns False when the line is already resident (the prefetch
        request is dropped, Section 2.3: "if the prefetch address is
        not yet present in the cache").
        """
        if self.tags.probe(address) is not None:
            return False
        self._fill(address, now, demand=False)
        if self.obs:
            self.obs.cache(now, "dcache", "prefetch-fill", address)
        return True

    def contains(self, address: int) -> bool:
        """Residency probe (no LRU update)."""
        return self.tags.probe(address) is not None

    def snapshot_state(self) -> tuple:
        """Capture tag array + statistics (resilience layer)."""
        return (self.tags.snapshot_state(), replace(self.stats))

    def restore_state(self, state: tuple) -> None:
        tags, stats = state
        self.tags.restore_state(tags)
        self.stats = replace(stats)

    def flush(self, now: int) -> int:
        """Write back all dirty data; returns bytes copied back."""
        total = 0
        for address, line in self.tags.flush():
            writeback = line.dirty_mask & line.valid_mask
            nbytes = bin(writeback).count("1")
            if nbytes:
                self.biu.copyback(address, nbytes, now)
                total += nbytes
                if self.obs:
                    self.obs.cache(now, "dcache", "copyback", address,
                                   nbytes=nbytes, flush=True)
        self.stats.copyback_bytes += total
        return total
