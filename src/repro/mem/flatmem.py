"""Flat byte-addressable memory (the functional backing store).

The timing models (:mod:`repro.mem.dcache`, :mod:`repro.mem.sdram`)
track *when* data moves; the architectural data always lives here.
Byte order is big-endian throughout, matching Table 2's operation
definitions (``rdest1[31:24] = Mem[addr]`` ...).
"""

from __future__ import annotations


class FlatMemory:
    """A fixed-size big-endian byte-addressable memory."""

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._bytes = bytearray(size)

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or address + nbytes > self.size:
            raise IndexError(
                f"access [{address:#x}, {address + nbytes:#x}) outside "
                f"memory of {self.size:#x} bytes")

    def load(self, address: int, nbytes: int) -> int:
        """Read ``nbytes`` big-endian bytes as an unsigned int."""
        self._check(address, nbytes)
        return int.from_bytes(self._bytes[address:address + nbytes], "big")

    def store(self, address: int, value: int, nbytes: int) -> None:
        """Write ``value`` as ``nbytes`` big-endian bytes."""
        self._check(address, nbytes)
        self._bytes[address:address + nbytes] = value.to_bytes(nbytes, "big")

    def snapshot_state(self) -> bytes:
        """Immutable copy of the whole memory (resilience layer)."""
        return bytes(self._bytes)

    def restore_state(self, state: bytes) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        if len(state) != self.size:
            raise ValueError(
                f"snapshot of {len(state):#x} bytes does not match "
                f"memory of {self.size:#x} bytes")
        self._bytes[:] = state

    def write_block(self, address: int, data: bytes) -> None:
        """Bulk write (workload setup)."""
        self._check(address, len(data))
        self._bytes[address:address + len(data)] = data

    def read_block(self, address: int, nbytes: int) -> bytes:
        """Bulk read (workload verification)."""
        self._check(address, nbytes)
        return bytes(self._bytes[address:address + nbytes])
