"""Instruction cache model (Table 1 / Table 6).

64 KB, 128-byte lines, 8-way set-associative, LRU.  The TM3270 uses a
*sequential* design — tags in stage I1, instruction data in stage I3 —
which halves the SRAM energy per access relative to the TM3260's
*parallel* design that reads all ways speculatively (Section 5.2).
The access mode therefore feeds the power model; the stall behaviour
(miss => refill over the BIU) is common to both.

The front end fetches 32-byte aligned chunks into the instruction
buffer (Section 3); the processor model calls :meth:`fetch_chunk` once
per newly-consumed chunk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry, TagStore

FETCH_CHUNK_BYTES = 32


class ICacheMode(enum.Enum):
    """Tag/data access organization (Table 6)."""

    SEQUENTIAL = "sequential"  # TM3270: tags, then one data way
    PARALLEL = "parallel"      # TM3260: tags and all data ways at once


@dataclass
class ICacheStats:
    """Access/miss/energy accounting."""

    chunk_fetches: int = 0
    misses: int = 0
    stall_cycles: int = 0
    #: Way-datum reads — the activity behind the sequential-vs-parallel
    #: power difference (Section 5.2).
    data_way_reads: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.chunk_fetches:
            return 1.0
        return 1.0 - self.misses / self.chunk_fetches


class InstructionCache:
    """Timing + activity model of the instruction cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        biu: BusInterfaceUnit,
        mode: ICacheMode = ICacheMode.SEQUENTIAL,
    ) -> None:
        self.geometry = geometry
        self.biu = biu
        self.mode = mode
        self.tags = TagStore(geometry)
        self.stats = ICacheStats()
        #: Optional :class:`~repro.obs.events.EventBus` (``None`` =
        #: zero-overhead, zero-event operation).
        self.obs = None

    def fetch_chunk(self, chunk_address: int, now: int) -> int:
        """Fetch one 32-byte chunk; returns stall cycles."""
        self.stats.chunk_fetches += 1
        if self.mode is ICacheMode.SEQUENTIAL:
            self.stats.data_way_reads += 1
        else:
            self.stats.data_way_reads += self.geometry.ways
        line = self.tags.lookup(chunk_address)
        if line is not None:
            if line.ready_at > now:
                stall = line.ready_at - now
                self.stats.stall_cycles += stall
                if self.obs:
                    self.obs.cache(now, "icache", "chunk-inflight-hit",
                                   chunk_address, stall=stall)
                return stall
            if self.obs:
                self.obs.cache(now, "icache", "chunk-hit",
                               chunk_address, stall=0)
            return 0
        self.stats.misses += 1
        line_address = self.geometry.line_address(chunk_address)
        new_line, _victim = self.tags.install(line_address)
        done = self.biu.instruction_refill(
            line_address, self.geometry.line_bytes, now)
        new_line.valid_mask = (1 << self.geometry.line_bytes) - 1
        new_line.ready_at = done
        stall = done - now
        self.stats.stall_cycles += stall
        if self.obs:
            self.obs.cache(now, "icache", "chunk-miss", chunk_address,
                           stall=stall)
        return stall

    def snapshot_state(self) -> tuple:
        """Capture tag array + statistics (resilience layer)."""
        return (self.tags.snapshot_state(), replace(self.stats))

    def restore_state(self, state: tuple) -> None:
        tags, stats = state
        self.tags.restore_state(tags)
        self.stats = replace(stats)
