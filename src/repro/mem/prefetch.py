"""Memory-region based data prefetching (Section 2.3, Figure 3).

The TM3270 supports four software-programmed memory regions, each
defined by three parameters::

    PFn_START_ADDR, PFn_END_ADDR, PFn_STRIDE        (n = 0..3)

When the hardware detects a *load* from an address ``A`` inside region
``x``, it requests a prefetch of ``A + PFx_STRIDE`` — provided the
target is still inside the region and not already in the cache.
Prefetched data goes directly into the (large, 4-way) data cache; no
stream buffers are needed.

The region registers live in the processor's MMIO window; programs set
them with ordinary store operations (see
:func:`repro.kernels.common.emit_prefetch_region_setup`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mem.bus import BusInterfaceUnit
from repro.mem.dcache import DataCache

NUM_REGIONS = 4

#: MMIO register layout: each region has three 4-byte registers.
REGION_STRIDE_BYTES = 16
OFFSET_START = 0
OFFSET_END = 4
OFFSET_STRIDE = 8


@dataclass
class PrefetchRegion:
    """One region descriptor; inactive while start == end."""

    start: int = 0
    end: int = 0
    stride: int = 0

    @property
    def active(self) -> bool:
        return self.end > self.start and self.stride != 0

    def covers(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass
class PrefetchStats:
    """Prefetch effectiveness counters."""

    triggers: int = 0          # loads observed inside an active region
    requests: int = 0          # prefetches enqueued
    issued: int = 0            # prefetches sent to the bus
    duplicates: int = 0        # dropped: line already cached/in flight
    out_of_region: int = 0     # dropped: target outside the region
    queue_overflows: int = 0


class RegionPrefetcher:
    """The prefetch unit: region match, request queue, bus issue."""

    QUEUE_DEPTH = 8

    def __init__(self, dcache: DataCache, biu: BusInterfaceUnit,
                 enabled: bool = True) -> None:
        self.regions = [PrefetchRegion() for _ in range(NUM_REGIONS)]
        self.dcache = dcache
        self.biu = biu
        self.enabled = enabled
        self.stats = PrefetchStats()
        #: Optional :class:`~repro.obs.events.EventBus` (``None`` =
        #: zero-overhead, zero-event operation).
        self.obs = None
        self._queue: list[int] = []
        self._inflight: set[int] = set()
        #: (index, region) of active regions — rebuilt on region
        #: register writes, so the common no-prefetch kernel pays one
        #: truth test per load instead of a scan of all four regions.
        self._active: list[tuple[int, PrefetchRegion]] = []

    def _refresh_active(self) -> None:
        self._active = [(index, region)
                        for index, region in enumerate(self.regions)
                        if region.active]

    def snapshot_state(self) -> tuple:
        """Capture region registers, queue, and stats (resilience)."""
        return ([replace(region) for region in self.regions],
                self._queue[:], set(self._inflight), replace(self.stats))

    def restore_state(self, state: tuple) -> None:
        regions, queue, inflight, stats = state
        self.regions = [replace(region) for region in regions]
        self._queue = queue[:]
        self._inflight = set(inflight)
        self.stats = replace(stats)
        self._refresh_active()

    # -- MMIO interface ---------------------------------------------------------

    def mmio_store(self, offset: int, value: int) -> None:
        """Write a region register at byte ``offset`` in the PF window."""
        index, reg = divmod(offset, REGION_STRIDE_BYTES)
        if not 0 <= index < NUM_REGIONS:
            raise ValueError(f"prefetch region {index} out of range")
        region = self.regions[index]
        if reg == OFFSET_START:
            region.start = value
        elif reg == OFFSET_END:
            region.end = value
        elif reg == OFFSET_STRIDE:
            # Strides are signed 32-bit: upward or downward patterns.
            region.stride = value - (1 << 32) if value >> 31 else value
        else:
            raise ValueError(f"unknown prefetch register offset {offset}")
        self._refresh_active()

    def mmio_load(self, offset: int) -> int:
        """Read back a region register."""
        index, reg = divmod(offset, REGION_STRIDE_BYTES)
        region = self.regions[index]
        if reg == OFFSET_START:
            return region.start
        if reg == OFFSET_END:
            return region.end
        if reg == OFFSET_STRIDE:
            return region.stride & 0xFFFFFFFF
        raise ValueError(f"unknown prefetch register offset {offset}")

    # -- hardware behaviour -------------------------------------------------------

    def observe_load(self, address: int, now: int) -> None:
        """Region-match a demand load and enqueue a prefetch request."""
        if not self.enabled or not self._active:
            return
        for index, region in self._active:
            if not region.covers(address):
                continue
            self.stats.triggers += 1
            target = address + region.stride
            if not region.covers(target):
                self.stats.out_of_region += 1
                if self.obs:
                    self.obs.prefetch(now, "out-of-region", target,
                                      region=index)
                continue
            line_address = self.dcache.geometry.line_address(target)
            if (self.dcache.contains(line_address)
                    or line_address in self._inflight):
                self.stats.duplicates += 1
                if self.obs:
                    self.obs.prefetch(now, "duplicate", line_address,
                                      region=index)
                continue
            if len(self._queue) >= self.QUEUE_DEPTH:
                self.stats.queue_overflows += 1
                if self.obs:
                    self.obs.prefetch(now, "queue-overflow",
                                      line_address, region=index)
                continue
            self._queue.append(line_address)
            self._inflight.add(line_address)
            self.stats.requests += 1
            if self.obs:
                self.obs.prefetch(now, "request", line_address,
                                  region=index)

    def tick(self, now: int) -> None:
        """Issue the oldest queued prefetch when the bus is idle."""
        if not self._queue or not self.biu.idle_at(now):
            return
        line_address = self._queue.pop(0)
        self._inflight.discard(line_address)
        if self.dcache.prefetch_line(line_address, now):
            self.stats.issued += 1
            if self.obs:
                self.obs.prefetch(now, "issue", line_address)
        else:
            self.stats.duplicates += 1
            if self.obs:
                self.obs.prefetch(now, "duplicate", line_address)
