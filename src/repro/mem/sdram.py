"""Off-chip DDR SDRAM timing model.

The paper's measurements use "a 32-bit off-chip DDR SDRAM memory
operating at 200 MHz" (Section 6).  The model works in nanoseconds so
that the same memory looks *relatively* slower to a faster processor —
the effect that separates configurations B (240 MHz) and C (350 MHz).

Timing structure per transaction:

* a base latency (controller + row activate + CAS) that depends on
  whether the access hits the currently open row of its bank;
* a transfer time of ``nbytes / peak_bandwidth`` with DDR peak
  bandwidth of ``2 * clock * bus_width`` (1.6 GB/s at 200 MHz x 32 bit).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SdramConfig:
    """DDR SDRAM timing parameters."""

    clock_mhz: float = 200.0
    bus_bytes: int = 4
    row_bytes: int = 2048
    banks: int = 4
    row_miss_latency_ns: float = 60.0
    row_hit_latency_ns: float = 25.0

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """DDR peak bandwidth: two transfers per clock."""
        return 2.0 * self.clock_mhz * 1e-3 * self.bus_bytes


@dataclass
class SdramStats:
    """Traffic and locality counters."""

    transactions: int = 0
    bytes_transferred: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_ns: float = 0.0


class Sdram:
    """A single-channel DDR SDRAM with per-bank open-row tracking."""

    def __init__(self, config: SdramConfig | None = None) -> None:
        self.config = config or SdramConfig()
        self._open_rows: dict[int, int] = {}
        self.stats = SdramStats()

    def snapshot_state(self) -> tuple:
        """Capture open-row state + statistics (resilience layer)."""
        return (dict(self._open_rows), replace(self.stats))

    def restore_state(self, state: tuple) -> None:
        open_rows, stats = state
        self._open_rows = dict(open_rows)
        self.stats = replace(stats)

    def _bank_and_row(self, address: int) -> tuple[int, int]:
        row = address // self.config.row_bytes
        return row % self.config.banks, row

    def transaction_ns(self, address: int, nbytes: int) -> float:
        """Duration of one transaction starting now; updates row state."""
        config = self.config
        bank, row = self._bank_and_row(address)
        if self._open_rows.get(bank) == row:
            latency = config.row_hit_latency_ns
            self.stats.row_hits += 1
        else:
            latency = config.row_miss_latency_ns
            self.stats.row_misses += 1
            self._open_rows[bank] = row
        duration = latency + nbytes / config.bandwidth_bytes_per_ns
        self.stats.transactions += 1
        self.stats.bytes_transferred += nbytes
        self.stats.busy_ns += duration
        return duration
