"""Unified observability: event tracing and metrics export.

Three pieces:

* :mod:`repro.obs.events` — a structured event bus; instrumented
  components emit typed, cycle-stamped events through no-op-by-default
  hooks (``component.obs`` is ``None`` unless a bus is attached);
* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram
  registry unifying the per-module stat dataclasses under stable
  metric names;
* :mod:`repro.obs.export` — exporters: Chrome ``trace_event`` JSON for
  ``chrome://tracing`` and the ``BENCH_*.json`` perf-trajectory schema.
"""

from repro.obs.events import (
    CAT_CABAC,
    CAT_DCACHE,
    CAT_ICACHE,
    CAT_PIPELINE,
    CAT_PREFETCH,
    CATEGORIES,
    Event,
    EventBus,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    bench_record,
    chrome_trace,
    read_bench,
    validate_bench_file,
    validate_bench_record,
    write_bench,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    from_run_stats,
    trace_metrics,
)

__all__ = [
    "BENCH_SCHEMA",
    "CATEGORIES",
    "CAT_CABAC",
    "CAT_DCACHE",
    "CAT_ICACHE",
    "CAT_PIPELINE",
    "CAT_PREFETCH",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bench_record",
    "chrome_trace",
    "from_run_stats",
    "read_bench",
    "trace_metrics",
    "validate_bench_file",
    "validate_bench_record",
    "write_bench",
    "write_chrome_trace",
]
