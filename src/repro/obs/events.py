"""Structured event bus for simulator observability.

The paper reasons about the TM3270 through measured behaviour —
pipeline occupancy, cache hits/misses, prefetch coverage, CABAC
renormalization rates — so the simulator needs a single emission path
for that telemetry.  Every instrumented component (processor front
end, data/instruction caches, prefetch unit, CABAC engines) holds an
``obs`` attribute that is ``None`` by default; emission sites are
guarded by a plain ``if self.obs:`` so the un-instrumented hot path
costs one attribute read and a falsy check, and produces **zero**
events.

Events are cycle-stamped and categorized; :mod:`repro.obs.export`
turns a captured stream into Chrome ``trace_event`` JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Event categories — one per instrumented subsystem.
CAT_PIPELINE = "pipeline"
CAT_DCACHE = "dcache"
CAT_ICACHE = "icache"
CAT_PREFETCH = "prefetch"
CAT_CABAC = "cabac"
CAT_VERIFY = "verify"
CAT_PARALLEL = "parallel"
CAT_FAULT = "fault"
CAT_TRACE = "trace"

CATEGORIES = (CAT_PIPELINE, CAT_DCACHE, CAT_ICACHE, CAT_PREFETCH,
              CAT_CABAC, CAT_VERIFY, CAT_PARALLEL, CAT_FAULT,
              CAT_TRACE)


@dataclass(frozen=True)
class Event:
    """One telemetry event.

    ``ts`` is a processor cycle (CABAC engines, which have no cycle
    clock, stamp symbol indices instead).  ``dur`` is a cycle span for
    duration events (0 = instant).  ``track`` names the timeline lane
    the event renders on; ``args`` carries event-specific payload.
    """

    ts: int
    cat: str
    name: str
    dur: int = 0
    track: str = ""
    args: dict = field(default_factory=dict)


class EventBus:
    """Append-only event collector with a hard capacity bound.

    The bus is deliberately tiny: components call :meth:`emit` (or a
    typed helper) and tests/exporters read :attr:`events`.  A disabled
    bus drops everything; a full bus drops and counts overflow so a
    long run cannot exhaust memory.
    """

    __slots__ = ("events", "enabled", "capacity", "dropped",
                 "stage_detail")

    def __init__(self, capacity: int = 1_000_000, enabled: bool = True,
                 stage_detail: bool = False) -> None:
        self.events: list[Event] = []
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        #: When set, the processor additionally emits per-instruction
        #: pipeline *stage* spans (I1..W) — detailed, heavy tracing.
        self.stage_detail = stage_detail

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # ``if self.obs:`` at emission sites must short-circuit on a
        # disabled bus as cheaply as on a missing one.
        return self.enabled

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- emission -----------------------------------------------------------

    def emit(self, ts: int, cat: str, name: str, dur: int = 0,
             track: str = "", **args) -> None:
        """Record one event (dropped when disabled or over capacity)."""
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(Event(ts, cat, name, dur, track, args))

    # -- typed helpers ------------------------------------------------------
    # One per event family, so emission sites stay one-liners and the
    # track/category vocabulary stays consistent across components.

    def stage(self, ts: int, stage: str, dur: int = 1, *,
              instr: int | None = None) -> None:
        """Pipeline stage occupancy span (Figure 4 overlay)."""
        self.emit(ts, CAT_PIPELINE, stage, dur, track=f"stage:{stage}",
                  instr=instr)

    def instruction(self, ts: int, dur: int, *, index: int,
                    issued_ops: int, executed_ops: int) -> None:
        """One VLIW instruction's issue-to-retire span."""
        self.emit(ts, CAT_PIPELINE, "instr", dur, track="issue",
                  index=index, issued_ops=issued_ops,
                  executed_ops=executed_ops)

    def stall(self, ts: int, cause: str, cycles: int) -> None:
        """Whole-pipeline stall attributed to ``cause``."""
        if cycles:
            self.emit(ts, CAT_PIPELINE, f"stall:{cause}", cycles,
                      track="stalls", cause=cause)

    def cache(self, ts: int, cache: str, kind: str, address: int,
              **extra) -> None:
        """Cache event: hit/miss/validity-miss/evict/copyback/fill."""
        cat = CAT_DCACHE if cache == "dcache" else CAT_ICACHE
        self.emit(ts, cat, kind, track=cache, address=address, **extra)

    def prefetch(self, ts: int, kind: str, address: int, **extra) -> None:
        """Prefetch-unit event: trigger/request/issue/drop."""
        self.emit(ts, CAT_PREFETCH, kind, track="prefetch",
                  address=address, **extra)

    def cabac(self, ts: int, kind: str, **extra) -> None:
        """CABAC engine event (ts = symbol index)."""
        self.emit(ts, CAT_CABAC, kind, track="cabac", **extra)

    def diagnostic(self, ts: int, *, rule: str, severity: str,
                   **extra) -> None:
        """Static-verifier finding (ts = instruction index)."""
        self.emit(ts, CAT_VERIFY, rule, track="verify",
                  severity=severity, **extra)

    def fault(self, ts: int, kind: str, *, structure: str,
              **extra) -> None:
        """Fault-injection lifecycle event (ts = processor cycle):
        inject/detect/rollback/correct/vanish/outcome."""
        self.emit(ts, CAT_FAULT, kind, track="fault",
                  structure=structure, **extra)

    def trace_tier(self, ts: int, kind: str, *, head: int,
                   **extra) -> None:
        """Trace-engine lifecycle event (ts = processor cycle):
        compile/invalidate.  Meta-telemetry about the simulator's own
        compilation tier — never part of the machine event stream, so
        lockstep comparisons filter on :data:`CAT_TRACE`."""
        self.emit(ts, CAT_TRACE, kind, track="trace", head=head, **extra)

    def parallel(self, ts: int, kind: str, *, job_id: str,
                 worker: int, **extra) -> None:
        """Parallel-engine lifecycle event (ts = engine microseconds;
        telemetry only — never part of the deterministic merged
        stream)."""
        self.emit(ts, CAT_PARALLEL, kind, track=f"worker:{worker}",
                  job_id=job_id, worker=worker, **extra)

    # -- inspection ---------------------------------------------------------

    def by_category(self, cat: str) -> list[Event]:
        return [event for event in self.events if event.cat == cat]

    def counts(self) -> dict[str, int]:
        """Event counts per (category, name) — handy in tests."""
        out: dict[str, int] = {}
        for event in self.events:
            key = f"{event.cat}/{event.name}"
            out[key] = out.get(key, 0) + 1
        return out
