"""Exporters: Chrome ``trace_event`` timelines and ``BENCH_*.json``.

Two machine-readable views of a run:

* :func:`chrome_trace` — converts a captured
  :class:`~repro.obs.events.EventBus` stream into the Chrome trace
  format (load the file in ``chrome://tracing`` or https://ui.perfetto.dev)
  with one timeline lane per event track;
* :func:`bench_record` / :func:`write_bench` — the stable benchmark
  schema (``tm3270.bench/1``) that seeds the perf trajectory.  Every
  record carries kernel, config, cycles, OPI/CPI, stall decomposition,
  and cache hit rates; :func:`validate_bench_record` is the executable
  schema both the writers and the tests go through.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.obs.events import Event, EventBus

# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

#: One trace process for the whole simulator.
TRACE_PID = 0


def _microseconds(cycles: int, freq_mhz: float | None) -> float:
    # At freq MHz, one cycle is 1/freq microseconds; without a known
    # frequency the timeline renders in raw cycles (1 cycle = 1 "us").
    if freq_mhz:
        return cycles / freq_mhz
    return float(cycles)


def chrome_trace(bus: EventBus | list[Event], *,
                 freq_mhz: float | None = None) -> dict:
    """Build a Chrome ``trace_event`` JSON object from captured events.

    Events keep their emission order within a timestamp (the exporter
    sorts stably by ``ts``), so causally ordered same-cycle events stay
    causally ordered in the viewer.
    """
    events = bus.events if isinstance(bus, EventBus) else list(bus)
    tracks: dict[str, int] = {}
    trace_events: list[dict] = []
    for event in sorted(events, key=lambda candidate: candidate.ts):
        track = event.track or event.cat
        tid = tracks.setdefault(track, len(tracks))
        record = {
            "name": event.name,
            "cat": event.cat,
            "ts": _microseconds(event.ts, freq_mhz),
            "pid": TRACE_PID,
            "tid": tid,
            "args": {key: value for key, value in event.args.items()
                     if value is not None},
        }
        if event.dur:
            record["ph"] = "X"
            record["dur"] = _microseconds(event.dur, freq_mhz)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    metadata = [
        {"ph": "M", "ts": 0, "pid": TRACE_PID, "tid": tid,
         "name": "thread_name", "args": {"name": track}}
        for track, tid in tracks.items()
    ]
    metadata.append(
        {"ph": "M", "ts": 0, "pid": TRACE_PID, "tid": 0,
         "name": "process_name", "args": {"name": "tm3270-sim"}})
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "freq_mhz": freq_mhz,
            "dropped_events": (bus.dropped
                               if isinstance(bus, EventBus) else 0),
        },
    }


def write_chrome_trace(path, bus: EventBus | list[Event], *,
                       freq_mhz: float | None = None) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the object."""
    trace = chrome_trace(bus, freq_mhz=freq_mhz)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
    return trace


# ---------------------------------------------------------------------------
# BENCH_*.json
# ---------------------------------------------------------------------------

BENCH_SCHEMA = "tm3270.bench/1"

#: Field -> type of one bench record (the documented schema; optional
#: component sections are dicts of numeric values).
_REQUIRED_FIELDS = {
    "kernel": str,
    "config": str,
    "freq_mhz": (int, float),
    "instructions": int,
    "cycles": int,
    "ops_issued": int,
    "ops_executed": int,
    "opi": (int, float),
    "cpi": (int, float),
    "seconds": (int, float),
    "stall_cycles": dict,     # {"dcache": int, "icache": int}
    "hit_rates": dict,        # {"dcache_load": float, "icache": float}
}

_OPTIONAL_SECTIONS = ("dcache", "icache", "biu", "prefetch")


def bench_record(stats) -> dict:
    """One run's :class:`~repro.core.stats.RunStats` as a bench record."""
    record = {
        "kernel": stats.program_name,
        "config": stats.config_name,
        "freq_mhz": stats.freq_mhz,
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "ops_issued": stats.ops_issued,
        "ops_executed": stats.ops_executed,
        "opi": stats.opi,
        "cpi": stats.cpi,
        "seconds": stats.seconds,
        "stall_cycles": {
            "dcache": stats.dcache_stall_cycles,
            "icache": stats.icache_stall_cycles,
        },
        "hit_rates": {},
    }
    dcache = getattr(stats, "dcache", None)
    if dcache is not None:
        record["hit_rates"]["dcache_load"] = dcache.load_hit_rate
        record["dcache"] = {
            "load_hits": dcache.load_hits,
            "load_misses": dcache.load_misses,
            "store_hits": dcache.store_hits,
            "store_misses": dcache.store_misses,
            "validity_misses": dcache.load_validity_misses,
            "copyback_bytes": dcache.copyback_bytes,
        }
    icache = getattr(stats, "icache", None)
    if icache is not None:
        record["hit_rates"]["icache"] = icache.hit_rate
        record["icache"] = {
            "chunk_fetches": icache.chunk_fetches,
            "misses": icache.misses,
        }
    biu = getattr(stats, "biu", None)
    if biu is not None:
        record["biu"] = {
            "refill_bytes": biu.refill_bytes,
            "copyback_bytes": biu.copyback_bytes,
            "prefetch_bytes": biu.prefetch_bytes,
            "ifetch_bytes": biu.ifetch_bytes,
        }
    prefetch = getattr(stats, "prefetch", None)
    if prefetch is not None:
        record["prefetch"] = {
            "triggers": prefetch.triggers,
            "requests": prefetch.requests,
            "issued": prefetch.issued,
            "duplicates": prefetch.duplicates,
        }
    validate_bench_record(record)
    return record


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` conforms to the schema."""
    if not isinstance(record, dict):
        raise ValueError("bench record must be an object")
    for name, types in _REQUIRED_FIELDS.items():
        if name not in record:
            raise ValueError(f"bench record missing field {name!r}")
        if not isinstance(record[name], types):
            raise ValueError(
                f"bench field {name!r} has type "
                f"{type(record[name]).__name__}")
    for key, value in record["stall_cycles"].items():
        if not isinstance(value, int):
            raise ValueError(f"stall_cycles[{key!r}] must be an int")
    for key, value in record["hit_rates"].items():
        if not isinstance(value, (int, float)) or not 0 <= value <= 1:
            raise ValueError(f"hit_rates[{key!r}] must be in [0, 1]")
    for section in _OPTIONAL_SECTIONS:
        if section in record and not all(
                isinstance(value, (int, float))
                for value in record[section].values()):
            raise ValueError(f"section {section!r} must be numeric")


def validate_bench_file(document: dict) -> None:
    """Validate a whole ``BENCH_*.json`` document."""
    if document.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"expected schema {BENCH_SCHEMA!r}, "
            f"got {document.get('schema')!r}")
    records = document.get("records")
    if not isinstance(records, list):
        raise ValueError("bench document must carry a 'records' list")
    for record in records:
        validate_bench_record(record)


def write_bench(path, records: list[dict]) -> dict:
    """Write a bench document atomically; returns the document."""
    document = {"schema": BENCH_SCHEMA, "records": records}
    validate_bench_file(document)
    directory = os.path.dirname(os.fspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return document


def read_bench(path) -> dict:
    """Load and validate a bench document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_bench_file(document)
    return document
