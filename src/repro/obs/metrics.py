"""Metrics registry: named counters/gauges/histograms with labels.

The simulator's raw counters live where the behaviour lives — in
``DCacheStats``, ``ICacheStats``, ``BiuStats``, ``PrefetchStats``,
``SdramStats`` and :class:`~repro.core.stats.RunStats` — which is right
for the models but leaves every consumer (power model, evaluation
drivers, BENCH export) reinventing the aggregation.  This module is the
unified read side: a Prometheus-style registry with stable metric
names, plus :func:`from_run_stats`, which projects one finished run
into it.  The registry is the contract later perf PRs are pinned
against: tests assert registry values equal the per-module counters,
so a refactor cannot silently change counter semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

_TYPES = ("counter", "gauge", "histogram")


def _label_key(labelnames: tuple[str, ...],
               labelvalues: tuple) -> tuple:
    if len(labelnames) != len(labelvalues):
        raise ValueError(
            f"expected labels {labelnames}, got {labelvalues}")
    return tuple(str(value) for value in labelvalues)


@dataclass
class Sample:
    """One exported time-series point."""

    name: str
    labels: dict
    value: float


class Metric:
    """Base: a named family of labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, object] = {}

    def labels(self, *labelvalues):
        """Child for one label-value combination (created on demand)."""
        key = _label_key(self.labelnames, labelvalues)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def samples(self) -> list[Sample]:
        out = []
        for key, child in sorted(self._children.items()):
            labels = dict(zip(self.labelnames, key))
            out.extend(child._samples(self.name, labels))
        return out


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _samples(self, name, labels):
        return [Sample(name, labels, self.value)]


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def inc(self, amount: int = 1) -> None:
        self._unlabelled().inc(amount)

    @property
    def value(self):
        return self._unlabelled().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _samples(self, name, labels):
        return [Sample(name, labels, self.value)]


class Gauge(Metric):
    """Point-in-time value (rates, ratios, derived figures)."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    @property
    def value(self):
        return self._unlabelled().value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +inf overflow bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def _samples(self, name, labels):
        out = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            out.append(Sample(f"{name}_bucket",
                              {**labels, "le": str(bound)}, cumulative))
        out.append(Sample(f"{name}_bucket", {**labels, "le": "+inf"},
                          self.count))
        out.append(Sample(f"{name}_sum", dict(labels), self.total))
        out.append(Sample(f"{name}_count", dict(labels), self.count))
        return out


DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram(Metric):
    """Distribution with fixed cumulative buckets."""

    kind = "histogram"

    def __init__(self, name, help, labelnames=(),
                 buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)


class MetricsRegistry:
    """Namespace of metrics; names are unique, re-registration must
    agree exactly (type, help, and label names)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _register(self, cls, name, help, labelnames, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)
                    or existing.help != help):
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different type, help, or label set")
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def collect(self) -> list[Sample]:
        """All samples, sorted by metric name (stable export order)."""
        out: list[Sample] = []
        for name in self.names():
            out.extend(self._metrics[name].samples())
        return out

    def as_dict(self) -> dict:
        """``{name: {labels-tuple-or-(): value}}`` — the test-friendly
        flat view."""
        out: dict = {}
        for sample in self.collect():
            family = out.setdefault(sample.name, {})
            key = tuple(sorted(sample.labels.items()))
            if key in family:
                raise ValueError(
                    f"duplicate sample for {sample.name} labels "
                    f"{sample.labels}")
            family[key] = sample.value
        return out

    def value(self, name: str, **labels) -> float:
        """Single sample lookup by name and labels."""
        metric = self._metrics[name]
        values = tuple(labels[label] for label in metric.labelnames)
        return metric.labels(*values).value


# ---------------------------------------------------------------------------
# Projection of one finished run into the unified namespace.
# ---------------------------------------------------------------------------

def from_run_stats(stats, registry: MetricsRegistry | None = None,
                   ) -> MetricsRegistry:
    """Project a :class:`~repro.core.stats.RunStats` (with its attached
    component stats) into a registry under stable metric names.

    Works by duck typing so :mod:`repro.obs` stays import-free of the
    core models.  Missing component stats are simply skipped (a run
    that never touched the prefetcher exports no prefetch series).
    """
    registry = registry or MetricsRegistry()

    core = registry.counter(
        "core_events_total", "core pipeline counters", ("event",))
    core.labels("instructions").inc(stats.instructions)
    core.labels("cycles").inc(stats.cycles)
    core.labels("jumps_taken").inc(stats.jumps_taken)
    core.labels("mmio_accesses").inc(stats.mmio_accesses)
    core.labels("code_bytes_fetched").inc(stats.code_bytes_fetched)

    ops = registry.counter(
        "core_ops_total", "operations per disposition", ("kind",))
    ops.labels("issued").inc(stats.ops_issued)
    ops.labels("executed").inc(stats.ops_executed)

    stalls = registry.counter(
        "core_stall_cycles_total", "stall cycles by unit", ("unit",))
    stalls.labels("dcache").inc(stats.dcache_stall_cycles)
    stalls.labels("icache").inc(stats.icache_stall_cycles)

    fu = registry.counter(
        "core_fu_ops_total", "executed ops per functional-unit class",
        ("fu",))
    for unit, count in sorted(stats.fu_counts.items(),
                              key=lambda item: str(item[0])):
        name = getattr(unit, "value", str(unit))
        fu.labels(name).inc(count)

    regfile = registry.counter(
        "core_regfile_accesses_total", "register-file port traffic",
        ("port",))
    regfile.labels("read").inc(stats.regfile_reads)
    regfile.labels("write").inc(stats.regfile_writes)
    regfile.labels("guard").inc(stats.guard_reads)

    perf = registry.gauge(
        "perf_ratio", "derived per-run performance ratios", ("metric",))
    perf.labels("opi").set(stats.opi)
    perf.labels("cpi").set(stats.cpi)
    perf.labels("stall_fraction").set(stats.stall_fraction)
    registry.gauge("perf_seconds",
                   "wall-clock seconds at the configured frequency"
                   ).set(stats.seconds)

    dcache = getattr(stats, "dcache", None)
    if dcache is not None:
        accesses = registry.counter(
            "dcache_accesses_total", "data-cache accesses",
            ("op", "outcome"))
        accesses.labels("load", "hit").inc(dcache.load_hits)
        accesses.labels("load", "miss").inc(dcache.load_misses)
        accesses.labels("store", "hit").inc(dcache.store_hits)
        accesses.labels("store", "miss").inc(dcache.store_misses)
        extra = registry.counter(
            "dcache_events_total", "data-cache secondary events",
            ("event",))
        extra.labels("validity_miss").inc(dcache.load_validity_misses)
        extra.labels("split_access").inc(dcache.split_accesses)
        extra.labels("cwb_write").inc(dcache.cwb_writes)
        extra.labels("prefetch_partial_hit").inc(
            dcache.prefetch_partial_hits)
        registry.counter("dcache_stall_cycles_total",
                         "processor stalls charged to the data cache"
                         ).inc(dcache.stall_cycles)
        registry.counter("dcache_copyback_bytes_total",
                         "validated dirty bytes written back"
                         ).inc(dcache.copyback_bytes)
        registry.gauge("dcache_load_hit_rate",
                       "load hits / load accesses"
                       ).set(dcache.load_hit_rate)

    icache = getattr(stats, "icache", None)
    if icache is not None:
        ic = registry.counter(
            "icache_events_total", "instruction-cache counters",
            ("event",))
        ic.labels("chunk_fetches").inc(icache.chunk_fetches)
        ic.labels("misses").inc(icache.misses)
        ic.labels("data_way_reads").inc(icache.data_way_reads)
        registry.counter("icache_stall_cycles_total",
                         "front-end stalls on instruction fetch"
                         ).inc(icache.stall_cycles)
        registry.gauge("icache_hit_rate", "chunk-fetch hit rate"
                       ).set(icache.hit_rate)

    biu = getattr(stats, "biu", None)
    if biu is not None:
        bytes_total = registry.counter(
            "biu_bytes_total", "bus traffic by category", ("kind",))
        bytes_total.labels("refill").inc(biu.refill_bytes)
        bytes_total.labels("copyback").inc(biu.copyback_bytes)
        bytes_total.labels("prefetch").inc(biu.prefetch_bytes)
        bytes_total.labels("ifetch").inc(biu.ifetch_bytes)
        registry.counter("biu_transactions_total",
                         "bus transactions").inc(biu.transactions)

    prefetch = getattr(stats, "prefetch", None)
    if prefetch is not None:
        pf = registry.counter(
            "prefetch_events_total", "region-prefetcher outcomes",
            ("event",))
        pf.labels("trigger").inc(prefetch.triggers)
        pf.labels("request").inc(prefetch.requests)
        pf.labels("issued").inc(prefetch.issued)
        pf.labels("duplicate").inc(prefetch.duplicates)
        pf.labels("out_of_region").inc(prefetch.out_of_region)
        pf.labels("queue_overflow").inc(prefetch.queue_overflows)

    return registry


def trace_metrics(trace, registry: MetricsRegistry | None = None,
                  ) -> MetricsRegistry:
    """Project trace-tier telemetry (``RunResult.trace``, a
    ``core.trace.TraceStats``) into a registry under the ``trace_``
    prefix.

    Duck-typed like :func:`from_run_stats` so :mod:`repro.obs` stays
    import-free of the core models.  Per-region detail (the
    ``regions`` list filled by ``TraceRuntime.warm``/``finalize``)
    feeds a region-length histogram and the compile-time counter;
    aggregate counters come straight off the stats object.
    """
    registry = registry or MetricsRegistry()

    events = registry.counter(
        "trace_events_total", "trace-tier lifecycle counters",
        ("event",))
    events.labels("detected").inc(trace.detected)
    events.labels("compiled").inc(trace.compiled)
    events.labels("activations").inc(trace.activations)
    events.labels("enters").inc(trace.enters)
    events.labels("entry_blocked").inc(trace.entry_blocked)
    events.labels("monitor_blocks").inc(trace.monitor_blocks)
    events.labels("invalidations").inc(trace.invalidations)
    registry.counter(
        "trace_compiled_instructions_total",
        "instructions retired inside compiled regions"
        ).inc(trace.compiled_instructions)

    commits = registry.counter(
        "trace_region_writes_total",
        "region writes by commit-scheduling disposition", ("kind",))
    commits.labels("static").inc(trace.static_commits)
    commits.labels("escaped").inc(trace.escaped_commits)
    commits.labels("dynamic").inc(trace.dynamic_writes)

    registry.counter(
        "trace_compile_seconds_total",
        "wall time spent generating + compiling region code"
        ).inc(trace.compile_ns / 1e9)

    regions = getattr(trace, "regions", None)
    if regions:
        lengths = registry.histogram(
            "trace_region_length_instructions",
            "compiled-region lengths at activation",
            buckets=(2, 4, 8, 16, 32, 64, 128))
        for entry in regions:
            lengths.observe(entry["length"])

    return registry
