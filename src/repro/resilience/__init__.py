"""Soft-error resilience: fault injection, detection, and recovery.

The TM3270 is a consumer-silicon media processor; its SRAM arrays
(register file, cache data and tag arrays, instruction buffer) are the
structures soft errors actually strike.  This package measures what a
particle strike *does* to a Table 5 kernel under each protection
choice:

* :mod:`repro.resilience.faults` — deterministic, seeded single-bit
  fault models for each storage structure;
* :mod:`repro.resilience.harness` — runs one kernel with one injected
  fault under a protection model (none / parity-detect / SEC-DED ECC),
  using :meth:`~repro.core.processor.Processor.snapshot` checkpoints
  and rollback for parity recovery, and classifies the outcome;
* :mod:`repro.resilience.campaign` — whole injection campaigns as
  :class:`~repro.eval.jobs.Job` sweeps through the parallel engine,
  with ``faults`` metrics, ``CAT_FAULT`` events, and
  ``BENCH_fault_tolerance.json`` aggregation.

``python -m repro.resilience`` runs the smoke campaign.
"""

from repro.resilience.faults import (
    PROTECTIONS,
    STRUCTURES,
    make_fault,
)
from repro.resilience.harness import (
    OUTCOMES,
    GoldenRun,
    InjectionResult,
    golden_run,
    run_injection,
)
from repro.resilience.campaign import (
    campaign_jobs,
    fault_metrics,
    run_injection_job,
)

__all__ = [
    "PROTECTIONS", "STRUCTURES", "make_fault",
    "OUTCOMES", "GoldenRun", "InjectionResult", "golden_run",
    "run_injection",
    "campaign_jobs", "fault_metrics", "run_injection_job",
]
