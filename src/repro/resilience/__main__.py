"""CLI: run an injection campaign, optionally against golden digests.

``python -m repro.resilience`` runs the default smoke campaign through
the parallel engine and writes ``BENCH_fault_tolerance.json``;
``--check`` compares the merged sweep's digests against the pinned
golden document (``tests/golden/fault_campaign.json``), and
``--write-golden`` regenerates it (``make inject-golden``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.eval.parallel import (
    check_conformance,
    golden_document,
    run_jobs,
)
from repro.obs.export import write_bench
from repro.resilience.campaign import (
    DEFAULT_BASE_SEED,
    DEFAULT_COUNT,
    campaign_jobs,
    fault_metrics,
)
from repro.resilience.faults import PROTECTIONS, STRUCTURES


def default_golden_path() -> pathlib.Path:
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "tests" / "golden" / "fault_campaign.json"


def default_bench_path() -> pathlib.Path:
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "benchmarks" / "results" / "BENCH_fault_tolerance.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Soft-error fault-injection campaigns: seeded bit "
                    "flips in regfile/dcache/ibuf under none/parity/ecc "
                    "protection, with checkpoint-rollback recovery and "
                    "SDC classification.")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated kernel names "
                             "(default: smoke set)")
    parser.add_argument("--configs", default=None,
                        help="comma-separated config names (default: D)")
    parser.add_argument("--structures", default=None,
                        help=f"comma-separated from {STRUCTURES}")
    parser.add_argument("--protections", default=None,
                        help=f"comma-separated from {PROTECTIONS}")
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="injections per campaign cell")
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                        help="campaign base seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (merge is identical "
                             "at any level)")
    parser.add_argument("--bench-out", default=None,
                        help="bench document path (default: "
                             "benchmarks/results/BENCH_fault_tolerance"
                             ".json)")
    parser.add_argument("--check", action="store_true",
                        help="compare digests against the pinned golden")
    parser.add_argument("--write-golden", action="store_true",
                        help="regenerate the pinned golden digests")
    parser.add_argument("--golden-path", default=None,
                        help="override the golden document path")
    parser.add_argument("--metrics", action="store_true",
                        help="print the faults metric group")
    args = parser.parse_args(argv)

    def split(value):
        return value.split(",") if value else None

    jobs = campaign_jobs(
        kernels=split(args.kernels), configs=split(args.configs),
        structures=split(args.structures),
        protections=split(args.protections),
        count=args.count, base_seed=args.seed)
    merged = run_jobs(jobs, workers=args.jobs)
    for line in merged.summaries:
        print(line)
    if not merged.ok:
        for failure in merged.failures:
            print(f"FAILED {failure.job.job_id}: {failure.error}",
                  file=sys.stderr)
        return 1

    golden_path = (pathlib.Path(args.golden_path) if args.golden_path
                   else default_golden_path())
    if args.write_golden:
        document = golden_document(merged, jobs)
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        with open(golden_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote golden digests to {golden_path}")
    if args.check:
        problems = check_conformance(merged, jobs,
                                     golden_path=golden_path)
        if problems:
            for problem in problems:
                print(f"GOLDEN MISMATCH: {problem}", file=sys.stderr)
            return 1
        print(f"golden digests match ({golden_path.name})")

    bench_path = (pathlib.Path(args.bench_out) if args.bench_out
                  else default_bench_path())
    write_bench(bench_path, merged.records)
    print(f"wrote {len(merged.records)} records to {bench_path}")

    if args.metrics:
        registry = fault_metrics(merged.records)
        for sample in registry.collect():
            labels = ",".join(f"{key}={value}" for key, value
                              in sorted(sample.labels.items()))
            print(f"{sample.name}{{{labels}}} {sample.value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
