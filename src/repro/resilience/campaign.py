"""Injection campaigns: fault sweeps as parallel-engine job graphs.

A campaign point is one ``kernel x config x structure x protection``
cell; each cell runs ``count`` seeded injections (plus the shared
golden run) inside one picklable :class:`~repro.eval.jobs.Job`, so the
sweep shards across the PR 4 worker pool and merges byte-identically
at any ``--jobs`` level.

Per-run seeds are derived by hashing everything *except* the
protection model, so the same physical faults replay across the
``none``/``parity``/``ecc`` columns — the per-seed outcome tables in
``BENCH_fault_tolerance.json`` therefore show directly which SDC and
crash runs a protection choice converts into detected-recovered or
detected-corrected ones.
"""

from __future__ import annotations

import hashlib

from repro.eval.jobs import Job, JobOutput
from repro.obs.events import EventBus
from repro.obs.export import bench_record
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import STRUCTURES
from repro.resilience.harness import (
    OUTCOMES,
    WATCHDOG_FACTOR,
    WATCHDOG_SLACK,
    golden_run,
    run_injection,
)

#: Default campaign shape (the smoke campaign `make inject` runs):
#: two kernels with very different memory behaviour, the paper's
#: full TM3270 configuration, every structure, bare vs parity.
DEFAULT_KERNELS = ("memset", "filmdet")
DEFAULT_CONFIGS = ("D",)
DEFAULT_PROTECTIONS = ("none", "parity")
DEFAULT_COUNT = 6
DEFAULT_BASE_SEED = 1234


def derive_seed(base_seed: int, kernel: str, config: str,
                structure: str, index: int) -> int:
    """Per-run seed, protection-independent (see module docstring)."""
    text = f"{base_seed}/{kernel}/{config}/{structure}/{index}"
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def run_injection_job(kernel: str, config: str, structure: str,
                      protection: str, count: int = DEFAULT_COUNT,
                      base_seed: int = DEFAULT_BASE_SEED,
                      checkpoint_every: int | None = None,
                      trace: bool = True) -> JobOutput:
    """One campaign cell: ``count`` seeded injections, aggregated.

    Returns a single bench record: the golden run's statistics plus a
    ``fault_tolerance`` section (outcome counts and rates) and a
    ``fault_runs`` list (per-seed outcomes, the raw material of the
    protection-conversion evidence).  With ``trace`` the ``CAT_FAULT``
    lifecycle events of every run ride along, each run offset past the
    previous one's watchdog horizon so stamps never collide.
    """
    golden = golden_run(kernel, config)
    bus = EventBus() if trace else None
    span = golden.cycles * WATCHDOG_FACTOR + WATCHDOG_SLACK + 1

    runs = []
    for index in range(count):
        seed = derive_seed(base_seed, kernel, config, structure, index)
        runs.append(run_injection(
            kernel, config, structure, protection, seed,
            checkpoint_every=checkpoint_every, obs=bus,
            ts_base=index * span))

    counts = {outcome: 0 for outcome in OUTCOMES}
    for run in runs:
        counts[run.outcome] += 1
    detected = (counts["detected-corrected"]
                + counts["detected-recovered"])
    recovery_total = sum(run.recovery_cycles for run in runs)

    # The golden stats make the record schema-complete; the fault
    # section carries the campaign's own numbers.
    record = bench_record(golden.stats)
    record["structure"] = structure
    record["protection"] = protection
    record["fault_tolerance"] = {
        "injections": count,
        **{outcome.replace("-", "_"): counts[outcome]
           for outcome in OUTCOMES},
        "sdc_rate": counts["sdc"] / count if count else 0.0,
        "detection_rate": detected / count if count else 0.0,
        "recovery_cycles_total": recovery_total,
        "recovery_overhead": (recovery_total
                              / (count * golden.cycles)
                              if count and golden.cycles else 0.0),
    }
    record["fault_runs"] = [run.as_record() for run in runs]

    summary = (
        f"fault {kernel}/{config} {structure}/{protection}: "
        f"{count} runs — masked {counts['masked']}, "
        f"corrected {counts['detected-corrected']}, "
        f"recovered {counts['detected-recovered']}, "
        f"sdc {counts['sdc']}, crash {counts['crash']}, "
        f"hang {counts['hang']}; "
        f"recovery overhead "
        f"{record['fault_tolerance']['recovery_overhead']:.1%}")
    return JobOutput(records=[record],
                     events=list(bus.events) if bus else [],
                     summaries=[summary])


def campaign_jobs(kernels=None, configs=None, structures=None,
                  protections=None, count: int = DEFAULT_COUNT,
                  base_seed: int = DEFAULT_BASE_SEED,
                  checkpoint_every: int | None = None,
                  trace: bool = True) -> list[Job]:
    """Enumerate a campaign as jobs, in deterministic sweep order."""
    kernels = list(kernels or DEFAULT_KERNELS)
    configs = list(configs or DEFAULT_CONFIGS)
    structures = list(structures or STRUCTURES)
    protections = list(protections or DEFAULT_PROTECTIONS)
    jobs = []
    for kernel in kernels:
        for config in configs:
            for structure in structures:
                for protection in protections:
                    jobs.append(Job(
                        job_id=(f"inject/{kernel}/{config}/"
                                f"{structure}/{protection}"),
                        kind="inject",
                        runner=("repro.resilience.campaign:"
                                "run_injection_job"),
                        params={
                            "kernel": kernel, "config": config,
                            "structure": structure,
                            "protection": protection,
                            "count": count, "base_seed": base_seed,
                            "checkpoint_every": checkpoint_every,
                            "trace": trace,
                        },
                        description=(f"fault injection: {kernel}/{config} "
                                     f"{structure} under {protection}")))
    return jobs


def fault_metrics(records: list[dict],
                  registry: MetricsRegistry | None = None,
                  ) -> MetricsRegistry:
    """Project campaign bench records into the ``faults`` metric group.

    Mirrors :func:`repro.obs.metrics.from_run_stats` for the
    resilience layer: stable names, labelled by structure/protection,
    so exports and tests read one namespace.
    """
    registry = registry or MetricsRegistry()
    injections = registry.counter(
        "fault_injections_total", "injected fault runs",
        ("structure", "protection"))
    outcomes = registry.counter(
        "fault_outcomes_total", "injection outcomes",
        ("structure", "protection", "outcome"))
    recovery = registry.counter(
        "fault_recovery_cycles_total",
        "cycles of work discarded by rollback recovery",
        ("structure", "protection"))
    sdc_rate = registry.gauge(
        "fault_sdc_rate", "silent-data-corruption rate",
        ("structure", "protection"))
    for record in records:
        section = record.get("fault_tolerance")
        if section is None:
            continue
        structure = record["structure"]
        protection = record["protection"]
        injections.labels(structure, protection).inc(
            section["injections"])
        for outcome in OUTCOMES:
            outcomes.labels(structure, protection, outcome).inc(
                section[outcome.replace("-", "_")])
        recovery.labels(structure, protection).inc(
            section["recovery_cycles_total"])
        sdc_rate.labels(structure, protection).set(section["sdc_rate"])
    return registry
