"""Single-bit fault models for the TM3270's vulnerable SRAM arrays.

Each model arms one transient bit flip in a storage structure and then
watches the machine step-by-step, reporting when the corrupt bit is
*consumed* (the moment parity or SEC-DED logic on that array would
fire), *overwritten* (a write refreshes the check bits — the fault is
gone), or *vanishes* (a clean cache line is discarded — the flipped
copy never escapes the array).

The models exploit this simulator's architecture/timing split: the
data and instruction caches are timing-only and architectural data
lives in :class:`~repro.mem.flatmem.FlatMemory`, so

* a **data-array** fault flips the memory byte *while the line is
  resident* and undoes the flip if the clean line is discarded — the
  memory image then matches what a copy-back hierarchy would hold;
* a **tag-array** fault flips a tag bit and eagerly emulates the
  misdirected write-back: the line's validated dirty bytes land at the
  aliased address the corrupt tag now names;
* an **instruction-buffer** fault re-decodes the flipped program image
  (the template-compressed encoding means one flipped bit can garble a
  chunk, an operation, or desynchronize the stream — the latter is a
  crash).

All target selection is driven by one :class:`random.Random` whose
seed excludes the protection model, so the *same physical fault*
replays under none / parity / ECC — the property the campaign's
SDC-to-recovered conversion evidence rests on.
"""

from __future__ import annotations

from repro.core.plan import OP_GUARD, OP_SRCS

#: Structures a fault can strike (the target spaces of Section 4's
#: SRAM arrays as this model represents them).
STRUCTURES = ("regfile", "dcache-data", "dcache-tag", "ibuf")

#: Protection models per structure: bare SRAM, parity (detect-only —
#: recovery is rollback to the last clean checkpoint), SEC-DED ECC
#: (detect and correct in place).
PROTECTIONS = ("none", "parity", "ecc")

#: ``after_step``/``pre_step_hit`` verdicts.
READ = "read"            # corrupt bit consumed: detection point
DISARMED = "disarmed"    # overwritten with fresh data + check bits
VANISHED = "vanished"    # clean line discarded; corruption never escaped


class Fault:
    """One armed transient fault (base class).

    Lifecycle: :meth:`inject` flips the bit (returns False when the
    structure offers no target — e.g. an empty cache — which is a
    trivially masked run).  While armed, the harness single-steps and
    consults :meth:`pre_step_hit` before and :meth:`after_step` after
    every instruction.  :meth:`repair` implements the ECC correction;
    :meth:`at_halt` settles faults still armed when the program ends.
    """

    #: Human-readable target, filled by :meth:`inject`.
    target = ""
    #: Set when the corruption has irreversibly reached architectural
    #: state under ``none`` (informational).
    propagated = False
    #: Whether the harness must keep single-stepping under ``none``.
    #: Only the data-array model needs it (to keep the flat-memory
    #: image faithful to copy-back physics when the clean line is
    #: discarded); the other faults evolve natively once injected.
    monitor_under_none = False

    def inject(self, processor, rng) -> bool:
        raise NotImplementedError

    def pre_step_hit(self, processor) -> bool:
        """Will the *next* instruction consume the corrupt bit?"""
        return False

    def after_step(self, processor, info) -> str | None:
        """Post-step verdict: READ / DISARMED / VANISHED / None."""
        return None

    def repair(self, processor) -> None:
        """SEC-DED correction: put the original bit back."""
        raise NotImplementedError

    def at_halt(self, processor, protection: str) -> str | None:
        """Settle a fault still armed at program end.

        Returns READ when the end-of-run cache flush would consume the
        corrupt bit (parity detects during the sweep, ECC corrects),
        VANISHED when the corruption is discarded with a clean line,
        or None when it simply never mattered (masked).
        """
        return None


# ---------------------------------------------------------------------------
# Register file
# ---------------------------------------------------------------------------

class RegfileFault(Fault):
    """Bit flip in one 32-bit register-file word.

    Detection (parity/ECC on the read port): the flip is consumed when
    an instruction reads the register — as a guard or as a guard-true
    operation's source.  A committed write to the register refreshes
    the check bits and disarms the fault.  r0/r1 are hard-wired
    constants, not SRAM cells, and are excluded from the target space.
    """

    def inject(self, processor, rng) -> bool:
        regfile = processor.session.executor.regfile
        self.reg = rng.randrange(2, len(regfile._values))
        self.bit = rng.randrange(32)
        self.old = regfile._values[self.reg]
        self.new = self.old ^ (1 << self.bit)
        regfile._values[self.reg] = self.new
        self.target = f"r{self.reg} bit {self.bit}"
        return True

    def _corrupt(self, processor) -> bool:
        regfile = processor.session.executor.regfile
        return regfile._values[self.reg] == self.new

    def pre_step_hit(self, processor) -> bool:
        executor = processor.session.executor
        # Commit pending writes due now so guard truth — and a
        # possible overwrite of the corrupt word — is exact before the
        # read-port check (the executor's own step would commit the
        # same set first).
        executor.regfile.commit_until(executor.issue_count)
        if not self._corrupt(processor):
            return False
        pc = executor.pc
        plan = executor._plan
        if pc >= plan.count:
            return False
        values = executor.regfile._values
        for op in plan.ops[pc]:
            guard = op[OP_GUARD]
            if guard == self.reg:
                return True
            if guard != 1 and not values[guard] & 1:
                continue
            if self.reg in op[OP_SRCS]:
                return True
        return False

    def after_step(self, processor, info) -> str | None:
        if not self._corrupt(processor):
            return DISARMED
        return None

    def repair(self, processor) -> None:
        regfile = processor.session.executor.regfile
        if regfile._values[self.reg] == self.new:
            regfile._values[self.reg] = self.old


# ---------------------------------------------------------------------------
# Data cache — data array
# ---------------------------------------------------------------------------

class DCacheDataFault(Fault):
    """Bit flip in one valid byte of the data cache's data array.

    Architectural data lives in flat memory, so the model flips the
    backing byte while the line is resident and keeps the memory image
    consistent with copy-back physics: if the clean line is discarded
    (eviction or end-of-run) the flip is undone — the corrupt copy
    never left the array.  A dirty line carries the corruption out via
    write-back, which is also where parity/ECC on the data array
    consumes it; so does any load of the byte.
    """

    monitor_under_none = True

    def inject(self, processor, rng) -> bool:
        dcache = processor.dcache
        memory = processor.memory
        lines = [(index, line) for index, line in dcache.tags.entries()
                 if line.valid_mask]
        if not lines:
            return False
        set_index, line = lines[rng.randrange(len(lines))]
        offsets = [offset for offset
                   in range(dcache.geometry.line_bytes)
                   if line.valid_mask >> offset & 1]
        offset = offsets[rng.randrange(len(offsets))]
        line_address = dcache.tags.victim_address(set_index, line)
        address = line_address + offset
        if address >= memory.size:
            return False
        self.line_address = line_address
        self.tag = line.tag
        self.offset = offset
        self.address = address
        self.bit = rng.randrange(8)
        self.old = memory.load(address, 1)
        self.new = self.old ^ (1 << self.bit)
        self.dirty = bool(line.dirty_mask >> offset & 1)
        memory.store(address, self.new, 1)
        self.target = (f"dcache data @0x{address:06x} "
                       f"bit {self.bit}")
        return True

    def _line(self, processor):
        line = processor.dcache.tags.probe(self.line_address)
        if line is not None and line.tag == self.tag:
            return line
        return None

    def after_step(self, processor, info) -> str | None:
        memory = processor.memory
        if info is not None and info.mem_accesses:
            for access in info.mem_accesses:
                if (access.is_load
                        and access.address <= self.address
                        < access.address + access.nbytes):
                    return READ
        if memory.load(self.address, 1) != self.new:
            return DISARMED
        line = self._line(processor)
        if line is None:
            # Evicted this step.  A dirty byte rode the write-back out
            # through the array's check logic; a clean line was simply
            # discarded, taking the corruption with it.
            if self.dirty:
                self.propagated = True
                return READ
            memory.store(self.address, self.old, 1)
            return VANISHED
        self.dirty = bool(line.dirty_mask >> self.offset & 1)
        return None

    def repair(self, processor) -> None:
        if processor.memory.load(self.address, 1) == self.new:
            processor.memory.store(self.address, self.old, 1)

    def at_halt(self, processor, protection: str) -> str | None:
        if processor.memory.load(self.address, 1) != self.new:
            return DISARMED
        line = self._line(processor)
        dirty = (line is not None
                 and bool(line.dirty_mask >> self.offset & 1))
        if dirty:
            # The end-of-run flush writes the byte back through the
            # data array's check logic.
            return READ
        # Clean (or already-gone) line: discarded, never written back.
        processor.memory.store(self.address, self.old, 1)
        return VANISHED


# ---------------------------------------------------------------------------
# Data cache — tag array
# ---------------------------------------------------------------------------

class DCacheTagFault(Fault):
    """Bit flip in one data-cache tag.

    The line now claims to hold the *aliased* address the corrupt tag
    names.  The architectural consequence — its validated dirty bytes
    will be written back to the wrong place — is emulated eagerly at
    injection time (saving the clobbered bytes for ECC undo).  Tag
    parity/ECC is read on every lookup of the set, so the fault is
    consumed by the first subsequent access mapping to that set — an
    eviction of the line implies such an access and is covered by the
    same check.
    """

    def inject(self, processor, rng) -> bool:
        dcache = processor.dcache
        memory = processor.memory
        lines = list(dcache.tags.entries())
        if not lines:
            return False
        set_index, line = lines[rng.randrange(len(lines))]
        geometry = dcache.geometry
        tag_shift = (geometry.line_bytes.bit_length() - 1
                     + geometry.num_sets.bit_length() - 1)
        flippable = memory.size.bit_length() - 1 - tag_shift
        if flippable <= 0:
            return False
        self.set_index = set_index
        self.old_tag = line.tag
        self.bit = rng.randrange(flippable)
        self.new_tag = line.tag ^ (1 << self.bit)
        self.orig_address = dcache.tags.victim_address(set_index, line)
        line.tag = self.new_tag
        self.alias_address = dcache.tags.victim_address(set_index, line)
        self.target = (f"dcache tag set {set_index} "
                       f"@0x{self.orig_address:06x} bit {self.bit}")
        # Misdirected write-back: validated dirty bytes land at the
        # aliased address (remember what they clobber for ECC undo).
        self.clobbered: list[tuple[int, int]] = []
        writeback = line.dirty_mask & line.valid_mask
        if writeback and self.alias_address + geometry.line_bytes \
                <= memory.size:
            for offset in range(geometry.line_bytes):
                if writeback >> offset & 1:
                    source = memory.load(self.orig_address + offset, 1)
                    dest = self.alias_address + offset
                    self.clobbered.append((dest, memory.load(dest, 1)))
                    memory.store(dest, source, 1)
            if self.clobbered:
                self.propagated = True
        return True

    def _line(self, processor):
        line = processor.dcache.tags.probe(self.alias_address)
        if line is not None and line.tag == self.new_tag:
            return line
        return None

    def after_step(self, processor, info) -> str | None:
        if info is None or not info.mem_accesses:
            return None
        geometry = processor.dcache.geometry
        for access in info.mem_accesses:
            address = access.address
            if address >= processor.memory.size:
                continue  # MMIO: never reaches the cache
            if geometry.set_index(address) == self.set_index:
                return READ
        return None

    def repair(self, processor) -> None:
        line = self._line(processor)
        if line is not None:
            line.tag = self.old_tag
        for address, value in reversed(self.clobbered):
            processor.memory.store(address, value, 1)
        self.clobbered = []

    def at_halt(self, processor, protection: str) -> str | None:
        if protection == "none":
            # No check logic; the misdirected write-back was emulated
            # eagerly and post-injection stores went to the aliased
            # addresses natively — memory already tells the truth.
            return None
        if self._line(processor) is None and not self.clobbered:
            return DISARMED
        # The end-of-run flush reads every resident tag.
        return READ


# ---------------------------------------------------------------------------
# Instruction buffer
# ---------------------------------------------------------------------------

class IBufFault(Fault):
    """Bit flip in one instruction's bytes in the instruction buffer.

    The target space is the encoded byte range of one VLIW instruction
    ``t``.  Under ``none`` the flipped image is re-decoded and the
    running execution plan is swapped for the corrupt one — the
    template-compressed encoding (Section 2.1) means the flip can
    garble operations silently, decode to a different instruction
    count (stream desynchronization → crash), or produce an invalid
    program.  Under parity/ECC nothing is mutated: the check bits
    travel with the buffered chunk and fire when instruction ``t`` is
    fetched — parity triggers rollback (the refetch after recovery
    reloads clean bytes), ECC corrects at fetch.
    """

    #: The harness only needs to single-step while a fault can still
    #: change state; a swapped-in corrupt plan under ``none`` runs
    #: free.
    def inject(self, processor, rng) -> bool:
        session = processor.session
        program = session.program
        if not program.instructions:
            return False
        self.index = rng.randrange(len(program.instructions))
        start = program.addresses[self.index]
        nbytes = program.instruction_sizes[self.index]
        self.bit = rng.randrange(max(nbytes, 1) * 8)
        byte_offset = start + self.bit // 8
        self.target = (f"ibuf instr {self.index} "
                       f"byte 0x{byte_offset:04x} bit {self.bit % 8}")
        self.mutate = False
        return True

    def arm_none(self, processor) -> None:
        """Swap the corrupt decode into the running session (``none``).

        Raises on decode failure or stream desynchronization — the
        harness classifies that as a crash (the corrupt chunk reaches
        the decoder and the machine leaves the rails).
        """
        from repro.asm.link import LinkedProgram
        from repro.core.plan import ExecutionPlan
        from repro.core.processor import CODE_BASE
        from repro.isa.encoding import decode_program

        session = processor.session
        program = session.program
        start = program.addresses[self.index]
        image = bytearray(program.image)
        image[start + self.bit // 8] ^= 1 << (7 - self.bit % 8)
        decoded = decode_program(bytes(image))
        if len(decoded) != len(program.instructions):
            raise RuntimeError(
                f"instruction stream desynchronized: decoded "
                f"{len(decoded)} instructions, expected "
                f"{len(program.instructions)}")
        mutant = LinkedProgram(
            name=program.name,
            target=program.target,
            instructions=decoded,
            addresses=list(program.addresses),
            labels=dict(program.labels),
            image=bytes(image),
            register_map=dict(program.register_map),
            entry_regs=program.entry_regs,
        )
        plan = ExecutionPlan(mutant)
        mutant._plan = plan
        executor = session.executor
        old_plan = executor._plan
        totals = dict(zip(old_plan.fu_list, executor._fu_totals))
        executor._fu_totals = [totals.get(fu, 0)
                               for fu in plan.fu_list]
        executor._plan = plan
        executor.program = mutant
        session.program = mutant
        session.chunk_first, session.chunk_last = \
            plan.code_chunks(CODE_BASE)
        self.mutate = True

    def pre_step_hit(self, processor) -> bool:
        # Parity/ECC travels with the buffered bytes and is checked at
        # fetch: the fault is consumed when pc reaches the flipped
        # instruction.
        return processor.session.executor.pc == self.index

    def repair(self, processor) -> None:
        # ECC corrected the buffered bytes at fetch; nothing was ever
        # mutated.
        pass


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

_FAULT_CLASSES = {
    "regfile": RegfileFault,
    "dcache-data": DCacheDataFault,
    "dcache-tag": DCacheTagFault,
    "ibuf": IBufFault,
}


def make_fault(structure: str) -> Fault:
    """Instantiate the (unarmed) fault model for ``structure``."""
    try:
        return _FAULT_CLASSES[structure]()
    except KeyError:
        raise ValueError(
            f"unknown fault structure {structure!r}; "
            f"expected one of {STRUCTURES}") from None
