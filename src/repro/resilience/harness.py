"""Run one kernel with one injected fault; classify the outcome.

The harness is the recovery protocol of the subsystem:

* it periodically checkpoints the complete machine state with
  :meth:`~repro.core.processor.Processor.snapshot` — but only while no
  fault is armed, so the latest checkpoint is always *clean*;
* under **parity** protection, the step the corrupt bit would be
  consumed (read port, cache lookup, write-back, instruction fetch)
  raises a detection instead: the machine rolls back to the last
  checkpoint and re-executes.  The fault is transient, so the replay
  is clean — and, because snapshots capture timing state too, the
  replay is *bit-identical* to an uninjected run from that point;
* under **ECC** the consuming access corrects the bit in place and
  execution continues;
* under **none** the fault simply evolves: it may be overwritten
  (masked), discarded with a clean cache line (masked), or reach the
  kernel's output (silent data corruption), derail the program
  (crash), or never terminate (hang — a watchdog scaled from the
  golden run's cycle count catches it).

Every run lands in exactly one outcome class::

    masked               completed, output digest matches the golden run
    detected-corrected   ECC fixed the bit; output matches
    detected-recovered   parity + rollback; output matches
    sdc                  completed but the output digest differs
    crash                the simulated machine raised
    hang                 the watchdog fired

SDC is judged on the kernel's *declared output regions*
(:attr:`~repro.kernels.registry.KernelCase.outputs`) — corrupt bytes
in inputs or scratch that no consumer reads again are not silent data
corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.asm.link import compile_program
from repro.core.config import EVALUATION_CONFIGS, TM3270_CONFIG
from repro.core.processor import Processor, WatchdogTimeout
from repro.kernels.registry import kernel_by_name
from repro.mem.flatmem import FlatMemory
from repro.resilience.faults import (
    DISARMED,
    READ,
    VANISHED,
    PROTECTIONS,
    make_fault,
)

#: The six outcome classes, in severity order.
OUTCOMES = ("masked", "detected-corrected", "detected-recovered",
            "sdc", "crash", "hang")

#: Watchdog budget: a recovering run replays at most the window since
#: its last checkpoint, so the golden cycle count times this factor
#: (plus slack for tiny kernels) separates "slow" from "never".
WATCHDOG_FACTOR = 4
WATCHDOG_SLACK = 10_000


@dataclass(frozen=True)
class GoldenRun:
    """The uninjected reference run of one kernel x configuration."""

    kernel: str
    config: str
    program: object
    case: object
    cfg: object
    instructions: int
    cycles: int
    digest: str
    stats: object


_GOLDEN_CACHE: dict[tuple[str, str], GoldenRun] = {}


def golden_run(kernel: str, config: str) -> GoldenRun:
    """Reference run (cached per process): counts + output digest."""
    key = (kernel, config)
    cached = _GOLDEN_CACHE.get(key)
    if cached is not None:
        return cached
    case = kernel_by_name(kernel)
    by_name = {cfg.name: cfg for cfg in EVALUATION_CONFIGS}
    by_name.setdefault(TM3270_CONFIG.name, TM3270_CONFIG)
    cfg = by_name[config]
    program = compile_program(case.build(), cfg.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    processor = Processor(cfg, memory=memory)
    result = processor.run(program, args=args)
    case.verify(memory, result)
    if not case.outputs:
        raise ValueError(
            f"kernel {kernel!r} declares no output regions; the "
            "resilience layer cannot classify SDC without them")
    golden = GoldenRun(
        kernel=kernel, config=config, program=program, case=case,
        cfg=cfg, instructions=result.stats.instructions,
        cycles=result.stats.cycles,
        digest=case.output_digest(memory), stats=result.stats)
    _GOLDEN_CACHE[key] = golden
    return golden


@dataclass
class InjectionResult:
    """One injected run, fully classified."""

    kernel: str
    config: str
    structure: str
    protection: str
    seed: int
    outcome: str
    target: str = ""
    injected: bool = False
    inject_instruction: int = 0
    detect_cycle: int | None = None
    rollbacks: int = 0
    #: Cycles of work discarded by rollbacks (the recovery overhead:
    #: wall time = final_cycles + recovery_cycles).
    recovery_cycles: int = 0
    checkpoints: int = 0
    final_cycles: int | None = None
    golden_cycles: int = 0
    error: str | None = None
    propagated: bool = False

    def as_record(self) -> dict:
        """JSON-safe per-run record for the bench document."""
        return {
            "seed": self.seed,
            "outcome": self.outcome,
            "target": self.target,
            "inject_instruction": self.inject_instruction,
            "detect_cycle": self.detect_cycle,
            "rollbacks": self.rollbacks,
            "recovery_cycles": self.recovery_cycles,
            "final_cycles": self.final_cycles,
            "error": self.error,
        }


def run_injection(kernel: str, config: str, structure: str,
                  protection: str, seed: int, *,
                  checkpoint_every: int | None = None,
                  obs=None, ts_base: int = 0,
                  engine: str | None = None) -> InjectionResult:
    """Inject one seeded fault into one kernel run and classify it.

    The ``seed`` fully determines the fault (injection point, target
    bit) *independently of the protection model*, so a sweep over
    protections replays the identical physical fault — the basis for
    the SDC-to-recovered conversion evidence.  ``obs`` (optional)
    receives ``CAT_FAULT`` lifecycle events stamped at
    ``ts_base + cycle``.

    ``engine`` picks the execution tier (default: the processor's
    plan path).  Outcome classification must be engine-invariant:
    armed phases single-step under a monitor (where the trace tier
    deliberately defers to the plan loop), and an ibuf plan swap under
    ``none`` rebinds the trace runtime — compiled regions of the
    clean program can never run the corrupt one.
    """
    if protection not in PROTECTIONS:
        raise ValueError(f"unknown protection {protection!r}; "
                         f"expected one of {PROTECTIONS}")
    golden = golden_run(kernel, config)
    rng = random.Random(seed)
    inject_at = rng.randrange(1, max(golden.instructions, 2))
    fault = make_fault(structure)
    watchdog = golden.cycles * WATCHDOG_FACTOR + WATCHDOG_SLACK
    interval = checkpoint_every or max(256, golden.instructions // 8)

    result = InjectionResult(
        kernel=kernel, config=config, structure=structure,
        protection=protection, seed=seed, outcome="masked",
        inject_instruction=inject_at, golden_cycles=golden.cycles)

    def emit(kind: str, ts: int, **extra) -> None:
        if obs:
            obs.fault(ts_base + ts, kind, structure=structure,
                      protection=protection, seed=seed, **extra)

    memory = FlatMemory(golden.case.memory_size)
    args = golden.case.prepare(memory)
    processor = Processor(golden.cfg, memory=memory)

    armed = False
    corrected = recovered = False
    hung = False
    error: str | None = None
    last_info = None
    session = None

    def capture(info, cycle) -> bool:
        nonlocal last_info
        last_info = info
        return False

    def detect_parity(session, checkpoint, checkpoint_cycle) -> None:
        nonlocal recovered, armed
        recovered = True
        armed = False
        result.detect_cycle = session.cycle
        result.rollbacks += 1
        result.recovery_cycles += session.cycle - checkpoint_cycle
        emit("detect", session.cycle, target=fault.target)
        processor.restore(checkpoint)
        emit("rollback", session.cycle, to_cycle=checkpoint_cycle,
             wasted_cycles=result.recovery_cycles)

    def detect_ecc(session) -> None:
        nonlocal corrected, armed
        corrected = True
        armed = False
        result.detect_cycle = session.cycle
        fault.repair(processor)
        emit("correct", session.cycle, target=fault.target)

    try:
        processor.begin(golden.program, args=args, max_cycles=watchdog,
                        engine=engine)
        session = processor.session
        checkpoint = processor.snapshot()
        checkpoint_cycle = 0
        checkpoint_instructions = 0
        result.checkpoints = 1
        halted = False

        while not halted:
            if armed and (protection != "none"
                          or fault.monitor_under_none):
                # Single-step with the fault under observation.
                if protection != "none" and fault.pre_step_hit(processor):
                    # The next instruction would consume the corrupt
                    # bit; the array's check logic fires first.
                    if protection == "parity":
                        detect_parity(session, checkpoint,
                                      checkpoint_cycle)
                    else:
                        detect_ecc(session)
                    continue
                halted = processor.step_block(limit=1, monitor=capture)
                if armed:
                    verdict = fault.after_step(processor, last_info)
                    if verdict == READ:
                        if protection == "parity":
                            halted = False
                            detect_parity(session, checkpoint,
                                          checkpoint_cycle)
                        elif protection == "ecc":
                            detect_ecc(session)
                        # none: the corruption propagated; keep
                        # watching so copy-back physics stay faithful.
                    elif verdict in (DISARMED, VANISHED):
                        armed = False
                        emit("vanish", session.cycle, verdict=verdict,
                             target=fault.target)
            else:
                boundaries = []
                if not result.injected:
                    boundaries.append(inject_at)
                if not armed:
                    boundaries.append(checkpoint_instructions + interval)
                limit = (min(boundaries) - session.instructions
                         if boundaries else None)
                if limit is not None and limit <= 0:
                    limit = 1
                halted = processor.step_block(limit=limit)

            instructions = session.instructions
            if (not result.injected and not halted
                    and instructions >= inject_at):
                result.injected = True
                armed = fault.inject(processor, rng)
                result.target = fault.target
                emit("inject", session.cycle,
                     target=fault.target or "(no viable target)",
                     instruction=instructions, armed=armed)
                if armed and structure == "ibuf" and protection == "none":
                    # May raise: a flip that desynchronizes the
                    # template-compressed stream is a crash.
                    fault.arm_none(processor)
            if (not armed and not halted
                    and instructions >= checkpoint_instructions + interval):
                checkpoint = processor.snapshot()
                checkpoint_cycle = session.cycle
                checkpoint_instructions = instructions
                result.checkpoints += 1

            if halted and armed:
                verdict = fault.at_halt(processor, protection)
                if verdict == READ and protection == "parity":
                    # The end-of-run flush consumed the corrupt bit:
                    # detect, roll back, and re-run to completion.
                    halted = False
                    detect_parity(session, checkpoint, checkpoint_cycle)
                elif verdict == READ and protection == "ecc":
                    detect_ecc(session)
                elif verdict in (DISARMED, VANISHED):
                    armed = False
                    emit("vanish", session.cycle, verdict=verdict,
                         target=fault.target)
                else:
                    armed = False
    except WatchdogTimeout as caught:
        hung = True
        error = str(caught)
    except Exception as caught:  # noqa: BLE001 — the machine derailed
        error = f"{type(caught).__name__}: {caught}"

    if hung:
        result.outcome = "hang"
        result.error = error
    elif error is not None:
        result.outcome = "crash"
        result.error = error
    else:
        run = processor.result()
        result.final_cycles = run.stats.cycles
        digest = golden.case.output_digest(memory)
        if digest != golden.digest:
            result.outcome = "sdc"
        elif corrected:
            result.outcome = "detected-corrected"
        elif recovered:
            result.outcome = "detected-recovered"
        else:
            result.outcome = "masked"
    result.propagated = fault.propagated
    assert result.outcome in OUTCOMES
    emit("outcome", session.cycle if session is not None else 0,
         outcome=result.outcome, target=fault.target)
    return result
