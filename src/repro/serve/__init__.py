"""Multi-session streaming decode service (the serving front-end).

The TM3270 is a media-processor: its reason to exist is *sustained
concurrent real-time streams*, not one kernel at a time.  This package
is the serving layer over the simulator — an asyncio front-end that
accepts many concurrent decode sessions (CABAC bitstreams, motion-
estimation refinements, video-pipeline kernels), multiplexes them over
a pool of persistent simulator worker processes, and streams results
back incrementally over a length-prefixed JSON protocol:

* :mod:`repro.serve.protocol` — the wire frame codec (typed
  :class:`~repro.serve.protocol.ProtocolError`, never chaos, on
  malformed bytes);
* :mod:`repro.serve.sessions` — what a session *is*: a picklable
  JSON-parameterized :class:`~repro.serve.sessions.SessionSpec`, its
  deterministic execution in preemptible ``step_block`` slices with
  ``Processor.snapshot()`` checkpoints, and the serial reference
  runner the served results are pinned against;
* :mod:`repro.serve.pool` — persistent fork worker processes that
  round-robin slices across their active sessions (time-slicing long
  decodes) and stream progress over a Pipe;
* :mod:`repro.serve.server` — the asyncio front-end: admission
  control (bounded backlog, reject + retry-after), dispatch, crash /
  hang containment, and SLO metrics (p50/p99 session latency,
  sessions/sec, preemptions, rejects) in the ``serve`` obs group;
* :mod:`repro.serve.loadgen` — the seeded deterministic load
  generator behind ``make serve-bench`` / ``make serve-smoke``,
  writing ``BENCH_serve.json``, with per-session exponential backoff
  (deterministic seeded jitter) and client deadlines;
* :mod:`repro.serve.chaos` — the seeded chaos harness behind
  ``make chaos-smoke``: deterministic fault schedules (worker kills /
  hangs, corrupted frames, delayed ACKs, in-session bit flips) driven
  against a real server, asserting the served workload digest equals
  the fault-free serial reference with zero lost sessions.

The conformance contract (``tests/serve/``): results served through
any worker count, any preemption slice budget, and under fault churn
are byte-identical to :func:`~repro.serve.sessions.run_sessions_serial`.
Crash recovery (PR 10) extends it: a worker death mid-session costs a
resume from the checkpoint journal — never the session, never the
digest.
"""

from repro.serve.pool import ServeConfigError  # noqa: F401
from repro.serve.protocol import ProtocolError  # noqa: F401
from repro.serve.server import (  # noqa: F401
    ServeConfig,
    ServeServer,
    SessionJournal,
    WorkerConnectionLost,
)
from repro.serve.sessions import (  # noqa: F401
    SessionJournalError,
    SessionResult,
    SessionRun,
    SessionSpec,
    execute_session,
    mixed_workload,
    run_sessions_serial,
    workload_digest,
)

_LAZY = {
    # Resolved on first attribute access: loadgen and chaos are also
    # `python -m` entry points, and importing them eagerly here would
    # trip the found-in-sys.modules RuntimeWarning on every CLI run.
    "Backoff": ("repro.serve.loadgen", "Backoff"),
    "chaos_schedule": ("repro.serve.chaos", "chaos_schedule"),
    "run_chaos": ("repro.serve.chaos", "run_chaos"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    return getattr(importlib.import_module(module_name), attr)
