"""Multi-session streaming decode service (the serving front-end).

The TM3270 is a media-processor: its reason to exist is *sustained
concurrent real-time streams*, not one kernel at a time.  This package
is the serving layer over the simulator — an asyncio front-end that
accepts many concurrent decode sessions (CABAC bitstreams, motion-
estimation refinements, video-pipeline kernels), multiplexes them over
a pool of persistent simulator worker processes, and streams results
back incrementally over a length-prefixed JSON protocol:

* :mod:`repro.serve.protocol` — the wire frame codec (typed
  :class:`~repro.serve.protocol.ProtocolError`, never chaos, on
  malformed bytes);
* :mod:`repro.serve.sessions` — what a session *is*: a picklable
  JSON-parameterized :class:`~repro.serve.sessions.SessionSpec`, its
  deterministic execution in preemptible ``step_block`` slices with
  ``Processor.snapshot()`` checkpoints, and the serial reference
  runner the served results are pinned against;
* :mod:`repro.serve.pool` — persistent fork worker processes that
  round-robin slices across their active sessions (time-slicing long
  decodes) and stream progress over a Pipe;
* :mod:`repro.serve.server` — the asyncio front-end: admission
  control (bounded backlog, reject + retry-after), dispatch, crash /
  hang containment, and SLO metrics (p50/p99 session latency,
  sessions/sec, preemptions, rejects) in the ``serve`` obs group;
* :mod:`repro.serve.loadgen` — the seeded deterministic load
  generator behind ``make serve-bench`` / ``make serve-smoke``,
  writing ``BENCH_serve.json``.

The conformance contract (``tests/serve/``): results served through
any worker count, any preemption slice budget, and under fault churn
are byte-identical to :func:`~repro.serve.sessions.run_sessions_serial`.
"""

from repro.serve.protocol import ProtocolError  # noqa: F401
from repro.serve.server import ServeConfig, ServeServer  # noqa: F401
from repro.serve.sessions import (  # noqa: F401
    SessionResult,
    SessionSpec,
    execute_session,
    mixed_workload,
    run_sessions_serial,
    workload_digest,
)
