"""``python -m repro.serve`` — run the streaming decode server.

Binds the asyncio front-end on ``--host``/``--port`` and serves until
interrupted.  Drive it with the load generator::

    python -m repro.serve --port 4270 --workers 4 &
    python -m repro.serve.loadgen --connect 127.0.0.1:4270 --sessions 200
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.pool import ServeConfigError
from repro.serve.server import ServeConfig, ServeServer


async def _serve(config: ServeConfig) -> None:
    server = ServeServer(config)
    await server.start()
    print(f"repro.serve: listening on {config.host}:{server.port} "
          f"({config.workers} worker(s), backlog {config.backlog})",
          flush=True)
    try:
        await asyncio.Event().wait()   # until cancelled
    finally:
        await server.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-session streaming decode server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4270)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backlog", type=int, default=32)
    parser.add_argument("--slice-budget", type=int, default=None)
    parser.add_argument("--checkpoint-every", type=int, default=None)
    parser.add_argument("--watchdog", type=float, default=10.0)
    parser.add_argument("--resume-attempts", type=int, default=2)
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            backlog=args.backlog, slice_budget=args.slice_budget,
            checkpoint_every=args.checkpoint_every,
            watchdog_seconds=args.watchdog,
            resume_attempts=args.resume_attempts)
    except ServeConfigError as error:
        parser.error(str(error))   # exits 2, argparse-style
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        print("repro.serve: shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
