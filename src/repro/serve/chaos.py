"""Seeded chaos harness for the serve layer (``make chaos-smoke``).

The recovery contract of PR 10 is a *digest* statement: under **any**
fault schedule — workers killed or hung mid-session, client frames
corrupted on the wire, ACK consumption delayed, bit flips injected
into live machine state — every admitted session completes with a
result byte-identical to the fault-free serial reference, and the
server's ``lost_sessions`` counter stays at zero.  This module makes
that statement executable: it draws a deterministic fault schedule
from a seed, drives a real server + worker pool through it with a
chaos-aware client, and asserts the invariant.

Fault-schedule grammar — a schedule is a list of event objects:

``{"event": "kill_worker",  "worker": w, "after_slices": k}``
    Worker ``w`` calls ``os._exit(11)`` after retiring its ``k``-th
    preemption slice (slice-counted, so wall clock never enters the
    schedule).
``{"event": "hang_worker",  "worker": w, "after_slices": k}``
    Worker ``w`` sleeps past the watchdog after its ``k``-th slice.
``{"event": "corrupt_frame", "session_index": j}``
    The client corrupts the submit frame of the ``j``-th scheduled
    session (garbage bytes on the wire), collects the typed
    ``protocol`` error, reconnects with backoff, and resubmits.
``{"event": "delay_ack", "session_index": j, "seconds": s}``
    The client stops consuming the ``j``-th session's frames for
    ``s`` seconds after admission (a slow consumer).
``{"event": "bitflip", "session_index": j, "slice": k, "target": t,
"seed": r}``
    A PR 5 fault-injection bit flip (register file / D$ data / D$
    tag) fired inside the served session at preemption boundary
    ``k``; the worker detects, restores its last clean snapshot, and
    replays (:meth:`~repro.serve.sessions.SessionRun` ``faults``).

:func:`chaos_schedule` draws a schedule from ``random.Random(seed)``
(hash-seed invariant; ``tests/test_ci_guard.py`` pins campaign
digests and resume counters across ``PYTHONHASHSEED`` values), and
:func:`run_chaos` executes one campaign and returns a
:class:`ChaosReport` whose ``failures`` list is empty exactly when
the recovery contract held.

CLI::

    python -m repro.serve.chaos --smoke       # CI chaos-smoke gate
    python -m repro.serve.chaos --seed 7 --sessions 16 --workers 3
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time

from repro.serve.loadgen import Backoff, session_schedule
from repro.serve.protocol import (
    TRANSIENT_ERROR_TYPES,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, ServeServer
from repro.serve.sessions import (
    SESSION_FAULT_TARGETS,
    run_sessions_serial,
    spec_from_document,
    workload_digest,
)

EVENT_KINDS = ("kill_worker", "hang_worker", "corrupt_frame",
               "delay_ack", "bitflip")


def chaos_schedule(seed: int, *, sessions: int, workers: int,
                   kills: int = 1, hangs: int = 1, corrupts: int = 1,
                   delays: int = 1, bitflips: int = 2) -> list[dict]:
    """Draw a deterministic fault schedule from ``seed``.

    Pure function of its arguments: the worker indices, slice counts,
    session targets, and fault seeds all come from an explicitly
    seeded ``random.Random``, so the same seed replays the same
    campaign on every interpreter and every ``PYTHONHASHSEED``.
    Kill/hang events land on distinct workers where possible (a
    worker dies at most once per armed directive anyway — its respawn
    comes up clean).
    """
    rng = random.Random(seed)
    events: list[dict] = []
    worker_pool = list(range(workers)) * (1 + (kills + hangs) // max(
        workers, 1))
    rng.shuffle(worker_pool)
    for _ in range(kills):
        events.append({"event": "kill_worker",
                       "worker": worker_pool.pop(),
                       "after_slices": rng.randrange(3, 10)})
    for _ in range(hangs):
        events.append({"event": "hang_worker",
                       "worker": worker_pool.pop(),
                       "after_slices": rng.randrange(3, 10)})
    for _ in range(corrupts):
        events.append({"event": "corrupt_frame",
                       "session_index": rng.randrange(sessions)})
    for _ in range(delays):
        events.append({"event": "delay_ack",
                       "session_index": rng.randrange(sessions),
                       "seconds": round(rng.uniform(0.02, 0.08), 3)})
    for _ in range(bitflips):
        events.append({"event": "bitflip",
                       "session_index": rng.randrange(sessions),
                       "slice": rng.randrange(1, 4),
                       "target": rng.choice(SESSION_FAULT_TARGETS),
                       "seed": rng.randrange(1, 1 << 16)})
    return events


class ChaosReport:
    """Everything one chaos campaign observed, plus its verdict."""

    def __init__(self, *, seed: int, sessions: int, workers: int,
                 schedule: list[dict]) -> None:
        self.seed = seed
        self.sessions = sessions
        self.workers = workers
        self.schedule = schedule
        self.results: dict[str, dict] = {}
        self.errors: dict[str, dict] = {}
        self.latencies: dict[str, float] = {}
        self.reference_digest = ""
        self.corrupt_frames_sent = 0
        self.reconnects = 0
        self.transient_retries = 0
        self.rejects = 0
        self.metrics: dict = {}
        self.failures: list[str] = []

    @property
    def passed(self) -> bool:
        return not self.failures

    def served_digest(self) -> str:
        """Order-invariant digest over served (id, digest) pairs, the
        same construction as
        :meth:`~repro.serve.loadgen.LoadReport.served_workload_digest`."""
        import hashlib
        pairs = sorted((sid, document["digest"])
                       for sid, document in self.results.items())
        canonical = json.dumps([list(pair) for pair in pairs],
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "sessions": self.sessions,
            "workers": self.workers,
            "events": len(self.schedule),
            "completed": len(self.results),
            "failed": len(self.errors),
            "workload_digest": self.served_digest(),
            "reference_digest": self.reference_digest,
            "corrupt_frames_sent": self.corrupt_frames_sent,
            "reconnects": self.reconnects,
            "transient_retries": self.transient_retries,
            "client_rejects": self.rejects,
            "resumed_sessions": self.metrics.get("resumed_sessions"),
            "resume_replays": self.metrics.get("resume_replays"),
            "checkpoint_bytes": self.metrics.get("checkpoint_bytes"),
            "lost_sessions": self.metrics.get("lost_sessions"),
            "worker_respawns": self.metrics.get("worker_respawns"),
            "passed": self.passed,
            "failures": list(self.failures),
        }


_GARBAGE = b"\xff\xff\xff\xf0chaos-corrupted-frame"


async def _drive_chaos_shard(host: str, port: int,
                             shard: list[tuple[int, dict]],
                             extras: dict[int, dict],
                             report: ChaosReport,
                             slice_budget: int | None,
                             transient_budget: int = 6) -> None:
    """One connection driving its sessions through scheduled faults."""
    reader, writer = await asyncio.open_connection(host, port)

    async def reconnect():
        nonlocal reader, writer
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        report.reconnects += 1
        reader, writer = await asyncio.open_connection(host, port)

    try:
        for index, document in shard:
            sid = document["session_id"]
            extra = extras.get(index, {})
            submit = {"type": "submit", "spec": document}
            if slice_budget is not None:
                submit["slice_budget"] = slice_budget
            if extra.get("faults"):
                submit["faults"] = extra["faults"]
            backoff = Backoff(sid)
            resubmits = 0
            started = time.monotonic()

            if extra.get("corrupt"):
                # Corrupt this session's submit on the wire: the
                # server must answer with a typed protocol error and
                # close; the client backs off, reconnects, resubmits.
                writer.write(_GARBAGE)
                await writer.drain()
                report.corrupt_frames_sent += 1
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    assert frame.get("error_type") == "protocol", frame
                await asyncio.sleep(backoff.next_delay())
                await reconnect()

            await write_frame(writer, submit)
            delayed = False
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    # Mid-session close is itself a transient fault.
                    if resubmits < transient_budget:
                        resubmits += 1
                        report.transient_retries += 1
                        await asyncio.sleep(backoff.next_delay())
                        await reconnect()
                        await write_frame(writer, submit)
                        continue
                    report.errors[sid] = {
                        "error_type": "crashed",
                        "message": "connection closed; budget spent"}
                    break
                kind = frame["type"]
                if kind == "rejected":
                    report.rejects += 1
                    await asyncio.sleep(backoff.next_delay(
                        floor=float(frame.get("retry_after", 0.0))))
                    await write_frame(writer, submit)
                elif kind == "accepted":
                    if extra.get("delay_ack") and not delayed:
                        delayed = True
                        await asyncio.sleep(extra["delay_ack"])
                elif kind == "progress":
                    pass
                elif kind == "result":
                    report.results[sid] = frame["result"]
                    report.latencies[sid] = time.monotonic() - started
                    break
                elif kind == "error":
                    if (frame.get("error_type") in TRANSIENT_ERROR_TYPES
                            and resubmits < transient_budget):
                        resubmits += 1
                        report.transient_retries += 1
                        await asyncio.sleep(backoff.next_delay())
                        await write_frame(writer, submit)
                        continue
                    report.errors[sid] = frame
                    break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _fetch_metrics(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, {"type": "stats"})
        frame = await read_frame(reader)
        return (frame or {}).get("metrics", {})
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_chaos(*, seed: int = 2026, sessions: int = 12,
                    workers: int = 2, connections: int = 2,
                    slice_budget: int = 777,
                    checkpoint_every: int = 2,
                    watchdog_seconds: float = 1.0,
                    schedule: list[dict] | None = None) -> ChaosReport:
    """Run one seeded chaos campaign; return its report.

    The resume budget is sized to the schedule (every kill/hang event
    plus slack), so a session unlucky enough to ride multiple dying
    workers still completes — the campaign asserts outcomes, it does
    not depend on scheduling luck.
    """
    documents = session_schedule(seed, sessions)
    if schedule is None:
        schedule = chaos_schedule(seed, sessions=sessions,
                                  workers=workers)
    report = ChaosReport(seed=seed, sessions=sessions, workers=workers,
                         schedule=schedule)
    report.reference_digest = workload_digest(run_sessions_serial(
        [spec_from_document(document) for document in documents]))

    directives: dict[int, dict] = {}
    extras: dict[int, dict] = {}
    disruptions = 0
    for event in schedule:
        kind = event["event"]
        if kind == "kill_worker":
            directives.setdefault(event["worker"], {})[
                "kill_after_slices"] = event["after_slices"]
            disruptions += 1
        elif kind == "hang_worker":
            directives.setdefault(event["worker"], {})[
                "hang_after_slices"] = event["after_slices"]
            disruptions += 1
        elif kind == "corrupt_frame":
            extras.setdefault(event["session_index"], {})[
                "corrupt"] = True
        elif kind == "delay_ack":
            extras.setdefault(event["session_index"], {})[
                "delay_ack"] = event["seconds"]
        elif kind == "bitflip":
            extras.setdefault(event["session_index"], {}).setdefault(
                "faults", []).append({
                    "slice": event["slice"],
                    "target": event["target"],
                    "seed": event["seed"]})
        else:
            raise ValueError(f"unknown chaos event {kind!r} "
                             f"(have {EVENT_KINDS})")

    config = ServeConfig(workers=workers, backlog=max(sessions, 8),
                         slice_budget=slice_budget,
                         checkpoint_every=checkpoint_every,
                         watchdog_seconds=watchdog_seconds,
                         poll_seconds=0.02,
                         resume_attempts=disruptions + 2)
    async with ServeServer(config) as server:
        for worker, directive in sorted(directives.items()):
            server.inject_worker_chaos(worker % workers, directive)
        shards = [list(enumerate(documents))[index::connections]
                  for index in range(connections)]
        await asyncio.gather(*(
            _drive_chaos_shard("127.0.0.1", server.port, shard,
                               extras, report, slice_budget)
            for shard in shards if shard))
        report.metrics = await _fetch_metrics("127.0.0.1", server.port)

    if report.errors:
        first = sorted(report.errors)[0]
        report.failures.append(
            f"{len(report.errors)} session(s) failed; first: {first}: "
            f"{report.errors[first].get('message')}")
    if len(report.results) != sessions:
        report.failures.append(
            f"served {len(report.results)}/{sessions} sessions")
    served = report.served_digest()
    if served != report.reference_digest:
        report.failures.append(
            f"served workload digest {served} != fault-free serial "
            f"reference {report.reference_digest}")
    lost = report.metrics.get("lost_sessions", 0)
    if lost:
        report.failures.append(
            f"{lost} session(s) lost (resume budget exhausted); the "
            "recovery contract is lost_sessions == 0")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="seeded chaos harness: fault schedules against "
                    "the serve layer, digest-checked against the "
                    "fault-free serial reference")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--sessions", type=int, default=12)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--connections", type=int, default=2)
    parser.add_argument("--slice-budget", type=int, default=777)
    parser.add_argument("--checkpoint-every", type=int, default=2)
    parser.add_argument("--campaigns", type=int, default=1,
                        help="run this many campaigns at seed, "
                             "seed+1, ...")
    parser.add_argument("--smoke", action="store_true",
                        help="CI chaos-smoke defaults (one pinned "
                             "campaign)")
    args = parser.parse_args(argv)

    exit_code = 0
    for offset in range(max(1, args.campaigns)):
        report = asyncio.run(asyncio.wait_for(run_chaos(
            seed=args.seed + offset, sessions=args.sessions,
            workers=args.workers, connections=args.connections,
            slice_budget=args.slice_budget,
            checkpoint_every=args.checkpoint_every), 300.0))
        print(json.dumps(report.describe(), indent=1))
        if not report.passed:
            print(f"chaos: FAIL (seed {args.seed + offset}): "
                  + "; ".join(report.failures), file=sys.stderr)
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
